package renaming_test

import (
	"fmt"
	"sort"
	"sync"

	renaming "repro"
)

// ExampleNewReBatching renames a fixed-size group of goroutines into a
// namespace of twice the group size.
func ExampleNewReBatching() {
	namer, err := renaming.NewReBatching(8, renaming.WithSeed(42))
	if err != nil {
		fmt.Println(err)
		return
	}
	var (
		wg    sync.WaitGroup
		names = make([]int, 8)
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names[g], _ = namer.GetName()
		}(g)
	}
	wg.Wait()

	sort.Ints(names)
	distinct := true
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			distinct = false
		}
	}
	fmt.Println("namespace:", namer.Namespace())
	fmt.Println("all distinct:", distinct)
	// Output:
	// namespace: 16
	// all distinct: true
}

// ExampleNewAdaptive shows that adaptive names scale with the actual
// contention, not with the configured capacity.
func ExampleNewAdaptive() {
	namer, err := renaming.NewAdaptive(1<<20, renaming.WithSeed(7))
	if err != nil {
		fmt.Println(err)
		return
	}
	// Only three participants show up.
	maxName := 0
	for i := 0; i < 3; i++ {
		u, err := namer.GetName()
		if err != nil {
			fmt.Println(err)
			return
		}
		if u > maxName {
			maxName = u
		}
	}
	fmt.Println("small names despite huge capacity:", maxName < 64)
	// Output:
	// small names despite huge capacity: true
}

// ExampleNamer_Release demonstrates the long-lived extension: released
// names return to the pool and can be reacquired.
func ExampleNamer_Release() {
	namer, err := renaming.NewReBatching(4, renaming.WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	u, _ := namer.GetName()
	fmt.Println("release:", namer.Release(u))
	fmt.Println("double release:", namer.Release(u) != nil)
	// Output:
	// release: <nil>
	// double release: true
}
