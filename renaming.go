// Package renaming provides randomized loose renaming for concurrent Go
// programs: n goroutines can each acquire a distinct small integer name
// from a namespace of size O(n), using only test-and-set (compare-and-swap)
// operations, in O(log log n) expected probes per caller.
//
// The algorithms implement Alistarh, Aspnes, Giakkoupis and Woelfel,
// "Randomized loose renaming in O(log log n) time" (PODC 2013):
//
//   - ReBatching (NewReBatching): non-adaptive — the maximum number of
//     participants n is fixed up front; names come from [0, (1+ε)n); every
//     caller finishes in log log n + O(1) probes with high probability.
//   - AdaptiveReBatching (NewAdaptive): adaptive — only an upper bound on
//     contention is fixed; with k actual participants, names are O(k) and
//     each caller takes O((log log k)²) probes, both w.h.p.
//   - FastAdaptiveReBatching (NewFastAdaptive): adaptive with total work
//     O(k log log k) w.h.p. — the cheapest option when many callers rename
//     at once.
//
// Baseline namers (NewUniform, NewLinearScan) implement the classical
// alternatives for comparison; see EXPERIMENTS.md for measured trade-offs,
// including the practical effect of the paper's large analysis constant t₀
// (tunable via WithT0Override).
//
// # Acquisition API
//
// Acquire(ctx) is the primary acquisition call: it honours context
// cancellation between probe batches, so a caller abandoning a slow
// acquisition gets ErrCancelled (wrapping ctx.Err()) and never leaks a set
// TAS slot. AcquireN(ctx, k) acquires k distinct names as one batch over a
// single PRNG stream, releasing everything it took if it cannot deliver
// all k. GetName() remains as a thin non-cancellable compatibility wrapper
// around Acquire.
//
// Namers can also be constructed from a DSN string through a
// database/sql-style registry:
//
//	nm, err := renaming.Open("rebatching?n=1024&eps=0.5")
//
// See Open for the grammar and Register for adding drivers.
//
// Construction-time misconfiguration — an invalid option value, an option
// that does not apply to the chosen namer, a malformed DSN — is rejected
// with an error matching ErrBadConfig (concretely a *ConfigError).
//
// All namers are safe for concurrent use. Renaming is one-shot in the
// paper's model; the Release method is an extension that returns a name to
// the pool (uniqueness remains guaranteed, the step-complexity analysis
// does not carry over to heavy churn).
//
// The underlying algorithm implementations live in internal/core and are
// shared with the adversarial-scheduler simulator used by the experiment
// harness (cmd/renamebench).
package renaming

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/tas"
	"repro/internal/xrand"
)

// LongLivedNamer is a Namer whose probe-complexity guarantees survive
// arbitrary release/re-acquire churn, as long as at most Capacity() names
// are held at any instant. The one-shot namers above also expose Release,
// but only LevelArray (and future long-lived algorithms) carry an analysis
// for the steady state.
type LongLivedNamer interface {
	Namer
	// Capacity returns the maximum number of concurrently held names for
	// which the namer's performance guarantees hold. Uniqueness holds
	// unconditionally.
	Capacity() int
}

// ResizableNamer is a LongLivedNamer whose capacity can change while
// acquisitions are in flight. Grow takes effect immediately; shrink
// marks the namespace tail drain-only — names already held above the
// new bound stay valid until released, new acquisitions never land
// there — and Draining reports true until the last such holder lets
// go. Namespace() never decreases, so every outstanding name remains
// releasable. Only namers built with WithResizable implement the
// dynamic behaviour; LevelArray's Resize fails with ErrBadConfig
// otherwise.
type ResizableNamer interface {
	LongLivedNamer
	// Resize sets the capacity to n online. Concurrent Acquire calls
	// observe either the old or the new layout, never a mix.
	Resize(n int) error
	// Draining reports whether any name above the current capacity's
	// bound is still held (a shrink has not yet quiesced).
	Draining() bool
	// ResizeEpoch returns the number of capacity changes applied so
	// far — a fence for tests and monitors racing Resize.
	ResizeEpoch() uint64
}

// Namer assigns distinct integer names to concurrent callers.
type Namer interface {
	// Acquire obtains a name unique among all unreleased names handed out
	// by this Namer. It is safe to call from multiple goroutines. If ctx
	// ends before a name is secured, Acquire returns an error matching
	// both ErrCancelled and ctx.Err(), and no TAS slot stays set on the
	// caller's behalf.
	Acquire(ctx context.Context) (int, error)
	// AcquireN obtains k distinct names as one batch, amortizing the
	// per-call PRNG-stream setup over the whole batch. It returns either
	// k names or an error with zero names retained: on exhaustion or
	// cancellation partway through, every name already taken is released
	// before returning. k < 1 is rejected with ErrBadConfig.
	AcquireN(ctx context.Context, k int) ([]int, error)
	// GetName is the non-cancellable compatibility form of Acquire,
	// equivalent to Acquire(context.Background()).
	GetName() (int, error)
	// Namespace returns the exclusive upper bound on names: every name lies
	// in [0, Namespace()).
	Namespace() int
	// Release returns a previously acquired name to the pool (long-lived
	// extension; not part of the paper's one-shot model).
	Release(name int) error
}

// space is the TAS surface namers need: probing plus the atomic release
// extension and the read-only occupancy view the drain check uses.
type space interface {
	tas.Space
	TryReset(loc int) bool
	IsSet(loc int) bool
}

// namer is the shared concurrent driver around a core algorithm.
type namer struct {
	alg     core.Algorithm
	mem     space
	probes  *tas.Counting // nil unless WithCounting
	seed    uint64
	stream  atomic.Uint64
	counted tas.Space // mem or counting wrapper; what algorithms probe
	// allowed, when non-nil, post-validates a won slot against the
	// algorithm's CURRENT geometry: a win that raced a shrink (probed
	// under the old epoch, published before the validation) is handed
	// back and the probe sequence retried, so no new grant lands in a
	// drain-only region.
	allowed func(name int) bool
}

func newNamer(alg core.Algorithm, opts options) *namer {
	var mem space
	if opts.padded {
		mem = tas.NewPadded(alg.Namespace())
	} else {
		mem = tas.NewDense(alg.Namespace())
	}
	return newNamerOn(alg, opts, mem)
}

// newNamerOn is newNamer over a caller-built space — the resizable
// path, where the space must exist (and be growable) before the
// algorithm's resize hook can be wired to it.
func newNamerOn(alg core.Algorithm, opts options, mem space) *namer {
	n := &namer{alg: alg, mem: mem, seed: opts.seed}
	n.counted = mem
	if opts.counting {
		n.probes = tas.NewCounting(mem)
		n.counted = n.probes
	}
	return n
}

// env builds the per-call execution environment: the shared TAS space plus
// a fresh private PRNG stream (derived from an atomic counter, so calls
// never contend on randomness). ctx == nil builds a non-cancellable
// environment (the GetName compatibility path).
func (n *namer) env(ctx context.Context) *concurrentEnv {
	return &concurrentEnv{
		space: n.counted,
		rng:   xrand.NewStream(n.seed, n.stream.Add(1)),
		ctx:   ctx,
	}
}

// acquireOne runs one probe sequence inside env and maps the algorithm's
// outcome onto the error taxonomy. The cancellation contract — no set TAS
// slot left behind — has two halves: the algorithm returns core.Cancelled
// before its next batch when the env reports an interrupt (so nothing was
// won), and a name won in the race window around cancellation is handed
// straight back here before ErrCancelled is returned.
func (n *namer) acquireOne(ctx context.Context, env *concurrentEnv) (int, error) {
	for {
		u := n.alg.GetName(env)
		switch {
		case u == core.Cancelled:
			return 0, cancelled(ctx)
		case u == core.NoName:
			return 0, ErrNamespaceExhausted
		case ctx != nil && ctx.Err() != nil:
			n.mem.TryReset(u)
			return 0, cancelled(ctx)
		}
		if n.allowed != nil && !n.allowed(u) {
			// The slot was shrunk out from under the probe sequence;
			// give it back and probe again under the new geometry.
			n.mem.TryReset(u)
			continue
		}
		return u, nil
	}
}

// Acquire implements Namer.
func (n *namer) Acquire(ctx context.Context) (int, error) {
	if ctx != nil && ctx.Err() != nil {
		return 0, cancelled(ctx)
	}
	return n.acquireOne(ctx, n.env(ctx))
}

// AcquireN implements Namer: k distinct names over one PRNG stream, or an
// error with every partially acquired name released. Distinctness needs no
// bookkeeping — each name is a TAS location this batch won.
func (n *namer) AcquireN(ctx context.Context, k int) ([]int, error) {
	if k < 1 {
		return nil, badConfig("", "AcquireN", fmt.Sprint(k), "need k >= 1")
	}
	if k > n.alg.Namespace() {
		// A batch larger than the namespace can never complete; fail before
		// allocating or probing anything (a caller-controlled k must not
		// size an allocation).
		return nil, fmt.Errorf("renaming: batch of %d exceeds namespace %d: %w",
			k, n.alg.Namespace(), ErrNamespaceExhausted)
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, cancelled(ctx)
	}
	// One environment — hence one stream setup — serves the whole batch.
	env := n.env(ctx)
	names := make([]int, 0, k)
	for len(names) < k {
		u, err := n.acquireOne(ctx, env)
		if err != nil {
			for _, v := range names {
				n.mem.TryReset(v)
			}
			return nil, fmt.Errorf("renaming: batch acquired %d of %d names: %w", len(names), k, err)
		}
		names = append(names, u)
	}
	return names, nil
}

// GetName implements Namer as a thin compatibility wrapper over Acquire;
// it cannot be cancelled.
func (n *namer) GetName() (int, error) {
	return n.acquireOne(nil, n.env(nil))
}

// Namespace implements Namer.
func (n *namer) Namespace() int { return n.alg.Namespace() }

// Release implements Namer. The set→unset transition is a single CAS
// (tas.TryReset), so while the slot stays set, exactly one of any number
// of racing releases succeeds and the rest report ErrNotHeld — an IsSet
// check followed by a blind Reset would let several succeed. Note the
// limit of a token-less API: if a stale duplicate release arrives *after*
// the name has been re-acquired, the CAS cannot tell the new holder's slot
// from the old one and will free it. Callers that cannot rule out stale
// releases should layer package lease on top, whose fencing tokens reject
// them.
func (n *namer) Release(name int) error {
	if name < 0 || name >= n.alg.Namespace() {
		// A name outside the namespace is definitionally not held; wrapping
		// ErrNotHeld keeps every Release error inside the taxonomy.
		return fmt.Errorf("renaming: Release(%d): name outside [0,%d): %w",
			name, n.alg.Namespace(), ErrNotHeld)
	}
	if !n.mem.TryReset(name) {
		return ErrNotHeld
	}
	return nil
}

// Adopt marks a specific name as held, as if it had been acquired — the
// restart-recovery extension. A lease service replaying its durable state
// after a crash knows exactly which names were held and must re-seize those
// slots before serving new acquisitions, or a fresh Acquire could be granted
// a name that still has a live holder. Adopt performs the seizure as a
// single TAS on the named slot: it needs no occupancy bookkeeping to repair
// (the LevelArray's levels carry none — that is what makes its long-lived
// analysis hold under churn), so the adopted name behaves exactly like an
// acquired one, including Release. Adopting a name that is already held
// fails with an error matching ErrNameHeld; a name outside [0, Namespace())
// is rejected with ErrBadConfig.
func (n *namer) Adopt(name int) error {
	if name < 0 || name >= n.alg.Namespace() {
		return badConfig("", "Adopt", fmt.Sprint(name),
			fmt.Sprintf("name outside [0,%d)", n.alg.Namespace()))
	}
	// n.mem, not n.counted: adoption is recovery bookkeeping, not a probe —
	// it must not perturb WithCounting's probe/win statistics.
	if !n.mem.TAS(name) {
		return fmt.Errorf("renaming: Adopt(%d): %w", name, ErrNameHeld)
	}
	return nil
}

// Probes returns the total number of TAS probes and the number of winning
// probes executed so far. It returns ok = false unless the namer was built
// with WithCounting.
func (n *namer) Probes() (ops, wins int64, ok bool) {
	if n.probes == nil {
		return 0, 0, false
	}
	return n.probes.Ops(), n.probes.Wins(), true
}

// concurrentEnv implements core.Env over atomic shared memory. A non-nil
// ctx makes it core.Interruptible: algorithms poll Interrupted between
// probe batches and abandon the sequence once the context ends.
type concurrentEnv struct {
	space tas.Space
	rng   *xrand.Rand
	ctx   context.Context // nil: non-cancellable
}

func (e *concurrentEnv) TAS(loc int) bool { return e.space.TAS(loc) }
func (e *concurrentEnv) Intn(n int) int   { return e.rng.Intn(n) }
func (e *concurrentEnv) Interrupted() bool {
	return e.ctx != nil && e.ctx.Err() != nil
}

var _ core.Interruptible = (*concurrentEnv)(nil)

// ReBatching is the non-adaptive namer (§4 of the paper). Create one with
// NewReBatching.
type ReBatching struct {
	*namer
}

// NewReBatching builds a namer for at most n concurrent participants with a
// namespace of size ceil((1+ε)n) (ε defaults to 1; see WithEpsilon).
func NewReBatching(n int, opts ...Option) (*ReBatching, error) {
	o, err := collectOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := o.checkApplicable("rebatching", optEpsilon, optBeta, optT0); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, badConfig("rebatching", "n", fmt.Sprint(n), "need n >= 1")
	}
	alg, err := core.NewReBatching(core.ReBatchingConfig{
		N:          n,
		Epsilon:    o.epsilon,
		Beta:       o.beta,
		T0Override: o.t0Override,
	})
	if err != nil {
		return nil, wrapConfig("rebatching", err)
	}
	return &ReBatching{namer: newNamer(alg, o)}, nil
}

// Adaptive is the adaptive namer (§5.1 of the paper). Create one with
// NewAdaptive.
type Adaptive struct {
	*namer
}

// NewAdaptive builds an adaptive namer supporting up to maxContention
// concurrent participants. With k <= maxContention actual participants,
// names are O(k) and each acquisition takes O((log log k)²) probes, w.h.p.
func NewAdaptive(maxContention int, opts ...Option) (*Adaptive, error) {
	o, err := collectOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := o.checkApplicable("adaptive", optEpsilon, optBeta, optT0); err != nil {
		return nil, err
	}
	if maxContention < 1 {
		return nil, badConfig("adaptive", "maxContention", fmt.Sprint(maxContention), "need maxContention >= 1")
	}
	alg, err := core.NewAdaptive(core.AdaptiveConfig{
		Epsilon:    o.epsilon,
		Beta:       o.beta,
		T0Override: o.t0Override,
		MaxLevel:   core.MaxLevelFor(maxContention),
	})
	if err != nil {
		return nil, wrapConfig("adaptive", err)
	}
	return &Adaptive{namer: newNamer(alg, o)}, nil
}

// FastAdaptive is the work-efficient adaptive namer (§5.2 of the paper).
// Create one with NewFastAdaptive.
type FastAdaptive struct {
	*namer
}

// NewFastAdaptive builds an adaptive namer with O(k log log k) total work
// for k participants, supporting up to maxContention concurrent callers.
// The paper fixes this algorithm's namespace slack at ε = 1, so WithEpsilon
// is rejected unless it restates ε = 1.
func NewFastAdaptive(maxContention int, opts ...Option) (*FastAdaptive, error) {
	o, err := collectOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := o.checkApplicable("fastadaptive", optEpsilon, optBeta, optT0); err != nil {
		return nil, err
	}
	if o.set[optEpsilon] && o.epsilon != 1 {
		return nil, badConfig("fastadaptive", optEpsilon, fmt.Sprint(o.epsilon),
			"the paper fixes epsilon = 1 for this algorithm")
	}
	if maxContention < 1 {
		return nil, badConfig("fastadaptive", "maxContention", fmt.Sprint(maxContention), "need maxContention >= 1")
	}
	alg, err := core.NewFastAdaptive(core.FastAdaptiveConfig{
		Beta:       o.beta,
		T0Override: o.t0Override,
		MaxLevel:   core.MaxLevelFor(maxContention),
	})
	if err != nil {
		return nil, wrapConfig("fastadaptive", err)
	}
	return &FastAdaptive{namer: newNamer(alg, o)}, nil
}

// wrapConfig converts an algorithm-layer construction error into the
// package's ErrBadConfig taxonomy while preserving its message.
func wrapConfig(namerName string, err error) error {
	return &ConfigError{Namer: namerName, Reason: err.Error()}
}

var (
	_ Namer = (*ReBatching)(nil)
	_ Namer = (*Adaptive)(nil)
	_ Namer = (*FastAdaptive)(nil)
)
