package renaming

import (
	"errors"
	"sync"
	"testing"
)

func TestMoirAndersonConcurrentUnique(t *testing.T) {
	const k = 200
	nm, err := NewMoirAnderson(k)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]int, k)
	var wg sync.WaitGroup
	for g := 0; g < k; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u, err := nm.GetName()
			if err != nil {
				t.Error(err)
				return
			}
			names[g] = u
		}(g)
	}
	wg.Wait()
	seen := make(map[int]bool, k)
	for _, u := range names {
		if u < 0 || u >= nm.Namespace() {
			t.Fatalf("name %d outside [0,%d)", u, nm.Namespace())
		}
		if seen[u] {
			t.Fatalf("duplicate name %d", u)
		}
		seen[u] = true
	}
	if nm.RegisterSteps() < int64(k) {
		t.Fatalf("RegisterSteps = %d, want >= %d", nm.RegisterSteps(), k)
	}
}

func TestMoirAndersonSoloFastPath(t *testing.T) {
	nm, err := NewMoirAnderson(64)
	if err != nil {
		t.Fatal(err)
	}
	u, err := nm.GetName()
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Fatalf("solo caller got name %d, want 0", u)
	}
}

func TestMoirAndersonReleaseUnsupported(t *testing.T) {
	nm, err := NewMoirAnderson(4)
	if err != nil {
		t.Fatal(err)
	}
	u, err := nm.GetName()
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.Release(u); !errors.Is(err, ErrOneShot) {
		t.Fatalf("Release = %v, want ErrOneShot", err)
	}
}

func TestMoirAndersonValidation(t *testing.T) {
	if _, err := NewMoirAnderson(0); err == nil {
		t.Error("NewMoirAnderson(0) accepted")
	}
}

func TestMoirAndersonNamespaceQuadratic(t *testing.T) {
	nm, err := NewMoirAnderson(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := nm.Namespace(); got != 5050 {
		t.Fatalf("Namespace = %d, want 5050", got)
	}
}
