// Command renamebench regenerates the reproduction experiments: every
// table (T1-T7) and figure (F1-F8) recorded in EXPERIMENTS.md. Experiments
// that exercise the concurrent library select their namers through the
// renaming driver registry — the same DSN surface as renamed's -namer
// flag — so benchmarked and served configurations stay interchangeable.
//
// Usage:
//
//	renamebench                 # run everything with the default seed
//	renamebench -exp T1,F1      # run selected experiments
//	renamebench -quick          # smaller sweeps (seconds instead of minutes)
//	renamebench -seed 7         # change the master seed
//	renamebench -csv results/   # additionally write one CSV per experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "renamebench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("renamebench", flag.ContinueOnError)
	var (
		expList = fs.String("exp", "all", "comma-separated experiment ids (T1..T7, F1..F8) or 'all'")
		seed    = fs.Uint64("seed", 1, "master seed; fixed seed => identical tables")
		quick   = fs.Bool("quick", false, "smaller sweeps for smoke runs")
		csvDir  = fs.String("csv", "", "directory to also write per-experiment CSVs into")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var selected []harness.Experiment
	if *expList == "all" {
		selected = harness.Experiments()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(id)
			exp, ok := harness.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, exp)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	cfg := harness.RunConfig{Seed: *seed, Quick: *quick}
	for _, exp := range selected {
		start := time.Now()
		table, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		if err := table.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "[%s completed in %v]\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, exp.ID+".csv"))
			if err != nil {
				return err
			}
			if err := table.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
