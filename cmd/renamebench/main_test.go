package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentQuick(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "T4", "-quick", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"== T4:", "claim:", "completed in"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "T99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-exp", "T4", "-quick", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "T4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "n,beta,runs") {
		t.Fatalf("unexpected CSV header: %q", string(data[:40]))
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	render := func() string {
		var out bytes.Buffer
		if err := run([]string{"-exp", "T4", "-quick", "-seed", "9"}, &out); err != nil {
			t.Fatal(err)
		}
		// Strip the timing line, which legitimately varies.
		var kept []string
		for _, line := range strings.Split(out.String(), "\n") {
			if !strings.HasPrefix(line, "[T4 completed") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("same seed produced different tables:\n%s\n---\n%s", a, b)
	}
}
