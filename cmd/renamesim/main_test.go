package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range algorithms() {
		t.Run(alg, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{"-alg", alg, "-n", "64", "-seed", "2"}, &out); err != nil {
				t.Fatal(err)
			}
			got := out.String()
			for _, want := range []string{"named       64/64", "uniqueness  ok", "steps histogram:"} {
				if !strings.Contains(got, want) {
					t.Errorf("%s output missing %q:\n%s", alg, want, got)
				}
			}
		})
	}
}

func TestRunAllAdversaries(t *testing.T) {
	for _, adv := range []string{"random", "roundrobin", "layered", "collision", "laggard"} {
		var out bytes.Buffer
		if err := run([]string{"-adversary", adv, "-n", "32"}, &out); err != nil {
			t.Fatalf("%s: %v", adv, err)
		}
	}
}

func TestRunTrace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "4", "-trace"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WIN") {
		t.Fatalf("trace output missing WIN lines:\n%s", out.String())
	}
}

func TestRunMarkingMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-marking", "-n", "4096", "-seed", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"marking gadget", "layer  0:", "survived"} {
		if !strings.Contains(got, want) {
			t.Errorf("marking output missing %q:\n%s", want, got)
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-alg", "nope"}, &out); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunUnknownAdversary(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-adversary", "nope", "-n", "8"}, &out); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}

func TestRunT0Override(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "128", "-t0", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "named       128/128") {
		t.Fatalf("t0 override run failed:\n%s", out.String())
	}
}
