// Command renamesim runs one simulated renaming execution under a chosen
// adversary and prints a summary (and optionally a per-batch or per-layer
// trace). It is the interactive companion to cmd/renamebench: use it to
// poke at a single configuration.
//
// Usage:
//
//	renamesim -alg rebatching -n 4096 -adversary collision -seed 3
//	renamesim -alg fastadaptive -n 500 -trace
//	renamesim -alg uniform -n 1024 -adversary layered
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "renamesim:", err)
		os.Exit(1)
	}
}

func algorithms() []string {
	return []string{"rebatching", "adaptive", "fastadaptive", "uniform", "segscan", "linscan", "adaptiveuniform"}
}

func buildAlgorithm(name string, n int, eps float64, t0 int) (core.Algorithm, error) {
	switch name {
	case "rebatching":
		return core.NewReBatching(core.ReBatchingConfig{N: n, Epsilon: eps, T0Override: t0})
	case "adaptive":
		return core.NewAdaptive(core.AdaptiveConfig{Epsilon: eps, T0Override: t0})
	case "fastadaptive":
		return core.NewFastAdaptive(core.FastAdaptiveConfig{T0Override: t0})
	case "uniform":
		return baseline.NewUniform(n, eps, 0)
	case "segscan":
		return baseline.NewSegScan(n, eps, 0)
	case "linscan":
		return baseline.NewLinearScan(n)
	case "adaptiveuniform":
		return baseline.NewAdaptiveUniform(2, 0)
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want one of %v)", name, algorithms())
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("renamesim", flag.ContinueOnError)
	var (
		algName = fs.String("alg", "rebatching", fmt.Sprintf("algorithm: %v", algorithms()))
		n       = fs.Int("n", 1024, "number of processes (contention)")
		advName = fs.String("adversary", "random", fmt.Sprintf("scheduler: %v", adversary.Names()))
		seed    = fs.Uint64("seed", 1, "seed (same seed => same execution)")
		eps     = fs.Float64("eps", 1, "namespace slack epsilon")
		t0      = fs.Int("t0", 0, "override Eq.(2)'s t0 (0 = paper constant)")
		trace   = fs.Bool("trace", false, "print every shared-memory step")
		marking = fs.Bool("marking", false, "run the §6 marking gadget instead of an execution")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *marking {
		return runMarking(out, *n, *seed)
	}

	alg, err := buildAlgorithm(*algName, *n, *eps, *t0)
	if err != nil {
		return err
	}
	adv, err := adversary.ByName(*advName)
	if err != nil {
		return err
	}
	var traceFn func(sim.Event)
	if *trace {
		traceFn = func(ev sim.Event) {
			outcome := "lose"
			if ev.Won {
				outcome = "WIN"
			}
			fmt.Fprintf(out, "step %6d  p%-5d probe %-8d %s\n", ev.GlobalStep, ev.PID, ev.Loc, outcome)
		}
	}
	res, err := sim.Run(sim.Config{
		N:         *n,
		Algorithm: alg,
		Adversary: adv,
		Seed:      *seed,
		Trace:     traceFn,
	})
	if err != nil {
		return err
	}
	if err := res.UniqueNames(); err != nil {
		return fmt.Errorf("SAFETY VIOLATION: %w", err)
	}

	named, crashed := 0, 0
	for p := range res.Names {
		if res.Crashed[p] {
			crashed++
		} else if res.Names[p] != sim.NoName {
			named++
		}
	}
	s := stats.SummarizeInts(res.Steps)
	fmt.Fprintf(out, "algorithm   %s (n=%d, adversary=%s, seed=%d)\n", *algName, *n, *advName, *seed)
	fmt.Fprintf(out, "named       %d/%d (crashed %d)\n", named, *n, crashed)
	fmt.Fprintf(out, "uniqueness  ok\n")
	fmt.Fprintf(out, "max name    %d\n", res.MaxName())
	fmt.Fprintf(out, "steps       max=%d p99=%.0f p50=%.0f mean=%.2f\n", int(s.Max), s.P99, s.P50, s.Mean)
	fmt.Fprintf(out, "total steps %d (%.2f per process)\n", res.TotalSteps, float64(res.TotalSteps)/float64(*n))

	// Step histogram: how many processes took s steps.
	hist := make(map[int]int)
	for _, st := range res.Steps {
		hist[st]++
	}
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Fprintln(out, "steps histogram:")
	for _, k := range keys {
		fmt.Fprintf(out, "  %4d steps: %d processes\n", k, hist[k])
	}
	return nil
}

func runMarking(out io.Writer, n int, seed uint64) error {
	res, err := lowerbound.RunMarking(lowerbound.MarkingConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "marking gadget (n=%d, S=%d, seed=%d)\n", n, 2*n, seed)
	fmt.Fprintf(out, "predicted survival horizon l* = %d layers\n", lowerbound.PredictedLayers(n, 2*n))
	for _, st := range res.Layers {
		fmt.Fprintf(out, "layer %2d: marked=%-8d rate=%-12.4g lemma6.6-bound=%.4g\n",
			st.Layer, st.Marked, st.Rate, st.RecurrenceLB)
		if st.Marked == 0 {
			break
		}
	}
	fmt.Fprintf(out, "survived %d layers\n", res.SurvivedLayers())
	return nil
}
