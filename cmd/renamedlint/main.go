// Command renamedlint is the repo's multichecker: it runs the
// internal/lint analyzer suite over the given package patterns and
// exits nonzero on any finding.
//
//	go run ./cmd/renamedlint ./...
//	go run ./cmd/renamedlint -run determinism,lockdiscipline ./lease ./leaseclient
//	go run ./cmd/renamedlint ./internal/lint/testdata/src/determinism  # must fail
//
// Exit codes follow cmd/chaos: 0 clean, 1 findings, 2 harness error.
// The last form — pointing the real binary at a known-bad fixture and
// asserting exit 1 — is how CI proves each analyzer still detects the
// invariant it pins (testdata/ is invisible to ./... wildcards, so the
// clean whole-tree run is unaffected).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		run  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: renamedlint [-run a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-17s %s\n", a.Name, a.Doc)
		}
		return
	}

	var names []string
	if *run != "" {
		names = strings.Split(*run, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}

	diags, err := lint.Run(analyzers, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if err != nil {
		fatal(err)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "renamedlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "renamedlint: %v\n", err)
	os.Exit(2)
}
