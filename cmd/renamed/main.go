// Command renamed (rename-daemon) serves long-lived renaming over HTTP
// and an optional binary protocol: clients acquire a small integer
// identity with a TTL lease, keep it alive with renewals, and release
// it when done. Expired leases are reclaimed by a background sweeper,
// so crashed clients only waste a name for one TTL.
//
// The service is the system layer over this repository's algorithm
// stack: transport adapters (HTTP/JSON and internal/wire/binproto)
// drive one internal/service core, which drives lease.Manager, which
// drives a renaming.Namer — by default the LevelArray, whose constant
// expected probe bound is built for exactly this sustained
// acquire/release traffic.
//
// Server mode:
//
//	renamed -addr :8077 -capacity 4096 -algo levelarray -ttl 30s
//
// With -listen-bin the same lease table is additionally served over the
// length-prefixed binary protocol (persistent pipelined connections,
// the leaseclient "bin://host:port" target scheme) — the fast path for
// heartbeat-dominated traffic:
//
//	renamed -addr :8077 -listen-bin :9077
//
// With -data-dir the lease table is durable: every acquire/renew/release/
// expiry is journaled (CRC-framed, append-only, fsync policy via -fsync)
// and periodically compacted into a snapshot. A crashed or killed server
// restarted from the same directory restores every unexpired lease with
// its fencing token — heartbeating clients never notice — and new tokens
// stay strictly above everything issued before the crash:
//
//	renamed -addr :8077 -capacity 4096 -data-dir /var/lib/renamed -fsync interval
//
// The namer can also be configured as a DSN through the renaming package's
// driver registry, which exposes every algorithm tunable as a string:
//
//	renamed -addr :8077 -namer 'levelarray?n=4096&probes=3'
//	renamed -addr :8077 -namer 'rebatching?n=1024&eps=0.5&t0=6'
//	renamed -addr :8077 -namer 'fastadaptive?n=65536&seed=7'
//
// Endpoints (JSON over POST unless noted):
//
//	POST /v1/acquire        {"owner":"w1","ttl_ms":5000,"meta":{...}}
//	                        -> {"name":17,"token":42,"expires_at_ms":...}
//	POST /v1/acquire_batch  {"owner":"w1","count":8,"ttl_ms":5000,"meta":{...}}
//	                        -> {"leases":[{"name":17,"token":42,...},...]}
//	POST /v1/renew          {"name":17,"token":42,"ttl_ms":5000}
//	POST /v1/renew_batch    {"ttl_ms":5000,"items":[{"name":17,"token":42},...]}
//	                        -> {"results":[{"lease":{...}},{"error":"...","code":"expired"},...]}
//	POST /v1/release        {"name":17,"token":42}
//	POST /v1/release_batch  {"items":[{"name":17,"token":42},...]}
//	                        -> {"results":[{},{"error":"...","code":"unknown_name"},...]}
//	POST /v1/resize         {"capacity":8192}   (elastic namers; see -resizable)
//	                        -> {"capacity":8192,"max_live":8192,"epoch":3,"draining":false,
//	                            "results":[{"component":"namer"},{"component":"lease"}]}
//	GET  /v1/leases         -> {"leases":[...]}
//	GET  /healthz           -> ok
//	GET  /debug/vars        -> expvar counters (renamed_* metrics)
//
// Acquisitions are tied to the request context: a client that disconnects
// mid-acquire cancels the probe sequence instead of holding a name nobody
// will ever renew. Batch acquisition is all-or-nothing — count leases or
// an error with nothing held. Batch renew/release are the opposite, per
// item: heartbeating sessions must learn exactly which leases they lost,
// so results are index-aligned with the request and carry typed codes
// (the leaseclient package wraps all of this in a Session).
//
// Load-generator mode hammers a running server and reports throughput;
// -target accepts either scheme (http://host:port or bin://host:port),
// -batch k switches the acquisition phase to batches of k, and
// -sessions n switches to a standing population of n heartbeating
// holders driven through leaseclient sessions (with -churn c churning
// acquire/release clients alongside):
//
//	renamed -load -target http://localhost:8077 -clients 32 -duration 5s
//	renamed -load -target bin://localhost:9077 -clients 32 -batch 8
//	renamed -load -target bin://localhost:9077 -sessions 10000 -lease-ttl 3s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	renaming "repro"
	"repro/internal/service"
	"repro/lease"
	"repro/lease/persist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "renamed:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("renamed", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8077", "listen address (server mode)")
		listenBin = fs.String("listen-bin", "", "additional listen address for the binary protocol (bin:// targets); empty disables (server mode)")
		capacity  = fs.Int("capacity", 4096, "maximum concurrently leased names (hard cap, enforced; also sizes the namer)")
		algo      = fs.String("algo", "levelarray", "namer algorithm: levelarray, rebatching, adaptive, fastadaptive, uniform")
		resizable = fs.Bool("resizable", false, "build an elastic namer (levelarray only): POST /v1/resize and the binary TResize op retarget capacity online (server mode)")
		namerDSN  = fs.String("namer", "", "namer DSN, e.g. 'levelarray?n=4096&probes=3' or 'rebatching?n=1024&eps=0.5&t0=6'; overrides -algo/-capacity/-seed (see renaming.Open)")
		ttl       = fs.Duration("ttl", 30*time.Second, "default lease TTL")
		sweep     = fs.Duration("sweep", 0, "reclamation sweep interval (0 = TTL/4)")
		seed      = fs.Uint64("seed", 0, "probe-randomness seed (0 = library default)")
		drain     = fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout for in-flight requests (server mode)")
		dataDir   = fs.String("data-dir", "", "durability directory (journal + snapshot); leases survive crash and restart. Empty = in-memory only (server mode)")
		fsyncStr  = fs.String("fsync", "interval", "journal fsync policy with -data-dir: always (durable before reply), interval (bounded loss), never (OS-paced)")
		compact   = fs.Duration("compact-every", 0, "snapshot-compaction check cadence with -data-dir (0 = 1m, negative disables)")
		slowOp    = fs.Duration("slow-op", 250*time.Millisecond, "log a structured slow-operation line (with the request's X-Request-Id) for /v1 handlers slower than this; 0 disables (server mode)")
		pprofOn   = fs.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/ (server mode)")

		load     = fs.Bool("load", false, "run as load generator instead of server")
		target   = fs.String("target", "http://localhost:8077", "server base URL, http:// or bin:// (load mode)")
		clients  = fs.Int("clients", 16, "concurrent clients (load mode)")
		duration = fs.Duration("duration", 5*time.Second, "how long to generate load (load mode)")
		renews   = fs.Int("renews", 2, "renewals per lease before release (load mode)")
		batch    = fs.Int("batch", 1, "names acquired per cycle; > 1 uses batch acquisition (load mode)")

		sessionsN = fs.Int("sessions", 0, "standing heartbeating holders kept alive through leaseclient sessions; > 0 replaces the classic acquire/renew/release cycle (load mode)")
		churn     = fs.Int("churn", 0, "churning acquire/release clients running alongside the -sessions holders (load mode)")
		leaseTTL  = fs.Duration("lease-ttl", 3*time.Second, "requested lease TTL for -sessions holders; heartbeats run at a third of it (load mode)")
	)
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprintf(out, "Usage: renamed [flags]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(out, `
Namer DSNs (-namer) follow the renaming.Open grammar, driver?key=value&...:

  levelarray?n=4096&gamma=1&probes=2     long-lived, O(1) probes under churn
  rebatching?n=1024&eps=0.5&t0=6         one-shot, log log n probes
  adaptive?n=65536&t0=6                  names scale with actual contention
  fastadaptive?n=65536                   O(k log log k) total work
  uniform?n=1024&eps=1                   classical baseline
  linearscan?n=1024                      deterministic baseline

All drivers accept seed=<uint64>, padded=<bool>, counting=<bool>.
`)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *load {
		if *sessionsN > 0 {
			rep, err := runSessionLoad(*target, *sessionsN, *clients, *churn, *leaseTTL, *duration)
			if err != nil {
				return err
			}
			rep.print(out)
			return nil
		}
		rep, err := runLoad(*target, *clients, *renews, *batch, *duration)
		if err != nil {
			return err
		}
		rep.print(out)
		return nil
	}

	capacitySet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "capacity" {
			capacitySet = true
		}
	})
	nm, maxLive, desc, err := buildServerNamer(*namerDSN, *algo, *capacity, capacitySet, *seed, *resizable)
	if err != nil {
		return err
	}
	// MaxLive pins the service to the namer's analyzed capacity: beyond it
	// the probe guarantees lapse, so over-capacity acquires get 503 instead
	// of silently degrading toward the backup scan.
	cfg := lease.Config{TTL: *ttl, SweepInterval: *sweep, MaxLive: maxLive}
	var store *persist.Store
	if *dataDir != "" {
		policy, err := persist.ParsePolicy(*fsyncStr)
		if err != nil {
			return err
		}
		store, err = persist.Open(*dataDir, persist.Options{Fsync: policy, CompactEvery: *compact})
		if err != nil {
			return err
		}
		cfg.Observer = store
	}
	mgr, err := lease.New(nm, cfg)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return err
	}
	// On every exit path, shut the pair down in the durable order: with a
	// store, quiesce WITHOUT draining (the disk keeps the leases for the
	// next boot) and snapshot; without one, Close hands every name back.
	// The graceful path below runs the same idempotent sequence earlier
	// and surfaces its error; this backstop only fires on early error
	// returns, where losing the (near-empty) store still deserves a line.
	defer func() {
		if serr := shutdownManager(mgr, store); serr != nil {
			fmt.Fprintln(os.Stderr, "renamed: shutdown:", serr)
		}
	}()
	if store != nil {
		restored, lapsed, err := mgr.Restore(store.State())
		if err != nil {
			return fmt.Errorf("restore from %s: %w", *dataDir, err)
		}
		st := store.Stats()
		fmt.Fprintf(out, "renamed: recovered %d leases (+%d lapsed while down) from %s: journal replayed %d records, %d torn bytes dropped, fsync %s\n",
			restored, lapsed, *dataDir, st.ReplayedRecords, st.TruncatedBytes, *fsyncStr)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "renamed: serving %s (max live %d, namespace %d, ttl %v) on %s\n",
		desc, maxLive, nm.Namespace(), *ttl, ln.Addr())
	handler := newServer(mgr, store)
	handler.slowThreshold = *slowOp
	if *pprofOn {
		handler.enablePprof()
	}
	// The binary transport serves the SAME core on its own port: one
	// lease table, two wires. serveGraceful closes it during shutdown.
	if *listenBin != "" {
		lnBin, err := net.Listen("tcp", *listenBin)
		if err != nil {
			ln.Close()
			return fmt.Errorf("listen-bin %s: %w", *listenBin, err)
		}
		handler.binSrv = service.NewBinServer(handler.core, service.BinConfig{
			SlowThreshold: *slowOp,
			SlowLog:       handler.slowLog,
		})
		fmt.Fprintf(out, "renamed: serving binary protocol (bin://) on %s\n", lnBin.Addr())
		go func() {
			if err := handler.binSrv.Serve(lnBin); err != nil {
				fmt.Fprintln(os.Stderr, "renamed: binary listener:", err)
			}
		}()
	}
	srv := &http.Server{
		Handler: handler,
		// Slow-client bounds: a peer that stalls mid-headers or idles
		// forever must not pin goroutines and file descriptors while
		// legitimate holders' leases expire.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, drain
	// in-flight requests, then close the manager so every live lease is
	// handed back to the namer instead of orphaned until its TTL.
	// One channel, two receives: the first SIGINT/SIGTERM starts the
	// graceful drain, the second force-quits a hung drain instead of
	// being swallowed for the whole -drain window. The buffer of 2 keeps
	// a rapid double Ctrl-C from dropping the second signal, and a single
	// ordered channel avoids the race a separate late-registered
	// force-quit channel would have (signal.Stop alone does not restore
	// the default disposition — the runtime keeps its handler installed —
	// so the second-signal path must exit explicitly).
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-sigs // first signal: begin the graceful drain
		cancel()
		<-sigs // second signal: force quit
		fmt.Fprintln(os.Stderr, "renamed: second signal, exiting immediately")
		os.Exit(1)
	}()
	return serveGraceful(ctx, srv, ln, mgr, store, *drain, out)
}

// shutdownManager is the one exit sequence for a manager/store pair, on
// every path (graceful drain, listener failure, boot error unwind).
// With a store the leases must SURVIVE: the manager is quiesced without
// draining (Shutdown), then the store writes its final snapshot — the
// next boot replays nothing and restores everything. Without a store the
// classic Close drains every lease back to the namer. Both halves are
// idempotent, so the deferred call after an explicit one is a no-op.
// The returned error is the store's: a failed final flush or snapshot
// means the shutdown was LOSSY (an unflushed journal tail never reached
// disk) and must not masquerade as a clean exit.
func shutdownManager(mgr *lease.Manager, store *persist.Store) error {
	if store == nil {
		return mgr.Close()
	}
	mgr.Shutdown()
	return store.Close()
}

// closeBin shuts the handler's binary listener down, when one is
// attached; its in-flight operations abort with the server context.
func closeBin(srv *http.Server) {
	if h, ok := srv.Handler.(*server); ok && h.binSrv != nil {
		h.binSrv.Close()
	}
}

// serveGraceful runs srv on ln until ctx is cancelled (a shutdown signal
// in production), drains in-flight requests for up to drain, forces any
// stragglers closed, and finally shuts the manager down — preserving the
// lease table on disk when a store is attached, draining it otherwise.
func serveGraceful(ctx context.Context, srv *http.Server, ln net.Listener, mgr *lease.Manager, store *persist.Store, drain time.Duration, out io.Writer) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		// The listener failed on its own; nothing left to drain. A store
		// failure here is just as lossy as on the signal path — say so
		// even when the listener error wins the return value.
		closeBin(srv)
		if serr := shutdownManager(mgr, store); serr != nil {
			fmt.Fprintf(out, "renamed: durable shutdown FAILED: %v\n", serr)
			if err == nil {
				err = serr
			}
		}
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "renamed: shutdown signal, draining for up to %v\n", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(dctx)
	if err != nil {
		// Drain window elapsed with requests still in flight: cut them.
		srv.Close()
	}
	<-serveErr // srv.Serve has returned http.ErrServerClosed
	// Binary connections are persistent — there is no request boundary to
	// drain to, so they are cut once the HTTP drain is over; heartbeating
	// clients redial the new process and retry inside their TTL budget.
	closeBin(srv)
	// In-flight requests are done: quiesce and (with a store) write the
	// shutdown snapshot. A store error here means the final snapshot or
	// flush failed — the shutdown was lossy, so it must fail loudly, not
	// report "complete" and exit 0.
	if serr := shutdownManager(mgr, store); serr != nil {
		fmt.Fprintf(out, "renamed: durable shutdown FAILED: %v\n", serr)
		if err == nil {
			return fmt.Errorf("durable shutdown: %w", serr)
		}
	}
	// The final metrics snapshot: one structured line after the drain and
	// the durable shutdown, so it reflects everything the process did —
	// including the final compaction. The handler is a *server in
	// production; tests that serve a bare handler get no snapshot.
	if h, ok := srv.Handler.(*server); ok {
		h.logFinalSnapshot(out)
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "renamed: shutdown complete")
	return nil
}

// buildNamer constructs the requested namer through the renaming driver
// registry; every registered algorithm is selectable so operators can
// compare them in situ.
func buildNamer(algo string, capacity int, seed uint64, resizable bool) (renaming.Namer, error) {
	dsn := fmt.Sprintf("%s?n=%d", algo, capacity)
	if seed != 0 {
		dsn += fmt.Sprintf("&seed=%d", seed)
	}
	if resizable {
		// Only the levelarray driver reads the key; any other -algo fails
		// loudly through the registry's unused-parameter check.
		dsn += "&resizable"
	}
	return renaming.Open(dsn)
}

// buildServerNamer resolves the -namer/-algo/-capacity/-seed/-resizable
// flags into a namer plus the MaxLive cap the lease manager should
// enforce. A DSN takes precedence; its capacity cap comes from an
// explicit -capacity flag, else from the namer's own analyzed capacity
// (LongLivedNamer), else 0 (uncapped — the namespace is the only limit).
func buildServerNamer(dsn, algo string, capacity int, capacitySet bool, seed uint64, resizable bool) (nm renaming.Namer, maxLive int, desc string, err error) {
	if dsn == "" {
		nm, err = buildNamer(algo, capacity, seed, resizable)
		return nm, capacity, algo, err
	}
	if resizable {
		return nil, 0, "", fmt.Errorf("-resizable does not combine with -namer; put resizable in the DSN (e.g. %q)", dsn+"&resizable")
	}
	nm, err = renaming.Open(dsn)
	if err != nil {
		return nil, 0, "", err
	}
	switch {
	case capacitySet:
		maxLive = capacity
	default:
		if ll, ok := nm.(renaming.LongLivedNamer); ok {
			maxLive = ll.Capacity()
		}
	}
	return nm, maxLive, dsn, nil
}
