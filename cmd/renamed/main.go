// Command renamed (rename-daemon) serves long-lived renaming over HTTP:
// clients acquire a small integer identity with a TTL lease, keep it alive
// with renewals, and release it when done. Expired leases are reclaimed by
// a background sweeper, so crashed clients only waste a name for one TTL.
//
// The service is the system layer over this repository's algorithm stack:
// an HTTP handler drives lease.Manager, which drives a renaming.Namer —
// by default the LevelArray, whose constant expected probe bound is built
// for exactly this sustained acquire/release traffic.
//
// Server mode:
//
//	renamed -addr :8077 -capacity 4096 -algo levelarray -ttl 30s
//
// The namer can also be configured as a DSN through the renaming package's
// driver registry, which exposes every algorithm tunable as a string:
//
//	renamed -addr :8077 -namer 'levelarray?n=4096&probes=3'
//	renamed -addr :8077 -namer 'rebatching?n=1024&eps=0.5&t0=6'
//	renamed -addr :8077 -namer 'fastadaptive?n=65536&seed=7'
//
// Endpoints (JSON over POST unless noted):
//
//	POST /v1/acquire        {"owner":"w1","ttl_ms":5000,"meta":{...}}
//	                        -> {"name":17,"token":42,"expires_at_ms":...}
//	POST /v1/acquire_batch  {"owner":"w1","count":8,"ttl_ms":5000,"meta":{...}}
//	                        -> {"leases":[{"name":17,"token":42,...},...]}
//	POST /v1/renew          {"name":17,"token":42,"ttl_ms":5000}
//	POST /v1/release        {"name":17,"token":42}
//	GET  /v1/leases         -> {"leases":[...]}
//	GET  /healthz           -> ok
//	GET  /debug/vars        -> expvar counters (renamed_* metrics)
//
// Acquisitions are tied to the request context: a client that disconnects
// mid-acquire cancels the probe sequence instead of holding a name nobody
// will ever renew. Batch acquisition is all-or-nothing — count leases or
// an error with nothing held.
//
// Load-generator mode hammers a running server and reports throughput;
// -batch k switches its acquisition phase to /v1/acquire_batch:
//
//	renamed -load -target http://localhost:8077 -clients 32 -duration 5s
//	renamed -load -target http://localhost:8077 -clients 32 -batch 8
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	renaming "repro"
	"repro/lease"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "renamed:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("renamed", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8077", "listen address (server mode)")
		capacity = fs.Int("capacity", 4096, "maximum concurrently leased names (hard cap, enforced; also sizes the namer)")
		algo     = fs.String("algo", "levelarray", "namer algorithm: levelarray, rebatching, adaptive, fastadaptive, uniform")
		namerDSN = fs.String("namer", "", "namer DSN, e.g. 'levelarray?n=4096&probes=3' or 'rebatching?n=1024&eps=0.5&t0=6'; overrides -algo/-capacity/-seed (see renaming.Open)")
		ttl      = fs.Duration("ttl", 30*time.Second, "default lease TTL")
		sweep    = fs.Duration("sweep", 0, "reclamation sweep interval (0 = TTL/4)")
		seed     = fs.Uint64("seed", 0, "probe-randomness seed (0 = library default)")
		drain    = fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout for in-flight requests (server mode)")

		load     = fs.Bool("load", false, "run as load generator instead of server")
		target   = fs.String("target", "http://localhost:8077", "server base URL (load mode)")
		clients  = fs.Int("clients", 16, "concurrent clients (load mode)")
		duration = fs.Duration("duration", 5*time.Second, "how long to generate load (load mode)")
		renews   = fs.Int("renews", 2, "renewals per lease before release (load mode)")
		batch    = fs.Int("batch", 1, "names acquired per cycle; > 1 uses the /v1/acquire_batch endpoint (load mode)")
	)
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprintf(out, "Usage: renamed [flags]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(out, `
Namer DSNs (-namer) follow the renaming.Open grammar, driver?key=value&...:

  levelarray?n=4096&gamma=1&probes=2     long-lived, O(1) probes under churn
  rebatching?n=1024&eps=0.5&t0=6         one-shot, log log n probes
  adaptive?n=65536&t0=6                  names scale with actual contention
  fastadaptive?n=65536                   O(k log log k) total work
  uniform?n=1024&eps=1                   classical baseline
  linearscan?n=1024                      deterministic baseline

All drivers accept seed=<uint64>, padded=<bool>, counting=<bool>.
`)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *load {
		rep, err := runLoad(*target, *clients, *renews, *batch, *duration)
		if err != nil {
			return err
		}
		rep.print(out)
		return nil
	}

	capacitySet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "capacity" {
			capacitySet = true
		}
	})
	nm, maxLive, desc, err := buildServerNamer(*namerDSN, *algo, *capacity, capacitySet, *seed)
	if err != nil {
		return err
	}
	// MaxLive pins the service to the namer's analyzed capacity: beyond it
	// the probe guarantees lapse, so over-capacity acquires get 503 instead
	// of silently degrading toward the backup scan.
	mgr, err := lease.New(nm, lease.Config{TTL: *ttl, SweepInterval: *sweep, MaxLive: maxLive})
	if err != nil {
		return err
	}
	defer mgr.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "renamed: serving %s (max live %d, namespace %d, ttl %v) on %s\n",
		desc, maxLive, nm.Namespace(), *ttl, ln.Addr())
	srv := &http.Server{
		Handler: newServer(mgr),
		// Slow-client bounds: a peer that stalls mid-headers or idles
		// forever must not pin goroutines and file descriptors while
		// legitimate holders' leases expire.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, drain
	// in-flight requests, then close the manager so every live lease is
	// handed back to the namer instead of orphaned until its TTL.
	// One channel, two receives: the first SIGINT/SIGTERM starts the
	// graceful drain, the second force-quits a hung drain instead of
	// being swallowed for the whole -drain window. The buffer of 2 keeps
	// a rapid double Ctrl-C from dropping the second signal, and a single
	// ordered channel avoids the race a separate late-registered
	// force-quit channel would have (signal.Stop alone does not restore
	// the default disposition — the runtime keeps its handler installed —
	// so the second-signal path must exit explicitly).
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-sigs // first signal: begin the graceful drain
		cancel()
		<-sigs // second signal: force quit
		fmt.Fprintln(os.Stderr, "renamed: second signal, exiting immediately")
		os.Exit(1)
	}()
	return serveGraceful(ctx, srv, ln, mgr, *drain, out)
}

// serveGraceful runs srv on ln until ctx is cancelled (a shutdown signal
// in production), drains in-flight requests for up to drain, forces any
// stragglers closed, and finally closes mgr.
func serveGraceful(ctx context.Context, srv *http.Server, ln net.Listener, mgr *lease.Manager, drain time.Duration, out io.Writer) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		// The listener failed on its own; nothing left to drain.
		mgr.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "renamed: shutdown signal, draining for up to %v\n", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(dctx)
	if err != nil {
		// Drain window elapsed with requests still in flight: cut them.
		srv.Close()
	}
	<-serveErr  // srv.Serve has returned http.ErrServerClosed
	mgr.Close() // always nil: namer release failures go to Metrics.ReclaimFailed
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "renamed: shutdown complete")
	return nil
}

// buildNamer constructs the requested namer through the renaming driver
// registry; every registered algorithm is selectable so operators can
// compare them in situ.
func buildNamer(algo string, capacity int, seed uint64) (renaming.Namer, error) {
	dsn := fmt.Sprintf("%s?n=%d", algo, capacity)
	if seed != 0 {
		dsn += fmt.Sprintf("&seed=%d", seed)
	}
	return renaming.Open(dsn)
}

// buildServerNamer resolves the -namer/-algo/-capacity/-seed flags into a
// namer plus the MaxLive cap the lease manager should enforce. A DSN takes
// precedence; its capacity cap comes from an explicit -capacity flag, else
// from the namer's own analyzed capacity (LongLivedNamer), else 0
// (uncapped — the namespace is the only limit).
func buildServerNamer(dsn, algo string, capacity int, capacitySet bool, seed uint64) (nm renaming.Namer, maxLive int, desc string, err error) {
	if dsn == "" {
		nm, err = buildNamer(algo, capacity, seed)
		return nm, capacity, algo, err
	}
	nm, err = renaming.Open(dsn)
	if err != nil {
		return nil, 0, "", err
	}
	switch {
	case capacitySet:
		maxLive = capacity
	default:
		if ll, ok := nm.(renaming.LongLivedNamer); ok {
			maxLive = ll.Capacity()
		}
	}
	return nm, maxLive, dsn, nil
}

// server is the HTTP front end over a lease.Manager.
type server struct {
	mgr   *lease.Manager
	mux   *http.ServeMux
	start time.Time

	// request counters, exported through expvar-style /debug/vars.
	requests atomic.Int64
	errors   atomic.Int64

	// per-operation latency histograms, exported as renamed_latency.
	lat struct {
		acquire, acquireBatch, renew, release latencyHist
	}
}

// newServer wires the routes and metrics for one manager.
func newServer(mgr *lease.Manager) *server {
	s := &server{mgr: mgr, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/acquire", timed(&s.lat.acquire, s.handleAcquire))
	s.mux.HandleFunc("POST /v1/acquire_batch", timed(&s.lat.acquireBatch, s.handleAcquireBatch))
	s.mux.HandleFunc("POST /v1/renew", timed(&s.lat.renew, s.handleRenew))
	s.mux.HandleFunc("POST /v1/release", timed(&s.lat.release, s.handleRelease))
	s.mux.HandleFunc("GET /v1/leases", s.handleLeases)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux.Handle("GET /debug/vars", s.varsHandler())
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// timed records a handler's wall-clock latency into h.
func timed(h *latencyHist, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		fn(w, r)
		h.Observe(time.Since(start))
	}
}

// varsHandler serves the expvar JSON format with the service's own gauges
// under a private map, avoiding the process-global expvar registry so
// multiple servers (tests) can coexist.
func (s *server) varsHandler() http.Handler {
	vars := expvar.Map{}
	vars.Set("renamed_requests", expvar.Func(func() any { return s.requests.Load() }))
	vars.Set("renamed_errors", expvar.Func(func() any { return s.errors.Load() }))
	vars.Set("renamed_uptime_seconds", expvar.Func(func() any { return time.Since(s.start).Seconds() }))
	vars.Set("renamed_lease", expvar.Func(func() any { return s.mgr.Metrics() }))
	vars.Set("renamed_latency", expvar.Func(func() any {
		return map[string]histSummary{
			"acquire":       s.lat.acquire.summary(),
			"acquire_batch": s.lat.acquireBatch.summary(),
			"renew":         s.lat.renew.summary(),
			"release":       s.lat.release.summary(),
		}
	}))
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{%q: %s}\n", "renamed", vars.String())
	})
}

// Wire types. Durations travel as integer milliseconds, instants as Unix
// milliseconds, so clients need no time-format parsing.
type acquireRequest struct {
	Owner string            `json:"owner"`
	TTLms int64             `json:"ttl_ms,omitempty"`
	Meta  map[string]string `json:"meta,omitempty"`
}

type acquireBatchRequest struct {
	Owner string            `json:"owner"`
	Count int               `json:"count"`
	TTLms int64             `json:"ttl_ms,omitempty"`
	Meta  map[string]string `json:"meta,omitempty"`
}

type leasesJSON struct {
	Leases []leaseJSON `json:"leases"`
}

type renewRequest struct {
	Name  int    `json:"name"`
	Token uint64 `json:"token"`
	TTLms int64  `json:"ttl_ms,omitempty"`
}

type releaseRequest struct {
	Name  int    `json:"name"`
	Token uint64 `json:"token"`
}

type leaseJSON struct {
	Name        int               `json:"name"`
	Token       uint64            `json:"token,omitempty"`
	Owner       string            `json:"owner,omitempty"`
	ExpiresAtMs int64             `json:"expires_at_ms"`
	Meta        map[string]string `json:"meta,omitempty"`
}

func toJSON(l lease.Lease) leaseJSON {
	return leaseJSON{
		Name:        l.Name,
		Token:       l.Token,
		Owner:       l.Owner,
		ExpiresAtMs: l.ExpiresAt.UnixMilli(),
		Meta:        l.Meta,
	}
}

type errorJSON struct {
	Error string `json:"error"`
}

// ttlFromMs converts a client-supplied millisecond count to a Duration
// without overflowing: a wrapped multiplication would turn "longest
// possible lease" into a negative value the manager reads as "default
// TTL". Saturated requests still get capped at the manager's MaxTTL.
func ttlFromMs(ms int64) time.Duration {
	if ms <= 0 {
		return 0 // manager applies its default TTL
	}
	const maxMs = int64(math.MaxInt64) / int64(time.Millisecond)
	if ms > maxMs {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ms) * time.Millisecond
}

func (s *server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req acquireRequest
	if !s.decode(w, r, &req) {
		return
	}
	// The request context ties the probe sequence to the client: a peer
	// that disconnects mid-acquire cancels instead of leaving behind a
	// lease nobody will renew.
	l, err := s.mgr.AcquireCtx(r.Context(), req.Owner, ttlFromMs(req.TTLms), req.Meta)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, toJSON(l))
}

func (s *server) handleAcquireBatch(w http.ResponseWriter, r *http.Request) {
	var req acquireBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	ls, err := s.mgr.AcquireBatch(r.Context(), req.Owner, req.Count, ttlFromMs(req.TTLms), req.Meta)
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := leasesJSON{Leases: make([]leaseJSON, len(ls))}
	for i, l := range ls {
		out.Leases[i] = toJSON(l)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if !s.decode(w, r, &req) {
		return
	}
	l, err := s.mgr.Renew(req.Name, req.Token, ttlFromMs(req.TTLms))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, toJSON(l))
}

func (s *server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.mgr.Release(req.Name, req.Token); err != nil {
		s.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleLeases(w http.ResponseWriter, _ *http.Request) {
	ls := s.mgr.Leases()
	out := leasesJSON{Leases: make([]leaseJSON, len(ls))}
	for i, l := range ls {
		entry := toJSON(l)
		// Fencing tokens are capabilities: only the holder (who got the
		// token from acquire) may renew or release. Publishing them on a
		// read endpoint would let any client hijack any lease.
		entry.Token = 0
		out.Leases[i] = entry
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(into); err != nil {
		s.errors.Add(1)
		s.writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// writeError maps lease/namer errors onto HTTP status codes:
// exhaustion is 503 (retryable), stale tokens are 409, expiry is 410,
// unknown names are 404, bad batch parameters are 400, and an acquisition
// the client itself abandoned is 408 (the response is usually unread —
// the status mostly serves the error counter and access logs).
func (s *server) writeError(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, renaming.ErrNamespaceExhausted), errors.Is(err, lease.ErrCapacity):
		status = http.StatusServiceUnavailable
	case errors.Is(err, renaming.ErrCancelled):
		status = http.StatusRequestTimeout
	case errors.Is(err, renaming.ErrBadConfig):
		status = http.StatusBadRequest
	case errors.Is(err, lease.ErrWrongToken):
		status = http.StatusConflict
	case errors.Is(err, lease.ErrExpired):
		status = http.StatusGone
	case errors.Is(err, lease.ErrUnknownName):
		status = http.StatusNotFound
	case errors.Is(err, lease.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, errorJSON{Error: err.Error()})
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// latSummary is one operation's client-observed latency in a load report.
type latSummary struct {
	P50, P99 time.Duration
}

// loadReport aggregates a load-generator run. Duration is the configured
// run length; Elapsed is the measured wall time, which runs past Duration
// because workers finish their in-flight acquire→renew→release cycle
// after the deadline. Throughput is computed over Elapsed — dividing by
// the configured duration overstated ops/sec by the overshoot.
type loadReport struct {
	Clients    int
	Batch      int // names acquired per cycle; > 1 uses /v1/acquire_batch
	Duration   time.Duration
	Elapsed    time.Duration
	Acquires   int64
	Renews     int64
	Releases   int64
	Failures   int64
	OpsPerSec  float64
	AcquireLat latSummary
	RenewLat   latSummary
	ReleaseLat latSummary
}

func (r loadReport) print(out io.Writer) {
	fmt.Fprintf(out, "load: %d clients, batch %d, configured %v, ran %v\n",
		r.Clients, r.Batch, r.Duration, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  acquires  %d\n  renews    %d\n  releases  %d\n  failures  %d\n",
		r.Acquires, r.Renews, r.Releases, r.Failures)
	fmt.Fprintf(out, "  latency (p50/p99) acquire %v/%v, renew %v/%v, release %v/%v\n",
		r.AcquireLat.P50, r.AcquireLat.P99, r.RenewLat.P50, r.RenewLat.P99,
		r.ReleaseLat.P50, r.ReleaseLat.P99)
	fmt.Fprintf(out, "  throughput %.0f ops/sec\n", r.OpsPerSec)
}

// runLoad drives acquire -> renews -> release cycles against target from
// `clients` goroutines for the given duration. batch > 1 acquires through
// /v1/acquire_batch (batch leases per cycle, each renewed and released
// individually), measuring what batching saves on the acquisition path.
func runLoad(target string, clients, renewsPerLease, batch int, duration time.Duration) (loadReport, error) {
	if batch < 1 {
		batch = 1
	}
	// Fail fast if the server is unreachable, rather than reporting a run
	// with nothing but failures.
	resp, err := http.Get(target + "/healthz")
	if err != nil {
		return loadReport{}, fmt.Errorf("target unreachable: %w", err)
	}
	resp.Body.Close()

	var acquires, renews, releases, failures atomic.Int64
	var acquireLat, renewLat, releaseLat latencyHist
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			owner := fmt.Sprintf("loadgen-%d", id)
			timedPost := func(h *latencyHist, url string, body, out any) bool {
				t0 := time.Now()
				ok := post(client, url, body, out)
				if ok {
					// Failures are counted separately; recording them
					// here would let client-timeout constants (5s)
					// masquerade as the op's p99.
					h.Observe(time.Since(t0))
				}
				return ok
			}
			for time.Now().Before(deadline) {
				// If the server granted leases but the response failed
				// mid-read, the names stay leased until their TTL lapses;
				// we can't release what we couldn't parse, so it's counted
				// as a failure and left to the server's sweeper.
				var cycle []leaseJSON
				if batch > 1 {
					var granted leasesJSON
					if !timedPost(&acquireLat, target+"/v1/acquire_batch",
						acquireBatchRequest{Owner: owner, Count: batch}, &granted) {
						failures.Add(1)
						continue
					}
					acquires.Add(int64(len(granted.Leases)))
					cycle = granted.Leases
				} else {
					var l leaseJSON
					if !timedPost(&acquireLat, target+"/v1/acquire", acquireRequest{Owner: owner}, &l) {
						failures.Add(1)
						continue
					}
					acquires.Add(1)
					cycle = []leaseJSON{l}
				}
				for _, l := range cycle {
					ok := true
					for r := 0; r < renewsPerLease && ok; r++ {
						if timedPost(&renewLat, target+"/v1/renew", renewRequest{Name: l.Name, Token: l.Token}, &l) {
							renews.Add(1)
						} else {
							failures.Add(1)
							ok = false
						}
					}
					if timedPost(&releaseLat, target+"/v1/release", releaseRequest{Name: l.Name, Token: l.Token}, nil) {
						releases.Add(1)
					} else {
						failures.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	// Workers keep finishing their in-flight cycle past the deadline;
	// throughput over the configured duration would count those ops
	// against a window they didn't run in.
	elapsed := time.Since(start)
	total := acquires.Load() + renews.Load() + releases.Load()
	quantiles := func(h *latencyHist) latSummary {
		return latSummary{P50: h.Quantile(0.50), P99: h.Quantile(0.99)}
	}
	return loadReport{
		Clients:    clients,
		Batch:      batch,
		Duration:   duration,
		Elapsed:    elapsed,
		Acquires:   acquires.Load(),
		Renews:     renews.Load(),
		Releases:   releases.Load(),
		Failures:   failures.Load(),
		OpsPerSec:  float64(total) / elapsed.Seconds(),
		AcquireLat: quantiles(&acquireLat),
		RenewLat:   quantiles(&renewLat),
		ReleaseLat: quantiles(&releaseLat),
	}, nil
}

// post sends one JSON request and decodes the response into out (if
// non-nil), reporting success.
func post(client *http.Client, url string, body, out any) bool {
	buf, err := json.Marshal(body)
	if err != nil {
		return false
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out) == nil
	}
	io.Copy(io.Discard, resp.Body)
	return true
}
