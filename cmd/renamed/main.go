// Command renamed (rename-daemon) serves long-lived renaming over HTTP:
// clients acquire a small integer identity with a TTL lease, keep it alive
// with renewals, and release it when done. Expired leases are reclaimed by
// a background sweeper, so crashed clients only waste a name for one TTL.
//
// The service is the system layer over this repository's algorithm stack:
// an HTTP handler drives lease.Manager, which drives a renaming.Namer —
// by default the LevelArray, whose constant expected probe bound is built
// for exactly this sustained acquire/release traffic.
//
// Server mode:
//
//	renamed -addr :8077 -capacity 4096 -algo levelarray -ttl 30s
//
// With -data-dir the lease table is durable: every acquire/renew/release/
// expiry is journaled (CRC-framed, append-only, fsync policy via -fsync)
// and periodically compacted into a snapshot. A crashed or killed server
// restarted from the same directory restores every unexpired lease with
// its fencing token — heartbeating clients never notice — and new tokens
// stay strictly above everything issued before the crash:
//
//	renamed -addr :8077 -capacity 4096 -data-dir /var/lib/renamed -fsync interval
//
// The namer can also be configured as a DSN through the renaming package's
// driver registry, which exposes every algorithm tunable as a string:
//
//	renamed -addr :8077 -namer 'levelarray?n=4096&probes=3'
//	renamed -addr :8077 -namer 'rebatching?n=1024&eps=0.5&t0=6'
//	renamed -addr :8077 -namer 'fastadaptive?n=65536&seed=7'
//
// Endpoints (JSON over POST unless noted):
//
//	POST /v1/acquire        {"owner":"w1","ttl_ms":5000,"meta":{...}}
//	                        -> {"name":17,"token":42,"expires_at_ms":...}
//	POST /v1/acquire_batch  {"owner":"w1","count":8,"ttl_ms":5000,"meta":{...}}
//	                        -> {"leases":[{"name":17,"token":42,...},...]}
//	POST /v1/renew          {"name":17,"token":42,"ttl_ms":5000}
//	POST /v1/renew_batch    {"ttl_ms":5000,"items":[{"name":17,"token":42},...]}
//	                        -> {"results":[{"lease":{...}},{"error":"...","code":"expired"},...]}
//	POST /v1/release        {"name":17,"token":42}
//	POST /v1/release_batch  {"items":[{"name":17,"token":42},...]}
//	                        -> {"results":[{},{"error":"...","code":"unknown_name"},...]}
//	GET  /v1/leases         -> {"leases":[...]}
//	GET  /healthz           -> ok
//	GET  /debug/vars        -> expvar counters (renamed_* metrics)
//
// Acquisitions are tied to the request context: a client that disconnects
// mid-acquire cancels the probe sequence instead of holding a name nobody
// will ever renew. Batch acquisition is all-or-nothing — count leases or
// an error with nothing held. Batch renew/release are the opposite, per
// item: heartbeating sessions must learn exactly which leases they lost,
// so results are index-aligned with the request and carry typed codes
// (the leaseclient package wraps all of this in a Session).
//
// Load-generator mode hammers a running server and reports throughput;
// -batch k switches its acquisition phase to /v1/acquire_batch, and
// -sessions n switches to a standing population of n heartbeating
// holders driven through leaseclient sessions (with -churn c churning
// acquire/release clients alongside):
//
//	renamed -load -target http://localhost:8077 -clients 32 -duration 5s
//	renamed -load -target http://localhost:8077 -clients 32 -batch 8
//	renamed -load -target http://localhost:8077 -sessions 10000 -lease-ttl 3s
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	renaming "repro"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/lease"
	"repro/lease/persist"
	"repro/leaseclient"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "renamed:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("renamed", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8077", "listen address (server mode)")
		capacity = fs.Int("capacity", 4096, "maximum concurrently leased names (hard cap, enforced; also sizes the namer)")
		algo     = fs.String("algo", "levelarray", "namer algorithm: levelarray, rebatching, adaptive, fastadaptive, uniform")
		namerDSN = fs.String("namer", "", "namer DSN, e.g. 'levelarray?n=4096&probes=3' or 'rebatching?n=1024&eps=0.5&t0=6'; overrides -algo/-capacity/-seed (see renaming.Open)")
		ttl      = fs.Duration("ttl", 30*time.Second, "default lease TTL")
		sweep    = fs.Duration("sweep", 0, "reclamation sweep interval (0 = TTL/4)")
		seed     = fs.Uint64("seed", 0, "probe-randomness seed (0 = library default)")
		drain    = fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout for in-flight requests (server mode)")
		dataDir  = fs.String("data-dir", "", "durability directory (journal + snapshot); leases survive crash and restart. Empty = in-memory only (server mode)")
		fsyncStr = fs.String("fsync", "interval", "journal fsync policy with -data-dir: always (durable before reply), interval (bounded loss), never (OS-paced)")
		compact  = fs.Duration("compact-every", 0, "snapshot-compaction check cadence with -data-dir (0 = 1m, negative disables)")
		slowOp   = fs.Duration("slow-op", 250*time.Millisecond, "log a structured slow-operation line (with the request's X-Request-Id) for /v1 handlers slower than this; 0 disables (server mode)")
		pprofOn  = fs.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/ (server mode)")

		load     = fs.Bool("load", false, "run as load generator instead of server")
		target   = fs.String("target", "http://localhost:8077", "server base URL (load mode)")
		clients  = fs.Int("clients", 16, "concurrent clients (load mode)")
		duration = fs.Duration("duration", 5*time.Second, "how long to generate load (load mode)")
		renews   = fs.Int("renews", 2, "renewals per lease before release (load mode)")
		batch    = fs.Int("batch", 1, "names acquired per cycle; > 1 uses the /v1/acquire_batch endpoint (load mode)")

		sessionsN = fs.Int("sessions", 0, "standing heartbeating holders kept alive through leaseclient sessions; > 0 replaces the classic acquire/renew/release cycle (load mode)")
		churn     = fs.Int("churn", 0, "churning acquire/release clients running alongside the -sessions holders (load mode)")
		leaseTTL  = fs.Duration("lease-ttl", 3*time.Second, "requested lease TTL for -sessions holders; heartbeats run at a third of it (load mode)")
	)
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprintf(out, "Usage: renamed [flags]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(out, `
Namer DSNs (-namer) follow the renaming.Open grammar, driver?key=value&...:

  levelarray?n=4096&gamma=1&probes=2     long-lived, O(1) probes under churn
  rebatching?n=1024&eps=0.5&t0=6         one-shot, log log n probes
  adaptive?n=65536&t0=6                  names scale with actual contention
  fastadaptive?n=65536                   O(k log log k) total work
  uniform?n=1024&eps=1                   classical baseline
  linearscan?n=1024                      deterministic baseline

All drivers accept seed=<uint64>, padded=<bool>, counting=<bool>.
`)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *load {
		if *sessionsN > 0 {
			rep, err := runSessionLoad(*target, *sessionsN, *clients, *churn, *leaseTTL, *duration)
			if err != nil {
				return err
			}
			rep.print(out)
			return nil
		}
		rep, err := runLoad(*target, *clients, *renews, *batch, *duration)
		if err != nil {
			return err
		}
		rep.print(out)
		return nil
	}

	capacitySet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "capacity" {
			capacitySet = true
		}
	})
	nm, maxLive, desc, err := buildServerNamer(*namerDSN, *algo, *capacity, capacitySet, *seed)
	if err != nil {
		return err
	}
	// MaxLive pins the service to the namer's analyzed capacity: beyond it
	// the probe guarantees lapse, so over-capacity acquires get 503 instead
	// of silently degrading toward the backup scan.
	cfg := lease.Config{TTL: *ttl, SweepInterval: *sweep, MaxLive: maxLive}
	var store *persist.Store
	if *dataDir != "" {
		policy, err := persist.ParsePolicy(*fsyncStr)
		if err != nil {
			return err
		}
		store, err = persist.Open(*dataDir, persist.Options{Fsync: policy, CompactEvery: *compact})
		if err != nil {
			return err
		}
		cfg.Observer = store
	}
	mgr, err := lease.New(nm, cfg)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return err
	}
	// On every exit path, shut the pair down in the durable order: with a
	// store, quiesce WITHOUT draining (the disk keeps the leases for the
	// next boot) and snapshot; without one, Close hands every name back.
	// The graceful path below runs the same idempotent sequence earlier
	// and surfaces its error; this backstop only fires on early error
	// returns, where losing the (near-empty) store still deserves a line.
	defer func() {
		if serr := shutdownManager(mgr, store); serr != nil {
			fmt.Fprintln(os.Stderr, "renamed: shutdown:", serr)
		}
	}()
	if store != nil {
		restored, lapsed, err := mgr.Restore(store.State())
		if err != nil {
			return fmt.Errorf("restore from %s: %w", *dataDir, err)
		}
		st := store.Stats()
		fmt.Fprintf(out, "renamed: recovered %d leases (+%d lapsed while down) from %s: journal replayed %d records, %d torn bytes dropped, fsync %s\n",
			restored, lapsed, *dataDir, st.ReplayedRecords, st.TruncatedBytes, *fsyncStr)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "renamed: serving %s (max live %d, namespace %d, ttl %v) on %s\n",
		desc, maxLive, nm.Namespace(), *ttl, ln.Addr())
	handler := newServer(mgr, store)
	handler.slowThreshold = *slowOp
	if *pprofOn {
		handler.enablePprof()
	}
	srv := &http.Server{
		Handler: handler,
		// Slow-client bounds: a peer that stalls mid-headers or idles
		// forever must not pin goroutines and file descriptors while
		// legitimate holders' leases expire.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, drain
	// in-flight requests, then close the manager so every live lease is
	// handed back to the namer instead of orphaned until its TTL.
	// One channel, two receives: the first SIGINT/SIGTERM starts the
	// graceful drain, the second force-quits a hung drain instead of
	// being swallowed for the whole -drain window. The buffer of 2 keeps
	// a rapid double Ctrl-C from dropping the second signal, and a single
	// ordered channel avoids the race a separate late-registered
	// force-quit channel would have (signal.Stop alone does not restore
	// the default disposition — the runtime keeps its handler installed —
	// so the second-signal path must exit explicitly).
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-sigs // first signal: begin the graceful drain
		cancel()
		<-sigs // second signal: force quit
		fmt.Fprintln(os.Stderr, "renamed: second signal, exiting immediately")
		os.Exit(1)
	}()
	return serveGraceful(ctx, srv, ln, mgr, store, *drain, out)
}

// shutdownManager is the one exit sequence for a manager/store pair, on
// every path (graceful drain, listener failure, boot error unwind).
// With a store the leases must SURVIVE: the manager is quiesced without
// draining (Shutdown), then the store writes its final snapshot — the
// next boot replays nothing and restores everything. Without a store the
// classic Close drains every lease back to the namer. Both halves are
// idempotent, so the deferred call after an explicit one is a no-op.
// The returned error is the store's: a failed final flush or snapshot
// means the shutdown was LOSSY (an unflushed journal tail never reached
// disk) and must not masquerade as a clean exit.
func shutdownManager(mgr *lease.Manager, store *persist.Store) error {
	if store == nil {
		return mgr.Close()
	}
	mgr.Shutdown()
	return store.Close()
}

// serveGraceful runs srv on ln until ctx is cancelled (a shutdown signal
// in production), drains in-flight requests for up to drain, forces any
// stragglers closed, and finally shuts the manager down — preserving the
// lease table on disk when a store is attached, draining it otherwise.
func serveGraceful(ctx context.Context, srv *http.Server, ln net.Listener, mgr *lease.Manager, store *persist.Store, drain time.Duration, out io.Writer) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		// The listener failed on its own; nothing left to drain. A store
		// failure here is just as lossy as on the signal path — say so
		// even when the listener error wins the return value.
		if serr := shutdownManager(mgr, store); serr != nil {
			fmt.Fprintf(out, "renamed: durable shutdown FAILED: %v\n", serr)
			if err == nil {
				err = serr
			}
		}
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "renamed: shutdown signal, draining for up to %v\n", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(dctx)
	if err != nil {
		// Drain window elapsed with requests still in flight: cut them.
		srv.Close()
	}
	<-serveErr // srv.Serve has returned http.ErrServerClosed
	// In-flight requests are done: quiesce and (with a store) write the
	// shutdown snapshot. A store error here means the final snapshot or
	// flush failed — the shutdown was lossy, so it must fail loudly, not
	// report "complete" and exit 0.
	if serr := shutdownManager(mgr, store); serr != nil {
		fmt.Fprintf(out, "renamed: durable shutdown FAILED: %v\n", serr)
		if err == nil {
			return fmt.Errorf("durable shutdown: %w", serr)
		}
	}
	// The final metrics snapshot: one structured line after the drain and
	// the durable shutdown, so it reflects everything the process did —
	// including the final compaction. The handler is a *server in
	// production; tests that serve a bare handler get no snapshot.
	if h, ok := srv.Handler.(*server); ok {
		h.logFinalSnapshot(out)
	}
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "renamed: shutdown complete")
	return nil
}

// logFinalSnapshot emits the shutdown metrics snapshot: one structured
// log line with the counters an operator wants in the last lines before
// the process exits (and that a log pipeline can parse without scraping
// /metrics mid-shutdown). Safe after Close/Shutdown — every source here
// reads atomics or mutex-guarded snapshots.
func (s *server) logFinalSnapshot(out io.Writer) {
	lm := s.mgr.Metrics()
	attrs := []any{
		"uptime_s", time.Since(s.start).Seconds(),
		"requests", s.requests.Load(),
		"errors", s.errors.Load(),
		"acquired", lm.Acquired,
		"renewed", lm.Renewed,
		"released", lm.Released,
		"expired", lm.Expired,
		"rejected", lm.Rejected,
		"live", lm.Live,
		"renew_p99_us", summarize(s.lat.renewBatch).P99Us,
	}
	if s.store != nil {
		st := s.store.Stats()
		attrs = append(attrs,
			"persist_appends", st.Appends,
			"persist_fsyncs", st.Syncs,
			"persist_compactions", st.Compactions,
			"persist_journal_bytes", st.JournalBytes,
			"persist_live", st.Live,
		)
		if st.Err != nil {
			attrs = append(attrs, "persist_err", st.Err.Error())
		}
	}
	slog.New(slog.NewTextHandler(out, nil)).Info("final metrics snapshot", attrs...)
}

// buildNamer constructs the requested namer through the renaming driver
// registry; every registered algorithm is selectable so operators can
// compare them in situ.
func buildNamer(algo string, capacity int, seed uint64) (renaming.Namer, error) {
	dsn := fmt.Sprintf("%s?n=%d", algo, capacity)
	if seed != 0 {
		dsn += fmt.Sprintf("&seed=%d", seed)
	}
	return renaming.Open(dsn)
}

// buildServerNamer resolves the -namer/-algo/-capacity/-seed flags into a
// namer plus the MaxLive cap the lease manager should enforce. A DSN takes
// precedence; its capacity cap comes from an explicit -capacity flag, else
// from the namer's own analyzed capacity (LongLivedNamer), else 0
// (uncapped — the namespace is the only limit).
func buildServerNamer(dsn, algo string, capacity int, capacitySet bool, seed uint64) (nm renaming.Namer, maxLive int, desc string, err error) {
	if dsn == "" {
		nm, err = buildNamer(algo, capacity, seed)
		return nm, capacity, algo, err
	}
	nm, err = renaming.Open(dsn)
	if err != nil {
		return nil, 0, "", err
	}
	switch {
	case capacitySet:
		maxLive = capacity
	default:
		if ll, ok := nm.(renaming.LongLivedNamer); ok {
			maxLive = ll.Capacity()
		}
	}
	return nm, maxLive, dsn, nil
}

// server is the HTTP front end over a lease.Manager.
type server struct {
	mgr   *lease.Manager
	mux   *http.ServeMux
	start time.Time
	// store is the optional durability layer; non-nil only with -data-dir.
	// The handlers never touch it (the manager's observer hook does the
	// journaling); it is here for the persistence gauges.
	store *persist.Store

	// met is the Prometheus surface (GET /metrics); the /debug/vars
	// expvar view reads the same histograms, so the two cannot disagree.
	met *serverMetrics

	// request counters, exported through expvar-style /debug/vars.
	requests atomic.Int64
	errors   atomic.Int64

	// per-operation latency histograms: one telemetry.Histogram per /v1
	// op, shared between /metrics (cumulative buckets) and /debug/vars
	// (µs quantile summaries).
	lat struct {
		acquire, acquireBatch, renew, renewBatch, release, releaseBatch *telemetry.Histogram
	}

	// slowThreshold gates the structured slow-operation log line; 0
	// disables it. slowLog defaults to stderr; tests redirect it.
	slowThreshold time.Duration
	slowLog       *slog.Logger
}

// newServer wires the routes and metrics for one manager. store may be
// nil (in-memory mode); when set, the persistence series register too.
func newServer(mgr *lease.Manager, store *persist.Store) *server {
	s := &server{
		mgr:     mgr,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		store:   store,
		slowLog: slog.New(slog.NewTextHandler(os.Stderr, nil)),
	}
	s.met = newServerMetrics(s)
	s.lat.acquire = s.timed("acquire", s.handleAcquire)
	s.lat.acquireBatch = s.timed("acquire_batch", s.handleAcquireBatch)
	s.lat.renew = s.timed("renew", s.handleRenew)
	s.lat.renewBatch = s.timed("renew_batch", s.handleRenewBatch)
	s.lat.release = s.timed("release", s.handleRelease)
	s.lat.releaseBatch = s.timed("release_batch", s.handleReleaseBatch)
	s.mux.HandleFunc("GET /v1/leases", s.handleLeases)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux.Handle("GET /debug/vars", s.varsHandler())
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentType)
		s.met.reg.WritePrometheus(w)
	})
	return s
}

// enablePprof mounts net/http/pprof on the server's private mux (the
// package's init-time handlers live on http.DefaultServeMux, which this
// server never serves). Profiling endpoints cost CPU and reveal internal
// state, so they are opt-in via -pprof.
func (s *server) enablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	// Echo the client's request ID on every response so either side of a
	// slow or failed call can quote the same handle; mint one for bare
	// callers (curl) so the slow-op log never carries an empty id. The
	// mint is written back onto the request header, which is where
	// timed() reads it from.
	rid := r.Header.Get(wire.HeaderRequestID)
	if rid == "" {
		rid = wire.NewRequestID()
		r.Header.Set(wire.HeaderRequestID, rid)
	}
	w.Header().Set(wire.HeaderRequestID, rid)
	s.mux.ServeHTTP(w, r)
}

// timed mounts fn as "POST /v1/<op>" with the per-op instrumentation:
// request counter, latency histogram (returned, shared with /debug/vars)
// and the slow-operation log line carrying the request's X-Request-Id.
func (s *server) timed(op string, fn http.HandlerFunc) *telemetry.Histogram {
	h := s.met.latency.With(op)
	reqs := s.met.requests.With(op)
	s.mux.HandleFunc("POST /v1/"+op, func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		start := time.Now()
		fn(w, r)
		d := time.Since(start)
		h.Observe(d)
		if s.slowThreshold > 0 && d >= s.slowThreshold {
			s.slowLog.Warn("slow operation",
				"op", op,
				"duration_ms", float64(d)/float64(time.Millisecond),
				"request_id", r.Header.Get(wire.HeaderRequestID))
		}
	})
	return h
}

// varsHandler serves the expvar JSON format with the service's own gauges
// under a private map, avoiding the process-global expvar registry so
// multiple servers (tests) can coexist.
func (s *server) varsHandler() http.Handler {
	vars := expvar.Map{}
	vars.Set("renamed_requests", expvar.Func(func() any { return s.requests.Load() }))
	vars.Set("renamed_errors", expvar.Func(func() any { return s.errors.Load() }))
	vars.Set("renamed_uptime_seconds", expvar.Func(func() any { return time.Since(s.start).Seconds() }))
	vars.Set("renamed_lease", expvar.Func(func() any { return s.mgr.Metrics() }))
	vars.Set("renamed_persist", expvar.Func(func() any {
		// s.store is assigned after newServer returns (run() wires it),
		// so the nil check must live here in the closure, not at
		// registration time; null means "no -data-dir".
		if s.store == nil {
			return nil
		}
		st := s.store.Stats()
		// Stats.Err is an error (not JSON-friendly); flatten it.
		errStr := ""
		if st.Err != nil {
			errStr = st.Err.Error()
		}
		return map[string]any{
			"recovered_leases": st.RecoveredLeases,
			"replayed_records": st.ReplayedRecords,
			"truncated_bytes":  st.TruncatedBytes,
			"recovery_ms":      float64(st.RecoveryDuration) / float64(time.Millisecond),
			"appends":          st.Appends,
			"syncs":            st.Syncs,
			"compactions":      st.Compactions,
			"journal_bytes":    st.JournalBytes,
			"journal_records":  st.JournalRecords,
			"live":             st.Live,
			"err":              errStr,
		}
	}))
	vars.Set("renamed_latency", expvar.Func(func() any {
		return map[string]histSummary{
			"acquire":       summarize(s.lat.acquire),
			"acquire_batch": summarize(s.lat.acquireBatch),
			"renew":         summarize(s.lat.renew),
			"renew_batch":   summarize(s.lat.renewBatch),
			"release":       summarize(s.lat.release),
			"release_batch": summarize(s.lat.releaseBatch),
		}
	}))
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{%q: %s}\n", "renamed", vars.String())
	})
}

// The JSON wire types live in internal/wire, shared with the leaseclient
// session layer so server and client cannot drift.

func (s *server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req wire.AcquireRequest
	if !s.decode(w, r, &req) {
		return
	}
	// The request context ties the probe sequence to the client: a peer
	// that disconnects mid-acquire cancels instead of leaving behind a
	// lease nobody will renew.
	l, err := s.mgr.AcquireCtx(r.Context(), req.Owner, wire.TTLFromMs(req.TTLms), req.Meta)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, wire.FromLease(l))
}

func (s *server) handleAcquireBatch(w http.ResponseWriter, r *http.Request) {
	var req wire.AcquireBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	ls, err := s.mgr.AcquireBatch(r.Context(), req.Owner, req.Count, wire.TTLFromMs(req.TTLms), req.Meta)
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := wire.Leases{Leases: make([]wire.Lease, len(ls))}
	for i, l := range ls {
		out.Leases[i] = wire.FromLease(l)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req wire.RenewRequest
	if !s.decode(w, r, &req) {
		return
	}
	l, err := s.mgr.Renew(req.Name, req.Token, wire.TTLFromMs(req.TTLms))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, wire.FromLease(l))
}

// handleRenewBatch is the heartbeat hot path: one request renews every
// lease a session holds through one lock visit per involved stripe. The
// response is per-item — 200 even when individual items failed — because
// a session must learn exactly which leases it lost; only a request that
// could not be processed at all (malformed body, closed manager, context
// already done) gets a non-2xx status.
func (s *server) handleRenewBatch(w http.ResponseWriter, r *http.Request) {
	var req wire.RenewBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	items := make([]lease.RenewItem, len(req.Items))
	for i, it := range req.Items {
		items[i] = lease.RenewItem{Name: it.Name, Token: it.Token}
	}
	// The request context is threaded through: a client that disconnects
	// mid-batch stops the stripe walk instead of renewing leases for a
	// session that is gone.
	results, err := s.mgr.RenewBatch(r.Context(), items, wire.TTLFromMs(req.TTLms))
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := wire.BatchResults{Results: make([]wire.BatchResult, len(results))}
	verdicts := s.met.verdicts["renew_batch"]
	for i := range results {
		if rerr := results[i].Err; rerr != nil {
			code := wire.CodeFor(rerr)
			verdicts[code].Inc()
			out.Results[i] = wire.BatchResult{Error: rerr.Error(), Code: code}
			continue
		}
		verdicts["ok"].Inc()
		wl := wire.FromLease(results[i].Lease)
		out.Results[i].Lease = &wl
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req wire.ReleaseRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.mgr.Release(req.Name, req.Token); err != nil {
		s.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleReleaseBatch ends many leases in one request with per-item
// outcomes, mirroring handleRenewBatch — the shutdown path of a session
// holding hundreds of names must not take hundreds of round trips.
func (s *server) handleReleaseBatch(w http.ResponseWriter, r *http.Request) {
	var req wire.ReleaseBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	items := make([]lease.ReleaseItem, len(req.Items))
	for i, it := range req.Items {
		items[i] = lease.ReleaseItem{Name: it.Name, Token: it.Token}
	}
	results, err := s.mgr.ReleaseBatch(r.Context(), items)
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := wire.BatchResults{Results: make([]wire.BatchResult, len(results))}
	verdicts := s.met.verdicts["release_batch"]
	for i := range results {
		if rerr := results[i].Err; rerr != nil {
			code := wire.CodeFor(rerr)
			verdicts[code].Inc()
			out.Results[i] = wire.BatchResult{Error: rerr.Error(), Code: code}
			continue
		}
		verdicts["ok"].Inc()
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *server) handleLeases(w http.ResponseWriter, _ *http.Request) {
	ls := s.mgr.Leases()
	out := wire.Leases{Leases: make([]wire.Lease, len(ls))}
	for i, l := range ls {
		entry := wire.FromLease(l)
		// Fencing tokens are capabilities: only the holder (who got the
		// token from acquire) may renew or release. Publishing them on a
		// read endpoint would let any client hijack any lease.
		entry.Token = 0
		out.Leases[i] = entry
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(into); err != nil {
		s.errors.Add(1)
		s.writeJSON(w, http.StatusBadRequest, wire.Error{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// writeError maps lease/namer errors onto HTTP status codes:
// exhaustion is 503 (retryable), stale tokens are 409, expiry is 410,
// unknown names are 404, bad batch parameters are 400, and an acquisition
// the client itself abandoned is 408 (the response is usually unread —
// the status mostly serves the error counter and access logs).
func (s *server) writeError(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, renaming.ErrNamespaceExhausted), errors.Is(err, lease.ErrCapacity):
		status = http.StatusServiceUnavailable
	case errors.Is(err, renaming.ErrCancelled):
		status = http.StatusRequestTimeout
	case errors.Is(err, renaming.ErrBadConfig):
		status = http.StatusBadRequest
	case errors.Is(err, lease.ErrWrongToken):
		status = http.StatusConflict
	case errors.Is(err, lease.ErrExpired):
		status = http.StatusGone
	case errors.Is(err, lease.ErrUnknownName):
		status = http.StatusNotFound
	case errors.Is(err, lease.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, wire.Error{Error: err.Error()})
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// latSummary is one operation's client-observed latency in a load report.
type latSummary struct {
	P50, P99 time.Duration
}

// loadReport aggregates a load-generator run. Duration is the configured
// run length; Elapsed is the measured wall time, which runs past Duration
// because workers finish their in-flight acquire→renew→release cycle
// after the deadline. Throughput is computed over Elapsed — dividing by
// the configured duration overstated ops/sec by the overshoot.
type loadReport struct {
	Clients    int
	Batch      int // names acquired per cycle; > 1 uses /v1/acquire_batch
	Duration   time.Duration
	Elapsed    time.Duration
	Acquires   int64
	Renews     int64
	Releases   int64
	Failures   int64
	OpsPerSec  float64
	AcquireLat latSummary
	RenewLat   latSummary
	ReleaseLat latSummary
}

func (r loadReport) print(out io.Writer) {
	fmt.Fprintf(out, "load: %d clients, batch %d, configured %v, ran %v\n",
		r.Clients, r.Batch, r.Duration, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  acquires  %d\n  renews    %d\n  releases  %d\n  failures  %d\n",
		r.Acquires, r.Renews, r.Releases, r.Failures)
	fmt.Fprintf(out, "  latency (p50/p99) acquire %v/%v, renew %v/%v, release %v/%v\n",
		r.AcquireLat.P50, r.AcquireLat.P99, r.RenewLat.P50, r.RenewLat.P99,
		r.ReleaseLat.P50, r.ReleaseLat.P99)
	fmt.Fprintf(out, "  throughput %.0f ops/sec\n", r.OpsPerSec)
}

// runLoad drives acquire -> renews -> release cycles against target from
// `clients` goroutines for the given duration. batch > 1 acquires through
// /v1/acquire_batch (batch leases per cycle, each renewed and released
// individually), measuring what batching saves on the acquisition path.
func runLoad(target string, clients, renewsPerLease, batch int, duration time.Duration) (loadReport, error) {
	if batch < 1 {
		batch = 1
	}
	// Fail fast if the server is unreachable, rather than reporting a run
	// with nothing but failures.
	resp, err := http.Get(target + "/healthz")
	if err != nil {
		return loadReport{}, fmt.Errorf("target unreachable: %w", err)
	}
	resp.Body.Close()

	var acquires, renews, releases, failures atomic.Int64
	acquireLat, renewLat, releaseLat := telemetry.NewHistogram(), telemetry.NewHistogram(), telemetry.NewHistogram()
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			owner := fmt.Sprintf("loadgen-%d", id)
			timedPost := func(h *telemetry.Histogram, url string, body, out any) bool {
				t0 := time.Now()
				ok := post(client, url, body, out)
				if ok {
					// Failures are counted separately; recording them
					// here would let client-timeout constants (5s)
					// masquerade as the op's p99.
					h.Observe(time.Since(t0))
				}
				return ok
			}
			for time.Now().Before(deadline) {
				// If the server granted leases but the response failed
				// mid-read, the names stay leased until their TTL lapses;
				// we can't release what we couldn't parse, so it's counted
				// as a failure and left to the server's sweeper.
				var cycle []wire.Lease
				if batch > 1 {
					var granted wire.Leases
					if !timedPost(acquireLat, target+"/v1/acquire_batch",
						wire.AcquireBatchRequest{Owner: owner, Count: batch}, &granted) {
						failures.Add(1)
						continue
					}
					acquires.Add(int64(len(granted.Leases)))
					cycle = granted.Leases
				} else {
					var l wire.Lease
					if !timedPost(acquireLat, target+"/v1/acquire", wire.AcquireRequest{Owner: owner}, &l) {
						failures.Add(1)
						continue
					}
					acquires.Add(1)
					cycle = []wire.Lease{l}
				}
				for _, l := range cycle {
					ok := true
					for r := 0; r < renewsPerLease && ok; r++ {
						if timedPost(renewLat, target+"/v1/renew", wire.RenewRequest{Name: l.Name, Token: l.Token}, &l) {
							renews.Add(1)
						} else {
							failures.Add(1)
							ok = false
						}
					}
					if timedPost(releaseLat, target+"/v1/release", wire.ReleaseRequest{Name: l.Name, Token: l.Token}, nil) {
						releases.Add(1)
					} else {
						failures.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	// Workers keep finishing their in-flight cycle past the deadline;
	// throughput over the configured duration would count those ops
	// against a window they didn't run in.
	elapsed := time.Since(start)
	total := acquires.Load() + renews.Load() + releases.Load()
	quantiles := func(h *telemetry.Histogram) latSummary {
		return latSummary{P50: h.Quantile(0.50), P99: h.Quantile(0.99)}
	}
	return loadReport{
		Clients:    clients,
		Batch:      batch,
		Duration:   duration,
		Elapsed:    elapsed,
		Acquires:   acquires.Load(),
		Renews:     renews.Load(),
		Releases:   releases.Load(),
		Failures:   failures.Load(),
		OpsPerSec:  float64(total) / elapsed.Seconds(),
		AcquireLat: quantiles(acquireLat),
		RenewLat:   quantiles(renewLat),
		ReleaseLat: quantiles(releaseLat),
	}, nil
}

// sessionReport aggregates a -sessions load run: a standing population
// of heartbeating holders (the renewal-dominated traffic shape a name
// service actually serves) with optional churn clients alongside.
type sessionReport struct {
	Holders  int // heartbeating leases, spread across Sessions
	Sessions int
	Churners int
	Duration time.Duration
	Elapsed  time.Duration

	Heartbeats int64  // renew_batch round trips
	Renews     int64  // individual lease renewals across them
	Retries    int64  // heartbeat rounds that hit transport failures
	Lost       int64  // leases lost mid-run (must be 0 with on-time renewals)
	MaxToken   uint64 // highest fencing token observed across the holders

	// TransportErrs and SessionP99 come straight from the sessions' own
	// Stats — the callback-free counters a monitoring scrape would read —
	// rather than from loadgen-side instrumentation. SessionP99 is the
	// WORST per-session renew_batch p99, so one laggard session can't
	// hide inside a fleet-wide aggregate.
	TransportErrs int64
	SessionP99    time.Duration

	// MaxToken is what makes the loadgen a crash-restart harness: run it
	// with -sessions against a -data-dir server, kill -9 the server mid-
	// run, restart it from the same directory, and the report must show
	// lost 0 (every restored lease kept renewing on its old token, with
	// retries absorbing the downtime) while any lease acquired AFTER the
	// restart carries a token strictly above this watermark — the
	// monotonic-fencing guarantee, checkable from outside with one curl.

	ChurnAcquires int64
	ChurnReleases int64
	ChurnFailures int64

	RenewLat   latSummary // per renew_batch round trip, client-observed
	RenewsPerS float64
}

func (r sessionReport) print(out io.Writer) {
	fmt.Fprintf(out, "session load: %d holders over %d sessions, %d churners, configured %v, ran %v\n",
		r.Holders, r.Sessions, r.Churners, r.Duration, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  heartbeats %d (renew_batch round trips)\n  renews     %d\n  retries    %d\n  lost       %d\n  max token  %d\n",
		r.Heartbeats, r.Renews, r.Retries, r.Lost, r.MaxToken)
	fmt.Fprintf(out, "  churn      %d acquires, %d releases, %d failures\n",
		r.ChurnAcquires, r.ChurnReleases, r.ChurnFailures)
	fmt.Fprintf(out, "  renew_batch latency p50/p99 %v/%v\n", r.RenewLat.P50, r.RenewLat.P99)
	fmt.Fprintf(out, "  session stats %d transport errors, worst-session p99 %v\n",
		r.TransportErrs, r.SessionP99)
	fmt.Fprintf(out, "  renewal throughput %.0f renews/sec\n", r.RenewsPerS)
}

// runSessionLoad keeps `holders` leases alive for `duration` through
// `clients` leaseclient sessions (each heartbeating its share in
// coalesced renew_batch calls at a third of leaseTTL), while `churn`
// workers cycle acquire→release alongside. Lost must come back 0: a
// holder population whose renewals are on time never loses a lease.
func runSessionLoad(target string, holders, clients, churn int, leaseTTL, duration time.Duration) (sessionReport, error) {
	if clients < 1 {
		clients = 1
	}
	if clients > holders {
		clients = holders
	}
	resp, err := http.Get(target + "/healthz")
	if err != nil {
		return sessionReport{}, fmt.Errorf("target unreachable: %w", err)
	}
	resp.Body.Close()

	var lost atomic.Int64
	renewLat := telemetry.NewHistogram()
	sessions := make([]*leaseclient.Session, 0, clients)
	closeAll := func() {
		var wg sync.WaitGroup
		for _, s := range sessions {
			wg.Add(1)
			go func(s *leaseclient.Session) { defer wg.Done(); s.Close() }(s)
		}
		wg.Wait()
	}
	for c := 0; c < clients; c++ {
		s, err := leaseclient.NewSession(leaseclient.Config{
			Target: target,
			Owner:  fmt.Sprintf("sessgen-%d", c),
			TTL:    leaseTTL,
			OnLost: func(int, error) { lost.Add(1) },
			OnHeartbeat: func(_ int, d time.Duration, err error) {
				if err == nil {
					renewLat.Observe(d)
				}
			},
		})
		if err != nil {
			closeAll()
			return sessionReport{}, err
		}
		sessions = append(sessions, s)
		// Spread the holders across sessions, remainder to the first few.
		share := holders / clients
		if c < holders%clients {
			share++
		}
		if share == 0 {
			continue
		}
		if _, err := s.AcquireN(context.Background(), share); err != nil {
			closeAll()
			return sessionReport{}, fmt.Errorf("session %d acquiring %d holders: %w", c, share, err)
		}
	}

	// The measured window opens only after every session is populated:
	// setup (N acquire_batch round trips) must not dilute the renewal
	// throughput, and the window closes BEFORE teardown for the same
	// reason — the classic loadgen had exactly this measured-vs-configured
	// window bug on its elapsed time. Counters are baselined here so
	// heartbeats that fired while later sessions were still acquiring
	// don't count against the window either.
	var baseHeartbeats, baseRenews, baseRetries int64
	for _, s := range sessions {
		st := s.Stats()
		baseHeartbeats += st.Heartbeats
		baseRenews += st.Renewed
		baseRetries += st.Retries
	}
	start := time.Now()

	// Churn traffic rides alongside: acquire → release, one lease at a
	// time, sharing the server with the heartbeat storm.
	var churnAcquires, churnReleases, churnFailures atomic.Int64
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < churn; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			owner := fmt.Sprintf("churn-%d", id)
			for time.Now().Before(deadline) {
				var l wire.Lease
				if !post(client, target+"/v1/acquire", wire.AcquireRequest{Owner: owner}, &l) {
					churnFailures.Add(1)
					continue
				}
				churnAcquires.Add(1)
				if post(client, target+"/v1/release", wire.ReleaseRequest{Name: l.Name, Token: l.Token}, nil) {
					churnReleases.Add(1)
				} else {
					churnFailures.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(time.Until(deadline))
	wg.Wait()

	// Snapshot the counters and close the window at the same instant,
	// before teardown: closeAll's release_batch round trips are not
	// renewal throughput. Lost is tallied through OnLost; the
	// per-session Stats cover the rest.
	var heartbeats, renews, retries, transportErrs int64
	var maxToken uint64
	var sessP99 time.Duration
	for _, s := range sessions {
		st := s.Stats()
		heartbeats += st.Heartbeats
		renews += st.Renewed
		retries += st.Retries
		transportErrs += st.TransportErrors
		if st.HeartbeatLatency.P99 > sessP99 {
			sessP99 = st.HeartbeatLatency.P99
		}
		for _, l := range s.Leases() {
			if l.Token > maxToken {
				maxToken = l.Token
			}
		}
	}
	heartbeats -= baseHeartbeats
	renews -= baseRenews
	retries -= baseRetries
	elapsed := time.Since(start)
	closeAll()
	return sessionReport{
		Holders:       holders,
		Sessions:      len(sessions),
		Churners:      churn,
		Duration:      duration,
		Elapsed:       elapsed,
		Heartbeats:    heartbeats,
		Renews:        renews,
		Retries:       retries,
		Lost:          lost.Load(),
		MaxToken:      maxToken,
		TransportErrs: transportErrs,
		SessionP99:    sessP99,
		ChurnAcquires: churnAcquires.Load(),
		ChurnReleases: churnReleases.Load(),
		ChurnFailures: churnFailures.Load(),
		RenewLat:      latSummary{P50: renewLat.Quantile(0.50), P99: renewLat.Quantile(0.99)},
		RenewsPerS:    float64(renews) / elapsed.Seconds(),
	}, nil
}

// post sends one JSON request and decodes the response into out (if
// non-nil), reporting success.
func post(client *http.Client, url string, body, out any) bool {
	buf, err := json.Marshal(body)
	if err != nil {
		return false
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out) == nil
	}
	io.Copy(io.Discard, resp.Body)
	return true
}
