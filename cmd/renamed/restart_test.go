package main

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	renaming "repro"
	"repro/lease"
	"repro/lease/persist"
	"repro/leaseclient"
)

// bootPersistentServer assembles the server the way run() does with
// -data-dir: store → manager(observer) → Restore → HTTP handler, served
// on the caller's listener so a "restarted" server can reuse the address.
func bootPersistentServer(t *testing.T, dir string, ln net.Listener) (*lease.Manager, *persist.Store, *http.Server) {
	t.Helper()
	st, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	nm, err := renaming.NewLevelArray(64)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := lease.New(nm, lease.Config{TTL: 5 * time.Second, SweepInterval: -1, Observer: st})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.Restore(st.State()); err != nil {
		t.Fatal(err)
	}
	h := newServer(mgr, st)
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return mgr, st, srv
}

// TestServerRestartSessionsSurvive is the end-to-end crash acceptance
// test: a heartbeating leaseclient session rides through a hard server
// "crash" (listener cut, manager abandoned un-Closed, store crashed with
// no snapshot) and restart from the same -data-dir on the same address —
// with ZERO OnLost callbacks, the restored tokens still renewing, and
// post-restart tokens strictly above every pre-crash one.
func TestServerRestartSessionsSurvive(t *testing.T) {
	dir := t.TempDir()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	_, st1, srv1 := bootPersistentServer(t, dir, ln1)

	var lost atomic.Int64
	sess, err := leaseclient.NewSession(leaseclient.Config{
		Target: "http://" + addr,
		Owner:  "restart-test",
		TTL:    5 * time.Second,
		OnLost: func(name int, err error) {
			lost.Add(1)
			t.Logf("OnLost(%d): %v", name, err)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	held, err := sess.AcquireN(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	var preCrashMax uint64
	for _, l := range held {
		if l.Token > preCrashMax {
			preCrashMax = l.Token
		}
	}

	// Hard crash: cut every connection and the listener, abandon the
	// manager WITHOUT Close (no drain, no releases), crash the store
	// (no flush, no snapshot — the journal alone survives).
	srv1.Close()
	if err := st1.Crash(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same address from the same directory.
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mgr2, st2, srv2 := bootPersistentServer(t, dir, ln2)
	defer func() {
		srv2.Close()
		mgr2.Shutdown()
		st2.Close()
	}()

	if got := mgr2.Metrics().Live; got != 10 {
		t.Fatalf("restarted server restored %d live leases, want 10", got)
	}

	// The session must resume renewing the restored tokens: watch its
	// Renewed counter climb past a full post-restart heartbeat round.
	base := sess.Stats().Renewed
	deadline := time.Now().Add(15 * time.Second)
	for sess.Stats().Renewed < base+10 {
		if time.Now().After(deadline) {
			t.Fatalf("session renewed %d leases after restart, want >= %d more", sess.Stats().Renewed-base, 10)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := lost.Load(); got != 0 {
		t.Fatalf("%d OnLost callbacks across the restart, want 0", got)
	}
	if got := len(sess.Leases()); got != 10 {
		t.Fatalf("session holds %d leases after restart, want 10", got)
	}

	// Fencing monotonicity across the crash: a fresh post-restart lease
	// outranks every pre-crash token.
	fresh, err := sess.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Token <= preCrashMax {
		t.Fatalf("post-restart token %d not above pre-crash watermark %d", fresh.Token, preCrashMax)
	}
}
