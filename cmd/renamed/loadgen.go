package main

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/leaseclient"
)

// The load generator drives a running server through the leaseclient
// transport layer, so one binary exercises both wires: -target
// http://host:port speaks JSON, -target bin://host:port speaks the
// binary protocol over a persistent connection per worker. Everything
// above the transport — the cycle shape, the counters, the reports —
// is wire-agnostic.

// latSummary is one operation's client-observed latency in a load report.
type latSummary struct {
	P50, P99 time.Duration
}

// loadReport aggregates a load-generator run. Duration is the configured
// run length; Elapsed is the measured wall time, which runs past Duration
// because workers finish their in-flight acquire→renew→release cycle
// after the deadline. Throughput is computed over Elapsed — dividing by
// the configured duration overstated ops/sec by the overshoot.
type loadReport struct {
	Clients    int
	Batch      int // names acquired per cycle; > 1 uses batch acquisition
	Duration   time.Duration
	Elapsed    time.Duration
	Acquires   int64
	Renews     int64
	Releases   int64
	Failures   int64
	OpsPerSec  float64
	AcquireLat latSummary
	RenewLat   latSummary
	ReleaseLat latSummary
}

func (r loadReport) print(out io.Writer) {
	fmt.Fprintf(out, "load: %d clients, batch %d, configured %v, ran %v\n",
		r.Clients, r.Batch, r.Duration, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  acquires  %d\n  renews    %d\n  releases  %d\n  failures  %d\n",
		r.Acquires, r.Renews, r.Releases, r.Failures)
	fmt.Fprintf(out, "  latency (p50/p99) acquire %v/%v, renew %v/%v, release %v/%v\n",
		r.AcquireLat.P50, r.AcquireLat.P99, r.RenewLat.P50, r.RenewLat.P99,
		r.ReleaseLat.P50, r.ReleaseLat.P99)
	fmt.Fprintf(out, "  throughput %.0f ops/sec\n", r.OpsPerSec)
}

// pingTarget fails fast if the server is unreachable, rather than
// reporting a run with nothing but failures. It also validates the
// target scheme before any workers start.
func pingTarget(target string) error {
	tr, err := leaseclient.NewTransport(target)
	if err != nil {
		return err
	}
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tr.Ping(ctx); err != nil {
		return fmt.Errorf("target unreachable: %w", err)
	}
	return nil
}

// runLoad drives acquire -> renews -> release cycles against target from
// `clients` goroutines for the given duration. batch > 1 acquires through
// batch acquisition (batch leases per cycle, each renewed and released
// individually), measuring what batching saves on the acquisition path.
// Each worker owns one transport: over bin:// that is one persistent
// connection reused for every round trip.
func runLoad(target string, clients, renewsPerLease, batch int, duration time.Duration) (loadReport, error) {
	if batch < 1 {
		batch = 1
	}
	if err := pingTarget(target); err != nil {
		return loadReport{}, err
	}

	var acquires, renews, releases, failures atomic.Int64
	acquireLat, renewLat, releaseLat := telemetry.NewHistogram(), telemetry.NewHistogram(), telemetry.NewHistogram()
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tr, err := leaseclient.NewTransport(target)
			if err != nil {
				failures.Add(1)
				return
			}
			defer tr.Close()
			ctx := context.Background()
			owner := fmt.Sprintf("loadgen-%d", id)
			timed := func(h *telemetry.Histogram, f func() error) bool {
				t0 := time.Now()
				if f() != nil {
					// Failures are counted separately; recording them
					// here would let client-timeout constants (5s)
					// masquerade as the op's p99.
					return false
				}
				h.Observe(time.Since(t0))
				return true
			}
			for time.Now().Before(deadline) {
				// If the server granted leases but the response failed
				// mid-read, the names stay leased until their TTL lapses;
				// we can't release what we couldn't parse, so it's counted
				// as a failure and left to the server's sweeper.
				var cycle []wire.Lease
				if batch > 1 {
					var granted wire.Leases
					if !timed(acquireLat, func() error {
						var err error
						granted, err = tr.AcquireBatch(ctx, &wire.AcquireBatchRequest{Owner: owner, Count: batch})
						return err
					}) {
						failures.Add(1)
						continue
					}
					acquires.Add(int64(len(granted.Leases)))
					cycle = granted.Leases
				} else {
					var l wire.Lease
					if !timed(acquireLat, func() error {
						var err error
						l, err = tr.Acquire(ctx, &wire.AcquireRequest{Owner: owner})
						return err
					}) {
						failures.Add(1)
						continue
					}
					acquires.Add(1)
					cycle = []wire.Lease{l}
				}
				for _, l := range cycle {
					ok := true
					for r := 0; r < renewsPerLease && ok; r++ {
						if timed(renewLat, func() error {
							renewed, err := tr.Renew(ctx, &wire.RenewRequest{Name: l.Name, Token: l.Token})
							if err == nil {
								l = renewed
							}
							return err
						}) {
							renews.Add(1)
						} else {
							failures.Add(1)
							ok = false
						}
					}
					if timed(releaseLat, func() error {
						return tr.Release(ctx, &wire.ReleaseRequest{Name: l.Name, Token: l.Token})
					}) {
						releases.Add(1)
					} else {
						failures.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	// Workers keep finishing their in-flight cycle past the deadline;
	// throughput over the configured duration would count those ops
	// against a window they didn't run in.
	elapsed := time.Since(start)
	total := acquires.Load() + renews.Load() + releases.Load()
	quantiles := func(h *telemetry.Histogram) latSummary {
		return latSummary{P50: h.Quantile(0.50), P99: h.Quantile(0.99)}
	}
	return loadReport{
		Clients:    clients,
		Batch:      batch,
		Duration:   duration,
		Elapsed:    elapsed,
		Acquires:   acquires.Load(),
		Renews:     renews.Load(),
		Releases:   releases.Load(),
		Failures:   failures.Load(),
		OpsPerSec:  float64(total) / elapsed.Seconds(),
		AcquireLat: quantiles(acquireLat),
		RenewLat:   quantiles(renewLat),
		ReleaseLat: quantiles(releaseLat),
	}, nil
}

// sessionReport aggregates a -sessions load run: a standing population
// of heartbeating holders (the renewal-dominated traffic shape a name
// service actually serves) with optional churn clients alongside.
type sessionReport struct {
	Holders  int // heartbeating leases, spread across Sessions
	Sessions int
	Churners int
	Duration time.Duration
	Elapsed  time.Duration

	Heartbeats int64  // renew_batch round trips
	Renews     int64  // individual lease renewals across them
	Retries    int64  // heartbeat rounds that hit transport failures
	Lost       int64  // leases lost mid-run (must be 0 with on-time renewals)
	MaxToken   uint64 // highest fencing token observed across the holders

	// TransportErrs and SessionP99 come straight from the sessions' own
	// Stats — the callback-free counters a monitoring scrape would read —
	// rather than from loadgen-side instrumentation. SessionP99 is the
	// WORST per-session renew_batch p99, so one laggard session can't
	// hide inside a fleet-wide aggregate.
	TransportErrs int64
	SessionP99    time.Duration

	// MaxToken is what makes the loadgen a crash-restart harness: run it
	// with -sessions against a -data-dir server, kill -9 the server mid-
	// run, restart it from the same directory, and the report must show
	// lost 0 (every restored lease kept renewing on its old token, with
	// retries absorbing the downtime) while any lease acquired AFTER the
	// restart carries a token strictly above this watermark — the
	// monotonic-fencing guarantee, checkable from outside with one curl.

	ChurnAcquires int64
	ChurnReleases int64
	ChurnFailures int64

	RenewLat   latSummary // per renew_batch round trip, client-observed
	RenewsPerS float64
}

func (r sessionReport) print(out io.Writer) {
	fmt.Fprintf(out, "session load: %d holders over %d sessions, %d churners, configured %v, ran %v\n",
		r.Holders, r.Sessions, r.Churners, r.Duration, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  heartbeats %d (renew_batch round trips)\n  renews     %d\n  retries    %d\n  lost       %d\n  max token  %d\n",
		r.Heartbeats, r.Renews, r.Retries, r.Lost, r.MaxToken)
	fmt.Fprintf(out, "  churn      %d acquires, %d releases, %d failures\n",
		r.ChurnAcquires, r.ChurnReleases, r.ChurnFailures)
	fmt.Fprintf(out, "  renew_batch latency p50/p99 %v/%v\n", r.RenewLat.P50, r.RenewLat.P99)
	fmt.Fprintf(out, "  session stats %d transport errors, worst-session p99 %v\n",
		r.TransportErrs, r.SessionP99)
	fmt.Fprintf(out, "  renewal throughput %.0f renews/sec\n", r.RenewsPerS)
}

// runSessionLoad keeps `holders` leases alive for `duration` through
// `clients` leaseclient sessions (each heartbeating its share in
// coalesced renew_batch calls at a third of leaseTTL), while `churn`
// workers cycle acquire→release alongside. Lost must come back 0: a
// holder population whose renewals are on time never loses a lease.
// The target scheme picks the wire for sessions and churners alike.
func runSessionLoad(target string, holders, clients, churn int, leaseTTL, duration time.Duration) (sessionReport, error) {
	if clients < 1 {
		clients = 1
	}
	if clients > holders {
		clients = holders
	}
	if err := pingTarget(target); err != nil {
		return sessionReport{}, err
	}

	var lost atomic.Int64
	renewLat := telemetry.NewHistogram()
	sessions := make([]*leaseclient.Session, 0, clients)
	closeAll := func() {
		var wg sync.WaitGroup
		for _, s := range sessions {
			wg.Add(1)
			go func(s *leaseclient.Session) { defer wg.Done(); s.Close() }(s)
		}
		wg.Wait()
	}
	for c := 0; c < clients; c++ {
		s, err := leaseclient.NewSession(leaseclient.Config{
			Target: target,
			Owner:  fmt.Sprintf("sessgen-%d", c),
			TTL:    leaseTTL,
			OnLost: func(int, error) { lost.Add(1) },
			OnHeartbeat: func(_ int, d time.Duration, err error) {
				if err == nil {
					renewLat.Observe(d)
				}
			},
		})
		if err != nil {
			closeAll()
			return sessionReport{}, err
		}
		sessions = append(sessions, s)
		// Spread the holders across sessions, remainder to the first few.
		share := holders / clients
		if c < holders%clients {
			share++
		}
		if share == 0 {
			continue
		}
		if _, err := s.AcquireN(context.Background(), share); err != nil {
			closeAll()
			return sessionReport{}, fmt.Errorf("session %d acquiring %d holders: %w", c, share, err)
		}
	}

	// The measured window opens only after every session is populated:
	// setup (N acquire_batch round trips) must not dilute the renewal
	// throughput, and the window closes BEFORE teardown for the same
	// reason — the classic loadgen had exactly this measured-vs-configured
	// window bug on its elapsed time. Counters are baselined here so
	// heartbeats that fired while later sessions were still acquiring
	// don't count against the window either.
	var baseHeartbeats, baseRenews, baseRetries int64
	for _, s := range sessions {
		st := s.Stats()
		baseHeartbeats += st.Heartbeats
		baseRenews += st.Renewed
		baseRetries += st.Retries
	}
	start := time.Now()

	// Churn traffic rides alongside: acquire → release, one lease at a
	// time, sharing the server with the heartbeat storm.
	var churnAcquires, churnReleases, churnFailures atomic.Int64
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < churn; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tr, err := leaseclient.NewTransport(target)
			if err != nil {
				churnFailures.Add(1)
				return
			}
			defer tr.Close()
			ctx := context.Background()
			owner := fmt.Sprintf("churn-%d", id)
			for time.Now().Before(deadline) {
				l, err := tr.Acquire(ctx, &wire.AcquireRequest{Owner: owner})
				if err != nil {
					churnFailures.Add(1)
					continue
				}
				churnAcquires.Add(1)
				if tr.Release(ctx, &wire.ReleaseRequest{Name: l.Name, Token: l.Token}) == nil {
					churnReleases.Add(1)
				} else {
					churnFailures.Add(1)
				}
			}
		}(c)
	}
	time.Sleep(time.Until(deadline))
	wg.Wait()

	// Snapshot the counters and close the window at the same instant,
	// before teardown: closeAll's release_batch round trips are not
	// renewal throughput. Lost is tallied through OnLost; the
	// per-session Stats cover the rest.
	var heartbeats, renews, retries, transportErrs int64
	var maxToken uint64
	var sessP99 time.Duration
	for _, s := range sessions {
		st := s.Stats()
		heartbeats += st.Heartbeats
		renews += st.Renewed
		retries += st.Retries
		transportErrs += st.TransportErrors
		if st.HeartbeatLatency.P99 > sessP99 {
			sessP99 = st.HeartbeatLatency.P99
		}
		for _, l := range s.Leases() {
			if l.Token > maxToken {
				maxToken = l.Token
			}
		}
	}
	heartbeats -= baseHeartbeats
	renews -= baseRenews
	retries -= baseRetries
	elapsed := time.Since(start)
	closeAll()
	return sessionReport{
		Holders:       holders,
		Sessions:      len(sessions),
		Churners:      churn,
		Duration:      duration,
		Elapsed:       elapsed,
		Heartbeats:    heartbeats,
		Renews:        renews,
		Retries:       retries,
		Lost:          lost.Load(),
		MaxToken:      maxToken,
		TransportErrs: transportErrs,
		SessionP99:    sessP99,
		ChurnAcquires: churnAcquires.Load(),
		ChurnReleases: churnReleases.Load(),
		ChurnFailures: churnFailures.Load(),
		RenewLat:      latSummary{P50: renewLat.Quantile(0.50), P99: renewLat.Quantile(0.99)},
		RenewsPerS:    float64(renews) / elapsed.Seconds(),
	}, nil
}
