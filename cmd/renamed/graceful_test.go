package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/lease"
)

// newGracefulStack builds the server-mode pieces (namer, manager, HTTP
// server, listener) without going through flag parsing.
func newGracefulStack(t *testing.T, handler http.Handler) (*http.Server, net.Listener, *lease.Manager) {
	t.Helper()
	nm, err := buildNamer("levelarray", 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := lease.New(nm, lease.Config{TTL: time.Minute, SweepInterval: -1, MaxLive: 64})
	if err != nil {
		t.Fatal(err)
	}
	if handler == nil {
		handler = newServer(mgr, nil)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return &http.Server{Handler: handler}, ln, mgr
}

// TestServeGracefulShutdown: cancelling the signal context must drain the
// server cleanly — serveGraceful returns nil, the listener stops
// accepting, and the manager is closed so every lease went back to the
// namer.
func TestServeGracefulShutdown(t *testing.T) {
	srv, ln, mgr := newGracefulStack(t, nil)
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- serveGraceful(ctx, srv, ln, mgr, nil, 2*time.Second, &out) }()

	// Prove the server is up and holding a lease before the shutdown.
	resp, body := postJSON(t, base+"/v1/acquire", wire.AcquireRequest{Owner: "w"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown acquire = %d, body %s", resp.StatusCode, body)
	}
	var l wire.Lease
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveGraceful = %v, want clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveGraceful did not return after context cancellation")
	}
	if _, err := mgr.Acquire("late", 0, nil); !errors.Is(err, lease.ErrClosed) {
		t.Fatalf("manager not closed after shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
	if !strings.Contains(out.String(), "shutdown complete") {
		t.Fatalf("shutdown log incomplete: %q", out.String())
	}
}

// TestServeGracefulDrainTimeout: a request still in flight when the drain
// window lapses must be cut, not waited on forever; serveGraceful reports
// the drain failure and still closes the manager.
func TestServeGracefulDrainTimeout(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	hung := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	srv, ln, mgr := newGracefulStack(t, hung)
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- serveGraceful(ctx, srv, ln, mgr, nil, 50*time.Millisecond, &out) }()

	go http.Get(base + "/hang")
	<-entered // the request is in flight
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("serveGraceful = nil, want drain-timeout error with a hung request")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveGraceful hung past its drain timeout")
	}
	if _, err := mgr.Acquire("late", 0, nil); !errors.Is(err, lease.ErrClosed) {
		t.Fatalf("manager not closed after forced shutdown: %v", err)
	}
}

// TestLatencySummaryCompat pins the /debug/vars latency shape over the
// shared telemetry histogram: same log2-bucket quantile bounds and the
// same count/mean_us/p50_us/p90_us/p99_us summary fields as before the
// histogram unification.
func TestLatencySummaryCompat(t *testing.T) {
	h := telemetry.NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("non-monotonic quantiles: p50 %v, p99 %v", p50, p99)
	}
	// Log2 buckets report the bucket's upper bound, so each quantile is
	// at most 2x the true value: p50 (true 500µs) ≤ 2^19ns ≈ 524µs, p99
	// (true 990µs) ≤ 2^20ns ≈ 1.05ms.
	if p50 > time.Millisecond || p99 > 2*time.Millisecond {
		t.Fatalf("quantiles beyond 2x bucket bound: p50 %v, p99 %v", p50, p99)
	}
	s := summarize(h)
	if s.Count != 1000 || s.MeanUs <= 0 || s.P99Us < s.P50Us {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50Us != float64(p50)/1e3 || s.P99Us != float64(p99)/1e3 {
		t.Fatalf("summary quantiles drifted from the histogram's: %+v vs p50 %v p99 %v", s, p50, p99)
	}
}

// TestLoadReportUsesMeasuredElapsed: throughput must be computed over the
// measured wall time, not the configured duration — workers finish their
// in-flight cycle past the deadline, and dividing by the configured
// duration overstated ops/sec.
func TestLoadReportUsesMeasuredElapsed(t *testing.T) {
	srv := newTestServer(t, 256, lease.Config{TTL: time.Minute, SweepInterval: -1})
	const configured = 100 * time.Millisecond
	rep, err := runLoad(srv.URL, 4, 1, 1, configured)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed < configured {
		t.Fatalf("Elapsed %v < configured %v; not measured wall time", rep.Elapsed, configured)
	}
	total := rep.Acquires + rep.Renews + rep.Releases
	want := float64(total) / rep.Elapsed.Seconds()
	if math.Abs(rep.OpsPerSec-want) > 1e-6*want {
		t.Fatalf("OpsPerSec = %v, want total/elapsed = %v", rep.OpsPerSec, want)
	}
	if rep.Acquires > 0 && (rep.AcquireLat.P99 <= 0 || rep.AcquireLat.P99 < rep.AcquireLat.P50) {
		t.Fatalf("acquire latency summary inconsistent: %+v", rep.AcquireLat)
	}
	var out bytes.Buffer
	rep.print(&out)
	if !strings.Contains(out.String(), "latency") {
		t.Fatalf("report missing latency line: %q", out.String())
	}
}
