package main

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHist is a lock-free log₂-bucketed latency histogram: bucket i
// counts durations in [2^(i-1), 2^i) nanoseconds, so 64 counters cover
// every possible Duration with ≤ 2× quantile error — plenty for the
// per-op service latencies exported in /debug/vars and reported by the
// load generator, at the cost of one atomic add per observation.
type latencyHist struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [65]atomic.Int64
}

func (h *latencyHist) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed durations: the top of the bucket the rank lands in. Counters
// are read without a global snapshot, so concurrent observers can skew a
// quantile by the in-flight handful — fine for monitoring.
func (h *latencyHist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	bound := func(i int) time.Duration {
		if i == 0 {
			return 0
		}
		if i >= 63 {
			return time.Duration(math.MaxInt64)
		}
		return time.Duration(int64(1) << i)
	}
	var seen int64
	last := 0 // highest populated bucket, the clamp when rank is unreachable
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n > 0 {
			last = i
		}
		seen += n
		if seen >= rank {
			return bound(i)
		}
	}
	// An in-flight Observe incremented count but not yet its bucket, so
	// the buckets sum short of rank; clamp to the highest seen latency
	// rather than reporting a 292-year phantom.
	return bound(last)
}

// histSummary is the JSON shape latencies take in /debug/vars.
type histSummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
}

func (h *latencyHist) summary() histSummary {
	s := histSummary{Count: h.count.Load()}
	if s.Count > 0 {
		s.MeanUs = float64(h.sum.Load()) / float64(s.Count) / 1e3
	}
	s.P50Us = float64(h.Quantile(0.50)) / 1e3
	s.P90Us = float64(h.Quantile(0.90)) / 1e3
	s.P99Us = float64(h.Quantile(0.99)) / 1e3
	return s
}
