package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/lease"
	"repro/lease/persist"
	"repro/leaseclient"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// scrapeMetrics fetches /metrics and fails on transport or status
// problems.
func scrapeMetrics(t *testing.T, base string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("/metrics content type = %q, want %q", ct, telemetry.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestMetricsEndpointGoldenFamilies locks the server's metric SURFACE —
// every # HELP and # TYPE line, in exposition order — against a golden
// file. Values are traffic-dependent, names and types are a contract:
// a renamed or retyped series breaks every dashboard built on it.
// Regenerate with -update after a deliberate change.
func TestMetricsEndpointGoldenFamilies(t *testing.T) {
	// A store-backed server exposes the persistence series too; use one
	// so the golden covers the full surface.
	dir := t.TempDir()
	st, err := persist.Open(dir, persist.Options{Fsync: persist.FsyncAlways, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	nm, err := buildNamer("levelarray", 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := lease.New(nm, lease.Config{TTL: time.Minute, SweepInterval: -1, MaxLive: 64, Observer: st})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(mgr, st))
	defer func() {
		srv.Close()
		mgr.Shutdown()
		st.Close()
	}()

	body := scrapeMetrics(t, srv.URL)
	var families bytes.Buffer
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "# ") {
			families.WriteString(line)
			families.WriteByte('\n')
		}
	}
	golden := filepath.Join("testdata", "metrics_families.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, families.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(families.Bytes(), want) {
		t.Fatalf("metric families drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", families.Bytes(), want)
	}
}

// TestMetricsEndpointLintCleanUnderTraffic drives real traffic (every
// /v1 endpoint, including batch items that fail) and then lints the live
// exposition: cumulative buckets, _total suffixes, HELP/TYPE presence —
// the promlint subset — must hold on real data, not just golden fixtures.
func TestMetricsEndpointLintCleanUnderTraffic(t *testing.T) {
	srv := newTestServer(t, 64, lease.Config{TTL: time.Minute, SweepInterval: -1})

	var l wire.Lease
	_, body := postJSON(t, srv.URL+"/v1/acquire", wire.AcquireRequest{Owner: "m"})
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	postJSON(t, srv.URL+"/v1/renew", wire.RenewRequest{Name: l.Name, Token: l.Token})
	postJSON(t, srv.URL+"/v1/renew_batch", wire.RenewBatchRequest{Items: []wire.Item{
		{Name: l.Name, Token: l.Token},
		{Name: -1, Token: 9}, // unknown_name verdict
	}})
	postJSON(t, srv.URL+"/v1/release_batch", wire.ReleaseBatchRequest{Items: []wire.Item{
		{Name: l.Name, Token: l.Token},
	}})

	exposition := scrapeMetrics(t, srv.URL)
	if problems := telemetry.Lint(exposition); len(problems) != 0 {
		t.Fatalf("lint problems in live exposition: %v", problems)
	}
	for _, series := range []string{
		`renamed_http_requests_total{op="acquire"} 1`,
		`renamed_http_requests_total{op="renew_batch"} 1`,
		`renamed_batch_item_verdicts_total{op="renew_batch",code="ok"} 1`,
		`renamed_batch_item_verdicts_total{op="renew_batch",code="unknown_name"} 1`,
		`renamed_batch_item_verdicts_total{op="release_batch",code="ok"} 1`,
		`renamed_lease_acquired_total 1`,
	} {
		if !strings.Contains(string(exposition), series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	// The histogram for an op we exercised carries its observation.
	if !strings.Contains(string(exposition), `renamed_http_request_duration_seconds_count{op="acquire"} 1`) {
		t.Errorf("acquire latency histogram did not record the request")
	}
}

// syncBuffer is a concurrency-safe bytes.Buffer for capturing slog
// output written from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// ridRecorder captures the request IDs a leaseclient session sends and
// verifies the server echoes each one back on the response.
type ridRecorder struct {
	next http.RoundTripper

	mu     sync.Mutex
	sent   []string
	echoed int
}

func (rt *ridRecorder) RoundTrip(req *http.Request) (*http.Response, error) {
	rid := req.Header.Get(wire.HeaderRequestID)
	resp, err := rt.next.RoundTrip(req)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.sent = append(rt.sent, rid)
	if err == nil && resp.Header.Get(wire.HeaderRequestID) == rid && rid != "" {
		rt.echoed++
	}
	return resp, err
}

// TestRequestIDRoundTrip is the tracing contract end to end: the
// leaseclient stamps every request with a fresh X-Request-Id, the server
// echoes it on the response, and the server's slow-operation log line
// carries the SAME id — so one slow heartbeat can be joined across the
// client and server logs.
func TestRequestIDRoundTrip(t *testing.T) {
	nm, err := buildNamer("levelarray", 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := lease.New(nm, lease.Config{TTL: time.Minute, SweepInterval: -1, MaxLive: 64})
	if err != nil {
		t.Fatal(err)
	}
	handler := newServer(mgr, nil)
	// Threshold 1ns: every operation is "slow", so every request logs.
	var logBuf syncBuffer
	handler.slowThreshold = time.Nanosecond
	handler.slowLog = slog.New(slog.NewTextHandler(&logBuf, nil))
	srv := httptest.NewServer(handler)
	defer func() {
		srv.Close()
		mgr.Close()
	}()

	rec := &ridRecorder{next: http.DefaultTransport}
	sess, err := leaseclient.NewSession(leaseclient.Config{
		Target:     srv.URL,
		Owner:      "tracer",
		TTL:        time.Minute,
		HTTPClient: &http.Client{Transport: rec, Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	sent, echoed := append([]string(nil), rec.sent...), rec.echoed
	rec.mu.Unlock()
	if len(sent) == 0 {
		t.Fatal("session sent no requests")
	}
	seen := map[string]bool{}
	for i, rid := range sent {
		if len(rid) != 16 {
			t.Fatalf("request %d carried id %q, want 16 hex digits", i, rid)
		}
		if seen[rid] {
			t.Fatalf("request id %q reused", rid)
		}
		seen[rid] = true
	}
	if echoed != len(sent) {
		t.Fatalf("server echoed %d of %d request ids", echoed, len(sent))
	}
	logs := logBuf.String()
	for _, rid := range sent {
		if !strings.Contains(logs, "request_id="+rid) {
			t.Fatalf("server slow-op log missing request_id=%s:\n%s", rid, logs)
		}
	}
	if !strings.Contains(logs, "msg=\"slow operation\"") {
		t.Fatalf("slow-op log line malformed:\n%s", logs)
	}
}

// TestServerMintsRequestID: a bare caller (curl, no header) still gets
// a well-formed request id echoed back — minted server-side so the
// slow-op log never carries an empty id.
func TestServerMintsRequestID(t *testing.T) {
	srv := newTestServer(t, 64, lease.Config{TTL: time.Minute, SweepInterval: -1})
	resp, _ := postJSON(t, srv.URL+"/v1/acquire", wire.AcquireRequest{Owner: "bare"})
	rid := resp.Header.Get(wire.HeaderRequestID)
	if len(rid) != 16 {
		t.Fatalf("minted request id = %q, want 16 hex digits", rid)
	}
	for _, c := range rid {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("minted request id %q is not lowercase hex", rid)
		}
	}
}
