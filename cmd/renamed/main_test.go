package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/lease"
	"repro/leaseclient"
)

// newTestServer spins a full service stack (LevelArray namer, lease
// manager, HTTP handler) on an httptest listener.
func newTestServer(t *testing.T, capacity int, cfg lease.Config) *httptest.Server {
	t.Helper()
	nm, err := buildNamer("levelarray", capacity, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxLive = capacity // mirror run()'s production wiring
	mgr, err := lease.New(nm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(mgr, nil))
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestAcquireRenewReleaseRoundTrip(t *testing.T) {
	srv := newTestServer(t, 64, lease.Config{TTL: time.Minute, SweepInterval: -1})

	resp, body := postJSON(t, srv.URL+"/v1/acquire", wire.AcquireRequest{
		Owner: "w1", Meta: map[string]string{"zone": "a"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acquire status = %d, body %s", resp.StatusCode, body)
	}
	var l wire.Lease
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	if l.Owner != "w1" || l.Meta["zone"] != "a" || l.ExpiresAtMs == 0 {
		t.Fatalf("acquire response incomplete: %+v", l)
	}

	resp, body = postJSON(t, srv.URL+"/v1/renew", wire.RenewRequest{Name: l.Name, Token: l.Token})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("renew status = %d, body %s", resp.StatusCode, body)
	}
	var renewed wire.Lease
	if err := json.Unmarshal(body, &renewed); err != nil {
		t.Fatal(err)
	}
	if renewed.ExpiresAtMs < l.ExpiresAtMs {
		t.Fatalf("renewal moved expiry backwards: %d -> %d", l.ExpiresAtMs, renewed.ExpiresAtMs)
	}

	// The lease shows up in the listing.
	listResp, err := http.Get(srv.URL + "/v1/leases")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Leases []wire.Lease `json:"leases"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(listing.Leases) != 1 || listing.Leases[0].Name != l.Name {
		t.Fatalf("listing = %+v", listing)
	}
	// Fencing tokens are holder-only capabilities and must never appear in
	// the listing, or any client could hijack any lease.
	if listing.Leases[0].Token != 0 {
		t.Fatalf("listing leaked fencing token %d", listing.Leases[0].Token)
	}

	resp, body = postJSON(t, srv.URL+"/v1/release", wire.ReleaseRequest{Name: l.Name, Token: l.Token})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("release status = %d, body %s", resp.StatusCode, body)
	}
	// Releasing again is a 404: the lease is gone.
	resp, _ = postJSON(t, srv.URL+"/v1/release", wire.ReleaseRequest{Name: l.Name, Token: l.Token})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double release status = %d, want 404", resp.StatusCode)
	}
}

func TestErrorStatusMapping(t *testing.T) {
	srv := newTestServer(t, 1, lease.Config{TTL: time.Minute, SweepInterval: -1})

	// Wrong token -> 409.
	_, body := postJSON(t, srv.URL+"/v1/acquire", wire.AcquireRequest{Owner: "w"})
	var l wire.Lease
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, srv.URL+"/v1/renew", wire.RenewRequest{Name: l.Name, Token: l.Token + 99})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("wrong-token renew = %d, want 409", resp.StatusCode)
	}

	// Unknown name -> 404.
	resp, _ = postJSON(t, srv.URL+"/v1/renew", wire.RenewRequest{Name: l.Name + 1, Token: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown renew = %d, want 404", resp.StatusCode)
	}

	// Capacity 1 is a hard cap: a second concurrent lease -> 503.
	resp, _ = postJSON(t, srv.URL+"/v1/acquire", wire.AcquireRequest{Owner: "w"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity acquire = %d, want 503", resp.StatusCode)
	}

	// Malformed body -> 400.
	badResp, err := http.Post(srv.URL+"/v1/acquire", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed acquire = %d, want 400", badResp.StatusCode)
	}
}

// TestExpiredLeaseReclaimed is the acceptance flow: a lease that is never
// renewed lapses, the sweeper returns its name to the pool, and a stale
// renewal is rejected.
func TestExpiredLeaseReclaimed(t *testing.T) {
	srv := newTestServer(t, 1, lease.Config{
		TTL:           20 * time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
	})

	_, body := postJSON(t, srv.URL+"/v1/acquire", wire.AcquireRequest{Owner: "crasher"})
	var l wire.Lease
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}

	// Wait out the TTL plus sweeps. Capacity 1 is fully held by the
	// crashed client, so a fresh acquisition succeeding proves its lease
	// was reclaimed and the capacity slot freed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := postJSON(t, srv.URL+"/v1/acquire", wire.AcquireRequest{Owner: "fresh", TTLms: 60_000})
		if resp.StatusCode == http.StatusOK {
			var nl wire.Lease
			if err := json.Unmarshal(body, &nl); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expired lease never reclaimed; last acquire = %d %s", resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The crashed holder's token is dead: renewing with it is 404 or 410
	// (depending on whether the sweeper or a re-acquisition got there first).
	resp, _ := postJSON(t, srv.URL+"/v1/renew", wire.RenewRequest{Name: l.Name, Token: l.Token})
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusGone &&
		resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale renew = %d, want 404/409/410", resp.StatusCode)
	}
}

// TestHugeTTLCappedNotWrapped sends a ttl_ms that would overflow the
// nanosecond multiplication: the lease must come back capped at MaxTTL,
// not defaulted (negative wrap) or arbitrary.
func TestHugeTTLCappedNotWrapped(t *testing.T) {
	srv := newTestServer(t, 4, lease.Config{TTL: time.Second, SweepInterval: -1})
	resp, body := postJSON(t, srv.URL+"/v1/acquire", wire.AcquireRequest{
		Owner: "greedy", TTLms: 9_300_000_000_000_000, // ~295k years in ms
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("huge-ttl acquire = %d, body %s", resp.StatusCode, body)
	}
	var l wire.Lease
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	// MaxTTL defaults to 10×TTL = 10s; allow slack for wall-clock skew.
	capAt := time.Now().Add(11 * time.Second).UnixMilli()
	if l.ExpiresAtMs > capAt {
		t.Fatalf("expires_at_ms %d beyond the 10s MaxTTL cap (%d)", l.ExpiresAtMs, capAt)
	}
	if l.ExpiresAtMs < time.Now().Add(5*time.Second).UnixMilli() {
		t.Fatalf("expires_at_ms %d collapsed below the requested cap — overflow wrapped", l.ExpiresAtMs)
	}
}

func TestHealthAndVars(t *testing.T) {
	srv := newTestServer(t, 4, lease.Config{TTL: time.Minute, SweepInterval: -1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	postJSON(t, srv.URL+"/v1/acquire", wire.AcquireRequest{Owner: "w"})
	varsResp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Renamed struct {
			Requests int64 `json:"renamed_requests"`
			Lease    struct {
				Acquired int64
				Live     int
			} `json:"renamed_lease"`
		} `json:"renamed"`
	}
	if err := json.NewDecoder(varsResp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	varsResp.Body.Close()
	if vars.Renamed.Requests < 2 {
		t.Errorf("renamed_requests = %d, want >= 2", vars.Renamed.Requests)
	}
	if vars.Renamed.Lease.Acquired != 1 || vars.Renamed.Lease.Live != 1 {
		t.Errorf("lease metrics = %+v", vars.Renamed.Lease)
	}
}

// TestLoadGenerator points the built-in load generator at a test server:
// a short run must complete cycles without a single failure.
func TestLoadGenerator(t *testing.T) {
	srv := newTestServer(t, 256, lease.Config{TTL: time.Minute, SweepInterval: -1})
	rep, err := runLoad(srv.URL, 8, 2, 1, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("load run had %d failures: %+v", rep.Failures, rep)
	}
	if rep.Acquires == 0 || rep.Releases != rep.Acquires {
		t.Fatalf("unbalanced load run: %+v", rep)
	}
	if rep.Renews != 2*rep.Acquires {
		t.Fatalf("renews = %d, want 2 per acquire: %+v", rep.Renews, rep)
	}
	var out bytes.Buffer
	rep.print(&out)
	if !strings.Contains(out.String(), "throughput") {
		t.Fatalf("report output missing throughput: %q", out.String())
	}
}

func TestLoadTargetUnreachable(t *testing.T) {
	if _, err := runLoad("http://127.0.0.1:1", 1, 0, 1, time.Millisecond); err == nil {
		t.Fatal("runLoad against a dead target did not error")
	}
}

func TestBuildNamer(t *testing.T) {
	for _, algo := range []string{"levelarray", "rebatching", "adaptive", "fastadaptive", "uniform"} {
		nm, err := buildNamer(algo, 16, 0, false)
		if err != nil {
			t.Errorf("buildNamer(%q): %v", algo, err)
			continue
		}
		if nm.Namespace() < 16 {
			t.Errorf("buildNamer(%q) namespace %d < capacity", algo, nm.Namespace())
		}
	}
	if _, err := buildNamer("nope", 16, 0, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestAcquireBatchEndpoint round-trips the batch-acquire endpoint: count
// distinct leases granted in one request, each individually releasable.
func TestAcquireBatchEndpoint(t *testing.T) {
	srv := newTestServer(t, 64, lease.Config{TTL: time.Minute, SweepInterval: -1})

	resp, body := postJSON(t, srv.URL+"/v1/acquire_batch", wire.AcquireBatchRequest{
		Owner: "batcher", Count: 8, Meta: map[string]string{"job": "j1"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch acquire status = %d, body %s", resp.StatusCode, body)
	}
	var granted wire.Leases
	if err := json.Unmarshal(body, &granted); err != nil {
		t.Fatal(err)
	}
	if len(granted.Leases) != 8 {
		t.Fatalf("granted %d leases, want 8", len(granted.Leases))
	}
	seen := map[int]bool{}
	for _, l := range granted.Leases {
		if seen[l.Name] {
			t.Fatalf("duplicate name %d in batch response", l.Name)
		}
		seen[l.Name] = true
		if l.Owner != "batcher" || l.Meta["job"] != "j1" || l.Token == 0 {
			t.Fatalf("batch lease incomplete: %+v", l)
		}
	}
	for _, l := range granted.Leases {
		resp, body := postJSON(t, srv.URL+"/v1/release", wire.ReleaseRequest{Name: l.Name, Token: l.Token})
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("release batch lease %d = %d, body %s", l.Name, resp.StatusCode, body)
		}
	}
}

// TestAcquireBatchEndpointErrors covers the batch-specific error mapping:
// count <= 0 is 400, count beyond capacity is 503 with nothing granted.
func TestAcquireBatchEndpointErrors(t *testing.T) {
	srv := newTestServer(t, 4, lease.Config{TTL: time.Minute, SweepInterval: -1})

	resp, _ := postJSON(t, srv.URL+"/v1/acquire_batch", wire.AcquireBatchRequest{Owner: "w", Count: 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("count=0 batch = %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, srv.URL+"/v1/acquire_batch", wire.AcquireBatchRequest{Owner: "w", Count: 5})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity batch = %d, want 503", resp.StatusCode)
	}

	// All-or-nothing: the failed batch granted nothing, so a full-capacity
	// batch still fits.
	resp, body := postJSON(t, srv.URL+"/v1/acquire_batch", wire.AcquireBatchRequest{Owner: "w", Count: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full-capacity batch after failed batch = %d, body %s", resp.StatusCode, body)
	}
}

// TestLoadGeneratorBatchMode drives the load generator's batch mode
// against a test server: cycles go through /v1/acquire_batch and must
// stay failure-free and balanced.
func TestLoadGeneratorBatchMode(t *testing.T) {
	srv := newTestServer(t, 256, lease.Config{TTL: time.Minute, SweepInterval: -1})
	rep, err := runLoad(srv.URL, 4, 1, 8, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("batch load run had %d failures: %+v", rep.Failures, rep)
	}
	if rep.Acquires == 0 || rep.Acquires%8 != 0 {
		t.Fatalf("batch acquires = %d, want a positive multiple of 8", rep.Acquires)
	}
	if rep.Releases != rep.Acquires || rep.Renews != rep.Acquires {
		t.Fatalf("unbalanced batch load run: %+v", rep)
	}
}

// TestBuildServerNamer covers the -namer DSN path and its MaxLive
// derivation rules.
func TestBuildServerNamer(t *testing.T) {
	// DSN over a long-lived namer: MaxLive defaults to its capacity.
	nm, maxLive, desc, err := buildServerNamer("levelarray?n=128", "ignored", 4096, false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if maxLive != 128 || desc != "levelarray?n=128" {
		t.Fatalf("maxLive = %d desc = %q, want 128 and the DSN", maxLive, desc)
	}
	if nm.Namespace() < 128 {
		t.Fatalf("namespace %d < capacity", nm.Namespace())
	}

	// Explicit -capacity wins over the namer's own capacity.
	_, maxLive, _, err = buildServerNamer("levelarray?n=128", "ignored", 32, true, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if maxLive != 32 {
		t.Fatalf("maxLive = %d, want explicit 32", maxLive)
	}

	// One-shot namers have no analyzed capacity: uncapped unless -capacity.
	_, maxLive, _, err = buildServerNamer("rebatching?n=64&t0=6", "ignored", 4096, false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if maxLive != 0 {
		t.Fatalf("maxLive = %d for one-shot DSN, want 0 (uncapped)", maxLive)
	}

	// A bad DSN fails loudly.
	if _, _, _, err := buildServerNamer("levelarray?n=128&eps=2", "ignored", 0, false, 0, false); err == nil {
		t.Fatal("DSN with inapplicable eps accepted")
	}
}

// TestRenewBatchEndpoint round-trips the batch heartbeat endpoint with a
// mix of outcomes in one request: renewals succeed per item, and each
// failure carries its machine-readable code so clients learn exactly
// which leases they lost.
func TestRenewBatchEndpoint(t *testing.T) {
	srv := newTestServer(t, 64, lease.Config{TTL: time.Minute, SweepInterval: -1})

	_, body := postJSON(t, srv.URL+"/v1/acquire_batch", wire.AcquireBatchRequest{Owner: "hb", Count: 3, TTLms: 5_000})
	var granted wire.Leases
	if err := json.Unmarshal(body, &granted); err != nil {
		t.Fatal(err)
	}
	ls := granted.Leases

	resp, body := postJSON(t, srv.URL+"/v1/renew_batch", wire.RenewBatchRequest{
		TTLms: 30_000,
		Items: []wire.Item{
			{Name: ls[0].Name, Token: ls[0].Token},
			{Name: ls[1].Name, Token: ls[1].Token + 99}, // hijacked token
			{Name: -1, Token: 1},                        // never granted
			{Name: ls[2].Name, Token: ls[2].Token},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("renew_batch status = %d, body %s — per-item failures must not fail the request", resp.StatusCode, body)
	}
	var results wire.BatchResults
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	if len(results.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(results.Results))
	}
	for _, pair := range [][2]int{{0, 0}, {3, 2}} { // result index -> granted lease index
		r := results.Results[pair[0]]
		if r.Lease == nil || r.Code != "" {
			t.Fatalf("item %d = %+v, want renewed lease", pair[0], r)
		}
		if r.Lease.ExpiresAtMs <= ls[pair[1]].ExpiresAtMs {
			t.Fatalf("item %d renewal did not extend expiry: %d -> %d",
				pair[0], ls[pair[1]].ExpiresAtMs, r.Lease.ExpiresAtMs)
		}
	}
	if got := results.Results[1].Code; got != wire.CodeWrongToken {
		t.Fatalf("hijacked item code = %q, want %q", got, wire.CodeWrongToken)
	}
	if got := results.Results[2].Code; got != wire.CodeUnknownName {
		t.Fatalf("unknown item code = %q, want %q", got, wire.CodeUnknownName)
	}

	// Empty batch: processed, zero results.
	resp, body = postJSON(t, srv.URL+"/v1/renew_batch", wire.RenewBatchRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty renew_batch = %d, body %s", resp.StatusCode, body)
	}
}

// TestReleaseBatchEndpoint covers the batched shutdown path: every held
// lease back in one request, already-gone names reported per item.
func TestReleaseBatchEndpoint(t *testing.T) {
	srv := newTestServer(t, 64, lease.Config{TTL: time.Minute, SweepInterval: -1})

	_, body := postJSON(t, srv.URL+"/v1/acquire_batch", wire.AcquireBatchRequest{Owner: "bye", Count: 4})
	var granted wire.Leases
	if err := json.Unmarshal(body, &granted); err != nil {
		t.Fatal(err)
	}
	items := make([]wire.Item, 0, 5)
	for _, l := range granted.Leases {
		items = append(items, wire.Item{Name: l.Name, Token: l.Token})
	}
	items = append(items, wire.Item{Name: -1, Token: 9}) // never granted

	resp, body := postJSON(t, srv.URL+"/v1/release_batch", wire.ReleaseBatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("release_batch status = %d, body %s", resp.StatusCode, body)
	}
	var results wire.BatchResults
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if results.Results[i].Code != "" || results.Results[i].Error != "" {
			t.Fatalf("release item %d = %+v, want success", i, results.Results[i])
		}
	}
	if got := results.Results[4].Code; got != wire.CodeUnknownName {
		t.Fatalf("unknown release code = %q, want %q", got, wire.CodeUnknownName)
	}

	// Everything is back in the pool: the full capacity fits again.
	resp, _ = postJSON(t, srv.URL+"/v1/acquire_batch", wire.AcquireBatchRequest{Owner: "next", Count: 64})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full-capacity batch after release_batch = %d", resp.StatusCode)
	}
}

// TestSessionAgainstRealServer is the full-stack integration check: a
// leaseclient.Session heartbeating against the real handler chain
// (HTTP mux -> lease.Manager -> LevelArray) with an aggressive sweeper
// hunting for expired leases. On-time renewals must keep every lease
// alive — OnLost firing means the client and server drifted.
func TestSessionAgainstRealServer(t *testing.T) {
	srv := newTestServer(t, 64, lease.Config{TTL: time.Minute, SweepInterval: 10 * time.Millisecond})

	var lost atomic.Int64
	s, err := leaseclient.NewSession(leaseclient.Config{
		Target: srv.URL,
		Owner:  "integration",
		TTL:    400 * time.Millisecond,
		OnLost: func(int, error) { lost.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 16
	if _, err := s.AcquireN(context.Background(), k); err != nil {
		t.Fatal(err)
	}

	// Outlive several TTLs under the sweeper's nose.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Renewed < 4*k {
		if time.Now().After(deadline) {
			t.Fatalf("session never reached 4 renewal rounds: %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lost.Load() != 0 {
		t.Fatalf("lost %d leases with on-time renewals", lost.Load())
	}
	listResp, err := http.Get(srv.URL + "/v1/leases")
	if err != nil {
		t.Fatal(err)
	}
	var listing wire.Leases
	if err := json.NewDecoder(listResp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(listing.Leases) != k {
		t.Fatalf("server lists %d live leases mid-session, want %d", len(listing.Leases), k)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}
	listResp, err = http.Get(srv.URL + "/v1/leases")
	if err != nil {
		t.Fatal(err)
	}
	listing = wire.Leases{}
	if err := json.NewDecoder(listResp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(listing.Leases) != 0 {
		t.Fatalf("server still lists %d leases after session Close", len(listing.Leases))
	}
}

// TestLoadGeneratorSessionsMode drives the -sessions load mode against a
// test server: holders heartbeat through leaseclient while churners
// cycle alongside, and nothing may be lost or fail.
func TestLoadGeneratorSessionsMode(t *testing.T) {
	srv := newTestServer(t, 256, lease.Config{TTL: time.Minute, SweepInterval: 20 * time.Millisecond})
	rep, err := runSessionLoad(srv.URL, 64, 4, 2, 500*time.Millisecond, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 {
		t.Fatalf("session load lost %d leases: %+v", rep.Lost, rep)
	}
	if rep.Holders != 64 || rep.Sessions != 4 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	if rep.Renews < 64 {
		t.Fatalf("renews = %d, want at least one full round for 64 holders", rep.Renews)
	}
	if rep.Heartbeats == 0 || rep.Renews < rep.Heartbeats {
		t.Fatalf("heartbeats %d / renews %d not coalesced: %+v", rep.Heartbeats, rep.Renews, rep)
	}
	if rep.ChurnAcquires == 0 || rep.ChurnFailures != 0 {
		t.Fatalf("churn traffic unhealthy: %+v", rep)
	}
	var out bytes.Buffer
	rep.print(&out)
	if !strings.Contains(out.String(), "renewal throughput") {
		t.Fatalf("report output missing throughput: %q", out.String())
	}
}
