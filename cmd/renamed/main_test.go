package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/lease"
)

// newTestServer spins a full service stack (LevelArray namer, lease
// manager, HTTP handler) on an httptest listener.
func newTestServer(t *testing.T, capacity int, cfg lease.Config) *httptest.Server {
	t.Helper()
	nm, err := buildNamer("levelarray", capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxLive = capacity // mirror run()'s production wiring
	mgr, err := lease.New(nm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(mgr))
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestAcquireRenewReleaseRoundTrip(t *testing.T) {
	srv := newTestServer(t, 64, lease.Config{TTL: time.Minute, SweepInterval: -1})

	resp, body := postJSON(t, srv.URL+"/v1/acquire", acquireRequest{
		Owner: "w1", Meta: map[string]string{"zone": "a"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acquire status = %d, body %s", resp.StatusCode, body)
	}
	var l leaseJSON
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	if l.Owner != "w1" || l.Meta["zone"] != "a" || l.ExpiresAtMs == 0 {
		t.Fatalf("acquire response incomplete: %+v", l)
	}

	resp, body = postJSON(t, srv.URL+"/v1/renew", renewRequest{Name: l.Name, Token: l.Token})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("renew status = %d, body %s", resp.StatusCode, body)
	}
	var renewed leaseJSON
	if err := json.Unmarshal(body, &renewed); err != nil {
		t.Fatal(err)
	}
	if renewed.ExpiresAtMs < l.ExpiresAtMs {
		t.Fatalf("renewal moved expiry backwards: %d -> %d", l.ExpiresAtMs, renewed.ExpiresAtMs)
	}

	// The lease shows up in the listing.
	listResp, err := http.Get(srv.URL + "/v1/leases")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Leases []leaseJSON `json:"leases"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(listing.Leases) != 1 || listing.Leases[0].Name != l.Name {
		t.Fatalf("listing = %+v", listing)
	}
	// Fencing tokens are holder-only capabilities and must never appear in
	// the listing, or any client could hijack any lease.
	if listing.Leases[0].Token != 0 {
		t.Fatalf("listing leaked fencing token %d", listing.Leases[0].Token)
	}

	resp, body = postJSON(t, srv.URL+"/v1/release", releaseRequest{Name: l.Name, Token: l.Token})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("release status = %d, body %s", resp.StatusCode, body)
	}
	// Releasing again is a 404: the lease is gone.
	resp, _ = postJSON(t, srv.URL+"/v1/release", releaseRequest{Name: l.Name, Token: l.Token})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double release status = %d, want 404", resp.StatusCode)
	}
}

func TestErrorStatusMapping(t *testing.T) {
	srv := newTestServer(t, 1, lease.Config{TTL: time.Minute, SweepInterval: -1})

	// Wrong token -> 409.
	_, body := postJSON(t, srv.URL+"/v1/acquire", acquireRequest{Owner: "w"})
	var l leaseJSON
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, srv.URL+"/v1/renew", renewRequest{Name: l.Name, Token: l.Token + 99})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("wrong-token renew = %d, want 409", resp.StatusCode)
	}

	// Unknown name -> 404.
	resp, _ = postJSON(t, srv.URL+"/v1/renew", renewRequest{Name: l.Name + 1, Token: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown renew = %d, want 404", resp.StatusCode)
	}

	// Capacity 1 is a hard cap: a second concurrent lease -> 503.
	resp, _ = postJSON(t, srv.URL+"/v1/acquire", acquireRequest{Owner: "w"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity acquire = %d, want 503", resp.StatusCode)
	}

	// Malformed body -> 400.
	badResp, err := http.Post(srv.URL+"/v1/acquire", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed acquire = %d, want 400", badResp.StatusCode)
	}
}

// TestExpiredLeaseReclaimed is the acceptance flow: a lease that is never
// renewed lapses, the sweeper returns its name to the pool, and a stale
// renewal is rejected.
func TestExpiredLeaseReclaimed(t *testing.T) {
	srv := newTestServer(t, 1, lease.Config{
		TTL:           20 * time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
	})

	_, body := postJSON(t, srv.URL+"/v1/acquire", acquireRequest{Owner: "crasher"})
	var l leaseJSON
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}

	// Wait out the TTL plus sweeps. Capacity 1 is fully held by the
	// crashed client, so a fresh acquisition succeeding proves its lease
	// was reclaimed and the capacity slot freed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := postJSON(t, srv.URL+"/v1/acquire", acquireRequest{Owner: "fresh", TTLms: 60_000})
		if resp.StatusCode == http.StatusOK {
			var nl leaseJSON
			if err := json.Unmarshal(body, &nl); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expired lease never reclaimed; last acquire = %d %s", resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The crashed holder's token is dead: renewing with it is 404 or 410
	// (depending on whether the sweeper or a re-acquisition got there first).
	resp, _ := postJSON(t, srv.URL+"/v1/renew", renewRequest{Name: l.Name, Token: l.Token})
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusGone &&
		resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale renew = %d, want 404/409/410", resp.StatusCode)
	}
}

// TestHugeTTLCappedNotWrapped sends a ttl_ms that would overflow the
// nanosecond multiplication: the lease must come back capped at MaxTTL,
// not defaulted (negative wrap) or arbitrary.
func TestHugeTTLCappedNotWrapped(t *testing.T) {
	srv := newTestServer(t, 4, lease.Config{TTL: time.Second, SweepInterval: -1})
	resp, body := postJSON(t, srv.URL+"/v1/acquire", acquireRequest{
		Owner: "greedy", TTLms: 9_300_000_000_000_000, // ~295k years in ms
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("huge-ttl acquire = %d, body %s", resp.StatusCode, body)
	}
	var l leaseJSON
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	// MaxTTL defaults to 10×TTL = 10s; allow slack for wall-clock skew.
	capAt := time.Now().Add(11 * time.Second).UnixMilli()
	if l.ExpiresAtMs > capAt {
		t.Fatalf("expires_at_ms %d beyond the 10s MaxTTL cap (%d)", l.ExpiresAtMs, capAt)
	}
	if l.ExpiresAtMs < time.Now().Add(5*time.Second).UnixMilli() {
		t.Fatalf("expires_at_ms %d collapsed below the requested cap — overflow wrapped", l.ExpiresAtMs)
	}
}

func TestHealthAndVars(t *testing.T) {
	srv := newTestServer(t, 4, lease.Config{TTL: time.Minute, SweepInterval: -1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	postJSON(t, srv.URL+"/v1/acquire", acquireRequest{Owner: "w"})
	varsResp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Renamed struct {
			Requests int64 `json:"renamed_requests"`
			Lease    struct {
				Acquired int64
				Live     int
			} `json:"renamed_lease"`
		} `json:"renamed"`
	}
	if err := json.NewDecoder(varsResp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	varsResp.Body.Close()
	if vars.Renamed.Requests < 2 {
		t.Errorf("renamed_requests = %d, want >= 2", vars.Renamed.Requests)
	}
	if vars.Renamed.Lease.Acquired != 1 || vars.Renamed.Lease.Live != 1 {
		t.Errorf("lease metrics = %+v", vars.Renamed.Lease)
	}
}

// TestLoadGenerator points the built-in load generator at a test server:
// a short run must complete cycles without a single failure.
func TestLoadGenerator(t *testing.T) {
	srv := newTestServer(t, 256, lease.Config{TTL: time.Minute, SweepInterval: -1})
	rep, err := runLoad(srv.URL, 8, 2, 1, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("load run had %d failures: %+v", rep.Failures, rep)
	}
	if rep.Acquires == 0 || rep.Releases != rep.Acquires {
		t.Fatalf("unbalanced load run: %+v", rep)
	}
	if rep.Renews != 2*rep.Acquires {
		t.Fatalf("renews = %d, want 2 per acquire: %+v", rep.Renews, rep)
	}
	var out bytes.Buffer
	rep.print(&out)
	if !strings.Contains(out.String(), "throughput") {
		t.Fatalf("report output missing throughput: %q", out.String())
	}
}

func TestLoadTargetUnreachable(t *testing.T) {
	if _, err := runLoad("http://127.0.0.1:1", 1, 0, 1, time.Millisecond); err == nil {
		t.Fatal("runLoad against a dead target did not error")
	}
}

func TestBuildNamer(t *testing.T) {
	for _, algo := range []string{"levelarray", "rebatching", "adaptive", "fastadaptive", "uniform"} {
		nm, err := buildNamer(algo, 16, 0)
		if err != nil {
			t.Errorf("buildNamer(%q): %v", algo, err)
			continue
		}
		if nm.Namespace() < 16 {
			t.Errorf("buildNamer(%q) namespace %d < capacity", algo, nm.Namespace())
		}
	}
	if _, err := buildNamer("nope", 16, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestAcquireBatchEndpoint round-trips the batch-acquire endpoint: count
// distinct leases granted in one request, each individually releasable.
func TestAcquireBatchEndpoint(t *testing.T) {
	srv := newTestServer(t, 64, lease.Config{TTL: time.Minute, SweepInterval: -1})

	resp, body := postJSON(t, srv.URL+"/v1/acquire_batch", acquireBatchRequest{
		Owner: "batcher", Count: 8, Meta: map[string]string{"job": "j1"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch acquire status = %d, body %s", resp.StatusCode, body)
	}
	var granted leasesJSON
	if err := json.Unmarshal(body, &granted); err != nil {
		t.Fatal(err)
	}
	if len(granted.Leases) != 8 {
		t.Fatalf("granted %d leases, want 8", len(granted.Leases))
	}
	seen := map[int]bool{}
	for _, l := range granted.Leases {
		if seen[l.Name] {
			t.Fatalf("duplicate name %d in batch response", l.Name)
		}
		seen[l.Name] = true
		if l.Owner != "batcher" || l.Meta["job"] != "j1" || l.Token == 0 {
			t.Fatalf("batch lease incomplete: %+v", l)
		}
	}
	for _, l := range granted.Leases {
		resp, body := postJSON(t, srv.URL+"/v1/release", releaseRequest{Name: l.Name, Token: l.Token})
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("release batch lease %d = %d, body %s", l.Name, resp.StatusCode, body)
		}
	}
}

// TestAcquireBatchEndpointErrors covers the batch-specific error mapping:
// count <= 0 is 400, count beyond capacity is 503 with nothing granted.
func TestAcquireBatchEndpointErrors(t *testing.T) {
	srv := newTestServer(t, 4, lease.Config{TTL: time.Minute, SweepInterval: -1})

	resp, _ := postJSON(t, srv.URL+"/v1/acquire_batch", acquireBatchRequest{Owner: "w", Count: 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("count=0 batch = %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, srv.URL+"/v1/acquire_batch", acquireBatchRequest{Owner: "w", Count: 5})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity batch = %d, want 503", resp.StatusCode)
	}

	// All-or-nothing: the failed batch granted nothing, so a full-capacity
	// batch still fits.
	resp, body := postJSON(t, srv.URL+"/v1/acquire_batch", acquireBatchRequest{Owner: "w", Count: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full-capacity batch after failed batch = %d, body %s", resp.StatusCode, body)
	}
}

// TestLoadGeneratorBatchMode drives the load generator's batch mode
// against a test server: cycles go through /v1/acquire_batch and must
// stay failure-free and balanced.
func TestLoadGeneratorBatchMode(t *testing.T) {
	srv := newTestServer(t, 256, lease.Config{TTL: time.Minute, SweepInterval: -1})
	rep, err := runLoad(srv.URL, 4, 1, 8, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("batch load run had %d failures: %+v", rep.Failures, rep)
	}
	if rep.Acquires == 0 || rep.Acquires%8 != 0 {
		t.Fatalf("batch acquires = %d, want a positive multiple of 8", rep.Acquires)
	}
	if rep.Releases != rep.Acquires || rep.Renews != rep.Acquires {
		t.Fatalf("unbalanced batch load run: %+v", rep)
	}
}

// TestBuildServerNamer covers the -namer DSN path and its MaxLive
// derivation rules.
func TestBuildServerNamer(t *testing.T) {
	// DSN over a long-lived namer: MaxLive defaults to its capacity.
	nm, maxLive, desc, err := buildServerNamer("levelarray?n=128", "ignored", 4096, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if maxLive != 128 || desc != "levelarray?n=128" {
		t.Fatalf("maxLive = %d desc = %q, want 128 and the DSN", maxLive, desc)
	}
	if nm.Namespace() < 128 {
		t.Fatalf("namespace %d < capacity", nm.Namespace())
	}

	// Explicit -capacity wins over the namer's own capacity.
	_, maxLive, _, err = buildServerNamer("levelarray?n=128", "ignored", 32, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if maxLive != 32 {
		t.Fatalf("maxLive = %d, want explicit 32", maxLive)
	}

	// One-shot namers have no analyzed capacity: uncapped unless -capacity.
	_, maxLive, _, err = buildServerNamer("rebatching?n=64&t0=6", "ignored", 4096, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if maxLive != 0 {
		t.Fatalf("maxLive = %d for one-shot DSN, want 0 (uncapped)", maxLive)
	}

	// A bad DSN fails loudly.
	if _, _, _, err := buildServerNamer("levelarray?n=128&eps=2", "ignored", 0, false, 0); err == nil {
		t.Fatal("DSN with inapplicable eps accepted")
	}
}
