package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"sync/atomic"
	"time"

	renaming "repro"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/lease"
	"repro/lease/persist"
)

// server is the HTTP front end over the shared service core: JSON
// adapters around the same transport-neutral operations the binary
// protocol serves, plus the observability surfaces (/metrics,
// /debug/vars, pprof) that only make sense over HTTP.
type server struct {
	mgr   *lease.Manager
	mux   *http.ServeMux
	start time.Time
	// store is the optional durability layer; non-nil only with -data-dir.
	// The handlers never touch it (the manager's observer hook does the
	// journaling); it is here for the persistence gauges.
	store *persist.Store

	// core is the transport-neutral request core; bind is its "http"
	// binding (pre-resolved per-transport instrumentation). binSrv is the
	// optional binary-protocol front end over the SAME core, attached by
	// run() when -listen-bin is set and closed through serveGraceful.
	core   *service.Core
	bind   *service.Binding
	binSrv *service.BinServer

	// met is the Prometheus surface (GET /metrics); the /debug/vars
	// expvar view reads the same histograms, so the two cannot disagree.
	met *serverMetrics

	// request counters, exported through expvar-style /debug/vars.
	requests atomic.Int64
	errors   atomic.Int64

	// per-operation latency histograms: one telemetry.Histogram per /v1
	// op, shared between /metrics (cumulative buckets) and /debug/vars
	// (µs quantile summaries).
	lat struct {
		acquire, acquireBatch, renew, renewBatch, release, releaseBatch, resize *telemetry.Histogram
	}

	// slowThreshold gates the structured slow-operation log line; 0
	// disables it. slowLog defaults to stderr; tests redirect it.
	slowThreshold time.Duration
	slowLog       *slog.Logger
}

// newServer wires the routes and metrics for one manager. store may be
// nil (in-memory mode); when set, the persistence series register too.
func newServer(mgr *lease.Manager, store *persist.Store) *server {
	s := &server{
		mgr:     mgr,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		store:   store,
		slowLog: slog.New(slog.NewTextHandler(os.Stderr, nil)),
	}
	s.met = newServerMetrics(s)
	s.core = service.New(mgr, s.met.svc)
	s.bind = s.core.Bind("http")
	s.lat.acquire = s.mountTimed("acquire", s.handleAcquire)
	s.lat.acquireBatch = s.mountTimed("acquire_batch", s.handleAcquireBatch)
	s.lat.renew = s.mountTimed("renew", s.handleRenew)
	s.lat.renewBatch = s.mountTimed("renew_batch", s.handleRenewBatch)
	s.lat.release = s.mountTimed("release", s.handleRelease)
	s.lat.releaseBatch = s.mountTimed("release_batch", s.handleReleaseBatch)
	s.lat.resize = s.mountTimed("resize", s.handleResize)
	s.mux.HandleFunc("GET /v1/leases", s.handleLeases)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux.Handle("GET /debug/vars", s.varsHandler())
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentType)
		s.met.reg.WritePrometheus(w)
	})
	return s
}

// enablePprof mounts net/http/pprof on the server's private mux (the
// package's init-time handlers live on http.DefaultServeMux, which this
// server never serves). Profiling endpoints cost CPU and reveal internal
// state, so they are opt-in via -pprof.
func (s *server) enablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	// Echo the client's request ID on every response so either side of a
	// slow or failed call can quote the same handle; mint one for bare
	// callers (curl) so the slow-op log never carries an empty id. The
	// mint is written back onto the request header, which is where
	// mountTimed() reads it from.
	rid := r.Header.Get(wire.HeaderRequestID)
	if rid == "" {
		rid = wire.NewRequestID()
		r.Header.Set(wire.HeaderRequestID, rid)
	}
	w.Header().Set(wire.HeaderRequestID, rid)
	s.mux.ServeHTTP(w, r)
}

// mountTimed mounts fn as "POST /v1/<op>" with the per-op instrumentation:
// request counter, latency histogram (returned, shared with /debug/vars)
// and the slow-operation log line carrying the request's X-Request-Id.
func (s *server) mountTimed(op string, fn http.HandlerFunc) *telemetry.Histogram {
	h := s.met.latency.With(op)
	reqs := s.met.requests.With(op)
	s.mux.HandleFunc("POST /v1/"+op, func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		start := time.Now()
		fn(w, r)
		d := time.Since(start)
		h.Observe(d)
		if s.slowThreshold > 0 && d >= s.slowThreshold {
			s.slowLog.Warn("slow operation",
				"op", op,
				"duration_ms", float64(d)/float64(time.Millisecond),
				"request_id", r.Header.Get(wire.HeaderRequestID))
		}
	})
	return h
}

// varsHandler serves the expvar JSON format with the service's own gauges
// under a private map, avoiding the process-global expvar registry so
// multiple servers (tests) can coexist.
func (s *server) varsHandler() http.Handler {
	vars := expvar.Map{}
	vars.Set("renamed_requests", expvar.Func(func() any { return s.requests.Load() }))
	vars.Set("renamed_errors", expvar.Func(func() any { return s.errors.Load() }))
	vars.Set("renamed_uptime_seconds", expvar.Func(func() any { return time.Since(s.start).Seconds() }))
	vars.Set("renamed_lease", expvar.Func(func() any { return s.mgr.Metrics() }))
	vars.Set("renamed_persist", expvar.Func(func() any {
		// s.store is assigned after newServer returns (run() wires it),
		// so the nil check must live here in the closure, not at
		// registration time; null means "no -data-dir".
		if s.store == nil {
			return nil
		}
		st := s.store.Stats()
		// Stats.Err is an error (not JSON-friendly); flatten it.
		errStr := ""
		if st.Err != nil {
			errStr = st.Err.Error()
		}
		return map[string]any{
			"recovered_leases": st.RecoveredLeases,
			"replayed_records": st.ReplayedRecords,
			"truncated_bytes":  st.TruncatedBytes,
			"recovery_ms":      float64(st.RecoveryDuration) / float64(time.Millisecond),
			"appends":          st.Appends,
			"syncs":            st.Syncs,
			"compactions":      st.Compactions,
			"journal_bytes":    st.JournalBytes,
			"journal_records":  st.JournalRecords,
			"live":             st.Live,
			"err":              errStr,
		}
	}))
	vars.Set("renamed_latency", expvar.Func(func() any {
		return map[string]histSummary{
			"acquire":       summarize(s.lat.acquire),
			"acquire_batch": summarize(s.lat.acquireBatch),
			"renew":         summarize(s.lat.renew),
			"renew_batch":   summarize(s.lat.renewBatch),
			"release":       summarize(s.lat.release),
			"release_batch": summarize(s.lat.releaseBatch),
			"resize":        summarize(s.lat.resize),
		}
	}))
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{%q: %s}\n", "renamed", vars.String())
	})
}

// The JSON wire types live in internal/wire, shared with the leaseclient
// session layer so server and client cannot drift; the handlers below
// are thin JSON adapters over the service core's bindings.

func (s *server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req wire.AcquireRequest
	if !s.decode(w, r, &req) {
		return
	}
	// The request context ties the probe sequence to the client: a peer
	// that disconnects mid-acquire cancels instead of leaving behind a
	// lease nobody will renew.
	l, err := s.bind.Acquire(r.Context(), &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, l)
}

func (s *server) handleAcquireBatch(w http.ResponseWriter, r *http.Request) {
	var req wire.AcquireBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	ls, err := s.bind.AcquireBatch(r.Context(), &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, wire.Leases{Leases: ls})
}

func (s *server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req wire.RenewRequest
	if !s.decode(w, r, &req) {
		return
	}
	l, err := s.bind.Renew(&req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, l)
}

// handleRenewBatch is the heartbeat hot path: one request renews every
// lease a session holds through one lock visit per involved stripe. The
// response is per-item — 200 even when individual items failed — because
// a session must learn exactly which leases it lost; only a request that
// could not be processed at all (malformed body, closed manager, context
// already done) gets a non-2xx status.
func (s *server) handleRenewBatch(w http.ResponseWriter, r *http.Request) {
	var req wire.RenewBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	items := make([]lease.RenewItem, len(req.Items))
	for i, it := range req.Items {
		items[i] = lease.RenewItem{Name: it.Name, Token: it.Token}
	}
	// The request context is threaded through: a client that disconnects
	// mid-batch stops the stripe walk instead of renewing leases for a
	// session that is gone.
	verdicts, err := s.bind.RenewBatch(r.Context(), wire.TTLFromMs(req.TTLms), items, nil)
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := wire.BatchResults{Results: make([]wire.BatchResult, len(verdicts))}
	for i, v := range verdicts {
		if v.Code != "" {
			out.Results[i] = wire.BatchResult{Error: v.Msg, Code: v.Code}
			continue
		}
		l := v.Lease
		out.Results[i].Lease = &l
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req wire.ReleaseRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.bind.Release(&req); err != nil {
		s.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleReleaseBatch ends many leases in one request with per-item
// outcomes, mirroring handleRenewBatch — the shutdown path of a session
// holding hundreds of names must not take hundreds of round trips.
func (s *server) handleReleaseBatch(w http.ResponseWriter, r *http.Request) {
	var req wire.ReleaseBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	items := make([]lease.ReleaseItem, len(req.Items))
	for i, it := range req.Items {
		items[i] = lease.ReleaseItem{Name: it.Name, Token: it.Token}
	}
	verdicts, err := s.bind.ReleaseBatch(r.Context(), items, nil)
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := wire.BatchResults{Results: make([]wire.BatchResult, len(verdicts))}
	for i, v := range verdicts {
		if v.Code != "" {
			out.Results[i] = wire.BatchResult{Error: v.Msg, Code: v.Code}
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleResize retargets the elastic namespace online: the namer's
// capacity and the lease manager's live cap move together (see
// service.Binding.Resize for the ordering guarantees). The response
// follows the batch per-item contract — 200 with per-component verdicts
// even when a component refused, because the operator must learn
// exactly which half moved; only a malformed body gets a non-2xx.
func (s *server) handleResize(w http.ResponseWriter, r *http.Request) {
	var req wire.ResizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	st := s.bind.Resize(req.Capacity)
	s.writeJSON(w, http.StatusOK, st.Wire())
}

func (s *server) handleLeases(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, wire.Leases{Leases: s.core.Leases()})
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(into); err != nil {
		s.errors.Add(1)
		s.writeJSON(w, http.StatusBadRequest, wire.Error{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// writeError maps lease/namer errors onto HTTP status codes:
// exhaustion is 503 (retryable), stale tokens are 409, expiry is 410,
// unknown names are 404, bad batch parameters are 400, and an acquisition
// the client itself abandoned is 408 (the response is usually unread —
// the status mostly serves the error counter and access logs).
func (s *server) writeError(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, renaming.ErrNamespaceExhausted), errors.Is(err, lease.ErrCapacity):
		status = http.StatusServiceUnavailable
	case errors.Is(err, renaming.ErrCancelled):
		status = http.StatusRequestTimeout
	case errors.Is(err, renaming.ErrBadConfig):
		status = http.StatusBadRequest
	case errors.Is(err, lease.ErrWrongToken):
		status = http.StatusConflict
	case errors.Is(err, lease.ErrExpired):
		status = http.StatusGone
	case errors.Is(err, lease.ErrUnknownName):
		status = http.StatusNotFound
	case errors.Is(err, lease.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, wire.Error{Error: err.Error()})
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// logFinalSnapshot emits the shutdown metrics snapshot: one structured
// log line with the counters an operator wants in the last lines before
// the process exits (and that a log pipeline can parse without scraping
// /metrics mid-shutdown). Safe after Close/Shutdown — every source here
// reads atomics or mutex-guarded snapshots.
func (s *server) logFinalSnapshot(out io.Writer) {
	lm := s.mgr.Metrics()
	attrs := []any{
		"uptime_s", time.Since(s.start).Seconds(),
		"requests", s.requests.Load(),
		"errors", s.errors.Load(),
		"acquired", lm.Acquired,
		"renewed", lm.Renewed,
		"released", lm.Released,
		"expired", lm.Expired,
		"rejected", lm.Rejected,
		"live", lm.Live,
		"max_live", lm.MaxLive,
		"resizes", lm.Resizes,
		"renew_p99_us", summarize(s.lat.renewBatch).P99Us,
	}
	if s.store != nil {
		st := s.store.Stats()
		attrs = append(attrs,
			"persist_appends", st.Appends,
			"persist_fsyncs", st.Syncs,
			"persist_compactions", st.Compactions,
			"persist_journal_bytes", st.JournalBytes,
			"persist_live", st.Live,
		)
		if st.Err != nil {
			attrs = append(attrs, "persist_err", st.Err.Error())
		}
	}
	slog.New(slog.NewTextHandler(out, nil)).Info("final metrics snapshot", attrs...)
}
