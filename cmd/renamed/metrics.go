package main

import (
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/lease"
	"repro/lease/persist"
)

// serverMetrics is the server's Prometheus surface: one registry, all
// series registered up front so the exposition is stable from the first
// scrape, and every hot-path handle (per-op counters, latency
// histograms) pre-resolved — the request path does lookups on its own
// locals, never on the registry. The per-transport request series and
// the batch-item verdict counters live in svc (service.NewTelemetry),
// registered on the same registry so /metrics stays one exposition.
type serverMetrics struct {
	reg *telemetry.Registry

	// svc owns the transport-labeled series (renamed_requests_total,
	// renamed_request_duration_seconds) and the shared
	// renamed_batch_item_verdicts_total counters; the service core
	// increments them for every transport, including this HTTP surface.
	svc *service.Telemetry

	requests *telemetry.CounterVec
	latency  *telemetry.HistogramVec
}

// cachedStats memoizes an expensive stats snapshot for ttl, so a scrape
// that reads a dozen series derived from one snapshot pays for it once —
// and a tight scrape loop cannot turn lease.Manager.Metrics (an O(live)
// stripe walk) into a denial of service.
type cachedStats[T any] struct {
	fetch func() T
	ttl   time.Duration

	mu sync.Mutex
	at time.Time
	v  T
}

func (c *cachedStats[T]) get() T {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); c.at.IsZero() || now.Sub(c.at) > c.ttl {
		c.v = c.fetch()
		c.at = now
	}
	return c.v
}

// newServerMetrics registers the full metric set for one server. Series
// names and labels are promlint-clean by construction (the telemetry
// registry panics on violations at startup, not at scrape time).
func newServerMetrics(s *server) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		svc: service.NewTelemetry(reg),
		requests: reg.CounterVec("renamed_http_requests_total",
			"HTTP requests served, by /v1 operation.", "op"),
		latency: reg.HistogramVec("renamed_http_request_duration_seconds",
			"Wall-clock handler latency, by /v1 operation.", "op"),
	}

	reg.CounterFunc("renamed_http_errors_total",
		"Requests answered with an error status.", s.errors.Load)
	reg.GaugeFunc("renamed_uptime_seconds",
		"Seconds since the server started.", func() float64 {
			return time.Since(s.start).Seconds()
		})

	// Lease-table series all read one cached snapshot: Metrics() walks
	// every stripe, which is worth paying once per second, not once per
	// series per scrape.
	leaseStats := &cachedStats[lease.Metrics]{fetch: s.mgr.Metrics, ttl: time.Second}
	leaseCounter := func(name, help string, get func(lease.Metrics) int64) {
		reg.CounterFunc(name, help, func() int64 { return get(leaseStats.get()) })
	}
	leaseCounter("renamed_lease_acquired_total", "Leases granted.",
		func(m lease.Metrics) int64 { return m.Acquired })
	leaseCounter("renamed_lease_renewed_total", "Successful renewals.",
		func(m lease.Metrics) int64 { return m.Renewed })
	leaseCounter("renamed_lease_released_total", "Explicit releases.",
		func(m lease.Metrics) int64 { return m.Released })
	leaseCounter("renamed_lease_expired_total", "Leases reclaimed after TTL expiry.",
		func(m lease.Metrics) int64 { return m.Expired })
	leaseCounter("renamed_lease_rejected_total", "Renew/release attempts refused (wrong token, unknown name, expired).",
		func(m lease.Metrics) int64 { return m.Rejected })
	leaseCounter("renamed_lease_reclaim_failures_total", "Expired names the namer refused to take back.",
		func(m lease.Metrics) int64 { return m.ReclaimFailed })
	leaseCounter("renamed_lease_capacity_sweeps_total", "At-capacity sweep passes run before rejecting an acquire.",
		func(m lease.Metrics) int64 { return m.CapacitySweeps })
	leaseCounter("renamed_lease_capacity_sweep_joins_total", "Acquirers that joined another goroutine's in-flight capacity sweep.",
		func(m lease.Metrics) int64 { return m.CapacitySweepJoins })
	reg.GaugeFunc("renamed_lease_live", "Unexpired leases currently held.",
		func() float64 { return float64(leaseStats.get().Live) })
	reg.GaugeFunc("renamed_lease_reserved", "Capacity slots taken: held leases plus in-flight acquire reservations.",
		func() float64 { return float64(leaseStats.get().Reserved) })

	// Elastic-namespace series: instantaneous values, not snapshots — a
	// dashboard watching a resize must see the step the moment it lands,
	// not up to a second late.
	leaseCounter("renamed_resizes_total", "Online capacity retargets applied to the lease cap.",
		func(m lease.Metrics) int64 { return m.Resizes })
	reg.GaugeFunc("renamed_namer_capacity", "Namer capacity: the concurrency bound the probe guarantees hold for.",
		s.namerCapacity)
	reg.GaugeFunc("renamed_lease_max_live", "Live-lease cap currently enforced (0 = uncapped).",
		s.leaseMaxLive)
	reg.GaugeFunc("renamed_namer_draining", "1 while a shrink is waiting on held names above the new bound, else 0.",
		s.namerDraining)

	if s.store != nil {
		persistStats := &cachedStats[persist.Stats]{fetch: s.store.Stats, ttl: time.Second}
		persistCounter := func(name, help string, get func(persist.Stats) int64) {
			reg.CounterFunc(name, help, func() int64 { return get(persistStats.get()) })
		}
		persistCounter("renamed_persist_appends_total", "Journal records appended since boot.",
			func(st persist.Stats) int64 { return st.Appends })
		persistCounter("renamed_persist_fsyncs_total", "Journal fsyncs since boot.",
			func(st persist.Stats) int64 { return st.Syncs })
		persistCounter("renamed_persist_compactions_total", "Snapshot compactions since boot.",
			func(st persist.Stats) int64 { return st.Compactions })
		persistCounter("renamed_persist_journal_bytes_total", "Framed bytes appended to the journal since boot.",
			func(st persist.Stats) int64 { return st.JournalBytes })
		reg.GaugeFunc("renamed_persist_journal_records", "Journal records since the last snapshot — the replay cost of a crash right now.",
			func() float64 { return float64(persistStats.get().JournalRecords) })
		reg.GaugeFunc("renamed_persist_live", "Leases the durable mirror believes are held.",
			func() float64 { return float64(persistStats.get().Live) })
		reg.GaugeFunc("renamed_persist_replayed_records", "Journal records replayed by the last recovery.",
			func() float64 { return float64(persistStats.get().ReplayedRecords) })
		reg.GaugeFunc("renamed_persist_truncated_bytes", "Torn-tail bytes dropped by the last recovery.",
			func() float64 { return float64(persistStats.get().TruncatedBytes) })
		reg.GaugeFunc("renamed_persist_recovery_seconds", "Wall-clock time the last recovery spent rebuilding state.",
			func() float64 { return persistStats.get().RecoveryDuration.Seconds() })
		reg.GaugeFunc("renamed_persist_unhealthy", "1 when the journal writer has a sticky error, else 0.",
			func() float64 {
				if persistStats.get().Err != nil {
					return 1
				}
				return 0
			})
	}
	return m
}

// namerCapacity reads the namer's instantaneous capacity: one atomic
// geometry load on the elastic path, cheap enough to skip the cached
// snapshot and report resize steps the moment they publish.
//
//renamed:noalloc
func (s *server) namerCapacity() float64 {
	return float64(s.core.Capacity())
}

// leaseMaxLive reads the live-lease cap: one atomic load.
//
//renamed:noalloc
func (s *server) leaseMaxLive() float64 {
	return float64(s.mgr.MaxLive())
}

// namerDraining reads the shrink drain state. Unlike the two gauges
// above this walks the drained tail (and builds the held-slot probe),
// so it is deliberately NOT annotated noalloc.
func (s *server) namerDraining() float64 {
	_, draining, _ := s.core.NamespaceInfo()
	if draining {
		return 1
	}
	return 0
}

// histSummary is the JSON shape latencies take in /debug/vars — kept
// byte-compatible with the pre-telemetry expvar surface.
type histSummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
}

func summarize(h *telemetry.Histogram) histSummary {
	s := histSummary{Count: h.Count()}
	if s.Count > 0 {
		s.MeanUs = float64(h.Sum()) / float64(s.Count) / 1e3
	}
	s.P50Us = float64(h.Quantile(0.50)) / 1e3
	s.P90Us = float64(h.Quantile(0.90)) / 1e3
	s.P99Us = float64(h.Quantile(0.99)) / 1e3
	return s
}
