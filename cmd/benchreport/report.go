// Package main implements benchreport, the machine-readable benchmark
// trajectory for this repo. Run mode executes the tier-1 benchmarks
// (./lease, ./lease/persist) plus a live renewal loadgen pass and emits
// BENCH_<n>.json; diff mode compares two such files and exits nonzero
// on any regression beyond a noise band — the gate that keeps the perf
// numbers in EXPERIMENTS.md from silently rotting.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line. Name carries
// the package, as "repro/lease:BenchmarkRenewBatch/batch512", with the
// trailing -GOMAXPROCS suffix stripped so reports diff across machines.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Derived are the headline service numbers pulled out of the raw
// benchmark list (plus the loadgen pass) — the values the ROADMAP's
// prose claims are made of, in comparable machine-readable form.
type Derived struct {
	// RenewNsPerOp is the single-lease renew fast path.
	RenewNsPerOp float64 `json:"renew_ns_per_op,omitempty"`
	// RenewBatchNsPerRenewal is per RENEWAL at batch=512 over 2^16
	// standing leases — the acceptance number (≤ ~240ns with telemetry).
	RenewBatchNsPerRenewal float64 `json:"renew_batch_ns_per_renewal,omitempty"`
	// RecoveryMs is a cold boot (journal replay, no snapshot) of 2^12
	// live leases: persist.Open + Manager.Restore.
	RecoveryMs float64 `json:"recovery_ms,omitempty"`
	// RenewsPerSec is the sustained renewal throughput of the loadgen
	// pass (in-process engine by default, live HTTP with -target).
	RenewsPerSec float64 `json:"renews_per_sec,omitempty"`
	// RenewsPerSecHTTP and RenewsPerSecBin are saturated live renewal
	// throughput over each wire against a real renamed server (the
	// -spawn / -target-bin passes): HTTP/JSON round trips versus
	// pipelined binary-protocol frames, same lease table. Rows appear
	// only in reports generated after the binary transport landed; -diff
	// tolerates their absence from older baselines.
	RenewsPerSecHTTP float64 `json:"renews_per_sec_http,omitempty"`
	RenewsPerSecBin  float64 `json:"renews_per_sec_bin,omitempty"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	Schema      int         `json:"schema"`
	GoVersion   string      `json:"go_version,omitempty"`
	GeneratedAt string      `json:"generated_at,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
	Derived     Derived     `json:"derived"`
}

// benchLine matches a go-test benchmark result. MB/s (optional, column
// 4) is skipped; -benchmem appends B/op and allocs/op.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

var pkgLine = regexp.MustCompile(`^pkg:\s+(\S+)`)

// parseBenchOutput reads `go test -bench` output (one or more packages)
// into Benchmarks, prefixing each name with the pkg: line in force.
func parseBenchOutput(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		if pkg != "" {
			b.Name = pkg + ":" + m[1]
		}
		var err error
		if b.Iterations, err = strconv.ParseInt(m[2], 10, 64); err != nil {
			return nil, fmt.Errorf("benchreport: bad iterations in %q: %v", line, err)
		}
		if b.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("benchreport: bad ns/op in %q: %v", line, err)
		}
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// mergeBenchmarks averages duplicate names (from -count > 1) so the
// report holds one row per benchmark. Iterations sum; allocs/bytes are
// per-op and deterministic, so the max is kept to surface any run that
// allocated more.
func mergeBenchmarks(in []Benchmark) []Benchmark {
	type acc struct {
		Benchmark
		runs int64
	}
	order := []string{}
	byName := map[string]*acc{}
	for _, b := range in {
		a, ok := byName[b.Name]
		if !ok {
			order = append(order, b.Name)
			byName[b.Name] = &acc{Benchmark: b, runs: 1}
			continue
		}
		a.Iterations += b.Iterations
		a.NsPerOp += b.NsPerOp
		a.runs++
		if b.BytesPerOp > a.BytesPerOp {
			a.BytesPerOp = b.BytesPerOp
		}
		if b.AllocsPerOp > a.AllocsPerOp {
			a.AllocsPerOp = b.AllocsPerOp
		}
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		a := byName[name]
		a.NsPerOp /= float64(a.runs)
		out = append(out, a.Benchmark)
	}
	return out
}

// derive pulls the headline numbers out of the benchmark list.
func derive(benches []Benchmark) Derived {
	var d Derived
	for _, b := range benches {
		switch {
		case strings.HasSuffix(b.Name, ":BenchmarkRenew"),
			strings.HasSuffix(b.Name, "BenchmarkRenew/sharded"):
			d.RenewNsPerOp = b.NsPerOp
		case strings.HasSuffix(b.Name, "BenchmarkRenewBatch/batch512"):
			d.RenewBatchNsPerRenewal = b.NsPerOp
		case strings.HasSuffix(b.Name, ":BenchmarkRecovery"):
			d.RecoveryMs = b.NsPerOp / 1e6
		}
	}
	return d
}

func readReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("benchreport: %s: %v", path, err)
	}
	return &r, nil
}

func writeReport(path string, r *Report) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// diffReports compares new against old under a fractional noise band.
// Lower is better for ns/op and recovery; higher is better for
// renews/s; allocs/op are deterministic, so ANY increase is a
// regression regardless of noise. A benchmark present in old but gone
// from new is a regression too — a vanished benchmark must not read as
// a pass. Returns the human-readable comparison lines and the subset
// that are regressions.
func diffReports(old, new *Report, noise float64) (lines, regressions []string) {
	oldBy := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	reg := func(format string, args ...any) {
		s := fmt.Sprintf(format, args...)
		lines = append(lines, "REGRESSION "+s)
		regressions = append(regressions, s)
	}
	for _, nb := range new.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("new        %s: %.1f ns/op (no baseline)", nb.Name, nb.NsPerOp))
			continue
		}
		delete(oldBy, nb.Name)
		ratio := nb.NsPerOp / ob.NsPerOp
		switch {
		case nb.NsPerOp > ob.NsPerOp*(1+noise):
			reg("%s: %.1f -> %.1f ns/op (%+.1f%%, noise band %.0f%%)",
				nb.Name, ob.NsPerOp, nb.NsPerOp, (ratio-1)*100, noise*100)
		default:
			lines = append(lines, fmt.Sprintf("ok         %s: %.1f -> %.1f ns/op (%+.1f%%)",
				nb.Name, ob.NsPerOp, nb.NsPerOp, (ratio-1)*100))
		}
		// Allocations are deterministic on hot paths, so 0 -> 1 must trip
		// with no noise band; alloc-heavy benchmarks (recovery replays,
		// setup-dominated runs) wobble a little with iteration count, so
		// a 5% tolerance applies on top of the old value.
		if nb.AllocsPerOp > ob.AllocsPerOp+ob.AllocsPerOp/20 {
			reg("%s: allocs/op %d -> %d (tolerance 5%%, zero stays zero)",
				nb.Name, ob.AllocsPerOp, nb.AllocsPerOp)
		}
	}
	missing := make([]string, 0, len(oldBy))
	for name := range oldBy {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		reg("%s: present in baseline, missing from new report", name)
	}
	if o, n := old.Derived.RecoveryMs, new.Derived.RecoveryMs; o > 0 && n > o*(1+noise) {
		reg("recovery_ms: %.2f -> %.2f (%+.1f%%)", o, n, (n/o-1)*100)
	}
	// Derived throughput rows gate only when BOTH reports carry them: a
	// row present only in the newer report (a new measurement, like the
	// per-wire renews/s that appeared with the binary transport) is
	// informational, not a regression — and one present only in the old
	// report means the pass was skipped this run, which the benchmark
	// list above already polices.
	higherBetter := func(name string, o, n float64) {
		switch {
		case o > 0 && n > 0 && n < o/(1+noise):
			reg("%s: %.0f -> %.0f (%+.1f%%; higher is better)", name, o, n, (n/o-1)*100)
		case o == 0 && n > 0:
			lines = append(lines, fmt.Sprintf("new        %s: %.0f (no baseline)", name, n))
		}
	}
	higherBetter("renews_per_sec", old.Derived.RenewsPerSec, new.Derived.RenewsPerSec)
	higherBetter("renews_per_sec_http", old.Derived.RenewsPerSecHTTP, new.Derived.RenewsPerSecHTTP)
	higherBetter("renews_per_sec_bin", old.Derived.RenewsPerSecBin, new.Derived.RenewsPerSecBin)
	return lines, regressions
}
