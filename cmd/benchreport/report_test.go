package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/lease
cpu: shared
BenchmarkAcquireRelease-4   	 1000000	       950.0 ns/op	      48 B/op	       1 allocs/op
BenchmarkRenew-4            	 5000000	       210.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkRenewBatch/single-4	 5000000	       214.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkRenewBatch/batch512-4	 8000000	       225.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/lease	8.1s
pkg: repro/lease/persist
BenchmarkJournaledChurn-4   	  500000	      2100.0 ns/op	  12.34 MB/s	     128 B/op	       3 allocs/op
BenchmarkRecovery-4         	     100	  11500000 ns/op	 4096 B/op	      99 allocs/op
PASS
ok  	repro/lease/persist	3.0s
`

func TestParseBenchOutput(t *testing.T) {
	benches, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 6 {
		t.Fatalf("parsed %d benchmarks, want 6: %+v", len(benches), benches)
	}
	// Names carry the package and drop the -GOMAXPROCS suffix.
	if got := benches[0].Name; got != "repro/lease:BenchmarkAcquireRelease" {
		t.Fatalf("name = %q", got)
	}
	if got := benches[3].Name; got != "repro/lease:BenchmarkRenewBatch/batch512" {
		t.Fatalf("sub-benchmark name = %q", got)
	}
	if b := benches[0]; b.Iterations != 1000000 || b.NsPerOp != 950 || b.BytesPerOp != 48 || b.AllocsPerOp != 1 {
		t.Fatalf("first row = %+v", b)
	}
	// The MB/s column must not shift B/op and allocs/op.
	if b := benches[4]; b.Name != "repro/lease/persist:BenchmarkJournaledChurn" ||
		b.BytesPerOp != 128 || b.AllocsPerOp != 3 {
		t.Fatalf("MB/s row = %+v", b)
	}
}

func TestDeriveHeadlineNumbers(t *testing.T) {
	benches, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	d := derive(benches)
	if d.RenewNsPerOp != 210.3 {
		t.Fatalf("RenewNsPerOp = %v", d.RenewNsPerOp)
	}
	if d.RenewBatchNsPerRenewal != 225.5 {
		t.Fatalf("RenewBatchNsPerRenewal = %v (must pick batch512, not single)", d.RenewBatchNsPerRenewal)
	}
	if d.RecoveryMs != 11.5 {
		t.Fatalf("RecoveryMs = %v, want ns/op converted to ms", d.RecoveryMs)
	}
}

func TestMergeBenchmarksAveragesCounts(t *testing.T) {
	merged := mergeBenchmarks([]Benchmark{
		{Name: "a", Iterations: 10, NsPerOp: 100, AllocsPerOp: 0},
		{Name: "a", Iterations: 10, NsPerOp: 300, AllocsPerOp: 1},
		{Name: "b", Iterations: 5, NsPerOp: 50},
	})
	if len(merged) != 2 {
		t.Fatalf("merged to %d rows, want 2", len(merged))
	}
	if a := merged[0]; a.NsPerOp != 200 || a.Iterations != 20 || a.AllocsPerOp != 1 {
		t.Fatalf("merged a = %+v (want mean ns/op, summed iters, max allocs)", a)
	}
}

func report(benches []Benchmark, d Derived) *Report {
	return &Report{Schema: 1, Benchmarks: benches, Derived: d}
}

func TestDiffWithinNoiseIsClean(t *testing.T) {
	old := report([]Benchmark{{Name: "x", NsPerOp: 200}}, Derived{RenewsPerSec: 1e6, RecoveryMs: 10})
	cur := report([]Benchmark{{Name: "x", NsPerOp: 230}}, Derived{RenewsPerSec: 0.9e6, RecoveryMs: 11})
	_, regs := diffReports(old, cur, 0.25)
	if len(regs) != 0 {
		t.Fatalf("regressions within the noise band: %v", regs)
	}
}

func TestDiffCatchesNsPerOpRegression(t *testing.T) {
	old := report([]Benchmark{{Name: "x", NsPerOp: 200}}, Derived{})
	cur := report([]Benchmark{{Name: "x", NsPerOp: 300}}, Derived{})
	_, regs := diffReports(old, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "x") {
		t.Fatalf("regs = %v, want the 50%% ns/op regression flagged", regs)
	}
	// An improvement of the same magnitude is NOT a regression.
	_, regs = diffReports(cur, old, 0.25)
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestDiffCatchesAllocRegressionExactly(t *testing.T) {
	old := report([]Benchmark{{Name: "x", NsPerOp: 200, AllocsPerOp: 0}}, Derived{})
	cur := report([]Benchmark{{Name: "x", NsPerOp: 200, AllocsPerOp: 1}}, Derived{})
	_, regs := diffReports(old, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("regs = %v, want the 0->1 allocs/op flagged despite identical ns/op", regs)
	}
}

func TestDiffCatchesMissingBenchmark(t *testing.T) {
	old := report([]Benchmark{{Name: "x", NsPerOp: 200}, {Name: "y", NsPerOp: 100}}, Derived{})
	cur := report([]Benchmark{{Name: "x", NsPerOp: 200}}, Derived{})
	_, regs := diffReports(old, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("regs = %v, want the vanished benchmark flagged", regs)
	}
}

func TestDiffCatchesThroughputDrop(t *testing.T) {
	old := report(nil, Derived{RenewsPerSec: 1e6})
	cur := report(nil, Derived{RenewsPerSec: 0.5e6})
	_, regs := diffReports(old, cur, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "renews_per_sec") {
		t.Fatalf("regs = %v, want the throughput drop flagged", regs)
	}
}

// TestRunDiffExitCodes drives the CLI surface end to end: write two
// reports, diff them both ways, and check the exit codes CI keys on.
func TestRunDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldP, newP := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	if err := writeReport(oldP, report([]Benchmark{{Name: "x", NsPerOp: 200}}, Derived{})); err != nil {
		t.Fatal(err)
	}
	if err := writeReport(newP, report([]Benchmark{{Name: "x", NsPerOp: 210}}, Derived{})); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-diff", "-old", oldP, "-new", newP}, &out, &errb); code != 0 {
		t.Fatalf("clean diff exited %d: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("clean diff output: %q", out.String())
	}
	// Inject a regression into the candidate: the gate must go red.
	if err := writeReport(newP, report([]Benchmark{{Name: "x", NsPerOp: 400}}, Derived{})); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-diff", "-old", oldP, "-new", newP}, &out, &errb); code != 1 {
		t.Fatalf("regressed diff exited %d, want 1: %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("regressed diff output: %q", out.String())
	}
	// Round-trip: the report file reads back identically.
	rt, err := readReport(newP)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Benchmarks[0].NsPerOp != 400 {
		t.Fatalf("round-tripped report = %+v", rt)
	}
}

// TestDiffToleratesNewDerivedRows: a derived row present only in the
// NEWER report (the per-wire renews/s rows that appeared with the
// binary transport) must not trip the gate against an older baseline —
// but a drop in a row both reports carry still must.
func TestDiffToleratesNewDerivedRows(t *testing.T) {
	old := report(nil, Derived{RenewsPerSec: 1e6})
	cur := report(nil, Derived{RenewsPerSec: 1e6, RenewsPerSecHTTP: 5e4, RenewsPerSecBin: 5e5})
	lines, regs := diffReports(old, cur, 0.25)
	if len(regs) != 0 {
		t.Fatalf("new-only derived rows flagged as regressions: %v", regs)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "renews_per_sec_bin") || !strings.Contains(joined, "no baseline") {
		t.Fatalf("new derived rows not reported informationally:\n%s", joined)
	}
	// Once both reports carry the row, a drop beyond the band gates.
	worse := report(nil, Derived{RenewsPerSec: 1e6, RenewsPerSecHTTP: 5e4, RenewsPerSecBin: 1e5})
	_, regs = diffReports(cur, worse, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "renews_per_sec_bin") {
		t.Fatalf("regs = %v, want the bin throughput drop flagged", regs)
	}
}

func TestEngineLoadgen(t *testing.T) {
	rps, err := engineRenewsPerSec(64, 16, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rps <= 0 {
		t.Fatalf("renews/s = %v, want > 0", rps)
	}
}
