package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("out", "BENCH_6.json", "report file to write (run mode)")
		benchRe   = fs.String("bench", "AcquireRelease|Renew|RenewBatch|JournaledChurn|Recovery", "benchmark regex passed to go test -bench")
		benchTime = fs.String("benchtime", "0.3s", "go test -benchtime per benchmark")
		skipRe    = fs.String("skip", ".*/fsync=always", "go test -skip regex; default excludes host-IO-bound benchmarks whose numbers gate flakily")
		count     = fs.Int("count", 1, "go test -count; runs are averaged in the report")
		pkgs      = fs.String("pkgs", "./lease,./lease/persist", "comma-separated packages to benchmark")
		target    = fs.String("target", "", "live renamed base URL for the loadgen pass (default: in-process engine)")
		loadDur   = fs.Duration("loadgen", 2*time.Second, "loadgen pass duration (0 disables)")
		loadN     = fs.Int("loadgen-leases", 4096, "standing leases in the loadgen pass")
		loadBatch = fs.Int("loadgen-batch", 512, "renew batch size in the engine loadgen pass")

		diff  = fs.Bool("diff", false, "diff mode: compare -old against -new instead of running")
		oldP  = fs.String("old", "", "baseline report (diff mode)")
		newP  = fs.String("new", "", "candidate report (diff mode)")
		noise = fs.Float64("noise", 0.25, "fractional noise band before a ns/op delta is a regression")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *diff {
		return runDiff(*oldP, *newP, *noise, stdout, stderr)
	}

	rep := &Report{Schema: 1, GoVersion: runtime.Version(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		fmt.Fprintf(stderr, "benchreport: go test -bench %s %s\n", *benchRe, pkg)
		raw, err := goBench(pkg, *benchRe, *skipRe, *benchTime, *count)
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: %s: %v\n", pkg, err)
			return 1
		}
		benches, err := parseBenchOutput(bytes.NewReader(raw))
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: %v\n", err)
			return 1
		}
		rep.Benchmarks = append(rep.Benchmarks, benches...)
	}
	rep.Benchmarks = mergeBenchmarks(rep.Benchmarks)
	rep.Derived = derive(rep.Benchmarks)

	if *loadDur > 0 {
		var (
			rps float64
			err error
		)
		if *target != "" {
			fmt.Fprintf(stderr, "benchreport: live loadgen against %s for %v\n", *target, *loadDur)
			rps, err = liveRenewsPerSec(*target, *loadN, *loadDur)
		} else {
			fmt.Fprintf(stderr, "benchreport: engine loadgen, %d leases x batch %d for %v\n", *loadN, *loadBatch, *loadDur)
			rps, err = engineRenewsPerSec(*loadN, *loadBatch, *loadDur)
		}
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: loadgen: %v\n", err)
			return 1
		}
		rep.Derived.RenewsPerSec = rps
	}

	if err := writeReport(*out, rep); err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: %d benchmarks", *out, len(rep.Benchmarks))
	if d := rep.Derived; d.RenewBatchNsPerRenewal > 0 {
		fmt.Fprintf(stdout, ", renew_batch %.1f ns/renewal", d.RenewBatchNsPerRenewal)
	}
	if d := rep.Derived; d.RecoveryMs > 0 {
		fmt.Fprintf(stdout, ", recovery %.1f ms", d.RecoveryMs)
	}
	if d := rep.Derived; d.RenewsPerSec > 0 {
		fmt.Fprintf(stdout, ", %.0f renews/s", d.RenewsPerSec)
	}
	fmt.Fprintln(stdout)
	return 0
}

// goBench shells out to the go tool for one package's benchmarks. -run
// ^$ keeps unit tests out of the timing run.
func goBench(pkg, re, skip, benchtime string, count int) ([]byte, error) {
	args := []string{"test", "-run", "^$",
		"-bench", re, "-benchmem", "-benchtime", benchtime,
		"-count", fmt.Sprint(count)}
	if skip != "" {
		args = append(args, "-skip", skip)
	}
	cmd := exec.Command("go", append(args, pkg)...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%v\n%s", err, buf.Bytes())
	}
	return buf.Bytes(), nil
}

func runDiff(oldPath, newPath string, noise float64, stdout, stderr io.Writer) int {
	if oldPath == "" || newPath == "" {
		fmt.Fprintln(stderr, "benchreport: -diff needs -old and -new")
		return 2
	}
	old, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 2
	}
	cur, err := readReport(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 2
	}
	lines, regressions := diffReports(old, cur, noise)
	for _, l := range lines {
		fmt.Fprintln(stdout, l)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stderr, "benchreport: %d regression(s) beyond the %.0f%% noise band\n",
			len(regressions), noise*100)
		return 1
	}
	fmt.Fprintf(stdout, "no regressions (%d benchmarks, noise band %.0f%%)\n",
		len(cur.Benchmarks), noise*100)
	return 0
}
