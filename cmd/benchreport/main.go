package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("out", "BENCH_7.json", "report file to write (run mode)")
		benchRe   = fs.String("bench", "AcquireRelease|Renew|RenewBatch|JournaledChurn|Recovery", "benchmark regex passed to go test -bench")
		benchTime = fs.String("benchtime", "0.3s", "go test -benchtime per benchmark")
		skipRe    = fs.String("skip", ".*/fsync=always", "go test -skip regex; default excludes host-IO-bound benchmarks whose numbers gate flakily")
		count     = fs.Int("count", 1, "go test -count; runs are averaged in the report")
		pkgs      = fs.String("pkgs", "./lease,./lease/persist", "comma-separated packages to benchmark")
		target    = fs.String("target", "", "live renamed base URL for the loadgen pass (default: in-process engine)")
		targetBin = fs.String("target-bin", "", "live renamed bin://host:port target for the saturated per-wire passes; needs -target too for the HTTP side")
		spawn     = fs.Bool("spawn", false, "build and launch a renamed server (HTTP + binary listeners) for the per-wire passes, instead of -target/-target-bin")
		loadDur   = fs.Duration("loadgen", 2*time.Second, "loadgen pass duration (0 disables)")
		loadN     = fs.Int("loadgen-leases", 4096, "standing leases in the loadgen pass")
		loadBatch = fs.Int("loadgen-batch", 512, "renew batch size in the engine loadgen pass")
		liveBatch = fs.Int("loadgen-live-batch", 8, "renew batch size in the saturated per-wire passes (heartbeat-sized, so the wire dominates)")

		diff  = fs.Bool("diff", false, "diff mode: compare -old against -new instead of running")
		oldP  = fs.String("old", "", "baseline report (diff mode)")
		newP  = fs.String("new", "", "candidate report (diff mode)")
		noise = fs.Float64("noise", 0.25, "fractional noise band before a ns/op delta is a regression")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *diff {
		return runDiff(*oldP, *newP, *noise, stdout, stderr)
	}

	rep := &Report{Schema: 1, GoVersion: runtime.Version(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		fmt.Fprintf(stderr, "benchreport: go test -bench %s %s\n", *benchRe, pkg)
		raw, err := goBench(pkg, *benchRe, *skipRe, *benchTime, *count)
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: %s: %v\n", pkg, err)
			return 1
		}
		benches, err := parseBenchOutput(bytes.NewReader(raw))
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: %v\n", err)
			return 1
		}
		rep.Benchmarks = append(rep.Benchmarks, benches...)
	}
	rep.Benchmarks = mergeBenchmarks(rep.Benchmarks)
	rep.Derived = derive(rep.Benchmarks)

	if *loadDur > 0 {
		var (
			rps float64
			err error
		)
		if *target != "" {
			fmt.Fprintf(stderr, "benchreport: live loadgen against %s for %v\n", *target, *loadDur)
			rps, err = liveRenewsPerSec(*target, *loadN, *loadDur)
		} else {
			fmt.Fprintf(stderr, "benchreport: engine loadgen, %d leases x batch %d for %v\n", *loadN, *loadBatch, *loadDur)
			rps, err = engineRenewsPerSec(*loadN, *loadBatch, *loadDur)
		}
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: loadgen: %v\n", err)
			return 1
		}
		rep.Derived.RenewsPerSec = rps
	}

	// The per-wire passes compare the two transports against one live
	// server: saturated heartbeat-sized renew_batch calls over HTTP/JSON
	// round trips versus the pipelined binary protocol.
	httpTarget, binTarget := *target, *targetBin
	if *spawn && *loadDur > 0 {
		var stop func()
		var err error
		httpTarget, binTarget, stop, err = spawnServer(stderr)
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: spawn: %v\n", err)
			return 1
		}
		defer stop()
	}
	if *loadDur > 0 && httpTarget != "" && binTarget != "" {
		fmt.Fprintf(stderr, "benchreport: saturated HTTP loadgen against %s for %v\n", httpTarget, *loadDur)
		rps, err := transportRenewsPerSec(httpTarget, *loadN, *liveBatch, 4, *loadDur)
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: http loadgen: %v\n", err)
			return 1
		}
		rep.Derived.RenewsPerSecHTTP = rps
		addr := strings.TrimPrefix(binTarget, "bin://")
		fmt.Fprintf(stderr, "benchreport: pipelined binary loadgen against %s for %v\n", binTarget, *loadDur)
		rps, err = binPipelinedRenewsPerSec(addr, *loadN, *liveBatch, 8, *loadDur)
		if err != nil {
			fmt.Fprintf(stderr, "benchreport: bin loadgen: %v\n", err)
			return 1
		}
		rep.Derived.RenewsPerSecBin = rps
	}

	if err := writeReport(*out, rep); err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: %d benchmarks", *out, len(rep.Benchmarks))
	if d := rep.Derived; d.RenewBatchNsPerRenewal > 0 {
		fmt.Fprintf(stdout, ", renew_batch %.1f ns/renewal", d.RenewBatchNsPerRenewal)
	}
	if d := rep.Derived; d.RecoveryMs > 0 {
		fmt.Fprintf(stdout, ", recovery %.1f ms", d.RecoveryMs)
	}
	if d := rep.Derived; d.RenewsPerSec > 0 {
		fmt.Fprintf(stdout, ", %.0f renews/s", d.RenewsPerSec)
	}
	if d := rep.Derived; d.RenewsPerSecHTTP > 0 && d.RenewsPerSecBin > 0 {
		fmt.Fprintf(stdout, ", live http %.0f vs bin %.0f renews/s (%.1fx)",
			d.RenewsPerSecHTTP, d.RenewsPerSecBin, d.RenewsPerSecBin/d.RenewsPerSecHTTP)
	}
	fmt.Fprintln(stdout)
	return 0
}

// spawnServer builds cmd/renamed into a temp dir and launches it with
// both listeners on ephemeral ports, parsing the startup banners for
// the actual addresses. stop tears the server down (SIGTERM, wait) and
// removes the binary.
func spawnServer(stderr io.Writer) (httpTarget, binTarget string, stop func(), err error) {
	dir, err := os.MkdirTemp("", "benchreport")
	if err != nil {
		return "", "", nil, err
	}
	bin := dir + "/renamed"
	build := exec.Command("go", "build", "-o", bin, "./cmd/renamed")
	if out, err := build.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", "", nil, fmt.Errorf("go build ./cmd/renamed: %v\n%s", err, out)
	}
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-listen-bin", "127.0.0.1:0",
		"-capacity", "65536", "-ttl", "1h")
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		os.RemoveAll(dir)
		return "", "", nil, err
	}
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dir)
		return "", "", nil, err
	}
	stop = func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
		os.RemoveAll(dir)
	}
	// Both banners end in "on host:port"; the bin one names its protocol.
	addrs := make(chan [2]string, 1)
	go func() {
		var httpAddr, binAddr string
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fields := strings.Fields(line)
			if len(fields) < 2 || fields[len(fields)-2] != "on" {
				continue
			}
			addr := fields[len(fields)-1]
			if strings.Contains(line, "binary protocol") {
				binAddr = addr
			} else if strings.Contains(line, "serving") {
				httpAddr = addr
			}
			if httpAddr != "" && binAddr != "" {
				addrs <- [2]string{httpAddr, binAddr}
				break
			}
		}
		// Keep draining so the server never blocks on a full stdout pipe.
		for sc.Scan() {
		}
	}()
	select {
	case a := <-addrs:
		return "http://" + a[0], "bin://" + a[1], stop, nil
	case <-time.After(30 * time.Second):
		stop()
		return "", "", nil, fmt.Errorf("renamed did not report its listen addresses within 30s")
	}
}

// goBench shells out to the go tool for one package's benchmarks. -run
// ^$ keeps unit tests out of the timing run.
func goBench(pkg, re, skip, benchtime string, count int) ([]byte, error) {
	args := []string{"test", "-run", "^$",
		"-bench", re, "-benchmem", "-benchtime", benchtime,
		"-count", fmt.Sprint(count)}
	if skip != "" {
		args = append(args, "-skip", skip)
	}
	cmd := exec.Command("go", append(args, pkg)...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%v\n%s", err, buf.Bytes())
	}
	return buf.Bytes(), nil
}

func runDiff(oldPath, newPath string, noise float64, stdout, stderr io.Writer) int {
	if oldPath == "" || newPath == "" {
		fmt.Fprintln(stderr, "benchreport: -diff needs -old and -new")
		return 2
	}
	old, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 2
	}
	cur, err := readReport(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchreport: %v\n", err)
		return 2
	}
	lines, regressions := diffReports(old, cur, noise)
	for _, l := range lines {
		fmt.Fprintln(stdout, l)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stderr, "benchreport: %d regression(s) beyond the %.0f%% noise band\n",
			len(regressions), noise*100)
		return 1
	}
	fmt.Fprintf(stdout, "no regressions (%d benchmarks, noise band %.0f%%)\n",
		len(cur.Benchmarks), noise*100)
	return 0
}
