package main

import (
	"context"
	"fmt"
	"time"

	renaming "repro"
	"repro/lease"
	"repro/leaseclient"
)

// engineRenewsPerSec measures sustained renewal throughput against the
// lease engine directly: a standing population of `leases` renewed in
// RenewBatch chunks of `batch` for `dur`. This is the in-process
// counterpart of the -sessions loadgen — no HTTP, no JSON, just the
// table — so the number is comparable across machines and isolates
// engine regressions from transport ones.
func engineRenewsPerSec(leases, batch int, dur time.Duration) (float64, error) {
	nm, err := renaming.NewLevelArray(leases)
	if err != nil {
		return 0, err
	}
	mgr, err := lease.New(nm, lease.Config{TTL: time.Hour, SweepInterval: -1})
	if err != nil {
		return 0, err
	}
	defer mgr.Shutdown()
	ctx := context.Background()
	held, err := mgr.AcquireBatch(ctx, "benchreport", leases, 0, nil)
	if err != nil {
		return 0, err
	}
	items := make([]lease.RenewItem, len(held))
	for i, l := range held {
		items[i] = lease.RenewItem{Name: l.Name, Token: l.Token}
	}

	var renewed int64
	start := time.Now()
	deadline := start.Add(dur)
	for pos := 0; time.Now().Before(deadline); {
		end := pos + batch
		if end > len(items) {
			end = len(items)
		}
		chunk := items[pos:end]
		results, err := mgr.RenewBatch(ctx, chunk, 0)
		if err != nil {
			return 0, err
		}
		for i := range results {
			if results[i].Err != nil {
				return 0, fmt.Errorf("renew %d: %v", chunk[i].Name, results[i].Err)
			}
		}
		renewed += int64(len(chunk))
		if pos = end; pos >= len(items) {
			pos = 0
		}
	}
	return float64(renewed) / time.Since(start).Seconds(), nil
}

// liveRenewsPerSec measures renewal throughput against a running
// renamed server over real HTTP: a heartbeating leaseclient session
// holding `leases` with a short TTL, observed for `dur`. Unlike the
// engine number this includes JSON, the transport, and the heartbeat
// schedule, so it is a service-level figure.
func liveRenewsPerSec(target string, leases int, dur time.Duration) (float64, error) {
	sess, err := leaseclient.NewSession(leaseclient.Config{
		Target: target,
		Owner:  "benchreport",
		TTL:    time.Second,
	})
	if err != nil {
		return 0, err
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	if _, err := sess.AcquireN(ctx, leases); err != nil {
		return 0, err
	}
	base := sess.Stats().Renewed
	start := time.Now()
	time.Sleep(dur)
	elapsed := time.Since(start)
	st := sess.Stats()
	if st.TransportErrors > 0 {
		return 0, fmt.Errorf("live loadgen saw %d transport errors against %s", st.TransportErrors, target)
	}
	return float64(st.Renewed-base) / elapsed.Seconds(), nil
}
