package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	renaming "repro"
	"repro/internal/wire"
	"repro/internal/wire/binproto"
	"repro/lease"
	"repro/leaseclient"
)

// engineRenewsPerSec measures sustained renewal throughput against the
// lease engine directly: a standing population of `leases` renewed in
// RenewBatch chunks of `batch` for `dur`. This is the in-process
// counterpart of the -sessions loadgen — no HTTP, no JSON, just the
// table — so the number is comparable across machines and isolates
// engine regressions from transport ones.
func engineRenewsPerSec(leases, batch int, dur time.Duration) (float64, error) {
	nm, err := renaming.NewLevelArray(leases)
	if err != nil {
		return 0, err
	}
	mgr, err := lease.New(nm, lease.Config{TTL: time.Hour, SweepInterval: -1})
	if err != nil {
		return 0, err
	}
	defer mgr.Shutdown()
	ctx := context.Background()
	held, err := mgr.AcquireBatch(ctx, "benchreport", leases, 0, nil)
	if err != nil {
		return 0, err
	}
	items := make([]lease.RenewItem, len(held))
	for i, l := range held {
		items[i] = lease.RenewItem{Name: l.Name, Token: l.Token}
	}

	var renewed int64
	start := time.Now()
	deadline := start.Add(dur)
	for pos := 0; time.Now().Before(deadline); {
		end := pos + batch
		if end > len(items) {
			end = len(items)
		}
		chunk := items[pos:end]
		results, err := mgr.RenewBatch(ctx, chunk, 0)
		if err != nil {
			return 0, err
		}
		for i := range results {
			if results[i].Err != nil {
				return 0, fmt.Errorf("renew %d: %v", chunk[i].Name, results[i].Err)
			}
		}
		renewed += int64(len(chunk))
		if pos = end; pos >= len(items) {
			pos = 0
		}
	}
	return float64(renewed) / time.Since(start).Seconds(), nil
}

// liveRenewsPerSec measures renewal throughput against a running
// renamed server over real HTTP: a heartbeating leaseclient session
// holding `leases` with a short TTL, observed for `dur`. Unlike the
// engine number this includes JSON, the transport, and the heartbeat
// schedule, so it is a service-level figure.
func liveRenewsPerSec(target string, leases int, dur time.Duration) (float64, error) {
	sess, err := leaseclient.NewSession(leaseclient.Config{
		Target: target,
		Owner:  "benchreport",
		TTL:    time.Second,
	})
	if err != nil {
		return 0, err
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	if _, err := sess.AcquireN(ctx, leases); err != nil {
		return 0, err
	}
	base := sess.Stats().Renewed
	start := time.Now()
	time.Sleep(dur)
	elapsed := time.Since(start)
	st := sess.Stats()
	if st.TransportErrors > 0 {
		return 0, fmt.Errorf("live loadgen saw %d transport errors against %s", st.TransportErrors, target)
	}
	return float64(st.Renewed-base) / elapsed.Seconds(), nil
}

// transportRenewsPerSec measures SATURATED renewal throughput over one
// wire: `workers` clients each own a leaseclient transport (http:// or
// bin:// by target scheme) and tight-loop renew_batch calls of `batch`
// leases with no heartbeat schedule in between. Unlike liveRenewsPerSec
// this measures what the transport can move, not what a polite session
// chooses to send — it is the honest basis for comparing wires.
func transportRenewsPerSec(target string, leases, batch, workers int, dur time.Duration) (float64, error) {
	if workers < 1 {
		workers = 1
	}
	if batch < 1 {
		batch = 1
	}
	if leases < batch*workers {
		leases = batch * workers
	}
	setup, err := leaseclient.NewTransport(target)
	if err != nil {
		return 0, err
	}
	defer setup.Close()
	ctx := context.Background()
	granted, err := setup.AcquireBatch(ctx, &wire.AcquireBatchRequest{
		Owner: "benchreport", Count: leases, TTLms: time.Hour.Milliseconds(),
	})
	if err != nil {
		return 0, fmt.Errorf("acquiring %d leases: %w", leases, err)
	}
	defer func() {
		items := make([]wire.Item, len(granted.Leases))
		for i, l := range granted.Leases {
			items[i] = wire.Item{Name: l.Name, Token: l.Token}
		}
		setup.ReleaseBatch(ctx, &wire.ReleaseBatchRequest{Items: items})
	}()

	var renewed atomic.Int64
	errs := make(chan error, workers)
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	per := len(granted.Leases) / workers
	for w := 0; w < workers; w++ {
		share := granted.Leases[w*per : (w+1)*per]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := leaseclient.NewTransport(target)
			if err != nil {
				errs <- err
				return
			}
			defer tr.Close()
			req := wire.RenewBatchRequest{Items: make([]wire.Item, 0, batch)}
			for pos := 0; time.Now().Before(deadline); {
				end := pos + batch
				if end > len(share) {
					end = len(share)
				}
				req.Items = req.Items[:0]
				for _, l := range share[pos:end] {
					req.Items = append(req.Items, wire.Item{Name: l.Name, Token: l.Token})
				}
				res, err := tr.RenewBatch(context.Background(), &req)
				if err != nil {
					errs <- err
					return
				}
				for i := range res.Results {
					if res.Results[i].Code != "" {
						errs <- fmt.Errorf("renew verdict %q", res.Results[i].Code)
						return
					}
				}
				renewed.Add(int64(len(req.Items)))
				if pos = end; pos >= len(share) {
					pos = 0
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, fmt.Errorf("loadgen against %s: %w", target, err)
	default:
	}
	return float64(renewed.Load()) / elapsed.Seconds(), nil
}

// binPipelinedRenewsPerSec measures the binary protocol with its
// pipelining actually used: one persistent connection, `depth` renew
// frames kept in flight (a writer goroutine streams requests while the
// reader drains responses), reused encode/decode buffers. This is the
// traffic shape the wire was designed for — request/response latency
// amortized away, throughput bounded by per-frame CPU — and the number
// behind the renews_per_sec_bin row.
func binPipelinedRenewsPerSec(addr string, leases, batch, depth int, dur time.Duration) (float64, error) {
	if batch < 1 {
		batch = 1
	}
	if depth < 1 {
		depth = 1
	}
	if leases < batch {
		leases = batch
	}
	setup, err := leaseclient.NewTransport("bin://" + addr)
	if err != nil {
		return 0, err
	}
	defer setup.Close()
	granted, err := setup.AcquireBatch(context.Background(), &wire.AcquireBatchRequest{
		Owner: "benchreport", Count: leases, TTLms: time.Hour.Milliseconds(),
	})
	if err != nil {
		return 0, fmt.Errorf("acquiring %d leases: %w", leases, err)
	}
	defer func() {
		items := make([]wire.Item, len(granted.Leases))
		for i, l := range granted.Leases {
			items[i] = wire.Item{Name: l.Name, Token: l.Token}
		}
		setup.ReleaseBatch(context.Background(), &wire.ReleaseBatchRequest{Items: items})
	}()

	// Pre-encode one renew_batch frame per chunk of the lease population;
	// the steady-state writer recycles them (only the request id changes),
	// so the client side costs one header patch + one buffered write per
	// frame and the server sees back-to-back frames it can coalesce.
	var chunks [][]byte
	for pos := 0; pos < len(granted.Leases); pos += batch {
		end := pos + batch
		if end > len(granted.Leases) {
			end = len(granted.Leases)
		}
		items := make([]wire.Item, 0, end-pos)
		for _, l := range granted.Leases[pos:end] {
			items = append(items, wire.Item{Name: l.Name, Token: l.Token})
		}
		buf, start := binproto.BeginFrame(nil, binproto.TRenewBatch, 0)
		buf = binproto.AppendRenewBatchReq(buf, time.Hour.Milliseconds(), items)
		chunks = append(chunks, binproto.EndFrame(buf, start))
	}

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(dur + 30*time.Second))
	bw := bufio.NewWriterSize(conn, 256<<10)
	br := bufio.NewReaderSize(conn, 256<<10)

	// Flow control: the writer takes a slot before each renew frame, the
	// reader returns it per response, so at most `depth` frames are in
	// flight and a slow server backpressures the writer instead of
	// growing an unbounded queue. When the deadline passes, the writer
	// sends one TStats frame as an end-of-stream sentinel: the server
	// processes a connection's frames strictly in order, so the stats
	// response arriving tells the reader every renew response before it
	// has been consumed — no sent/received accounting, no race between
	// "writer finished" and "reader blocked on a response that will
	// never come".
	slots := make(chan struct{}, depth)
	for i := 0; i < depth; i++ {
		slots <- struct{}{}
	}
	writeErr := make(chan error, 1)
	start := time.Now()
	deadline := start.Add(dur)
	go func() {
		var id uint64
		for time.Now().Before(deadline) {
			<-slots
			frame := chunks[id%uint64(len(chunks))]
			id++
			// Only the request ID changes between sends; the template's
			// length and payload CRC (stamped by EndFrame) stay valid.
			binary.BigEndian.PutUint64(frame[4:12], id)
			if _, err := bw.Write(frame); err != nil {
				writeErr <- err
				return
			}
			// Flush only when no slot is immediately available: back-to-
			// back frames coalesce into large writes, and the last frame
			// of a burst still goes out before the writer would block.
			if len(slots) == 0 {
				if err := bw.Flush(); err != nil {
					writeErr <- err
					return
				}
			}
		}
		sentinel, s := binproto.BeginFrame(nil, binproto.TStats, 0)
		if _, err := bw.Write(binproto.EndFrame(sentinel, s)); err != nil {
			writeErr <- err
			return
		}
		writeErr <- bw.Flush()
	}()

	var renewed int64
	var results []binproto.RenewResult
	hdr := make([]byte, binproto.HeaderLen)
	payload := []byte{}
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			select {
			case werr := <-writeErr:
				if werr != nil {
					return 0, fmt.Errorf("bin loadgen write: %w", werr)
				}
			default:
			}
			return 0, fmt.Errorf("bin loadgen read: %w", err)
		}
		h, err := binproto.ParseHeader(hdr)
		if err != nil {
			return 0, err
		}
		if cap(payload) < int(h.Len) {
			payload = make([]byte, h.Len)
		}
		payload = payload[:h.Len]
		if _, err := io.ReadFull(br, payload); err != nil {
			return 0, fmt.Errorf("bin loadgen read: %w", err)
		}
		if h.Type == binproto.TStats|binproto.RespBit {
			break // sentinel: every renew response is in
		}
		if h.Type != binproto.TRenewBatch|binproto.RespBit {
			return 0, fmt.Errorf("bin loadgen: response type %#02x", byte(h.Type))
		}
		if results, err = binproto.DecodeRenewBatchResp(payload, results); err != nil {
			return 0, err
		}
		for i := range results {
			if results[i].Code != binproto.CodeOK {
				return 0, fmt.Errorf("renew verdict %q", binproto.CodeString(results[i].Code))
			}
		}
		renewed += int64(len(results))
		// Return the slot AFTER counting: the writer may already be
		// waiting on it for the next frame.
		select {
		case slots <- struct{}{}:
		default:
		}
	}
	elapsed := time.Since(start)
	if werr := <-writeErr; werr != nil {
		return 0, fmt.Errorf("bin loadgen write: %w", werr)
	}
	return float64(renewed) / elapsed.Seconds(), nil
}
