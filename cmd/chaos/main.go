// Command chaos runs named fault-injection scenarios against a real
// renamed server process and checks global lease-safety invariants.
//
// Every random stream — wire faults, crash times, call duplication,
// client jitter — derives from the single -seed flag, so a failing run
// reproduces bit-for-bit from the seed printed in its report.
//
//	go run ./cmd/chaos -scenario kitchen-sink -seed 42 -duration 30s
//
// The exit code is the verdict: 0 when every invariant held, 1 on
// violations (inverted by -expect-violations, which is how CI proves
// the harness still catches a seeded regression), 2 on harness errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/chaos"
)

func main() {
	var (
		scenario  = flag.String("scenario", "", "scenario name (see -list)")
		seed      = flag.Uint64("seed", 42, "master seed; same seed reproduces the same fault schedule")
		duration  = flag.Duration("duration", 30*time.Second, "run length, heal phase included (min 4x scenario TTL)")
		transport = flag.String("transport", "bin", "wire under test: bin or http")
		inject    = flag.String("inject", "", "re-introduce a known-fixed bug (no-call-timeout) to prove detection")
		out       = flag.String("out", "", "write the JSON report here ('-' for stdout)")
		bin       = flag.String("bin", "", "renamed binary to run (default: build ./cmd/renamed into a temp dir)")
		list      = flag.Bool("list", false, "list scenarios and exit")
		expect    = flag.Bool("expect-violations", false, "invert the verdict: exit 0 only if violations were found")
	)
	flag.Parse()

	if *list {
		reg := chaos.Scenarios()
		for _, name := range chaos.ScenarioNames() {
			fmt.Printf("%-14s %s\n", name, reg[name].Description)
		}
		return
	}

	sc, ok := chaos.Scenarios()[*scenario]
	if !ok {
		fmt.Fprintf(os.Stderr, "chaos: unknown scenario %q (use -list)\n", *scenario)
		os.Exit(2)
	}

	binary := *bin
	if binary == "" {
		dir, err := os.MkdirTemp("", "chaos-bin-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		binary = filepath.Join(dir, "renamed")
		fmt.Fprintln(os.Stderr, "chaos: building ./cmd/renamed")
		build := exec.Command("go", "build", "-o", binary, "./cmd/renamed")
		if out, err := build.CombinedOutput(); err != nil {
			fatal(fmt.Errorf("go build ./cmd/renamed: %v\n%s", err, out))
		}
	}

	work, err := os.MkdirTemp("", "chaos-run-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(work)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := chaos.Run(ctx, sc, chaos.Options{
		Seed:      *seed,
		Duration:  *duration,
		Binary:    binary,
		WorkDir:   work,
		Transport: *transport,
		Inject:    *inject,
		Log:       os.Stderr,
	})
	if err != nil {
		fatal(err)
	}

	rep.Print(os.Stdout)
	if *out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		blob = append(blob, '\n')
		if *out == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
	}

	if *expect {
		if rep.Pass {
			fmt.Fprintln(os.Stderr, "chaos: expected violations but the run passed — the harness missed the seeded bug")
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "chaos: seeded bug detected as expected (%d violations)\n", len(rep.Violations))
		return
	}
	if !rep.Pass {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
	os.Exit(2)
}
