package namertest_test

import (
	"testing"

	renaming "repro"
	"repro/namertest"
)

// conformanceDSNs maps every registered driver to the DSN the conformance
// suite runs it with. The t0=6 override on the ReBatching family keeps the
// exhaustion-path subtests fast (the paper's t₀ = 53 constant multiplies
// every probe sequence) without changing any semantics under test.
var conformanceDSNs = map[string]string{
	"rebatching":   "rebatching?n=48&seed=7&t0=6",
	"adaptive":     "adaptive?n=48&seed=7&t0=6",
	"fastadaptive": "fastadaptive?n=48&seed=7&t0=6",
	"levelarray":   "levelarray?n=48&seed=7",
	"uniform":      "uniform?n=48&seed=7",
	"linearscan":   "linearscan?n=48&seed=7",
}

// TestRegisteredNamersConformance runs the shared suite against every
// registered driver. The registry is the source of truth: a newly
// registered namer fails this test until it gets a conformance DSN, so no
// driver ships unexercised.
func TestRegisteredNamersConformance(t *testing.T) {
	for _, name := range renaming.Drivers() {
		dsn, ok := conformanceDSNs[name]
		if !ok {
			t.Errorf("driver %q has no conformance DSN; add one to conformanceDSNs", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			namertest.Run(t, func() (renaming.Namer, error) {
				return renaming.Open(dsn)
			})
		})
	}
}

// TestResizableLevelArrayConformance runs both the base suite and the
// ResizableNamer extension suite against the resizable levelarray
// driver: a resizable namer must keep every static guarantee AND honour
// the dynamic-capacity contract.
func TestResizableLevelArrayConformance(t *testing.T) {
	const dsn = "levelarray?n=48&seed=7&resizable"
	namertest.Run(t, func() (renaming.Namer, error) {
		return renaming.Open(dsn)
	})
	namertest.RunResizable(t, func() (renaming.ResizableNamer, error) {
		nm, err := renaming.Open(dsn)
		if err != nil {
			return nil, err
		}
		return nm.(renaming.ResizableNamer), nil
	})
}
