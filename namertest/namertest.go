// Package namertest provides a conformance suite for renaming.Namer
// implementations: uniqueness under concurrency, release semantics,
// context cancellation, and the batch invariants of AcquireN (k distinct
// names or an error with zero names retained). Every namer registered with
// renaming.Register should pass it; the package's own tests run the suite
// against all registered drivers, and CI runs them under -race.
//
// Use it for a new namer like any shared test helper:
//
//	func TestMyNamerConformance(t *testing.T) {
//		namertest.Run(t, func() (renaming.Namer, error) {
//			return mypkg.New(64)
//		})
//	}
//
// The factory is called once per subtest, always with the same
// configuration, and the namer is assumed to support Release (the suite is
// for the library's long-lived contract; inherently one-shot namers such
// as MoirAnderson are out of scope).
package namertest

import (
	"context"
	"errors"
	"sync"
	"testing"

	renaming "repro"
)

// Run executes the full conformance suite against namers built by mk.
// Each subtest gets a fresh namer.
func Run(t *testing.T, mk func() (renaming.Namer, error)) {
	t.Helper()
	t.Run("ConcurrentUnique", func(t *testing.T) { testConcurrentUnique(t, mk) })
	t.Run("CompatGetName", func(t *testing.T) { testCompatGetName(t, mk) })
	t.Run("ReleaseSemantics", func(t *testing.T) { testReleaseSemantics(t, mk) })
	t.Run("BatchDistinct", func(t *testing.T) { testBatchDistinct(t, mk) })
	t.Run("BatchRollback", func(t *testing.T) { testBatchRollback(t, mk) })
	t.Run("Cancellation", func(t *testing.T) { testCancellation(t, mk) })
}

// concurrency is how many goroutines the concurrent subtests race. The
// suite assumes the factory's namer can serve at least this many
// simultaneous holders (every library constructor with n >= concurrency
// qualifies).
const concurrency = 32

func build(t *testing.T, mk func() (renaming.Namer, error)) renaming.Namer {
	t.Helper()
	nm, err := mk()
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	return nm
}

func assertDistinct(t *testing.T, names []int, bound int) {
	t.Helper()
	seen := make(map[int]bool, len(names))
	for _, u := range names {
		if u < 0 || u >= bound {
			t.Fatalf("name %d outside [0,%d)", u, bound)
		}
		if seen[u] {
			t.Fatalf("duplicate name %d", u)
		}
		seen[u] = true
	}
}

// testConcurrentUnique races concurrent Acquire calls: all must succeed
// with distinct in-range names.
func testConcurrentUnique(t *testing.T, mk func() (renaming.Namer, error)) {
	nm := build(t, mk)
	names := make([]int, concurrency)
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names[g], errs[g] = nm.Acquire(context.Background())
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	assertDistinct(t, names, nm.Namespace())
}

// testCompatGetName checks the compatibility wrapper: GetName hands out
// names interchangeable with Acquire's.
func testCompatGetName(t *testing.T, mk func() (renaming.Namer, error)) {
	nm := build(t, mk)
	a, err := nm.GetName()
	if err != nil {
		t.Fatalf("GetName: %v", err)
	}
	b, err := nm.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	assertDistinct(t, []int{a, b}, nm.Namespace())
	if err := nm.Release(a); err != nil {
		t.Fatalf("Release(GetName result): %v", err)
	}
	if err := nm.Release(b); err != nil {
		t.Fatalf("Release(Acquire result): %v", err)
	}
}

// testReleaseSemantics checks that a released name returns to the pool and
// a double release reports ErrNotHeld.
func testReleaseSemantics(t *testing.T, mk func() (renaming.Namer, error)) {
	nm := build(t, mk)
	u, err := nm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.Release(u); err != nil {
		t.Fatalf("Release(%d): %v", u, err)
	}
	if err := nm.Release(u); !errors.Is(err, renaming.ErrNotHeld) {
		t.Fatalf("double release err = %v, want ErrNotHeld", err)
	}
	// The slot is genuinely free again: the namer can serve `concurrency`
	// holders even after a release/re-acquire cycle.
	names, err := nm.AcquireN(context.Background(), concurrency)
	if err != nil {
		t.Fatalf("AcquireN after release: %v", err)
	}
	assertDistinct(t, names, nm.Namespace())
}

// testBatchDistinct checks AcquireN's happy path: k distinct names, and
// concurrent batches never overlap.
func testBatchDistinct(t *testing.T, mk func() (renaming.Namer, error)) {
	nm := build(t, mk)
	if _, err := nm.AcquireN(context.Background(), 0); !errors.Is(err, renaming.ErrBadConfig) {
		t.Fatalf("AcquireN(0) err = %v, want ErrBadConfig", err)
	}
	if _, err := nm.AcquireN(context.Background(), -3); !errors.Is(err, renaming.ErrBadConfig) {
		t.Fatalf("AcquireN(-3) err = %v, want ErrBadConfig", err)
	}

	const (
		workers = 4
		k       = concurrency / workers
	)
	batches := make([][]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batches[w], errs[w] = nm.AcquireN(context.Background(), k)
		}(w)
	}
	wg.Wait()
	var all []int
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("batch %d: %v", w, errs[w])
		}
		if len(batches[w]) != k {
			t.Fatalf("batch %d has %d names, want %d", w, len(batches[w]), k)
		}
		all = append(all, batches[w]...)
	}
	assertDistinct(t, all, nm.Namespace())
}

// testBatchRollback drives AcquireN into genuine mid-batch exhaustion:
// with one name already held, a namespace-sized batch must fail partway —
// after taking real names — and hand every one of them back. A batch
// larger than the namespace must be rejected up front (it can never
// complete, and k must not size an allocation).
func testBatchRollback(t *testing.T, mk func() (renaming.Namer, error)) {
	nm := build(t, mk)
	if _, err := nm.AcquireN(context.Background(), nm.Namespace()+1); !errors.Is(err, renaming.ErrNamespaceExhausted) {
		t.Fatalf("AcquireN(namespace+1) err = %v, want ErrNamespaceExhausted", err)
	}

	held, err := nm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// k == Namespace() passes the up-front size check, but only
	// Namespace()-1 slots are free: the batch exhausts after genuinely
	// acquiring names and must roll all of them back.
	if _, err := nm.AcquireN(context.Background(), nm.Namespace()); !errors.Is(err, renaming.ErrNamespaceExhausted) {
		t.Fatalf("namespace-sized batch over a partly-full namer err = %v, want ErrNamespaceExhausted", err)
	}
	if err := nm.Release(held); err != nil {
		t.Fatalf("Release(%d) after failed batch: %v (did rollback free a held name?)", held, err)
	}
	names, err := nm.AcquireN(context.Background(), concurrency)
	if err != nil {
		t.Fatalf("AcquireN after failed batch: %v (names leaked by rollback?)", err)
	}
	assertDistinct(t, names, nm.Namespace())
}

// testCancellation checks that an already-cancelled context rejects both
// Acquire and AcquireN with ErrCancelled wrapping the context error, and
// that nothing is retained afterwards.
func testCancellation(t *testing.T, mk func() (renaming.Namer, error)) {
	nm := build(t, mk)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := nm.Acquire(ctx); !errors.Is(err, renaming.ErrCancelled) {
		t.Fatalf("cancelled Acquire err = %v, want ErrCancelled", err)
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Acquire err = %v, want it to wrap context.Canceled", err)
	}
	if _, err := nm.AcquireN(ctx, 4); !errors.Is(err, renaming.ErrCancelled) {
		t.Fatalf("cancelled AcquireN err = %v, want ErrCancelled", err)
	}

	// Nothing stuck: every slot is still grantable.
	names, err := nm.AcquireN(context.Background(), concurrency)
	if err != nil {
		t.Fatalf("AcquireN after cancelled calls: %v", err)
	}
	assertDistinct(t, names, nm.Namespace())
}
