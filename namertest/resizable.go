package namertest

import (
	"context"
	"errors"
	"sync"
	"testing"

	renaming "repro"
)

// RunResizable executes the conformance suite for the ResizableNamer
// extension against namers built by mk, on top of (not instead of) the
// base Run suite. Each subtest gets a fresh namer; the factory's
// capacity must be at least 8 and a multiple of 4 so the grow/shrink
// ratios below stay integral.
func RunResizable(t *testing.T, mk func() (renaming.ResizableNamer, error)) {
	t.Helper()
	t.Run("GrowExpandsCapacity", func(t *testing.T) { testGrowExpandsCapacity(t, mk) })
	t.Run("ShrinkDrainsAndQuiesces", func(t *testing.T) { testShrinkDrainsAndQuiesces(t, mk) })
	t.Run("EpochAdvances", func(t *testing.T) { testEpochAdvances(t, mk) })
	t.Run("ChurnUnderResize", func(t *testing.T) { testChurnUnderResize(t, mk) })
}

func buildResizable(t *testing.T, mk func() (renaming.ResizableNamer, error)) renaming.ResizableNamer {
	t.Helper()
	nm, err := mk()
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	if nm.Capacity() < 8 {
		t.Fatalf("factory capacity %d; the resizable suite needs >= 8", nm.Capacity())
	}
	return nm
}

// testGrowExpandsCapacity grows the namer and demands a batch strictly
// larger than the ORIGINAL namespace — only a real capacity change can
// satisfy it.
func testGrowExpandsCapacity(t *testing.T, mk func() (renaming.ResizableNamer, error)) {
	nm := buildResizable(t, mk)
	c0 := nm.Capacity()
	ns0 := nm.Namespace()
	if err := nm.Resize(4 * c0); err != nil {
		t.Fatalf("Resize(%d): %v", 4*c0, err)
	}
	if got := nm.Capacity(); got != 4*c0 {
		t.Fatalf("Capacity() = %d after grow, want %d", got, 4*c0)
	}
	if nm.Namespace() <= ns0 {
		t.Fatalf("Namespace() = %d did not grow past %d", nm.Namespace(), ns0)
	}
	if nm.Draining() {
		t.Fatal("Draining() = true after a pure grow")
	}
	names, err := nm.AcquireN(context.Background(), ns0+1)
	if err != nil {
		t.Fatalf("AcquireN(%d) after grow: %v", ns0+1, err)
	}
	assertDistinct(t, names, nm.Namespace())
}

// testShrinkDrainsAndQuiesces saturates the namespace, shrinks, and
// checks the drain contract: held names above the bound keep the namer
// draining and stay releasable, releases quiesce it, and post-shrink
// grants never reopen the drained region.
func testShrinkDrainsAndQuiesces(t *testing.T, mk func() (renaming.ResizableNamer, error)) {
	nm := buildResizable(t, mk)
	c0 := nm.Capacity()
	held, err := nm.AcquireN(context.Background(), nm.Namespace())
	if err != nil {
		t.Fatalf("saturating AcquireN: %v", err)
	}
	if err := nm.Resize(c0 / 4); err != nil {
		t.Fatalf("Resize(%d): %v", c0/4, err)
	}
	if got := nm.Capacity(); got != c0/4 {
		t.Fatalf("Capacity() = %d after shrink, want %d", got, c0/4)
	}
	if !nm.Draining() {
		t.Fatal("Draining() = false with the whole old namespace held")
	}
	// Every held name — above the bound or not — must still release.
	for _, u := range held {
		if err := nm.Release(u); err != nil {
			t.Fatalf("Release(%d) during drain: %v", u, err)
		}
	}
	if nm.Draining() {
		t.Fatal("Draining() = true after the last holder released")
	}
	// Re-grant until exhaustion: the shrunk namer must serve at least its
	// new capacity, strictly less than the old namespace, and no grant may
	// land in (and so re-open) the drained tail.
	granted := 0
	for {
		if _, err := nm.Acquire(context.Background()); err != nil {
			if !errors.Is(err, renaming.ErrNamespaceExhausted) {
				t.Fatalf("Acquire after drain: %v", err)
			}
			break
		}
		granted++
		if granted > nm.Namespace() {
			t.Fatal("granted more names than the namespace holds")
		}
	}
	if granted < c0/4 {
		t.Fatalf("shrunk namer granted %d names, want >= capacity %d", granted, c0/4)
	}
	if granted >= len(held) {
		t.Fatalf("shrunk namer granted %d names, want < old namespace %d", granted, len(held))
	}
	if nm.Draining() {
		t.Fatal("post-shrink grants re-opened the drained tail")
	}
}

// testEpochAdvances checks ResizeEpoch is a monotone fence over
// successful capacity changes.
func testEpochAdvances(t *testing.T, mk func() (renaming.ResizableNamer, error)) {
	nm := buildResizable(t, mk)
	c0 := nm.Capacity()
	e0 := nm.ResizeEpoch()
	if err := nm.Resize(2 * c0); err != nil {
		t.Fatal(err)
	}
	e1 := nm.ResizeEpoch()
	if e1 <= e0 {
		t.Fatalf("epoch %d after grow, want > %d", e1, e0)
	}
	if err := nm.Resize(c0); err != nil {
		t.Fatal(err)
	}
	if e2 := nm.ResizeEpoch(); e2 <= e1 {
		t.Fatalf("epoch %d after shrink, want > %d", e2, e1)
	}
}

// testChurnUnderResize races acquire/release churn against grow/shrink
// cycles: every concurrently held pair of names must be distinct, and
// the only acceptable failure is transient exhaustion while shrunk.
func testChurnUnderResize(t *testing.T, mk func() (renaming.ResizableNamer, error)) {
	nm := buildResizable(t, mk)
	c0 := nm.Capacity()

	var mu sync.Mutex
	heldCount := map[int]int{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []int
			release := func() {
				for _, u := range local {
					// Ledger first: once Release lands the name is
					// immediately re-grantable to another goroutine.
					mu.Lock()
					heldCount[u]--
					mu.Unlock()
					if err := nm.Release(u); err != nil {
						t.Errorf("Release(%d): %v", u, err)
					}
				}
				local = local[:0]
			}
			for iter := 0; iter < 300; iter++ {
				u, err := nm.Acquire(context.Background())
				if err != nil {
					if errors.Is(err, renaming.ErrNamespaceExhausted) {
						release()
						continue
					}
					t.Errorf("Acquire: %v", err)
					return
				}
				mu.Lock()
				heldCount[u]++
				if heldCount[u] > 1 {
					t.Errorf("name %d held twice concurrently", u)
				}
				mu.Unlock()
				local = append(local, u)
				if len(local) >= 4 {
					release()
				}
			}
			release()
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{c0 / 4, 2 * c0, c0 / 2, 4 * c0, c0}
		for i := 0; i < 40; i++ {
			if err := nm.Resize(sizes[i%len(sizes)]); err != nil {
				t.Errorf("Resize(%d): %v", sizes[i%len(sizes)], err)
				return
			}
		}
	}()
	wg.Wait()
}
