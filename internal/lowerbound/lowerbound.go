// Package lowerbound implements the machinery of the paper's §6 lower
// bound (Theorem 6.1): any loose-renaming algorithm using O(n) TAS objects
// must, with constant probability, leave some process running after
// Ω(log log n) steps of the layered oblivious schedule.
//
// Two complementary experiments are provided.
//
// Marking (the proof's machinery, §6.1–6.2): process instances are created
// by a Poisson sprinkling (X⁰_i ~ Pois(n/2M)); the execution proceeds in
// layers, each instance probing one TAS location per layer; after each
// layer the coupling gadget of Lemmas 6.4/6.5 prunes survivors down to
// "marked" instances whose per-type counts remain independent Poissons.
// The marked rate then provably obeys Lemma 6.6's recurrence
//
//	λ_{ℓ+1} >= (λ_ℓ)²/(4s)   (λ_ℓ <= s/2),
//
// which keeps the marked population alive for Ω(log log n) layers. This
// package simulates the procedure in the uniform-probing instance model —
// the M → ∞ limit in which every instance carries an independent uniform
// probe path and the per-location rate is exactly λ_ℓ/s, making the
// recurrence hold with equality and the whole gadget numerically checkable.
//
// Rounds (the statement being proved): run any actual algorithm under the
// layered oblivious adversary and count the layers until every process has
// acquired a name. Theorem 6.1 says this cannot beat c·log log n; the upper
// bounds say ReBatching meets it up to the additive constant.
package lowerbound

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// MarkingConfig parameterizes one simulation of the §6 marking procedure.
type MarkingConfig struct {
	// N is the paper's n; the initial marked population has rate λ⁰ = N/2.
	N int
	// S is the number of TAS locations per layer; the paper's final
	// argument uses s+m >= 2n locations so that r⁰ = λ⁰/S <= 1/4.
	// Defaults to 2N.
	S int
	// MaxLayers stops the simulation even if marked instances remain.
	// Defaults to 64 (far beyond extinction for any feasible N).
	MaxLayers int
	// Seed drives all randomness.
	Seed uint64
}

// LayerStat describes the marked population entering one layer.
type LayerStat struct {
	// Layer is 0 for the initial population, 1 after one pruning, ...
	Layer int
	// Marked is the realized number of marked instances.
	Marked int
	// Rate is the analytic rate λ_ℓ of the marked population.
	Rate float64
	// RecurrenceLB is Lemma 6.6's lower bound computed from the previous
	// layer's rate: min((λ_{ℓ-1})²/(4S), λ_{ℓ-1}/4); zero for layer 0.
	RecurrenceLB float64
}

// MarkingResult reports a full marking simulation.
type MarkingResult struct {
	// Layers holds one entry per layer boundary, starting with layer 0
	// (the initial population), until extinction or MaxLayers.
	Layers []LayerStat
	// ExtinctionLayer is the first layer with zero marked instances, or
	// -1 if the simulation stopped at MaxLayers with survivors.
	ExtinctionLayer int
}

// SurvivedLayers returns the number of prunings the population survived:
// the largest ℓ with a nonzero marked count.
func (r *MarkingResult) SurvivedLayers() int {
	last := 0
	for _, st := range r.Layers {
		if st.Marked > 0 {
			last = st.Layer
		}
	}
	return last
}

// RunMarking simulates the marking procedure once.
//
// Instances follow the uniform-probing model: each marked instance probes
// an independently uniform location in every layer. Per location j the
// realized count Z_j is pruned to Y_j marked survivors, with Y_j drawn from
// the gadget's conditional law given Z_j (Lemmas 6.4/6.5); survivors are a
// uniformly random Y_j-subset, which is exactly "the last Y_j positions of
// a uniformly random permutation".
func RunMarking(cfg MarkingConfig) (*MarkingResult, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("lowerbound: N = %d, need >= 2", cfg.N)
	}
	if cfg.S == 0 {
		cfg.S = 2 * cfg.N
	}
	if cfg.S < 1 {
		return nil, fmt.Errorf("lowerbound: S = %d, need >= 1", cfg.S)
	}
	if cfg.MaxLayers == 0 {
		cfg.MaxLayers = 64
	}

	rng := xrand.New(cfg.Seed)
	lambda := float64(cfg.N) / 2
	marked := rng.Poisson(lambda) // Σ_i X⁰_i ~ Pois(λ⁰)

	res := &MarkingResult{ExtinctionLayer: -1}
	res.Layers = append(res.Layers, LayerStat{Layer: 0, Marked: marked, Rate: lambda})

	// In the uniform model every location has rate λ/S, so the rate
	// multiplier γ/λ_loc is the same for all locations and the aggregate
	// rate evolves deterministically.
	buckets := make(map[int]int, marked)
	for layer := 1; layer <= cfg.MaxLayers && marked > 0; layer++ {
		locRate := lambda / float64(cfg.S)
		gamma := xrand.CouplingRate(locRate)

		// Scatter the marked instances over the S locations.
		clear(buckets)
		for i := 0; i < marked; i++ {
			buckets[rng.Intn(cfg.S)]++
		}
		// Prune each occupied location with the coupled Y | Z draw. (Which
		// instances survive is irrelevant here because instances are
		// exchangeable in the uniform model; only counts matter.)
		survivors := 0
		for _, z := range buckets {
			y := rng.CoupledYGivenZ(locRate, z)
			if y > max(0, z-1) {
				return nil, fmt.Errorf("lowerbound: coupling violated: Y=%d Z=%d", y, z)
			}
			survivors += y
		}

		recurrenceLB := math.Min(lambda*lambda/(4*float64(cfg.S)), lambda/4)
		lambda *= gamma / locRate
		marked = survivors
		res.Layers = append(res.Layers, LayerStat{
			Layer:        layer,
			Marked:       marked,
			Rate:         lambda,
			RecurrenceLB: recurrenceLB,
		})
		if marked == 0 {
			res.ExtinctionLayer = layer
		}
	}
	return res, nil
}

// SurvivalProbability estimates, over runs independent simulations, the
// probability that marked instances survive at least `layers` prunings.
// Theorem 6.1's final argument needs this to be Ω(1) at ℓ = Θ(log log n).
func SurvivalProbability(cfg MarkingConfig, layers, runs int) (float64, error) {
	if runs < 1 {
		return 0, fmt.Errorf("lowerbound: runs = %d, need >= 1", runs)
	}
	hits := 0
	for r := 0; r < runs; r++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(r)*0x9e3779b97f4a7c15
		res, err := RunMarking(c)
		if err != nil {
			return 0, err
		}
		if res.SurvivedLayers() >= layers {
			hits++
		}
	}
	return float64(hits) / float64(runs), nil
}

// PredictedLayers returns the layer count ℓ* at which Theorem 6.1's final
// argument still guarantees a marked rate λ^ℓ >= 4, for s+m = S and
// r⁰ = (n/2)/S. Solving the recurrence solution r^ℓ >= 4(r⁰/4)^(2^ℓ) for
// λ^ℓ = S·r^ℓ >= 4 gives
//
//	ℓ* = ⌊ lg lg S − lg lg(4/r⁰) ⌋,
//
// which is Θ(log log n). (The extended abstract prints a "+" between the
// two terms in its final line; substituting that choice back into the
// recurrence solution yields λ^ℓ ≪ 4, so the "+" is a typo for "−" —
// EXPERIMENTS.md T7 documents the check numerically.)
func PredictedLayers(n, s int) int {
	r0 := float64(n) / 2 / float64(s)
	if r0 <= 0 || r0 > 0.25 {
		r0 = 0.25
	}
	v := math.Log2(math.Log2(float64(s))) - math.Log2(math.Log2(4/r0))
	if v < 1 {
		return 1
	}
	return int(v)
}

// RoundsResult reports one layered execution of a real algorithm.
type RoundsResult struct {
	// Layers is the number of layers until every process finished.
	Layers int
	// Active[ℓ] is the number of processes still running when layer ℓ+1
	// began.
	Active []int
	// MaxSteps is the maximum individual step complexity observed.
	MaxSteps int
}

// RoundsToCompletion runs n processes of alg under the layered oblivious
// adversary (fresh random permutation per layer — the §6 schedule) and
// reports how many layers the execution needed.
func RoundsToCompletion(n int, alg core.Algorithm, seed uint64) (*RoundsResult, error) {
	var active []int
	adv := &adversary.Layered{OnLayer: func(layer, count int) {
		active = append(active, count)
	}}
	res, err := sim.Run(sim.Config{N: n, Algorithm: alg, Adversary: adv, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := res.UniqueNames(); err != nil {
		return nil, err
	}
	return &RoundsResult{
		Layers:   adv.Layer(),
		Active:   active,
		MaxSteps: res.MaxSteps(),
	}, nil
}
