package lowerbound

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tas"
	"repro/internal/xrand"
)

func TestWinBasedAllProcessesWin(t *testing.T) {
	// Lemma 6.2: with a correct inner algorithm, every process of the
	// transformed algorithm wins its name-claim TAS (zero violations).
	const n = 128
	inner := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
	wrapped := NewWinBased(inner)
	res, err := sim.Run(sim.Config{N: n, Algorithm: wrapped, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.UniqueNames(); err != nil {
		t.Fatal(err)
	}
	for p, u := range res.Names {
		if u == core.NoName {
			t.Fatalf("process %d failed", p)
		}
	}
	if v := wrapped.Violations(); v != 0 {
		t.Fatalf("Violations = %d, want 0 for a correct algorithm", v)
	}
	if got, want := wrapped.Namespace(), 2*inner.Namespace(); got != want {
		t.Fatalf("Namespace = %d, want %d", got, want)
	}
	// Each process performs exactly one extra step (the winning claim).
	if res.TotalSteps < int64(n) {
		t.Fatalf("TotalSteps = %d, want >= n extra claim steps", res.TotalSteps)
	}
}

// brokenRenaming returns the same name to every caller — a deliberately
// incorrect algorithm that must trip the Lemma 6.2 monitor.
type brokenRenaming struct{}

func (brokenRenaming) GetName(env core.Env) int {
	env.TAS(0) // take a step so the simulator has something to schedule
	return 0
}
func (brokenRenaming) Namespace() int { return 4 }

func TestWinBasedDetectsDuplicateNames(t *testing.T) {
	wrapped := NewWinBased(brokenRenaming{})
	res, err := sim.Run(sim.Config{N: 8, Algorithm: wrapped, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 8 processes all claim name 0: exactly one wins the claim TAS.
	if v := wrapped.Violations(); v != 7 {
		t.Fatalf("Violations = %d, want 7", v)
	}
	named := 0
	for _, u := range res.Names {
		if u != core.NoName {
			named++
		}
	}
	if named != 1 {
		t.Fatalf("%d processes kept the duplicate name, want 1", named)
	}
}

// seqEnv is a minimal sequential Env for the LayerEnv tests.
type seqEnv struct {
	space tas.Space
	rng   *xrand.Rand
}

func (e *seqEnv) TAS(loc int) bool { return e.space.TAS(loc) }
func (e *seqEnv) Intn(n int) int   { return e.rng.Intn(n) }

func TestLayerEnvRedirectsPerLayer(t *testing.T) {
	space := tas.NewSparse()
	base := &seqEnv{space: space, rng: xrand.New(1)}
	const s = 10
	env := NewLayerEnv(base, s)

	// Occupy T_0[3] so the first probe loses, then probe 3 again: the
	// second attempt must land in T_1 (location s+3) and win.
	space.TAS(3)
	if env.TAS(3) {
		t.Fatal("probe into occupied T_0[3] won")
	}
	if env.Layer() != 1 {
		t.Fatalf("Layer = %d, want 1", env.Layer())
	}
	if !env.TAS(3) {
		t.Fatal("probe into fresh T_1[3] lost")
	}
	if !space.IsSet(s + 3) {
		t.Fatal("T_1[3] (global location 13) not set")
	}
	if !env.Won() {
		t.Fatal("Won() false after a win")
	}
	// After winning, the process has left: further TAS are no-ops that
	// report success and do not touch shared memory.
	if !env.TAS(7) {
		t.Fatal("post-win TAS did not short-circuit")
	}
	if space.IsSet(2*s + 7) {
		t.Fatal("post-win TAS touched shared memory")
	}
}

func TestLayerEnvValidatesLocations(t *testing.T) {
	env := NewLayerEnv(&seqEnv{space: tas.NewSparse(), rng: xrand.New(1)}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range location accepted")
		}
	}()
	env.TAS(4)
}

func TestLayerEnvPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLayerEnv(env, 0) did not panic")
		}
	}()
	NewLayerEnv(&seqEnv{space: tas.NewSparse(), rng: xrand.New(1)}, 0)
}

// TestLayeredExecutionPreservesFailure verifies the Lemma 6.3 inclusion on
// uniform probing: the processes that fail to win any TAS in the layered
// execution form a subset of... — for a per-process check we verify the
// weaker executable consequence: every process that wins under the layered
// env would also have eventually won under the original (our algorithms
// retry until they win, so both executions name everyone; the layered one
// can only make winning EASIER since every layer is fresh).
func TestLayeredExecutionPreservesFailure(t *testing.T) {
	const (
		s = 64
		k = 32
	)
	space := tas.NewSparse()
	for p := 0; p < k; p++ {
		env := NewLayerEnv(&seqEnv{space: space, rng: xrand.NewStream(9, uint64(p))}, s)
		// Uniform probing into [0, s) under the layered reduction: each
		// probe hits a fresh array, so the FIRST probe always wins.
		won := false
		for i := 0; i < 8 && !won; i++ {
			won = env.TAS(env.Intn(s))
		}
		if !won {
			t.Fatalf("process %d failed in a layered execution", p)
		}
		// Layer arrays are shared across processes (T_ℓ holds every
		// process's ℓ-th op), so early collisions can push a process past
		// layer 0 — but with k << s the tail is short.
		if env.Layer() > 4 {
			t.Fatalf("process %d used %d layers; expected a short tail at this density", p, env.Layer())
		}
	}
}
