package lowerbound

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
)

func TestRunMarkingBasics(t *testing.T) {
	res, err := RunMarking(MarkingConfig{N: 1 << 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) < 2 {
		t.Fatalf("only %d layers recorded", len(res.Layers))
	}
	l0 := res.Layers[0]
	if l0.Layer != 0 || l0.Rate != float64(1<<12)/2 {
		t.Fatalf("layer 0 = %+v", l0)
	}
	// Initial population concentrates around λ⁰ = n/2 (±6σ).
	lambda0 := float64(1<<12) / 2
	if d := math.Abs(float64(l0.Marked) - lambda0); d > 6*math.Sqrt(lambda0) {
		t.Fatalf("initial marked %d far from λ⁰ = %v", l0.Marked, lambda0)
	}
	// Marked counts never increase.
	for i := 1; i < len(res.Layers); i++ {
		if res.Layers[i].Marked > res.Layers[i-1].Marked {
			t.Fatalf("marked grew at layer %d: %d -> %d",
				i, res.Layers[i-1].Marked, res.Layers[i].Marked)
		}
	}
}

func TestRunMarkingRecurrenceLemma66(t *testing.T) {
	// In the uniform instance model the analytic rate evolves as
	// λ_{ℓ+1} = λ_ℓ·γ/(λ_ℓ/S) and must never fall below Lemma 6.6's bound
	// min(λ²/4S, λ/4); in the sub-critical branch it equals it exactly.
	res, err := RunMarking(MarkingConfig{N: 1 << 14, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Layers); i++ {
		st := res.Layers[i]
		if st.Rate < st.RecurrenceLB-1e-9 {
			t.Fatalf("layer %d: rate %v below Lemma 6.6 bound %v", st.Layer, st.Rate, st.RecurrenceLB)
		}
		// Equality check for the quadratic branch (λ_loc <= 1).
		prev := res.Layers[i-1].Rate
		if prev/float64(2*(1<<14)) <= 1 {
			want := prev * prev / (4 * float64(2*(1<<14)))
			if math.Abs(st.Rate-want) > 1e-6*want+1e-12 {
				t.Fatalf("layer %d: rate %v, want exact %v in quadratic branch", st.Layer, st.Rate, want)
			}
		}
	}
}

func TestRunMarkingRealizedTracksRate(t *testing.T) {
	// The realized marked count should track the analytic rate within
	// Poisson noise while the rate is large.
	res, err := RunMarking(MarkingConfig{N: 1 << 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Layers {
		if st.Rate < 100 {
			break
		}
		if d := math.Abs(float64(st.Marked) - st.Rate); d > 8*math.Sqrt(st.Rate) {
			t.Fatalf("layer %d: marked %d vs rate %v (gap %v)", st.Layer, st.Marked, st.Rate, d)
		}
	}
}

func TestRunMarkingSurvivalGrowsWithN(t *testing.T) {
	// Extinction should happen later (or equally late) for much larger n:
	// the whole point of the Θ(log log n) scaling. Compare medians over a
	// few seeds to avoid flakiness.
	median := func(n int) int {
		vals := make([]int, 0, 7)
		for seed := uint64(0); seed < 7; seed++ {
			res, err := RunMarking(MarkingConfig{N: n, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, res.SurvivedLayers())
		}
		// insertion sort; 7 elements
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		return vals[len(vals)/2]
	}
	small, big := median(1<<8), median(1<<20)
	if big < small {
		t.Fatalf("survived layers decreased with n: %d (n=2^8) -> %d (n=2^20)", small, big)
	}
	if big < 2 {
		t.Fatalf("n=2^20 survived only %d layers", big)
	}
}

func TestSurvivalProbabilityConstant(t *testing.T) {
	// Theorem 6.1: survival for Ω(log log n) layers with constant
	// probability. At n=2^16 the predicted layer count is small; the
	// measured probability at that horizon must be bounded away from 0.
	const n = 1 << 16
	layers := PredictedLayers(n, 2*n)
	p, err := SurvivalProbability(MarkingConfig{N: n, Seed: 11}, layers, 40)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.2 {
		t.Fatalf("survival probability %v at %d layers; want >= 0.2", p, layers)
	}
}

func TestSurvivalProbabilityValidation(t *testing.T) {
	if _, err := SurvivalProbability(MarkingConfig{N: 16}, 1, 0); err == nil {
		t.Fatal("runs=0 accepted")
	}
}

func TestRunMarkingValidation(t *testing.T) {
	if _, err := RunMarking(MarkingConfig{N: 1}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := RunMarking(MarkingConfig{N: 8, S: -1}); err == nil {
		t.Error("S=-1 accepted")
	}
}

func TestPredictedLayers(t *testing.T) {
	small := PredictedLayers(1<<8, 1<<9)
	big := PredictedLayers(1<<20, 1<<21)
	if small < 1 || big < small {
		t.Fatalf("PredictedLayers not monotone: %d vs %d", small, big)
	}
}

func TestRoundsToCompletionReBatching(t *testing.T) {
	const n = 512
	alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
	res, err := RoundsToCompletion(n, alg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layers < 1 || res.Layers != res.MaxSteps {
		// Under a layered schedule each live process steps once per layer,
		// so layers == max individual steps.
		t.Fatalf("layers %d != max steps %d", res.Layers, res.MaxSteps)
	}
	if res.Active[0] != n {
		t.Fatalf("first layer active = %d, want %d", res.Active[0], n)
	}
}

func TestRoundsUniformNeedsMoreLayersAtScale(t *testing.T) {
	// The layered schedule realizes the lower bound's intuition: uniform
	// probing needs ~log n layers while tuned ReBatching stays near its
	// additive constant. Compare growth between two sizes.
	layersOf := func(alg core.Algorithm, n int) int {
		res, err := RoundsToCompletion(n, alg, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.Layers
	}
	uniSmall := layersOf(baseline.MustUniform(256, 1, 0), 256)
	uniBig := layersOf(baseline.MustUniform(4096, 1, 0), 4096)
	rebSmall := layersOf(core.MustReBatching(core.ReBatchingConfig{N: 256, Epsilon: 1, T0Override: 6}), 256)
	rebBig := layersOf(core.MustReBatching(core.ReBatchingConfig{N: 4096, Epsilon: 1, T0Override: 6}), 4096)
	if uniBig <= uniSmall {
		t.Errorf("uniform layers did not grow: %d -> %d", uniSmall, uniBig)
	}
	if rebBig > rebSmall+4 {
		t.Errorf("rebatching layers grew too much: %d -> %d", rebSmall, rebBig)
	}
}
