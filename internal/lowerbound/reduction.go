package lowerbound

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
)

// WinBased implements the Lemma 6.2 reduction: it wraps a renaming
// algorithm A over s TAS locations into an algorithm A' over s+m locations
// in which *acquiring a name* is expressed as *winning a TAS* — a process
// returning name j under A additionally performs TAS on location s+j.
//
// Lemma 6.2 states that if A assigns unique names, every process of A'
// wins some TAS. Contrapositively, a process that LOSES its name-claim TAS
// has witnessed a uniqueness violation — so the wrapper doubles as a
// runtime safety monitor: Violations counts name-claim losses, and any
// nonzero count is a proof of a duplicate name assignment.
type WinBased struct {
	inner core.Algorithm
	s     int // the inner algorithm's location-space size
	// violations counts name-claim TAS losses (uniqueness violations).
	violations atomic.Int64
}

// NewWinBased wraps inner per Lemma 6.2. The inner algorithm must confine
// its probes to locations [0, inner.Namespace()); name-claim locations
// live at [Namespace(), 2*Namespace()).
func NewWinBased(inner core.Algorithm) *WinBased {
	return &WinBased{inner: inner, s: inner.Namespace()}
}

// GetName implements core.Algorithm: run the inner algorithm, then claim
// the returned name by winning the corresponding TAS in the extension
// array.
func (w *WinBased) GetName(env core.Env) int {
	u := w.inner.GetName(env)
	if u == core.NoName {
		return core.NoName
	}
	if !env.TAS(w.s + u) {
		// Lemma 6.2: impossible while the inner algorithm is correct.
		w.violations.Add(1)
		return core.NoName
	}
	return u
}

// Namespace implements core.Algorithm (the extended array size).
func (w *WinBased) Namespace() int { return 2 * w.s }

// Violations returns the number of observed uniqueness violations (name
// claims that lost their TAS). Zero for any correct inner algorithm.
func (w *WinBased) Violations() int64 { return w.violations.Load() }

var _ core.Algorithm = (*WinBased)(nil)

// LayerEnv implements the Lemma 6.3 reduction around an Env: the ℓ-th TAS
// operation of the process is redirected to a fresh copy T_ℓ of the
// location array, i.e. location loc becomes ℓ·s + loc. Lemma 6.3 states
// that the set of processes failing to win any TAS under this layered
// execution contains the corresponding set of the original execution, so
// lower bounds proved against layered executions apply to the original
// algorithm.
//
// LayerEnv is a per-process wrapper (like Env itself, it must not be
// shared).
type LayerEnv struct {
	inner core.Env
	s     int
	layer int
	won   bool
}

// NewLayerEnv wraps env for an algorithm whose probes lie in [0, s).
func NewLayerEnv(env core.Env, s int) *LayerEnv {
	if s < 1 {
		panic(fmt.Sprintf("lowerbound: NewLayerEnv size %d", s))
	}
	return &LayerEnv{inner: env, s: s}
}

// TAS redirects the process's ℓ-th operation to layer array T_ℓ. Per the
// reduction's part (b), a process leaves the protocol as soon as it wins:
// subsequent TAS calls return true without touching shared memory (the
// process "has left"; the algorithm will then terminate on its own).
func (e *LayerEnv) TAS(loc int) bool {
	if loc < 0 || loc >= e.s {
		panic(fmt.Sprintf("lowerbound: layered TAS location %d outside [0,%d)", loc, e.s))
	}
	if e.won {
		return true
	}
	won := e.inner.TAS(e.layer*e.s + loc)
	e.layer++
	if won {
		e.won = true
	}
	return won
}

// Intn forwards to the wrapped environment.
func (e *LayerEnv) Intn(n int) int { return e.inner.Intn(n) }

// Layer returns the number of shared-memory operations performed (the
// index of the next layer array this process would touch).
func (e *LayerEnv) Layer() int { return e.layer }

// Won reports whether the process has won a TAS and left the protocol.
func (e *LayerEnv) Won() bool { return e.won }

var _ core.Env = (*LayerEnv)(nil)
