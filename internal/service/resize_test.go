package service

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	renaming "repro"
	"repro/internal/wire/binproto"
	"repro/lease"
)

// newResizableCore builds a core over an elastic levelarray namer with
// the lease cap seeded to maxLive.
func newResizableCore(t *testing.T, capacity, maxLive int) *Core {
	t.Helper()
	nm, err := renaming.Open("levelarray?n=64&seed=1&resizable")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := lease.New(nm, lease.Config{TTL: time.Minute, SweepInterval: -1, MaxLive: maxLive})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return New(mgr, nil)
}

// TestBindingResize drives grow and shrink through the service op and
// checks both components retarget together.
func TestBindingResize(t *testing.T) {
	core := newResizableCore(t, 64, 64)
	b := core.Bind("http")

	st := b.Resize(128)
	if !st.Ok() {
		t.Fatalf("grow verdicts: namer=%v lease=%v", st.Namer, st.Lease)
	}
	if st.Capacity != 128 || st.MaxLive != 128 || st.Draining {
		t.Fatalf("grow status = %+v", st)
	}
	if st.Epoch == 0 {
		t.Fatal("grow did not advance the resize epoch")
	}

	st2 := b.Resize(32)
	if !st2.Ok() || st2.Capacity != 32 || st2.MaxLive != 32 {
		t.Fatalf("shrink status = %+v", st2)
	}
	if st2.Epoch <= st.Epoch {
		t.Fatalf("epoch %d after shrink, want > %d", st2.Epoch, st.Epoch)
	}

	resp := st2.Wire()
	if len(resp.Results) != 2 || resp.Results[0].Component != "namer" || resp.Results[1].Component != "lease" {
		t.Fatalf("wire results = %+v", resp.Results)
	}
	for _, r := range resp.Results {
		if r.Code != "" || r.Error != "" {
			t.Fatalf("clean resize rendered failure verdict %+v", r)
		}
	}
}

// TestBindingResizeUncapped: a manager running uncapped (MaxLive 0)
// stays uncapped — the resize moves the namespace, not the operator's
// throttling decision.
func TestBindingResizeUncapped(t *testing.T) {
	core := newResizableCore(t, 64, 0)
	b := core.Bind("http")
	st := b.Resize(128)
	if !st.Ok() || st.Capacity != 128 {
		t.Fatalf("resize status = %+v (namer=%v lease=%v)", st, st.Namer, st.Lease)
	}
	if st.MaxLive != 0 {
		t.Fatalf("uncapped manager picked up a cap of %d", st.MaxLive)
	}
}

// TestBindingResizeNonResizable: against a namer built without the
// elastic option the namer verdict fails with bad_request while the
// lease cap still retargets — per-component independence, the batch
// per-item contract applied to admin ops.
func TestBindingResizeNonResizable(t *testing.T) {
	core := newCore(t, 64, nil)
	b := core.Bind("http")
	st := b.Resize(128)
	if st.Namer == nil || !errors.Is(st.Namer, renaming.ErrBadConfig) {
		t.Fatalf("namer verdict = %v, want ErrBadConfig", st.Namer)
	}
	if st.Lease != nil {
		t.Fatalf("lease verdict = %v", st.Lease)
	}
	if st.Capacity != 64 || st.MaxLive != 128 {
		t.Fatalf("status = %+v, want unchanged capacity with moved cap", st)
	}
	resp := st.Wire()
	if resp.Results[0].Code != "bad_request" || resp.Results[0].Error == "" {
		t.Fatalf("namer wire verdict = %+v", resp.Results[0])
	}
	if resp.Results[1].Code != "" {
		t.Fatalf("lease wire verdict = %+v", resp.Results[1])
	}
}

// TestBinServerResize exercises TResize and the elastic TStats fields
// over a real connection.
func TestBinServerResize(t *testing.T) {
	core := newResizableCore(t, 64, 64)
	srv := NewBinServer(core, BinConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	buf, start := binproto.BeginFrame(nil, binproto.TResize, 1)
	buf = binproto.AppendResizeReq(buf, 256)
	buf = binproto.EndFrame(buf, start)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	h, p := readFrame(t, br)
	if h.Type != binproto.TResize|binproto.RespBit || h.ID != 1 {
		t.Fatalf("resize response header = %+v", h)
	}
	res, err := binproto.DecodeResizeResp(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity != 256 || res.MaxLive != 256 || res.Draining {
		t.Fatalf("resize result = %+v", res)
	}
	if len(res.Verdicts) != 2 || res.Verdicts[0].Code != binproto.CodeOK || res.Verdicts[1].Code != binproto.CodeOK {
		t.Fatalf("resize verdicts = %+v", res.Verdicts)
	}

	buf, start = binproto.BeginFrame(buf[:0], binproto.TStats, 2)
	buf = binproto.EndFrame(buf, start)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	h, p = readFrame(t, br)
	if h.Type != binproto.TStats|binproto.RespBit {
		t.Fatalf("stats response header = %+v", h)
	}
	st, err := binproto.DecodeStatsResp(p)
	if err != nil || st.Capacity != 256 || st.MaxLive != 256 || st.Resizes != 1 || st.Draining != 0 {
		t.Fatalf("stats = %+v, %v", st, err)
	}

	// A malformed resize payload is a typed error, not a dropped link.
	buf, start = binproto.BeginFrame(buf[:0], binproto.TResize, 3)
	buf = append(buf, 1, 2)
	buf = binproto.EndFrame(buf, start)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	h, p = readFrame(t, br)
	if h.Type != binproto.TError || h.ID != 3 {
		t.Fatalf("truncated resize answered with %+v", h)
	}
	if code, _, _ := binproto.DecodeErrorResp(p); code != binproto.CodeBadRequest {
		t.Fatalf("truncated resize code = %d", code)
	}
}
