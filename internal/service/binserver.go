package service

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/wire"
	"repro/internal/wire/binproto"
	"repro/lease"
)

// BinConfig tunes a BinServer. The zero value is production-ready.
type BinConfig struct {
	// SlowThreshold gates the structured slow-operation log line (same
	// contract as the HTTP -slow-op flag); 0 disables it.
	SlowThreshold time.Duration
	// SlowLog receives slow-operation lines; nil means stderr.
	SlowLog *slog.Logger
	// IdleTimeout drops a connection that sends no frame for this long;
	// 0 means 2 minutes (matching the HTTP server's IdleTimeout).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response flush; 0 means 30 seconds.
	WriteTimeout time.Duration
}

// BinServer serves the binproto framing over persistent TCP
// connections: the -listen-bin port. Each connection's frames are
// processed strictly in order (the pipelining contract — clients may
// write ahead without waiting) and responses are coalesced: while more
// pipelined requests sit in the read buffer the writer keeps appending
// response frames, flushing only when the connection goes quiet, so a
// burst of N heartbeats costs one syscall out, not N.
type BinServer struct {
	core *Core
	bind *Binding
	cfg  BinConfig

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewBinServer wraps core for the binary transport.
func NewBinServer(core *Core, cfg BinConfig) *BinServer {
	if cfg.SlowLog == nil {
		cfg.SlowLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	//lint:ctx the server root context is the process's serve lifetime, created at bind time and cancelled by Close
	ctx, cancel := context.WithCancel(context.Background())
	return &BinServer{
		core:   core,
		bind:   core.Bind("bin"),
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		conns:  map[net.Conn]struct{}{},
	}
}

// Serve accepts connections on ln until Close. It returns nil after
// Close, or the accept error that stopped it.
func (s *BinServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("binserver: %w", lease.ErrClosed)
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, cancels in-flight operations and closes every
// connection. Idempotent.
func (s *BinServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.cancel()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// binConn is one connection's reusable state: every buffer and scratch
// slice lives for the connection, so a steady heartbeat stream settles
// into zero allocations per frame.
type binConn struct {
	srv  *BinServer
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	hdr     [binproto.HeaderLen]byte
	payload []byte
	resp    []byte

	renewItems   []lease.RenewItem
	releaseItems []lease.ReleaseItem
	verdicts     []Verdict
}

func (s *BinServer) serveConn(conn net.Conn) {
	defer conn.Close()
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	c := &binConn{
		srv:  s,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		if _, err := io.ReadFull(c.br, c.hdr[:]); err != nil {
			return // peer closed or idled out
		}
		h, err := binproto.ParseHeader(c.hdr[:])
		if err != nil {
			// A bad header means the stream is desynchronized: frame
			// boundaries are gone, so answer once and drop the link.
			c.writeError(h.ID, binproto.CodeBadRequest, err.Error())
			c.flush()
			return
		}
		if cap(c.payload) < int(h.Len) {
			c.payload = make([]byte, h.Len)
		}
		c.payload = c.payload[:h.Len]
		if _, err := io.ReadFull(c.br, c.payload); err != nil {
			return
		}
		if err := binproto.VerifyPayload(h, c.payload); err != nil {
			// Damaged bytes with an intact-looking header: the stream
			// cannot be trusted past this point. Same treatment as a
			// bad header — answer once, then drop the link so the
			// client redials onto a clean stream.
			c.writeError(h.ID, binproto.CodeBadRequest, err.Error())
			c.flush()
			return
		}
		if !c.dispatch(ctx, h) {
			return
		}
		// Write coalescing: only flush when no pipelined frame is already
		// waiting in the read buffer — a burst drains into one write.
		if c.br.Buffered() == 0 {
			if !c.flush() {
				return
			}
		}
	}
}

// flush pushes buffered response frames to the socket.
func (c *binConn) flush() bool {
	c.conn.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	return c.bw.Flush() == nil
}

// writeError appends a TError frame for request id.
func (c *binConn) writeError(id uint64, code byte, msg string) {
	c.resp = c.resp[:0]
	var start int
	c.resp, start = binproto.BeginFrame(c.resp, binproto.TError, id)
	c.resp = binproto.AppendErrorResp(c.resp, code, msg)
	c.resp = binproto.EndFrame(c.resp, start)
	c.bw.Write(c.resp)
}

// dispatch decodes and serves one frame, appending the response to the
// write buffer. It returns false when the connection must drop.
func (c *binConn) dispatch(ctx context.Context, h binproto.Header) bool {
	start := time.Now()
	b := c.srv.bind
	c.resp = c.resp[:0]
	var frameStart int
	ok := func(t binproto.Type) {
		c.resp, frameStart = binproto.BeginFrame(c.resp, t|binproto.RespBit, h.ID)
	}
	var opErr error

	switch h.Type {
	case binproto.TAcquire:
		owner, ttlMs, meta, err := binproto.DecodeAcquireReq(c.payload)
		if err != nil {
			opErr = err
			break
		}
		l, err := b.Acquire(ctx, &wire.AcquireRequest{Owner: owner, TTLms: ttlMs, Meta: meta})
		if err != nil {
			opErr = err
			break
		}
		ok(binproto.TAcquire)
		c.resp = binproto.AppendLease(c.resp, int64(l.Name), l.Token, l.ExpiresAtMs)

	case binproto.TAcquireBatch:
		owner, count, ttlMs, meta, err := binproto.DecodeAcquireBatchReq(c.payload)
		if err != nil {
			opErr = err
			break
		}
		ls, err := b.AcquireBatch(ctx, &wire.AcquireBatchRequest{Owner: owner, Count: count, TTLms: ttlMs, Meta: meta})
		if err != nil {
			opErr = err
			break
		}
		ok(binproto.TAcquireBatch)
		c.resp = binproto.AppendLeasesRespHeader(c.resp, len(ls))
		for _, l := range ls {
			c.resp = binproto.AppendLease(c.resp, int64(l.Name), l.Token, l.ExpiresAtMs)
		}

	case binproto.TRenew:
		name, token, ttlMs, err := binproto.DecodeRenewReq(c.payload)
		if err != nil {
			opErr = err
			break
		}
		l, err := b.Renew(&wire.RenewRequest{Name: int(name), Token: token, TTLms: ttlMs})
		if err != nil {
			opErr = err
			break
		}
		ok(binproto.TRenew)
		c.resp = binproto.AppendLease(c.resp, int64(l.Name), l.Token, l.ExpiresAtMs)

	case binproto.TRenewBatch:
		ttlMs, items, err := binproto.DecodeRenewBatchReq(c.payload, c.renewItems)
		c.renewItems = items
		if err != nil {
			opErr = err
			break
		}
		verdicts, err := b.RenewBatch(ctx, wire.TTLFromMs(ttlMs), items, c.verdicts)
		c.verdicts = verdicts
		if err != nil {
			opErr = err
			break
		}
		ok(binproto.TRenewBatch)
		c.resp = binproto.AppendBatchRespHeader(c.resp, len(verdicts))
		for i := range verdicts {
			v := &verdicts[i]
			if v.Code != "" {
				c.resp = binproto.AppendRenewResult(c.resp, binproto.CodeByte(v.Code), 0, 0, 0)
				continue
			}
			c.resp = binproto.AppendRenewResult(c.resp, binproto.CodeOK,
				int64(v.Lease.Name), v.Lease.Token, v.Lease.ExpiresAtMs)
		}

	case binproto.TRelease:
		name, token, err := binproto.DecodeReleaseReq(c.payload)
		if err != nil {
			opErr = err
			break
		}
		if err := b.Release(&wire.ReleaseRequest{Name: int(name), Token: token}); err != nil {
			opErr = err
			break
		}
		ok(binproto.TRelease)

	case binproto.TReleaseBatch:
		items, err := binproto.DecodeReleaseBatchReq(c.payload, c.releaseItems)
		c.releaseItems = items
		if err != nil {
			opErr = err
			break
		}
		verdicts, err := b.ReleaseBatch(ctx, items, c.verdicts)
		c.verdicts = verdicts
		if err != nil {
			opErr = err
			break
		}
		ok(binproto.TReleaseBatch)
		c.resp = binproto.AppendBatchRespHeader(c.resp, len(verdicts))
		for i := range verdicts {
			c.resp = append(c.resp, binproto.CodeByte(verdicts[i].Code))
		}

	case binproto.TStats:
		if len(c.payload) != 0 {
			opErr = binproto.ErrTrailingBytes
			break
		}
		m := b.StatsCounted()
		capacity, draining, _ := c.srv.core.NamespaceInfo()
		var drainWord int64
		if draining {
			drainWord = 1
		}
		ok(binproto.TStats)
		c.resp = binproto.AppendStatsResp(c.resp, binproto.Stats{
			Live:     int64(m.Live),
			Acquired: m.Acquired,
			Renewed:  m.Renewed,
			Released: m.Released,
			Expired:  m.Expired,
			Rejected: m.Rejected,
			Capacity: int64(capacity),
			MaxLive:  m.MaxLive,
			Resizes:  m.Resizes,
			Draining: drainWord,
		})

	case binproto.TResize:
		capacity, err := binproto.DecodeResizeReq(c.payload)
		if err != nil {
			opErr = err
			break
		}
		st := b.Resize(int(capacity))
		ok(binproto.TResize)
		c.resp = binproto.AppendResizeResp(c.resp, st.Bin())

	default:
		// A request carrying a response type: protocol misuse, drop.
		c.writeError(h.ID, binproto.CodeBadRequest, "frame type is not a request")
		c.flush()
		return false
	}

	if opErr != nil {
		c.writeError(h.ID, binproto.CodeForErr(opErr), opErr.Error())
	} else {
		c.resp = binproto.EndFrame(c.resp, frameStart)
		if _, err := c.bw.Write(c.resp); err != nil {
			return false
		}
	}

	if th := c.srv.cfg.SlowThreshold; th > 0 {
		if d := time.Since(start); d >= th {
			c.srv.cfg.SlowLog.Warn("slow operation",
				"op", opLabel(h.Type),
				"duration_ms", float64(d)/float64(time.Millisecond),
				"request_id", fmt.Sprintf("%016x", h.ID))
		}
	}
	// A malformed payload inside a well-framed request is answered but
	// the link survives — frame boundaries are still intact.
	return true
}

// opLabel renders a frame type for the slow-op log, matching the HTTP
// route names.
func opLabel(t binproto.Type) string {
	switch t {
	case binproto.TAcquire:
		return "acquire"
	case binproto.TAcquireBatch:
		return "acquire_batch"
	case binproto.TRenew:
		return "renew"
	case binproto.TRenewBatch:
		return "renew_batch"
	case binproto.TRelease:
		return "release"
	case binproto.TReleaseBatch:
		return "release_batch"
	case binproto.TStats:
		return "stats"
	case binproto.TResize:
		return "resize"
	default:
		return fmt.Sprintf("type_0x%02x", byte(t))
	}
}
