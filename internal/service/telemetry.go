package service

import (
	"repro/internal/telemetry"
)

// Operation indices for pre-resolved per-op instrumentation handles.
const (
	opAcquire = iota
	opAcquireBatch
	opRenew
	opRenewBatch
	opRelease
	opReleaseBatch
	opStats
	opResize
	opCount
)

// opName maps the indices onto the label values shared with the HTTP
// route names; "stats" exists only on transports that serve it as a
// request (the binary TStats frame).
var opName = [opCount]string{
	"acquire", "acquire_batch", "renew", "renew_batch", "release", "release_batch", "stats", "resize",
}

// Transports are the label values the per-transport series are
// pre-resolved for, so the exposition is stable from the first scrape
// whether or not a transport has seen traffic.
var transports = []string{"http", "bin"}

// verdictCodes are the per-item outcomes a batch endpoint can report;
// "ok" is the success code (the wire sends success as an absent code).
var verdictCodes = []string{
	"ok",
	"unknown_name", "wrong_token", "expired", "closed", "cancelled", "internal",
}

// opHandle is one (transport, op)'s pre-resolved instrumentation.
type opHandle struct {
	reqs *telemetry.Counter
	lat  *telemetry.Histogram
}

// verdictSet pre-resolves one batch op's per-code verdict counters;
// indexing a plain map is lock-free, CounterVec.With is not. A nil set
// (telemetry disabled) ignores increments.
type verdictSet struct {
	byCode map[string]*telemetry.Counter
}

func (v *verdictSet) inc(code string) {
	if v == nil {
		return
	}
	if c, ok := v.byCode[code]; ok {
		c.Inc()
	}
}

// Telemetry is the service core's metric surface: request counts and
// latency labeled by (transport, op), and the per-item batch verdict
// counters shared by every transport. The legacy renamed_http_* series
// remain with the HTTP adapter — they predate the second transport and
// dashboards depend on them byte-for-byte.
type Telemetry struct {
	requests *telemetry.CounterVec
	latency  *telemetry.HistogramVec
	verdicts map[string]*verdictSet
}

// NewTelemetry registers the service families on reg. Every
// (transport, op) and (op, code) child is resolved up front so the
// exposition surface is identical on an idle server and a busy one.
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	t := &Telemetry{
		requests: reg.CounterVec("renamed_requests_total",
			"Requests served by the service core, by transport and operation.", "transport", "op"),
		latency: reg.HistogramVec("renamed_request_duration_seconds",
			"Service-core operation latency, by transport and operation.", "transport", "op"),
		verdicts: map[string]*verdictSet{},
	}
	for _, tr := range transports {
		for _, op := range opName {
			t.requests.With(tr, op)
			t.latency.With(tr, op)
		}
	}
	vec := reg.CounterVec("renamed_batch_item_verdicts_total",
		"Per-item outcomes inside renew_batch/release_batch responses.", "op", "code")
	for _, op := range []string{"renew_batch", "release_batch"} {
		set := &verdictSet{byCode: map[string]*telemetry.Counter{}}
		for _, code := range verdictCodes {
			set.byCode[code] = vec.With(op, code)
		}
		t.verdicts[op] = set
	}
	return t
}

// handle resolves one (transport, op) instrumentation pair.
func (t *Telemetry) handle(transport, op string) opHandle {
	return opHandle{
		reqs: t.requests.With(transport, op),
		lat:  t.latency.With(transport, op),
	}
}
