// Package service is the transport-neutral core of cmd/renamed: every
// operation the daemon offers — Acquire, AcquireBatch, Renew,
// RenewBatch, Release, ReleaseBatch, Stats — lives here once, and the
// HTTP/JSON surface and the binary protocol (internal/wire/binproto,
// served by BinServer) are thin adapters over the same Core. Per-item
// verdicts, verdict counters and per-transport telemetry are computed
// in the core, so the two surfaces cannot drift: a renew_batch item
// that reads "wrong_token" over HTTP reads wrong_token over the binary
// port, and both increment the same renamed_batch_item_verdicts_total
// series.
package service

import (
	"context"
	"fmt"
	"time"

	renaming "repro"
	"repro/internal/wire"
	"repro/internal/wire/binproto"
	"repro/lease"
)

// Core owns the lease manager and the shared telemetry. One Core serves
// any number of transport bindings.
type Core struct {
	mgr *lease.Manager
	tel *Telemetry
}

// New wraps mgr. tel may be nil (tests, embedded use): operations run
// uninstrumented but otherwise identically.
func New(mgr *lease.Manager, tel *Telemetry) *Core {
	return &Core{mgr: mgr, tel: tel}
}

// Manager exposes the underlying lease manager for lifecycle calls
// (Restore, Shutdown, Metrics) that are process concerns, not requests.
func (c *Core) Manager() *lease.Manager { return c.mgr }

// Stats snapshots the lease-table counters (an O(live) stripe walk —
// cache it on scrape paths).
func (c *Core) Stats() lease.Metrics { return c.mgr.Metrics() }

// Leases lists the live table for read-only inspection. Fencing tokens
// are capabilities — only the holder may renew or release — so they are
// zeroed before the table leaves the core, on every transport.
func (c *Core) Leases() []wire.Lease {
	ls := c.mgr.Leases()
	out := make([]wire.Lease, len(ls))
	for i, l := range ls {
		entry := wire.FromLease(l)
		entry.Token = 0
		out[i] = entry
	}
	return out
}

// Verdict is one item's outcome in a batch operation: Code "" means
// success and Lease carries the extended deadline; otherwise Code is a
// wire code (wire.CodeUnknownName, ...) and Msg the server-rendered
// error text.
type Verdict struct {
	Code  string
	Msg   string
	Lease wire.Lease
}

// Binding is a Core bound to one transport label ("http", "bin"): the
// same operations with the per-transport request counters and latency
// histograms pre-resolved, so the hot path never touches a CounterVec
// lock. Create one per transport at startup and reuse it.
type Binding struct {
	core *Core
	mgr  *lease.Manager
	ops  [opCount]opHandle
	// verdict counters are shared across transports (the op label is the
	// batch endpoint, not the wire) — kept here pre-resolved.
	renewVerdicts   *verdictSet
	releaseVerdicts *verdictSet
}

// Bind returns the Core's operations instrumented under the given
// transport label.
func (c *Core) Bind(transport string) *Binding {
	b := &Binding{core: c, mgr: c.mgr}
	if c.tel != nil {
		for op := 0; op < opCount; op++ {
			b.ops[op] = c.tel.handle(transport, opName[op])
		}
		b.renewVerdicts = c.tel.verdicts["renew_batch"]
		b.releaseVerdicts = c.tel.verdicts["release_batch"]
	}
	return b
}

// observe records one operation against the binding's transport; the
// zero opHandle (nil telemetry) is a no-op.
func (b *Binding) observe(op int, start time.Time) {
	h := b.ops[op]
	if h.reqs == nil {
		return
	}
	h.reqs.Inc()
	h.lat.Observe(time.Since(start))
}

// Acquire grants one lease. The context ties the probe sequence to the
// caller: a client that disconnects mid-acquire cancels instead of
// leaving behind a lease nobody will renew.
func (b *Binding) Acquire(ctx context.Context, req *wire.AcquireRequest) (wire.Lease, error) {
	start := time.Now()
	defer b.observe(opAcquire, start)
	l, err := b.mgr.AcquireCtx(ctx, req.Owner, wire.TTLFromMs(req.TTLms), req.Meta)
	if err != nil {
		return wire.Lease{}, err
	}
	return wire.FromLease(l), nil
}

// AcquireBatch grants count leases all-or-nothing.
func (b *Binding) AcquireBatch(ctx context.Context, req *wire.AcquireBatchRequest) ([]wire.Lease, error) {
	start := time.Now()
	defer b.observe(opAcquireBatch, start)
	ls, err := b.mgr.AcquireBatch(ctx, req.Owner, req.Count, wire.TTLFromMs(req.TTLms), req.Meta)
	if err != nil {
		return nil, err
	}
	out := make([]wire.Lease, len(ls))
	for i, l := range ls {
		out[i] = wire.FromLease(l)
	}
	return out, nil
}

// Renew extends one lease.
func (b *Binding) Renew(req *wire.RenewRequest) (wire.Lease, error) {
	start := time.Now()
	defer b.observe(opRenew, start)
	l, err := b.mgr.Renew(req.Name, req.Token, wire.TTLFromMs(req.TTLms))
	if err != nil {
		return wire.Lease{}, err
	}
	return wire.FromLease(l), nil
}

// RenewBatch is the heartbeat hot path: one call renews every lease a
// session holds, one lock visit per involved stripe. Outcomes are
// per-item and index-aligned — the call succeeds even when individual
// items fail, because a session must learn exactly which leases it
// lost; only a request that could not be processed at all (closed
// manager, context done) returns an error. items and out are caller-
// owned and reused across calls: appended into, never retained.
func (b *Binding) RenewBatch(ctx context.Context, ttl time.Duration, items []lease.RenewItem, out []Verdict) ([]Verdict, error) {
	start := time.Now()
	defer b.observe(opRenewBatch, start)
	results, err := b.mgr.RenewBatch(ctx, items, ttl)
	if err != nil {
		return out[:0], err
	}
	out = out[:0]
	for i := range results {
		if rerr := results[i].Err; rerr != nil {
			code := wire.CodeFor(rerr)
			b.renewVerdicts.inc(code)
			out = append(out, Verdict{Code: code, Msg: rerr.Error()})
			continue
		}
		b.renewVerdicts.inc("ok")
		out = append(out, Verdict{Lease: wire.FromLease(results[i].Lease)})
	}
	return out, nil
}

// Release ends one lease.
func (b *Binding) Release(req *wire.ReleaseRequest) error {
	start := time.Now()
	defer b.observe(opRelease, start)
	return b.mgr.Release(req.Name, req.Token)
}

// ReleaseBatch ends many leases with per-item outcomes, mirroring
// RenewBatch — a session holding hundreds of names must not shut down
// over hundreds of round trips.
func (b *Binding) ReleaseBatch(ctx context.Context, items []lease.ReleaseItem, out []Verdict) ([]Verdict, error) {
	start := time.Now()
	defer b.observe(opReleaseBatch, start)
	results, err := b.mgr.ReleaseBatch(ctx, items)
	if err != nil {
		return out[:0], err
	}
	out = out[:0]
	for i := range results {
		if rerr := results[i].Err; rerr != nil {
			code := wire.CodeFor(rerr)
			b.releaseVerdicts.inc(code)
			out = append(out, Verdict{Code: code, Msg: rerr.Error()})
			continue
		}
		b.releaseVerdicts.inc("ok")
		out = append(out, Verdict{})
	}
	return out, nil
}

// StatsCounted is Stats with the binding's request accounting — the
// transport-facing stats op (the binary TStats frame), as opposed to
// internal scrapes.
func (b *Binding) StatsCounted() lease.Metrics {
	start := time.Now()
	defer b.observe(opStats, start)
	return b.mgr.Metrics()
}

// Capacity reads the namer's instantaneous capacity: one atomic
// geometry load on the elastic path. Kept separate from NamespaceInfo
// because the drain-state read walks the drained tail — a per-scrape
// capacity gauge must not pay for it.
//
//renamed:noalloc
func (c *Core) Capacity() int {
	if ln, ok := c.mgr.Namer().(renaming.LongLivedNamer); ok {
		return ln.Capacity()
	}
	return 0
}

// NamespaceInfo snapshots the namer side of the elastic state: current
// capacity, whether a shrink is still draining held names above its
// bound, and the resize epoch. A namer without the resizable extension
// reports a static capacity with zero drain state.
func (c *Core) NamespaceInfo() (capacity int, draining bool, epoch uint64) {
	nm := c.mgr.Namer()
	if ln, ok := nm.(renaming.LongLivedNamer); ok {
		capacity = ln.Capacity()
	}
	if rn, ok := nm.(renaming.ResizableNamer); ok {
		draining = rn.Draining()
		epoch = rn.ResizeEpoch()
	}
	return capacity, draining, epoch
}

// ResizeStatus is the outcome of one Resize call: the post-resize
// geometry plus per-component errors. The namer and the lease cap are
// retargeted independently — either can fail on its own and the other
// side's change still stands, exactly like batch per-item verdicts.
type ResizeStatus struct {
	Capacity int
	MaxLive  int64
	Epoch    uint64
	Draining bool
	Namer    error // namer capacity retarget outcome
	Lease    error // lease live-cap retarget outcome
}

// Wire renders the status as the JSON /v1/resize response body. Codes
// come from the binary taxonomy's string forms so a bad-config verdict
// reads "bad_request" on both surfaces.
func (s ResizeStatus) Wire() wire.ResizeResponse {
	resp := wire.ResizeResponse{
		Capacity: s.Capacity,
		MaxLive:  s.MaxLive,
		Epoch:    s.Epoch,
		Draining: s.Draining,
	}
	for _, v := range []struct {
		component string
		err       error
	}{{"namer", s.Namer}, {"lease", s.Lease}} {
		r := wire.ResizeResult{Component: v.component}
		if v.err != nil {
			r.Code = binproto.CodeString(binproto.CodeForErr(v.err))
			r.Error = v.err.Error()
		}
		resp.Results = append(resp.Results, r)
	}
	return resp
}

// Bin renders the status as the binary TResize response payload.
func (s ResizeStatus) Bin() binproto.ResizeResult {
	res := binproto.ResizeResult{
		Capacity: int64(s.Capacity),
		MaxLive:  s.MaxLive,
		Epoch:    s.Epoch,
		Draining: s.Draining,
	}
	for _, v := range []struct {
		component string
		err       error
	}{{"namer", s.Namer}, {"lease", s.Lease}} {
		verdict := binproto.ResizeVerdict{Component: v.component, Code: binproto.CodeForErr(v.err)}
		if v.err != nil {
			verdict.Msg = v.err.Error()
		}
		res.Verdicts = append(res.Verdicts, verdict)
	}
	return res
}

// Ok reports whether every component accepted the resize.
func (s ResizeStatus) Ok() bool { return s.Namer == nil && s.Lease == nil }

// Resize retargets the elastic namespace to n names: the namer's
// capacity and the lease manager's live cap move together. Ordering
// keeps the cap conservative at every instant — on grow the namer
// widens before the cap rises, on shrink the cap drops before the
// namer narrows — so no reservation is ever admitted against capacity
// that does not (yet, or any longer) exist. A manager configured
// uncapped (MaxLive 0) stays uncapped: the resize moves the namespace,
// not the operator's decision to throttle.
func (b *Binding) Resize(n int) ResizeStatus {
	start := time.Now()
	defer b.observe(opResize, start)

	nm := b.mgr.Namer()
	rn, resizable := nm.(renaming.ResizableNamer)
	var st ResizeStatus
	doNamer := func() {
		if !resizable {
			st.Namer = fmt.Errorf("service: namer %T cannot resize: %w", nm, renaming.ErrBadConfig)
			return
		}
		st.Namer = rn.Resize(n)
	}
	doLease := func() {
		if b.mgr.MaxLive() == 0 {
			return // uncapped stays uncapped
		}
		st.Lease = b.mgr.SetMaxLive(n)
	}
	if n >= b.core.Capacity() {
		doNamer()
		doLease()
	} else {
		doLease()
		doNamer()
	}
	st.Capacity, st.Draining, st.Epoch = b.core.NamespaceInfo()
	st.MaxLive = int64(b.mgr.MaxLive())
	return st
}
