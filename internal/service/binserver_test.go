package service

import (
	"bufio"
	"bytes"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/internal/wire/binproto"
)

// startBinServer serves a fresh core on a loopback listener.
func startBinServer(t *testing.T, capacity int, cfg BinConfig) (addr string, core *Core) {
	t.Helper()
	core = newCore(t, capacity, nil)
	srv := NewBinServer(core, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return ln.Addr().String(), core
}

// readFrame reads one response frame.
func readFrame(t *testing.T, br *bufio.Reader) (binproto.Header, []byte) {
	t.Helper()
	var hdr [binproto.HeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatalf("read header: %v", err)
	}
	h, err := binproto.ParseHeader(hdr[:])
	if err != nil {
		t.Fatalf("parse header: %v", err)
	}
	p := make([]byte, h.Len)
	if _, err := io.ReadFull(br, p); err != nil {
		t.Fatalf("read payload: %v", err)
	}
	return h, p
}

// TestBinServerRoundTrip exercises the full op set over one connection.
func TestBinServerRoundTrip(t *testing.T) {
	addr, _ := startBinServer(t, 64, BinConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	send := func(typ binproto.Type, id uint64, encode func([]byte) []byte) {
		t.Helper()
		buf, start := binproto.BeginFrame(nil, typ, id)
		buf = encode(buf)
		buf = binproto.EndFrame(buf, start)
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}

	// Acquire with meta.
	send(binproto.TAcquire, 1, func(b []byte) []byte {
		return binproto.AppendAcquireReq(b, "bin-worker", 60_000, map[string]string{"az": "c"})
	})
	h, p := readFrame(t, br)
	if h.Type != binproto.TAcquire|binproto.RespBit || h.ID != 1 {
		t.Fatalf("acquire response header = %+v", h)
	}
	l, err := binproto.DecodeLease(p)
	if err != nil || l.Token == 0 {
		t.Fatalf("acquire lease = %+v, %v", l, err)
	}

	// Renew it.
	send(binproto.TRenew, 2, func(b []byte) []byte {
		return binproto.AppendRenewReq(b, l.Name, l.Token, 60_000)
	})
	h, p = readFrame(t, br)
	if h.Type != binproto.TRenew|binproto.RespBit || h.ID != 2 {
		t.Fatalf("renew response header = %+v", h)
	}
	if _, err := binproto.DecodeLease(p); err != nil {
		t.Fatal(err)
	}

	// Renew batch: the held lease plus a bogus one — per-item verdicts.
	send(binproto.TRenewBatch, 3, func(b []byte) []byte {
		return binproto.AppendRenewBatchReq(b, 60_000, []wire.Item{
			{Name: int(l.Name), Token: l.Token},
			{Name: 9999, Token: 7},
		})
	})
	h, p = readFrame(t, br)
	if h.Type != binproto.TRenewBatch|binproto.RespBit || h.ID != 3 {
		t.Fatalf("renew_batch response header = %+v", h)
	}
	results, err := binproto.DecodeRenewBatchResp(p, nil)
	if err != nil || len(results) != 2 {
		t.Fatalf("renew_batch results = %+v, %v", results, err)
	}
	if results[0].Code != binproto.CodeOK || results[0].Token != l.Token {
		t.Fatalf("result 0 = %+v", results[0])
	}
	if binproto.CodeString(results[1].Code) != wire.CodeUnknownName {
		t.Fatalf("result 1 = %+v", results[1])
	}

	// Stats sees the traffic.
	send(binproto.TStats, 4, func(b []byte) []byte { return b })
	h, p = readFrame(t, br)
	if h.Type != binproto.TStats|binproto.RespBit {
		t.Fatalf("stats response header = %+v", h)
	}
	st, err := binproto.DecodeStatsResp(p)
	if err != nil || st.Acquired != 1 || st.Renewed != 2 || st.Live != 1 {
		t.Fatalf("stats = %+v, %v", st, err)
	}

	// Release; empty payload success.
	send(binproto.TRelease, 5, func(b []byte) []byte {
		return binproto.AppendReleaseReq(b, l.Name, l.Token)
	})
	h, p = readFrame(t, br)
	if h.Type != binproto.TRelease|binproto.RespBit || len(p) != 0 {
		t.Fatalf("release response = %+v, %d payload bytes", h, len(p))
	}

	// Releasing again: whole-request typed error frame.
	send(binproto.TRelease, 6, func(b []byte) []byte {
		return binproto.AppendReleaseReq(b, l.Name, l.Token)
	})
	h, p = readFrame(t, br)
	if h.Type != binproto.TError || h.ID != 6 {
		t.Fatalf("double release header = %+v", h)
	}
	code, msg, err := binproto.DecodeErrorResp(p)
	if err != nil || binproto.CodeString(code) != wire.CodeUnknownName || msg == "" {
		t.Fatalf("double release error = (%d, %q, %v)", code, msg, err)
	}
}

// TestBinServerPipelining writes a burst of back-to-back frames without
// reading, then expects every response in request order with echoed
// IDs — the pipelining contract.
func TestBinServerPipelining(t *testing.T) {
	addr, _ := startBinServer(t, 64, BinConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One acquire first to have a lease to renew.
	var buf []byte
	var start int
	buf, start = binproto.BeginFrame(buf, binproto.TAcquire, 100)
	buf = binproto.AppendAcquireReq(buf, "pipeliner", 60_000, nil)
	buf = binproto.EndFrame(buf, start)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	_, p := readFrame(t, br)
	l, err := binproto.DecodeLease(p)
	if err != nil {
		t.Fatal(err)
	}

	// 10 pipelined renew_batch frames in ONE write.
	const depth = 10
	buf = buf[:0]
	for i := 0; i < depth; i++ {
		buf, start = binproto.BeginFrame(buf, binproto.TRenewBatch, uint64(200+i))
		buf = binproto.AppendRenewBatchReq(buf, 60_000, []wire.Item{{Name: int(l.Name), Token: l.Token}})
		buf = binproto.EndFrame(buf, start)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		h, p := readFrame(t, br)
		if h.ID != uint64(200+i) {
			t.Fatalf("response %d carried id %d, want %d (pipelined order broken)", i, h.ID, 200+i)
		}
		if h.Type != binproto.TRenewBatch|binproto.RespBit {
			t.Fatalf("response %d type = %#x", i, byte(h.Type))
		}
		results, err := binproto.DecodeRenewBatchResp(p, nil)
		if err != nil || len(results) != 1 || results[0].Code != binproto.CodeOK {
			t.Fatalf("response %d results = %+v, %v", i, results, err)
		}
	}
}

// TestBinServerBadHeaderDropsConn: garbage where a header should be is
// answered with one error frame, then the connection closes — frame
// boundaries are unrecoverable.
func TestBinServerBadHeaderDropsConn(t *testing.T) {
	addr, _ := startBinServer(t, 8, BinConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(bytes.Repeat([]byte{0xAB}, binproto.HeaderLen)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	h, p := readFrame(t, br)
	if h.Type != binproto.TError {
		t.Fatalf("bad header answered with %+v", h)
	}
	code, _, err := binproto.DecodeErrorResp(p)
	if err != nil || code != binproto.CodeBadRequest {
		t.Fatalf("bad header error = (%d, %v)", code, err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection stayed open after desync: %v", err)
	}
}

// TestBinServerMalformedPayloadKeepsConn: a well-framed request whose
// payload won't decode gets a typed error and the link SURVIVES —
// boundaries are intact.
func TestBinServerMalformedPayloadKeepsConn(t *testing.T) {
	addr, _ := startBinServer(t, 8, BinConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	// Truncated renew payload (needs 24 bytes, send 3).
	buf, start := binproto.BeginFrame(nil, binproto.TRenew, 7)
	buf = append(buf, 1, 2, 3)
	buf = binproto.EndFrame(buf, start)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	h, p := readFrame(t, br)
	if h.Type != binproto.TError || h.ID != 7 {
		t.Fatalf("malformed payload header = %+v", h)
	}
	if code, _, _ := binproto.DecodeErrorResp(p); code != binproto.CodeBadRequest {
		t.Fatalf("malformed payload code = %d", code)
	}

	// The same connection still serves requests.
	buf, start = binproto.BeginFrame(buf[:0], binproto.TStats, 8)
	buf = binproto.EndFrame(buf, start)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	h, _ = readFrame(t, br)
	if h.Type != binproto.TStats|binproto.RespBit || h.ID != 8 {
		t.Fatalf("post-error stats response = %+v", h)
	}
}

// TestBinServerSlowOpLog: the slow-operation line carries the request
// ID in the same %016x shape as the HTTP surface.
func TestBinServerSlowOpLog(t *testing.T) {
	var mu sync.Mutex
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logBuf.Write(p)
	}), nil))
	addr, _ := startBinServer(t, 8, BinConfig{SlowThreshold: time.Nanosecond, SlowLog: logger})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf, start := binproto.BeginFrame(nil, binproto.TAcquire, 0xABCDEF)
	buf = binproto.AppendAcquireReq(buf, "slow", 60_000, nil)
	buf = binproto.EndFrame(buf, start)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	readFrame(t, bufio.NewReader(conn))
	mu.Lock()
	logs := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logs, "request_id=0000000000abcdef") {
		t.Fatalf("slow-op log missing %%016x request id:\n%s", logs)
	}
	if !strings.Contains(logs, "op=acquire") {
		t.Fatalf("slow-op log missing op label:\n%s", logs)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestBinServerCloseCancelsConns: Close drops live connections and
// Serve returns nil.
func TestBinServerCloseCancelsConns(t *testing.T) {
	core := newCore(t, 8, nil)
	srv := NewBinServer(core, BinConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Give the accept loop a beat to register the connection.
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve after Close = %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		t.Fatal("connection survived server Close")
	}
}
