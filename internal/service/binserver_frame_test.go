package service

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/wire/binproto"
)

// waitGoroutines polls until the goroutine count settles back to at
// most base, failing after the deadline. Counts are noisy (finalizers,
// test runner), so poll rather than compare once.
func waitGoroutines(t *testing.T, base int, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(end) {
			t.Fatalf("goroutines did not settle: %d, want <= %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBinServerHalfHeaderStallIdlesOut: a client that sends half a
// header and stalls must be disconnected by IdleTimeout — the read
// deadline set at the top of the frame loop covers the whole frame, so
// a torn header cannot pin a serveConn goroutine forever.
func TestBinServerHalfHeaderStallIdlesOut(t *testing.T) {
	base := runtime.NumGoroutine()
	addr, _ := startBinServer(t, 16, BinConfig{IdleTimeout: 150 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Write(make([]byte, binproto.HeaderLen/2)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == io.EOF {
		// server closed cleanly
	} else if err == nil {
		t.Fatal("server answered a half header instead of dropping the connection")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server kept a half-header connection past IdleTimeout")
	}
	// serveConn returned on its own (the listener and server are still
	// up), so the per-connection goroutines must be gone: base + the
	// acceptor + the Serve watchdog.
	waitGoroutines(t, base+2, 2*time.Second)

	// The server itself is unharmed: a healthy connection still works.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	buf, start := binproto.BeginFrame(nil, binproto.TStats, 1)
	buf = binproto.EndFrame(buf, start)
	if _, err := conn2.Write(buf); err != nil {
		t.Fatal(err)
	}
	h, _ := readFrame(t, bufio.NewReader(conn2))
	if h.Type != binproto.TStats|binproto.RespBit || h.ID != 1 {
		t.Fatalf("stats after stalled peer = %+v", h)
	}
}

// TestBinServerHalfPayloadStallIdlesOut: same guarantee one layer down
// — a complete header promising bytes that never arrive.
func TestBinServerHalfPayloadStallIdlesOut(t *testing.T) {
	addr, _ := startBinServer(t, 16, BinConfig{IdleTimeout: 150 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A well-formed acquire frame, truncated halfway through its payload.
	buf, start := binproto.BeginFrame(nil, binproto.TAcquire, 7)
	buf = binproto.AppendAcquireReq(buf, "stall", 60_000, nil)
	buf = binproto.EndFrame(buf, start)
	if _, err := conn.Write(buf[:len(buf)-4]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	start2 := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after payload stall = %v, want EOF from idle disconnect", err)
	}
	if elapsed := time.Since(start2); elapsed > 2*time.Second {
		t.Fatalf("idle disconnect took %v, deadline is not covering the payload read", elapsed)
	}
}

// TestBinServerMidPipelineReset: a client that pipelines a burst and
// resets the connection mid-write must not disturb anything outside its
// own connection — requests already dispatched still apply, and a
// concurrent connection's responses stay frame-correct.
func TestBinServerMidPipelineReset(t *testing.T) {
	addr, core := startBinServer(t, 256, BinConfig{})

	for round := 0; round < 8; round++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// A burst of pipelined acquires the server will answer into its
		// coalescing write buffer...
		var burst []byte
		for id := uint64(1); id <= 16; id++ {
			var start int
			burst, start = binproto.BeginFrame(burst, binproto.TAcquire, id)
			burst = binproto.AppendAcquireReq(burst, "resetter", 60_000, nil)
			burst = binproto.EndFrame(burst, start)
		}
		if _, err := conn.Write(burst); err != nil {
			t.Fatal(err)
		}
		// ...then an RST instead of reads: SO_LINGER 0 makes Close send a
		// reset, so the server hits a write error mid-flush.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		conn.Close()
	}

	// The resets must not have corrupted shared state: a fresh connection
	// gets exact frames back and the stats reflect every acquire that was
	// dispatched before each reset landed.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	buf, start := binproto.BeginFrame(nil, binproto.TAcquire, 99)
	buf = binproto.AppendAcquireReq(buf, "survivor", 60_000, nil)
	buf = binproto.EndFrame(buf, start)
	buf, start = binproto.BeginFrame(buf, binproto.TStats, 100)
	buf = binproto.EndFrame(buf, start)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	h, p := readFrame(t, br)
	if h.Type != binproto.TAcquire|binproto.RespBit || h.ID != 99 {
		t.Fatalf("acquire after resets = %+v", h)
	}
	if _, err := binproto.DecodeLease(p); err != nil {
		t.Fatalf("acquire payload corrupt after resets: %v", err)
	}
	h, p = readFrame(t, br)
	if h.Type != binproto.TStats|binproto.RespBit || h.ID != 100 {
		t.Fatalf("stats after resets = %+v", h)
	}
	st, err := binproto.DecodeStatsResp(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Acquired < 1 || st.Acquired > 16*8+1 {
		t.Fatalf("stats after resets = %+v, implausible acquire count", st)
	}
	if got := core.Stats().Live; int64(got) != st.Live {
		t.Fatalf("core live %d != stats frame live %d", got, st.Live)
	}
}

// TestBinServerOversizedFrameRejected: a header declaring a payload
// larger than the protocol cap must be refused before the server
// allocates or reads it.
func TestBinServerOversizedFrameRejected(t *testing.T) {
	addr, _ := startBinServer(t, 16, BinConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Hand-build a header claiming an absurd length: the length field is
	// header bytes 12..16, big-endian.
	buf, start := binproto.BeginFrame(nil, binproto.TAcquire, 1)
	buf = binproto.AppendAcquireReq(buf, "big", 60_000, nil)
	buf = binproto.EndFrame(buf, start)
	binary.BigEndian.PutUint32(buf[12:16], binproto.MaxPayload+1)
	if _, err := conn.Write(buf[:binproto.HeaderLen]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	br := bufio.NewReader(conn)
	var hdr [binproto.HeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatalf("read error frame header: %v", err)
	}
	h, err := binproto.ParseHeader(hdr[:])
	if err != nil || h.Type != binproto.TError {
		t.Fatalf("oversized frame answer = %+v, %v; want TError", h, err)
	}
	// And the connection drops: boundaries are unrecoverable.
	p := make([]byte, h.Len)
	if _, err := io.ReadFull(br, p); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("connection survived a desynchronizing header: %v", err)
	}
}

// TestBinServerCorruptPayloadRejected: a frame whose payload fails the
// CRC gate is answered with one TError (bad_request) and the connection
// drops — damaged bytes mean the stream can no longer be trusted, so
// the client must redial onto a clean one.
func TestBinServerCorruptPayloadRejected(t *testing.T) {
	addr, _ := startBinServer(t, 16, BinConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	buf, start := binproto.BeginFrame(nil, binproto.TAcquire, 9)
	buf = binproto.AppendAcquireReq(buf, "corrupt", 60_000, nil)
	buf = binproto.EndFrame(buf, start)
	buf[len(buf)-1] ^= 0x01 // one flipped payload bit; header untouched
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	br := bufio.NewReader(conn)
	h, payload := readFrame(t, br)
	if h.Type != binproto.TError || h.ID != 9 {
		t.Fatalf("corrupt frame answer = %+v, want TError echoing id 9", h)
	}
	code, msg, derr := binproto.DecodeErrorResp(payload)
	if derr != nil || code != binproto.CodeBadRequest {
		t.Fatalf("error resp = (%d, %q, %v), want bad_request", code, msg, derr)
	}
	if !strings.Contains(msg, "checksum") {
		t.Fatalf("error message %q does not name the checksum", msg)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("read after corrupt frame = %v, want EOF (connection dropped)", err)
	}
}
