package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	renaming "repro"
	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/lease"
)

func newCore(t *testing.T, capacity int, tel *Telemetry) *Core {
	t.Helper()
	nm, err := renaming.Open("levelarray?n=64&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := lease.New(nm, lease.Config{TTL: time.Minute, SweepInterval: -1, MaxLive: capacity})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return New(mgr, tel)
}

// TestBindingLifecycle drives every op through one binding and checks
// the verdicts and instrumentation line up with what the manager did.
func TestBindingLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := NewTelemetry(reg)
	core := newCore(t, 64, tel)
	b := core.Bind("bin")
	ctx := context.Background()

	l, err := b.Acquire(ctx, &wire.AcquireRequest{Owner: "w", Meta: map[string]string{"k": "v"}})
	if err != nil {
		t.Fatal(err)
	}
	if l.Token == 0 || l.Owner != "w" {
		t.Fatalf("acquired lease = %+v", l)
	}
	ls, err := b.AcquireBatch(ctx, &wire.AcquireBatchRequest{Owner: "w", Count: 3})
	if err != nil || len(ls) != 3 {
		t.Fatalf("acquire batch = %v, %v", ls, err)
	}
	re, err := b.Renew(&wire.RenewRequest{Name: l.Name, Token: l.Token})
	if err != nil || re.Name != l.Name {
		t.Fatalf("renew = %+v, %v", re, err)
	}

	items := []lease.RenewItem{
		{Name: ls[0].Name, Token: ls[0].Token},
		{Name: -99, Token: 1}, // unknown name
	}
	verdicts, err := b.RenewBatch(ctx, 0, items, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 2 || verdicts[0].Code != "" || verdicts[0].Lease.Name != ls[0].Name {
		t.Fatalf("renew verdicts = %+v", verdicts)
	}
	if verdicts[1].Code != wire.CodeUnknownName || verdicts[1].Msg == "" {
		t.Fatalf("verdict for unknown item = %+v", verdicts[1])
	}

	if err := b.Release(&wire.ReleaseRequest{Name: l.Name, Token: l.Token}); err != nil {
		t.Fatal(err)
	}
	rel := []lease.ReleaseItem{
		{Name: ls[0].Name, Token: ls[0].Token},
		{Name: ls[1].Name, Token: 424242}, // wrong token
	}
	verdicts, err = b.ReleaseBatch(ctx, rel, verdicts)
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0].Code != "" || verdicts[1].Code != wire.CodeWrongToken {
		t.Fatalf("release verdicts = %+v", verdicts)
	}

	m := b.StatsCounted()
	if m.Acquired != 4 || m.Renewed < 2 {
		t.Fatalf("stats = %+v", m)
	}

	// Instrumentation: the bin transport's counters moved, http's did not,
	// and the shared verdict series counted both batch ops.
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	expo := buf.String()
	for _, want := range []string{
		`renamed_requests_total{transport="bin",op="acquire"} 1`,
		`renamed_requests_total{transport="bin",op="renew_batch"} 1`,
		`renamed_requests_total{transport="bin",op="stats"} 1`,
		`renamed_requests_total{transport="http",op="renew_batch"} 0`,
		`renamed_batch_item_verdicts_total{op="renew_batch",code="ok"} 1`,
		`renamed_batch_item_verdicts_total{op="renew_batch",code="unknown_name"} 1`,
		`renamed_batch_item_verdicts_total{op="release_batch",code="wrong_token"} 1`,
		`renamed_request_duration_seconds_count{transport="bin",op="acquire"} 1`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if problems := telemetry.Lint([]byte(expo)); len(problems) != 0 {
		t.Fatalf("lint problems: %v", problems)
	}
}

// TestBindingNilTelemetry: a Core without telemetry runs every op
// uninstrumented but identically.
func TestBindingNilTelemetry(t *testing.T) {
	core := newCore(t, 8, nil)
	b := core.Bind("http")
	l, err := b.Acquire(context.Background(), &wire.AcquireRequest{Owner: "x"})
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := b.RenewBatch(context.Background(), 0,
		[]lease.RenewItem{{Name: l.Name, Token: l.Token}}, nil)
	if err != nil || len(verdicts) != 1 || verdicts[0].Code != "" {
		t.Fatalf("verdicts = %+v, %v", verdicts, err)
	}
	if err := b.Release(&wire.ReleaseRequest{Name: l.Name, Token: l.Token}); err != nil {
		t.Fatal(err)
	}
}

// TestCoreLeasesZerosTokens: fencing tokens are capabilities and must
// not leave the core on the read path, on any transport.
func TestCoreLeasesZerosTokens(t *testing.T) {
	core := newCore(t, 8, nil)
	b := core.Bind("http")
	if _, err := b.Acquire(context.Background(), &wire.AcquireRequest{Owner: "w"}); err != nil {
		t.Fatal(err)
	}
	ls := core.Leases()
	if len(ls) != 1 {
		t.Fatalf("leases = %+v", ls)
	}
	if ls[0].Token != 0 {
		t.Fatalf("token leaked through Leases: %+v", ls[0])
	}
}

// TestBindingCapacityError: a request-level refusal surfaces as the
// typed error, not a verdict.
func TestBindingCapacityError(t *testing.T) {
	core := newCore(t, 1, nil)
	b := core.Bind("bin")
	if _, err := b.Acquire(context.Background(), &wire.AcquireRequest{Owner: "a"}); err != nil {
		t.Fatal(err)
	}
	_, err := b.Acquire(context.Background(), &wire.AcquireRequest{Owner: "b"})
	if !errors.Is(err, lease.ErrCapacity) {
		t.Fatalf("over-capacity acquire = %v, want ErrCapacity", err)
	}
}
