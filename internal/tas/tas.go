// Package tas implements the test-and-set (TAS) shared-memory substrate the
// paper assumes as a hardware primitive.
//
// A test-and-set object holds a single bit, initially 0. The first process
// to apply TAS to it atomically sets the bit and "wins"; every later caller
// "loses". The paper's algorithms interact with memory exclusively through
// indexed collections of such objects, modeled here by the Space interface.
//
// Three implementations are provided:
//
//   - Dense: a packed atomic array — the production representation used by
//     the concurrent renaming library (CAS(0→1) is exactly a hardware TAS).
//   - Padded: one TAS per cache line, for the false-sharing ablation.
//   - Sparse: a lazily-allocated map for single-threaded simulations of the
//     paper's *unbounded* adaptive constructions.
//
// The Counting wrapper layers probe/win accounting over any Space.
package tas

import (
	"fmt"
	"sync/atomic"
)

// Space is an indexed collection of test-and-set objects.
//
// TAS applies a test-and-set to location loc and reports whether the caller
// won (i.e. was the first to access that location). Implementations must
// document whether they are safe for concurrent use.
type Space interface {
	TAS(loc int) bool
	// Len returns the number of locations, or Unbounded for spaces that
	// allocate lazily.
	Len() int
}

// Unbounded is returned by Len for spaces without a fixed size.
const Unbounded = -1

// Dense is a fixed-size packed array of TAS objects backed by atomic
// int32 cells. It is safe for concurrent use. Adjacent locations share
// cache lines; use Padded to measure the difference.
type Dense struct {
	cells []int32
}

// NewDense returns a Dense space with n locations, all unset.
func NewDense(n int) *Dense {
	if n < 0 {
		panic(fmt.Sprintf("tas: NewDense(%d): negative size", n))
	}
	return &Dense{cells: make([]int32, n)}
}

// TAS wins iff the caller is the first to set location loc.
func (d *Dense) TAS(loc int) bool {
	return atomic.CompareAndSwapInt32(&d.cells[loc], 0, 1)
}

// Len returns the number of locations.
func (d *Dense) Len() int { return len(d.cells) }

// IsSet reports whether location loc has been won. It is a read, not a TAS
// step; the paper's model does not charge for it and the algorithms never
// call it — it exists for tests and for the Release extension.
func (d *Dense) IsSet(loc int) bool {
	return atomic.LoadInt32(&d.cells[loc]) != 0
}

// Reset returns location loc to the unset state. This is the long-lived
// renaming extension (releasing a name); it is NOT part of the paper's
// one-shot model. The caller must own the name being released.
func (d *Dense) Reset(loc int) {
	atomic.StoreInt32(&d.cells[loc], 0)
}

// TryReset atomically returns location loc to the unset state and reports
// whether this call performed the transition. Exactly one of any set of
// concurrent TryReset calls on a set location succeeds, which is what makes
// releasing a name linearizable: a blind Reset after an IsSet check is
// check-then-act and lets two releases of the same name both "succeed".
func (d *Dense) TryReset(loc int) bool {
	return atomic.CompareAndSwapInt32(&d.cells[loc], 1, 0)
}

const cacheLineBytes = 64

type paddedCell struct {
	v int32
	_ [cacheLineBytes - 4]byte
}

// Padded is a fixed-size array of TAS objects with one object per cache
// line, eliminating false sharing between adjacent locations at 16x the
// memory cost. It is safe for concurrent use.
type Padded struct {
	cells []paddedCell
}

// NewPadded returns a Padded space with n locations, all unset.
func NewPadded(n int) *Padded {
	if n < 0 {
		panic(fmt.Sprintf("tas: NewPadded(%d): negative size", n))
	}
	return &Padded{cells: make([]paddedCell, n)}
}

// TAS wins iff the caller is the first to set location loc.
func (p *Padded) TAS(loc int) bool {
	return atomic.CompareAndSwapInt32(&p.cells[loc].v, 0, 1)
}

// Len returns the number of locations.
func (p *Padded) Len() int { return len(p.cells) }

// IsSet reports whether location loc has been won.
func (p *Padded) IsSet(loc int) bool {
	return atomic.LoadInt32(&p.cells[loc].v) != 0
}

// Reset returns location loc to the unset state (long-lived extension).
func (p *Padded) Reset(loc int) {
	atomic.StoreInt32(&p.cells[loc].v, 0)
}

// TryReset atomically unsets loc, reporting whether this call won the
// set→unset transition (see Dense.TryReset).
func (p *Padded) TryReset(loc int) bool {
	return atomic.CompareAndSwapInt32(&p.cells[loc].v, 1, 0)
}

// Sparse is a lazily-allocated TAS space over the entire non-negative int
// range. It exists so the simulator can execute the paper's unbounded
// adaptive constructions (§5), where location indices grow like k⁴ but the
// number of *touched* locations stays O(k log log k).
//
// Sparse is NOT safe for concurrent use; it belongs to the single-threaded
// lock-step simulator.
type Sparse struct {
	set map[int]struct{}
}

// NewSparse returns an empty unbounded space.
func NewSparse() *Sparse {
	return &Sparse{set: make(map[int]struct{})}
}

// TAS wins iff the caller is the first to set location loc.
func (s *Sparse) TAS(loc int) bool {
	if loc < 0 {
		panic(fmt.Sprintf("tas: Sparse.TAS(%d): negative location", loc))
	}
	if _, taken := s.set[loc]; taken {
		return false
	}
	s.set[loc] = struct{}{}
	return true
}

// Len reports Unbounded.
func (s *Sparse) Len() int { return Unbounded }

// Touched returns the number of locations that have been won, which equals
// the space actually consumed by an execution.
func (s *Sparse) Touched() int { return len(s.set) }

// IsSet reports whether location loc has been won.
func (s *Sparse) IsSet(loc int) bool {
	_, taken := s.set[loc]
	return taken
}

// Reset returns location loc to the unset state (long-lived extension).
func (s *Sparse) Reset(loc int) {
	delete(s.set, loc)
}

// TryReset unsets loc and reports whether it was set. Sparse is
// single-threaded, so the check-then-act is trivially atomic.
func (s *Sparse) TryReset(loc int) bool {
	if _, taken := s.set[loc]; !taken {
		return false
	}
	delete(s.set, loc)
	return true
}

// Counting wraps a Space and counts TAS operations and wins. The counters
// use atomics so the wrapper composes with concurrent spaces.
type Counting struct {
	inner Space
	ops   atomic.Int64
	wins  atomic.Int64
}

// NewCounting wraps inner with probe/win accounting.
func NewCounting(inner Space) *Counting {
	return &Counting{inner: inner}
}

// TAS forwards to the wrapped space and records the operation.
func (c *Counting) TAS(loc int) bool {
	c.ops.Add(1)
	won := c.inner.TAS(loc)
	if won {
		c.wins.Add(1)
	}
	return won
}

// Len returns the wrapped space's length.
func (c *Counting) Len() int { return c.inner.Len() }

// Ops returns the number of TAS operations applied so far.
func (c *Counting) Ops() int64 { return c.ops.Load() }

// Wins returns the number of winning TAS operations so far.
func (c *Counting) Wins() int64 { return c.wins.Load() }
