package tas

import (
	"sync"
	"testing"
	"testing/quick"
)

// compile-time interface compliance checks.
var (
	_ Space = (*Dense)(nil)
	_ Space = (*Padded)(nil)
	_ Space = (*Sparse)(nil)
	_ Space = (*Counting)(nil)
)

// resettable is the extra surface shared by Dense, Padded and Sparse.
type resettable interface {
	Space
	IsSet(loc int) bool
	Reset(loc int)
	TryReset(loc int) bool
}

func spaces(n int) map[string]resettable {
	return map[string]resettable{
		"dense":  NewDense(n),
		"padded": NewPadded(n),
		"sparse": NewSparse(),
	}
}

func TestFirstCallerWins(t *testing.T) {
	for name, s := range spaces(4) {
		t.Run(name, func(t *testing.T) {
			if !s.TAS(2) {
				t.Fatal("first TAS lost")
			}
			for i := 0; i < 5; i++ {
				if s.TAS(2) {
					t.Fatal("second TAS won")
				}
			}
			if s.TAS(3) != true {
				t.Fatal("independent location affected")
			}
		})
	}
}

func TestIsSetAndReset(t *testing.T) {
	for name, s := range spaces(4) {
		t.Run(name, func(t *testing.T) {
			if s.IsSet(1) {
				t.Fatal("fresh location reads set")
			}
			s.TAS(1)
			if !s.IsSet(1) {
				t.Fatal("won location reads unset")
			}
			s.Reset(1)
			if s.IsSet(1) {
				t.Fatal("reset location still set")
			}
			if !s.TAS(1) {
				t.Fatal("TAS after Reset lost")
			}
		})
	}
}

func TestTryReset(t *testing.T) {
	for name, s := range spaces(4) {
		t.Run(name, func(t *testing.T) {
			if s.TryReset(2) {
				t.Fatal("TryReset won on an unset location")
			}
			s.TAS(2)
			if !s.TryReset(2) {
				t.Fatal("TryReset lost on a set location")
			}
			if s.TryReset(2) {
				t.Fatal("second TryReset won")
			}
			if !s.TAS(2) {
				t.Fatal("TAS after TryReset lost")
			}
		})
	}
}

// TestConcurrentTryResetSingleWinner is the release analogue of
// TestConcurrentSingleWinner: for a set location, exactly one of many
// racing TryReset calls may win.
func TestConcurrentTryResetSingleWinner(t *testing.T) {
	concurrent := map[string]resettable{
		"dense":  NewDense(64),
		"padded": NewPadded(64),
	}
	for name, s := range concurrent {
		t.Run(name, func(t *testing.T) {
			const (
				locations  = 64
				goroutines = 32
			)
			for loc := 0; loc < locations; loc++ {
				s.TAS(loc)
			}
			winners := make([][]int32, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				winners[g] = make([]int32, locations)
				wg.Add(1)
				go func(mine []int32) {
					defer wg.Done()
					for loc := 0; loc < locations; loc++ {
						if s.TryReset(loc) {
							mine[loc] = 1
						}
					}
				}(winners[g])
			}
			wg.Wait()
			for loc := 0; loc < locations; loc++ {
				total := int32(0)
				for g := 0; g < goroutines; g++ {
					total += winners[g][loc]
				}
				if total != 1 {
					t.Errorf("location %d had %d TryReset winners, want 1", loc, total)
				}
			}
		})
	}
}

func TestLen(t *testing.T) {
	if got := NewDense(17).Len(); got != 17 {
		t.Errorf("Dense.Len() = %d, want 17", got)
	}
	if got := NewPadded(9).Len(); got != 9 {
		t.Errorf("Padded.Len() = %d, want 9", got)
	}
	if got := NewSparse().Len(); got != Unbounded {
		t.Errorf("Sparse.Len() = %d, want Unbounded", got)
	}
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(-1) did not panic")
		}
	}()
	NewDense(-1)
}

func TestSparseTouched(t *testing.T) {
	s := NewSparse()
	locs := []int{5, 1 << 40, 0, 5} // duplicate must not double-count
	for _, l := range locs {
		s.TAS(l)
	}
	if got := s.Touched(); got != 3 {
		t.Fatalf("Touched() = %d, want 3", got)
	}
}

func TestSparsePanicsOnNegativeLoc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sparse.TAS(-1) did not panic")
		}
	}()
	NewSparse().TAS(-1)
}

// TestConcurrentSingleWinner hammers every location from many goroutines and
// checks the fundamental TAS guarantee: exactly one winner per location.
func TestConcurrentSingleWinner(t *testing.T) {
	concurrent := map[string]Space{
		"dense":  NewDense(64),
		"padded": NewPadded(64),
	}
	for name, s := range concurrent {
		t.Run(name, func(t *testing.T) {
			const (
				locations  = 64
				goroutines = 32
			)
			winners := make([][]int32, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				winners[g] = make([]int32, locations)
				wg.Add(1)
				go func(mine []int32) {
					defer wg.Done()
					for loc := 0; loc < locations; loc++ {
						if s.TAS(loc) {
							mine[loc] = 1
						}
					}
				}(winners[g])
			}
			wg.Wait()
			for loc := 0; loc < locations; loc++ {
				total := int32(0)
				for g := 0; g < goroutines; g++ {
					total += winners[g][loc]
				}
				if total != 1 {
					t.Errorf("location %d had %d winners, want 1", loc, total)
				}
			}
		})
	}
}

func TestCountingAccounting(t *testing.T) {
	c := NewCounting(NewDense(8))
	c.TAS(0) // win
	c.TAS(0) // lose
	c.TAS(1) // win
	c.TAS(0) // lose
	if got := c.Ops(); got != 4 {
		t.Errorf("Ops() = %d, want 4", got)
	}
	if got := c.Wins(); got != 2 {
		t.Errorf("Wins() = %d, want 2", got)
	}
	if got := c.Len(); got != 8 {
		t.Errorf("Len() = %d, want 8", got)
	}
}

func TestCountingConcurrent(t *testing.T) {
	const (
		locations  = 128
		goroutines = 16
	)
	c := NewCounting(NewDense(locations))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for loc := 0; loc < locations; loc++ {
				c.TAS(loc)
			}
		}()
	}
	wg.Wait()
	if got := c.Ops(); got != locations*goroutines {
		t.Errorf("Ops() = %d, want %d", got, locations*goroutines)
	}
	// Exactly one win per location, regardless of interleaving.
	if got := c.Wins(); got != locations {
		t.Errorf("Wins() = %d, want %d", got, locations)
	}
}

// TestSparseMatchesDense property-checks that Sparse and Dense agree on
// every win/lose outcome for an arbitrary probe sequence.
func TestSparseMatchesDense(t *testing.T) {
	property := func(probes []uint16) bool {
		const size = 256
		d := NewDense(size)
		s := NewSparse()
		for _, p := range probes {
			loc := int(p % size)
			if d.TAS(loc) != s.TAS(loc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDenseTAS(b *testing.B) {
	d := NewDense(1)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d.TAS(0)
		}
	})
}

func BenchmarkPaddedDisjoint(b *testing.B) {
	p := NewPadded(1 << 16)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p.TAS(i & (1<<16 - 1))
			i += 7
		}
	})
}
