package tas

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// elasticChunkBits sizes Elastic's fixed allocation unit: 8192 cells
// (32 KiB) per chunk. Power-of-two so locating a cell is a shift and a
// mask on the probe path.
const (
	elasticChunkBits = 13
	elasticChunkSize = 1 << elasticChunkBits
	elasticChunkMask = elasticChunkSize - 1
)

// elasticSpine is one immutable snapshot of an Elastic space's layout.
// Chunks are shared between snapshots: growing builds a NEW spine whose
// prefix aliases the old spine's chunks, so a TAS racing a grow lands in
// the same memory either way — no set bit is ever copied, moved, or
// lost. Only the spine pointer is swapped.
type elasticSpine struct {
	chunks [][]int32
	n      int // logical length; the last chunk may be partially in range
}

// Elastic is a Dense-like concurrent TAS space whose length can grow
// online. Locations never move and memory is never reclaimed: Grow
// appends chunks, and a later logical shrink at a higher layer (the
// LevelArray's drain-only tail) simply stops probing the suffix while
// releases of already-held slots keep working.
//
// TAS/IsSet/Reset/TryReset are safe for arbitrary concurrency,
// including concurrently with Grow. Grow calls are serialized
// internally.
type Elastic struct {
	spine atomic.Pointer[elasticSpine]
	mu    sync.Mutex // serializes Grow
}

// NewElastic returns an Elastic space with n locations, all unset.
func NewElastic(n int) *Elastic {
	if n < 0 {
		panic(fmt.Sprintf("tas: NewElastic(%d): negative size", n))
	}
	e := &Elastic{}
	e.spine.Store(buildSpine(nil, n))
	return e
}

// buildSpine extends prev's chunk list to cover n cells, reusing every
// existing chunk (prev == nil starts from scratch).
func buildSpine(prev *elasticSpine, n int) *elasticSpine {
	want := (n + elasticChunkSize - 1) >> elasticChunkBits
	var chunks [][]int32
	if prev != nil {
		chunks = append(chunks, prev.chunks...)
	}
	for len(chunks) < want {
		chunks = append(chunks, make([]int32, elasticChunkSize))
	}
	return &elasticSpine{chunks: chunks, n: n}
}

// Grow extends the space to at least n locations; n at or below the
// current length is a no-op (grow-only: slots never disappear, a
// shrinking caller just stops handing out the tail). New locations
// start unset.
func (e *Elastic) Grow(n int) {
	if n < 0 {
		panic(fmt.Sprintf("tas: Elastic.Grow(%d): negative size", n))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.spine.Load()
	if n <= cur.n {
		return
	}
	e.spine.Store(buildSpine(cur, n))
}

// cell returns the addressed atomic cell, panicking (like a slice
// index) when loc is outside [0, Len()).
func (e *Elastic) cell(loc int) *int32 {
	s := e.spine.Load()
	if loc < 0 || loc >= s.n {
		panic(fmt.Sprintf("tas: Elastic location %d out of range [0,%d)", loc, s.n))
	}
	return &s.chunks[loc>>elasticChunkBits][loc&elasticChunkMask]
}

// TAS wins iff the caller is the first to set location loc.
func (e *Elastic) TAS(loc int) bool {
	return atomic.CompareAndSwapInt32(e.cell(loc), 0, 1)
}

// Len returns the current number of locations.
func (e *Elastic) Len() int { return e.spine.Load().n }

// IsSet reports whether location loc has been won.
func (e *Elastic) IsSet(loc int) bool {
	return atomic.LoadInt32(e.cell(loc)) != 0
}

// Reset returns location loc to the unset state (long-lived extension).
func (e *Elastic) Reset(loc int) {
	atomic.StoreInt32(e.cell(loc), 0)
}

// TryReset atomically unsets loc, reporting whether this call won the
// set→unset transition (see Dense.TryReset).
func (e *Elastic) TryReset(loc int) bool {
	return atomic.CompareAndSwapInt32(e.cell(loc), 1, 0)
}

var _ Space = (*Elastic)(nil)
