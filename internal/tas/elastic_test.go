package tas

import (
	"sync"
	"testing"
)

func TestElasticBasics(t *testing.T) {
	e := NewElastic(10)
	if e.Len() != 10 {
		t.Fatalf("Len() = %d, want 10", e.Len())
	}
	if !e.TAS(3) {
		t.Fatal("first TAS(3) lost")
	}
	if e.TAS(3) {
		t.Fatal("second TAS(3) won")
	}
	if !e.IsSet(3) || e.IsSet(4) {
		t.Fatal("IsSet mismatch")
	}
	if !e.TryReset(3) || e.TryReset(3) {
		t.Fatal("TryReset must win exactly once")
	}
	e.TAS(9)
	e.Reset(9)
	if e.IsSet(9) {
		t.Fatal("Reset left the bit set")
	}
}

func TestElasticGrowPreservesBits(t *testing.T) {
	e := NewElastic(100)
	for i := 0; i < 100; i += 7 {
		e.TAS(i)
	}
	// Grow across multiple chunk boundaries.
	e.Grow(3 * elasticChunkSize)
	if e.Len() != 3*elasticChunkSize {
		t.Fatalf("Len() = %d after grow", e.Len())
	}
	for i := 0; i < 100; i++ {
		if want := i%7 == 0; e.IsSet(i) != want {
			t.Fatalf("bit %d: IsSet = %v, want %v", i, e.IsSet(i), want)
		}
	}
	if e.IsSet(3*elasticChunkSize - 1) {
		t.Fatal("new tail location born set")
	}
	// Grow is idempotent at or below the current length.
	e.Grow(5)
	if e.Len() != 3*elasticChunkSize {
		t.Fatalf("shrinking Grow changed Len to %d", e.Len())
	}
}

func TestElasticOutOfRangePanics(t *testing.T) {
	e := NewElastic(4)
	defer func() {
		if recover() == nil {
			t.Fatal("TAS out of range did not panic")
		}
	}()
	e.TAS(4)
}

// TestElasticConcurrentGrow races TAS/TryReset against Grow: no win may
// be lost across a spine swap and uniqueness must hold throughout.
func TestElasticConcurrentGrow(t *testing.T) {
	const n = 256
	e := NewElastic(n)
	var wg sync.WaitGroup
	wins := make([][]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for loc := 0; loc < n; loc++ {
				if e.TAS(loc) {
					wins[w] = append(wins[w], loc)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := n; g <= n+64*elasticChunkSize; g += elasticChunkSize {
			e.Grow(g)
		}
	}()
	wg.Wait()
	seen := map[int]bool{}
	total := 0
	for _, ws := range wins {
		for _, loc := range ws {
			if seen[loc] {
				t.Fatalf("location %d won twice", loc)
			}
			seen[loc] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("%d wins, want %d", total, n)
	}
	for loc := 0; loc < n; loc++ {
		if !e.IsSet(loc) {
			t.Fatalf("location %d lost its bit across grows", loc)
		}
	}
}
