package binproto

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	renaming "repro"
	"repro/internal/wire"
	"repro/lease"
)

func TestHeaderRoundTrip(t *testing.T) {
	var buf [HeaderLen]byte
	PutHeader(buf[:], TRenewBatch, 0xDEADBEEFCAFE, 1234, 0xC0FFEE)
	h, err := ParseHeader(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	want := Header{Type: TRenewBatch, ID: 0xDEADBEEFCAFE, Len: 1234, CRC: 0xC0FFEE}
	if h != want {
		t.Fatalf("header = %+v, want %+v", h, want)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	good := make([]byte, HeaderLen)
	PutHeader(good, TRenew, 1, 0, Checksum(nil))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"truncated", func(b []byte) []byte { return b[:HeaderLen-1] }, ErrTruncated},
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"bad magic0", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"bad magic1", func(b []byte) []byte { b[1] = 'X'; return b }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { b[2] = 99; return b }, ErrBadVersion},
		{"zero type", func(b []byte) []byte { b[3] = 0; return b }, ErrUnknownType},
		{"type past resize", func(b []byte) []byte { b[3] = 0x09; return b }, ErrUnknownType},
		{"resp of bad type", func(b []byte) []byte { b[3] = 0x89; return b }, ErrUnknownType},
		{"oversized len", func(b []byte) []byte { b[12] = 0xFF; return b }, ErrTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			if _, err := ParseHeader(b); !errors.Is(err, tc.want) {
				t.Fatalf("ParseHeader = %v, want %v", err, tc.want)
			}
		})
	}
	// Magic-first ordering: garbage everywhere must still read as bad
	// magic, not as a version or type complaint.
	if _, err := ParseHeader(bytes.Repeat([]byte{0xAA}, HeaderLen)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage header = %v, want ErrBadMagic", err)
	}
}

func TestBeginEndFrame(t *testing.T) {
	buf, start := BeginFrame(nil, TRenew, 42)
	buf = AppendRenewReq(buf, 7, 0xABC, 30_000)
	buf = EndFrame(buf, start)

	h, err := ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TRenew || h.ID != 42 || int(h.Len) != len(buf)-HeaderLen {
		t.Fatalf("frame header = %+v over %d payload bytes", h, len(buf)-HeaderLen)
	}
	name, token, ttl, err := DecodeRenewReq(buf[HeaderLen:])
	if err != nil || name != 7 || token != 0xABC || ttl != 30_000 {
		t.Fatalf("renew req round trip = (%d, %#x, %d, %v)", name, token, ttl, err)
	}

	// Two frames in one buffer (pipelining): the second begins where the
	// first's declared length ends.
	buf, start2 := BeginFrame(buf, TStats, 43)
	buf = EndFrame(buf, start2)
	second := buf[HeaderLen+int(h.Len):]
	h2, err := ParseHeader(second)
	if err != nil || h2.Type != TStats || h2.ID != 43 || h2.Len != 0 {
		t.Fatalf("second frame = %+v, %v", h2, err)
	}
}

func TestAcquireReqRoundTrip(t *testing.T) {
	meta := map[string]string{"rack": "r12", "az": "b"}
	p := AppendAcquireReq(nil, "worker-9", 15_000, meta)
	owner, ttl, gotMeta, err := DecodeAcquireReq(p)
	if err != nil || owner != "worker-9" || ttl != 15_000 {
		t.Fatalf("acquire req = (%q, %d, %v)", owner, ttl, err)
	}
	if !reflect.DeepEqual(gotMeta, meta) {
		t.Fatalf("meta = %v, want %v", gotMeta, meta)
	}

	// Empty meta decodes as nil, and the payload is exact-length.
	p = AppendAcquireReq(nil, "", 0, nil)
	if _, _, m, err := DecodeAcquireReq(p); err != nil || m != nil {
		t.Fatalf("empty acquire req = (%v, %v)", m, err)
	}
	if _, _, _, err := DecodeAcquireReq(append(p, 0)); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing byte = %v, want ErrTrailingBytes", err)
	}
}

func TestAcquireBatchReqRoundTrip(t *testing.T) {
	p := AppendAcquireBatchReq(nil, "batcher", 512, 9_000, map[string]string{"k": "v"})
	owner, count, ttl, meta, err := DecodeAcquireBatchReq(p)
	if err != nil || owner != "batcher" || count != 512 || ttl != 9_000 || meta["k"] != "v" {
		t.Fatalf("acquire batch req = (%q, %d, %d, %v, %v)", owner, count, ttl, meta, err)
	}
}

func TestLeaseRoundTrip(t *testing.T) {
	p := AppendLease(nil, 31, 0xFEED, 1_700_000_000_123)
	l, err := DecodeLease(p)
	if err != nil || l != (Lease{Name: 31, Token: 0xFEED, ExpiresMs: 1_700_000_000_123}) {
		t.Fatalf("lease = %+v, %v", l, err)
	}
	for cut := 0; cut < len(p); cut++ {
		if _, err := DecodeLease(p[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestLeasesRespRoundTrip(t *testing.T) {
	p := AppendLeasesRespHeader(nil, 3)
	for i := 0; i < 3; i++ {
		p = AppendLease(p, int64(i), uint64(100+i), int64(1000*i))
	}
	out, err := DecodeLeasesResp(p, nil)
	if err != nil || len(out) != 3 || out[2] != (Lease{Name: 2, Token: 102, ExpiresMs: 2000}) {
		t.Fatalf("leases = %+v, %v", out, err)
	}
	// A count the bytes don't pay for is truncation, not an allocation.
	bad := AppendLeasesRespHeader(nil, 1<<30)
	if _, err := DecodeLeasesResp(bad, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("hostile count = %v, want ErrTruncated", err)
	}
}

func TestRenewBatchRoundTrip(t *testing.T) {
	items := []wire.Item{{Name: 1, Token: 11}, {Name: 2, Token: 22}, {Name: 3, Token: 33}}
	p := AppendRenewBatchReq(nil, 20_000, items)
	ttl, got, err := DecodeRenewBatchReq(p, nil)
	if err != nil || ttl != 20_000 || len(got) != 3 {
		t.Fatalf("renew batch req = (%d, %v, %v)", ttl, got, err)
	}
	for i, it := range items {
		if got[i] != (lease.RenewItem{Name: it.Name, Token: it.Token}) {
			t.Fatalf("item %d = %+v", i, got[i])
		}
	}

	resp := AppendBatchRespHeader(nil, 2)
	resp = AppendRenewResult(resp, CodeOK, 1, 11, 5000)
	resp = AppendRenewResult(resp, CodeWrongToken, 0, 0, 0)
	results, err := DecodeRenewBatchResp(resp, nil)
	if err != nil || len(results) != 2 {
		t.Fatalf("renew batch resp = %v, %v", results, err)
	}
	if results[0] != (RenewResult{Code: CodeOK, Name: 1, Token: 11, ExpiresMs: 5000}) {
		t.Fatalf("result 0 = %+v", results[0])
	}
	if results[1].Code != CodeWrongToken {
		t.Fatalf("result 1 code = %d", results[1].Code)
	}

	// Count/length mismatch both ways.
	if _, _, err := DecodeRenewBatchReq(p[:len(p)-1], nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn req = %v", err)
	}
	if _, err := DecodeRenewBatchResp(resp[:len(resp)-1], nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn resp = %v", err)
	}
}

func TestReleaseRoundTrip(t *testing.T) {
	p := AppendReleaseReq(nil, 5, 55)
	name, token, err := DecodeReleaseReq(p)
	if err != nil || name != 5 || token != 55 {
		t.Fatalf("release req = (%d, %d, %v)", name, token, err)
	}

	items := []wire.Item{{Name: 8, Token: 88}, {Name: 9, Token: 99}}
	bp := AppendReleaseBatchReq(nil, items)
	got, err := DecodeReleaseBatchReq(bp, nil)
	if err != nil || len(got) != 2 || got[1] != (lease.ReleaseItem{Name: 9, Token: 99}) {
		t.Fatalf("release batch req = %v, %v", got, err)
	}

	resp := AppendBatchRespHeader(nil, 2)
	resp = append(resp, CodeOK, CodeUnknownName)
	codes, err := DecodeReleaseBatchResp(resp, nil)
	if err != nil || len(codes) != 2 || codes[0] != CodeOK || codes[1] != CodeUnknownName {
		t.Fatalf("release batch resp = %v, %v", codes, err)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	in := Stats{Live: 1, Acquired: 2, Renewed: 3, Released: 4, Expired: 5, Rejected: 6,
		Capacity: 7, MaxLive: 8, Resizes: 9, Draining: 1}
	p := AppendStatsResp(nil, in)
	out, err := DecodeStatsResp(p)
	if err != nil || out != in {
		t.Fatalf("stats = %+v, %v", out, err)
	}
}

func TestResizeRoundTrip(t *testing.T) {
	p := AppendResizeReq(nil, 4096)
	capacity, err := DecodeResizeReq(p)
	if err != nil || capacity != 4096 {
		t.Fatalf("resize req = (%d, %v)", capacity, err)
	}

	in := ResizeResult{
		Capacity: 4096, MaxLive: 2048, Epoch: 3, Draining: true,
		Verdicts: []ResizeVerdict{
			{Component: "namer", Code: CodeOK},
			{Component: "lease", Code: CodeBadRequest, Msg: "cap out of range"},
		},
	}
	out, err := DecodeResizeResp(AppendResizeResp(nil, in))
	if err != nil {
		t.Fatalf("resize resp decode: %v", err)
	}
	if out.Capacity != in.Capacity || out.MaxLive != in.MaxLive ||
		out.Epoch != in.Epoch || out.Draining != in.Draining ||
		len(out.Verdicts) != 2 || out.Verdicts[0] != in.Verdicts[0] || out.Verdicts[1] != in.Verdicts[1] {
		t.Fatalf("resize resp = %+v, want %+v", out, in)
	}

	// A verdict count the remaining bytes cannot pay for must be rejected
	// before any allocation.
	hostile := AppendResizeResp(nil, ResizeResult{})
	hostile[len(hostile)-1] = 0xFF
	if _, err := DecodeResizeResp(hostile); err == nil {
		t.Fatal("hostile verdict count decoded cleanly")
	}
}

func TestErrorRespRoundTrip(t *testing.T) {
	p := AppendErrorResp(nil, CodeExhausted, "namespace full")
	code, msg, err := DecodeErrorResp(p)
	if err != nil || code != CodeExhausted || msg != "namespace full" {
		t.Fatalf("error resp = (%d, %q, %v)", code, msg, err)
	}
}

// TestCodeRoundTrip: every byte code that has a wire string code must
// survive byte→string→byte, and the shared subset must agree with
// internal/wire's mapping so the two surfaces cannot drift.
func TestCodeRoundTrip(t *testing.T) {
	for b := byte(0); b <= CodeBadRequest; b++ {
		s := CodeString(b)
		if got := CodeByte(s); b <= CodeInternal && got != b {
			t.Errorf("code %d -> %q -> %d", b, s, got)
		}
	}
	// Shared codes agree with wire.CodeFor on the underlying sentinels.
	for _, tc := range []struct {
		err  error
		want byte
	}{
		{lease.ErrUnknownName, CodeUnknownName},
		{lease.ErrWrongToken, CodeWrongToken},
		{lease.ErrExpired, CodeExpired},
		{lease.ErrClosed, CodeClosed},
		{renaming.ErrCancelled, CodeCancelled},
		{lease.ErrCapacity, CodeExhausted},
		{renaming.ErrNamespaceExhausted, CodeExhausted},
		{renaming.ErrBadConfig, CodeBadRequest},
		{errors.New("mystery"), CodeInternal},
		{nil, CodeOK},
	} {
		if got := CodeForErr(tc.err); got != tc.want {
			t.Errorf("CodeForErr(%v) = %d, want %d", tc.err, got, tc.want)
		}
		if tc.err != nil && tc.want <= CodeInternal {
			if CodeByte(wire.CodeFor(tc.err)) != tc.want {
				t.Errorf("wire.CodeFor(%v) disagrees with CodeForErr", tc.err)
			}
		}
	}
}

// TestErrForSentinels: the client-side inverse rebuilds errors that
// errors.Is-match the same sentinels over either transport.
func TestErrForSentinels(t *testing.T) {
	for _, tc := range []struct {
		code byte
		want error
	}{
		{CodeUnknownName, lease.ErrUnknownName},
		{CodeWrongToken, lease.ErrWrongToken},
		{CodeExpired, lease.ErrExpired},
		{CodeClosed, lease.ErrClosed},
		{CodeCancelled, renaming.ErrCancelled},
		{CodeExhausted, lease.ErrCapacity},
		{CodeBadRequest, renaming.ErrBadConfig},
	} {
		if err := ErrFor(tc.code, "msg"); !errors.Is(err, tc.want) {
			t.Errorf("ErrFor(%d) = %v, want Is(%v)", tc.code, err, tc.want)
		}
	}
	if err := ErrFor(CodeOK, ""); err != nil {
		t.Errorf("ErrFor(CodeOK) = %v", err)
	}
}

// BenchmarkEncodeRenewBatch measures the hot client-side path: one
// pipelined renew-batch frame into a reused buffer. Must not allocate.
func BenchmarkEncodeRenewBatch(b *testing.B) {
	items := make([]wire.Item, 64)
	for i := range items {
		items[i] = wire.Item{Name: i, Token: uint64(i) * 7}
	}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var start int
		buf, start = BeginFrame(buf, TRenewBatch, uint64(i))
		buf = AppendRenewBatchReq(buf, 30_000, items)
		buf = EndFrame(buf, start)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		var start int
		buf, start = BeginFrame(buf, TRenewBatch, 1)
		buf = AppendRenewBatchReq(buf, 30_000, items)
		buf = EndFrame(buf, start)
	}); allocs != 0 {
		b.Fatalf("encode renew batch allocates %v times per frame", allocs)
	}
}

// BenchmarkDecodeRenewBatch measures the hot server-side path: payload
// bytes into a reused lease.RenewItem slice. Must not allocate.
func BenchmarkDecodeRenewBatch(b *testing.B) {
	items := make([]wire.Item, 64)
	for i := range items {
		items[i] = wire.Item{Name: i, Token: uint64(i) * 7}
	}
	p := AppendRenewBatchReq(nil, 30_000, items)
	scratch := make([]lease.RenewItem, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, scratch, err = DecodeRenewBatchReq(p, scratch)
		if err != nil {
			b.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_, scratch, _ = DecodeRenewBatchReq(p, scratch)
	}); allocs != 0 {
		b.Fatalf("decode renew batch allocates %v times per frame", allocs)
	}
}

// TestChecksumRejectsCorruption: any payload bit flip fails the CRC
// gate before type-specific decoding ever sees the bytes.
func TestChecksumRejectsCorruption(t *testing.T) {
	buf, start := BeginFrame(nil, TRenew, 42)
	buf = AppendRenewReq(buf, 7, 0xABC, 30_000)
	buf = EndFrame(buf, start)
	h, err := ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	payload := buf[HeaderLen:]
	if err := VerifyPayload(h, payload); err != nil {
		t.Fatalf("clean payload = %v", err)
	}
	for i := range payload {
		payload[i] ^= 0x40
		if err := DecodePayload(h, payload); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at byte %d: DecodePayload = %v, want ErrChecksum", i, err)
		}
		payload[i] ^= 0x40
	}
	if err := DecodePayload(h, payload); err != nil {
		t.Fatalf("restored payload = %v", err)
	}
}
