package binproto

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// FuzzDecodeFrame throws arbitrary bytes at the full frame pipeline —
// header parse, then the type-appropriate payload decoder. The
// invariants mirror lease/persist's torn-tail property test: hostile
// input yields a typed error, never a panic, and never an allocation
// the input's own length doesn't justify (the count-before-alloc
// checks in the codec are what the hostile-count seeds probe).
func FuzzDecodeFrame(f *testing.F) {
	// Well-formed seeds, one per frame type.
	seed := func(t Type, payload []byte) {
		buf, start := BeginFrame(nil, t, 0x1122334455667788)
		buf = append(buf, payload...)
		f.Add(EndFrame(buf, start))
	}
	seed(TAcquire, AppendAcquireReq(nil, "owner", 30_000, map[string]string{"k": "v"}))
	seed(TAcquireBatch, AppendAcquireBatchReq(nil, "o", 16, 30_000, nil))
	seed(TRenew, AppendRenewReq(nil, 3, 0xABC, 30_000))
	seed(TRenewBatch, AppendRenewBatchReq(nil, 30_000, []wire.Item{{Name: 1, Token: 2}, {Name: 3, Token: 4}}))
	seed(TRelease, AppendReleaseReq(nil, 3, 0xABC))
	seed(TReleaseBatch, AppendReleaseBatchReq(nil, []wire.Item{{Name: 1, Token: 2}}))
	seed(TStats, nil)
	seed(TAcquire|RespBit, AppendLease(nil, 1, 2, 3))
	seed(TAcquireBatch|RespBit, AppendLease(AppendLeasesRespHeader(nil, 1), 1, 2, 3))
	seed(TRenewBatch|RespBit, AppendRenewResult(AppendBatchRespHeader(nil, 1), CodeOK, 1, 2, 3))
	seed(TReleaseBatch|RespBit, append(AppendBatchRespHeader(nil, 1), CodeOK))
	seed(TStats|RespBit, AppendStatsResp(nil, Stats{Live: 1}))
	seed(TResize, AppendResizeReq(nil, 4096))
	seed(TResize|RespBit, AppendResizeResp(nil, ResizeResult{
		Capacity: 4096, MaxLive: 4096, Epoch: 2, Draining: true,
		Verdicts: []ResizeVerdict{{Component: "namer", Code: CodeOK}},
	}))
	seed(TError, AppendErrorResp(nil, CodeExhausted, "full"))

	// Hostile seeds: torn frames, oversized declared lengths, truncated
	// headers, counts the bytes don't pay for, garbage.
	f.Add([]byte{})
	f.Add([]byte{'R'})
	f.Add([]byte{'R', 'B', Version})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	{ // declared length far past the actual bytes
		buf, start := BeginFrame(nil, TRenewBatch, 1)
		buf = EndFrame(buf, start)
		buf[12], buf[13], buf[14], buf[15] = 0x00, 0x0F, 0xFF, 0xFF
		f.Add(buf)
	}
	{ // batch count of 2^31 with a 12-byte payload
		buf, start := BeginFrame(nil, TRenewBatch, 1)
		buf = appendI64(buf, 30_000)
		buf = appendU32(buf, 1<<31)
		buf = EndFrame(buf, start)
		f.Add(buf)
	}
	{ // meta count larger than remaining bytes
		buf, start := BeginFrame(nil, TAcquire, 1)
		buf = appendI64(buf, 30_000)
		buf = appendStr(buf, "o")
		buf = appendU16(buf, 0xFFFF)
		buf = EndFrame(buf, start)
		f.Add(buf)
	}
	{ // resize-verdict count the bytes don't pay for
		buf, start := BeginFrame(nil, TResize|RespBit, 1)
		buf = appendI64(buf, 64)
		buf = appendI64(buf, 64)
		buf = appendU64(buf, 1)
		buf = append(buf, 0, 0xFF)
		buf = EndFrame(buf, start)
		f.Add(buf)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHeader(data)
		if err != nil {
			return // typed rejection is the contract; not panicking is the test
		}
		payload := data[HeaderLen:]
		if int(h.Len) > len(payload) {
			return // torn frame: a stream reader would wait for more bytes
		}
		payload = payload[:h.Len]
		if err := DecodePayload(h, payload); err == nil {
			// A frame that decodes cleanly must re-encode headers that
			// parse: sanity that accepted input is structurally valid.
			var hdr [HeaderLen]byte
			PutHeader(hdr[:], h.Type, h.ID, h.Len, h.CRC)
			if _, err := ParseHeader(hdr[:]); err != nil {
				t.Fatalf("accepted frame re-encodes to invalid header: %v", err)
			}
		}
	})
}
