// Package binproto is the length-prefixed binary wire protocol of
// cmd/renamed's -listen-bin port: the fast transport counterpart of the
// JSON /v1 surface, sharing the same operations and per-item result
// codes (wire.CodeFor round-trips through CodeByte/CodeString) so the
// two surfaces cannot drift semantically.
//
// Every frame is a fixed 20-byte header followed by a payload:
//
//	offset size  field
//	0      2     magic "RB"
//	2      1     version (2)
//	3      1     frame type (request 0x01..0x08; response = type|0x80;
//	             error response 0xFF)
//	4      8     request ID (uint64, big-endian) — echoed verbatim on
//	             the response, and rendered %016x it is the same shape
//	             as the HTTP X-Request-Id, so one slow binary renew
//	             joins against the server's slow-op log line
//	12     4     payload length (uint32, big-endian, <= MaxPayload)
//	16     4     payload CRC-32C (Castagnoli, big-endian) — TCP's
//	             16-bit checksum misses enough bit flips at lease-
//	             heartbeat volumes to matter, and a corrupted renew
//	             that parses cleanly is a silent safety hazard; both
//	             ends verify before decoding and treat a mismatch as
//	             stream loss (ErrChecksum), never as data
//
// All integers are big-endian and fixed-width — no varints — so item
// offsets inside a batch are computable without scanning and the hot
// renew path decodes with zero allocations into caller-owned slices.
// Strings (owner, meta, error messages) are uint16 length + bytes; they
// appear only on the cold acquire/error paths.
//
// Connections are persistent and requests may be PIPELINED: a client
// can write any number of request frames without waiting; the server
// processes each connection's frames in order and responds in the same
// order, echoing each request ID. A response frame's type is the
// request's type with the high bit set, or TError (0xFF) when the
// request as a whole failed (the per-item codes inside batch responses
// cover item-level failures, mirroring the JSON surface's 200-with-
// per-item-results contract).
//
// Decoding is hostile-input safe: torn frames, oversized declared
// lengths, truncated headers, corrupted payloads and garbage bytes
// return typed errors (ErrBadMagic, ErrBadVersion, ErrUnknownType,
// ErrTooLarge, ErrTruncated, ErrTrailingBytes, ErrChecksum) and never
// panic or allocate more than the input length justifies — the same
// torn-tail discipline as lease/persist's journal replay.
package binproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	renaming "repro"
	"repro/internal/wire"
	"repro/lease"
)

const (
	// HeaderLen is the fixed frame-header size.
	HeaderLen = 20
	// Version is the protocol version carried in every frame. Version 2
	// added the payload CRC-32C at header offset 16; version-1 frames
	// are rejected (the port is private to this repo's client, so both
	// ends upgrade together).
	Version = 2
	// MaxPayload bounds a frame's declared payload length — the binary
	// twin of the HTTP surface's 1 MiB body limit. A header declaring
	// more is rejected before any allocation.
	MaxPayload = 1 << 20
)

// Magic bytes open every frame; a stream positioned anywhere else is
// desynchronized and the connection must be dropped.
const (
	Magic0 = 'R'
	Magic1 = 'B'
)

// Type discriminates frames. Requests are 0x01..0x08; a successful
// response echoes the request type with the high bit set; TError is the
// whole-request failure response.
type Type byte

const (
	TAcquire      Type = 0x01
	TAcquireBatch Type = 0x02
	TRenew        Type = 0x03
	TRenewBatch   Type = 0x04
	TRelease      Type = 0x05
	TReleaseBatch Type = 0x06
	TStats        Type = 0x07
	TResize       Type = 0x08

	// RespBit marks a response frame: response type = request | RespBit.
	RespBit Type = 0x80
	// TError is the response to a request that failed as a whole
	// (capacity, closed manager, malformed payload). Payload: result
	// code byte + uint16-length message.
	TError Type = 0xFF
)

// Typed decode errors. Every malformed input maps onto one of these;
// decoding never panics.
var (
	ErrBadMagic      = errors.New("binproto: bad magic")
	ErrBadVersion    = errors.New("binproto: unsupported version")
	ErrUnknownType   = errors.New("binproto: unknown frame type")
	ErrTooLarge      = errors.New("binproto: declared payload exceeds MaxPayload")
	ErrTruncated     = errors.New("binproto: truncated payload")
	ErrTrailingBytes = errors.New("binproto: trailing bytes after payload")
	ErrChecksum      = errors.New("binproto: payload checksum mismatch")
)

// Per-item and whole-request result codes, one byte on the wire.
// CodeOK..CodeInternal mirror internal/wire's string codes exactly;
// CodeExhausted and CodeBadRequest cover the request-level failures the
// HTTP surface expresses as 503 and 400.
const (
	CodeOK          byte = 0
	CodeUnknownName byte = 1
	CodeWrongToken  byte = 2
	CodeExpired     byte = 3
	CodeClosed      byte = 4
	CodeCancelled   byte = 5
	CodeInternal    byte = 6
	CodeExhausted   byte = 7
	CodeBadRequest  byte = 8
)

// CodeByte maps a wire string code ("" = ok) onto its byte.
func CodeByte(code string) byte {
	switch code {
	case "":
		return CodeOK
	case wire.CodeUnknownName:
		return CodeUnknownName
	case wire.CodeWrongToken:
		return CodeWrongToken
	case wire.CodeExpired:
		return CodeExpired
	case wire.CodeClosed:
		return CodeClosed
	case wire.CodeCancelled:
		return CodeCancelled
	default:
		return CodeInternal
	}
}

// CodeString is CodeByte's inverse for the codes shared with the JSON
// surface; the binary-only codes render as themselves.
func CodeString(b byte) string {
	switch b {
	case CodeOK:
		return ""
	case CodeUnknownName:
		return wire.CodeUnknownName
	case CodeWrongToken:
		return wire.CodeWrongToken
	case CodeExpired:
		return wire.CodeExpired
	case CodeClosed:
		return wire.CodeClosed
	case CodeCancelled:
		return wire.CodeCancelled
	case CodeExhausted:
		return "exhausted"
	case CodeBadRequest:
		return "bad_request"
	default:
		return wire.CodeInternal
	}
}

// CodeForErr maps a request-level service error onto its wire byte —
// the binary twin of the HTTP writeError status mapping.
func CodeForErr(err error) byte {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, renaming.ErrNamespaceExhausted), errors.Is(err, lease.ErrCapacity):
		return CodeExhausted
	case errors.Is(err, renaming.ErrCancelled):
		return CodeCancelled
	case errors.Is(err, renaming.ErrBadConfig),
		errors.Is(err, ErrTruncated), errors.Is(err, ErrTrailingBytes),
		errors.Is(err, ErrTooLarge), errors.Is(err, ErrUnknownType),
		errors.Is(err, ErrBadMagic), errors.Is(err, ErrBadVersion),
		errors.Is(err, ErrChecksum):
		return CodeBadRequest
	case errors.Is(err, lease.ErrWrongToken):
		return CodeWrongToken
	case errors.Is(err, lease.ErrExpired):
		return CodeExpired
	case errors.Is(err, lease.ErrUnknownName):
		return CodeUnknownName
	case errors.Is(err, lease.ErrClosed):
		return CodeClosed
	default:
		return CodeInternal
	}
}

// ErrFor rebuilds a typed error from a result byte, preserving the
// server-rendered message — the client-side inverse of CodeForErr.
// Shared codes round-trip to the same sentinels as wire.ErrFor, so
// errors.Is works identically over either transport.
func ErrFor(b byte, msg string) error {
	switch b {
	case CodeOK:
		return nil
	case CodeExhausted:
		if msg == "" {
			return lease.ErrCapacity
		}
		return fmt.Errorf("%w (server: %s)", lease.ErrCapacity, msg)
	case CodeBadRequest:
		if msg == "" {
			msg = "bad request"
		}
		return fmt.Errorf("renamed: %w: %s", renaming.ErrBadConfig, msg)
	default:
		return wire.ErrFor(CodeString(b), msg)
	}
}

// Header is a parsed frame header.
type Header struct {
	Type Type
	ID   uint64
	Len  uint32
	CRC  uint32 // CRC-32C of the payload; verify with VerifyPayload
}

// castagnoli is the CRC-32C polynomial table. Castagnoli over IEEE
// because amd64 and arm64 both execute it as a hardware instruction —
// the checksum costs ~0.1ns/byte, invisible next to the syscall.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the frame payload checksum: CRC-32C.
//
//renamed:noalloc
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, castagnoli)
}

// VerifyPayload checks a received payload against its header's CRC.
// A mismatch means bytes were damaged in flight; the frame must be
// treated as stream loss (drop the connection), never decoded.
//
//renamed:noalloc
func VerifyPayload(h Header, p []byte) error {
	if Checksum(p) != h.CRC {
		return ErrChecksum
	}
	return nil
}

// PutHeader writes a frame header into dst, which must be at least
// HeaderLen bytes. crc is the payload's CRC-32C (Checksum).
//
//renamed:noalloc
func PutHeader(dst []byte, t Type, id uint64, payloadLen, crc uint32) {
	dst[0] = Magic0
	dst[1] = Magic1
	dst[2] = Version
	dst[3] = byte(t)
	binary.BigEndian.PutUint64(dst[4:12], id)
	binary.BigEndian.PutUint32(dst[12:16], payloadLen)
	binary.BigEndian.PutUint32(dst[16:20], crc)
}

// ParseHeader validates and decodes a frame header. The error order is
// deliberate: magic first (a desynchronized stream should read as such,
// not as a bogus version), then version, type, and declared length.
//
//renamed:noalloc
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, ErrTruncated
	}
	if b[0] != Magic0 || b[1] != Magic1 {
		return Header{}, ErrBadMagic
	}
	if b[2] != Version {
		return Header{}, ErrBadVersion
	}
	h := Header{
		Type: Type(b[3]),
		ID:   binary.BigEndian.Uint64(b[4:12]),
		Len:  binary.BigEndian.Uint32(b[12:16]),
		CRC:  binary.BigEndian.Uint32(b[16:20]),
	}
	if !validType(h.Type) {
		return Header{}, ErrUnknownType
	}
	if h.Len > MaxPayload {
		return Header{}, ErrTooLarge
	}
	return h, nil
}

func validType(t Type) bool {
	if t == TError {
		return true
	}
	base := t &^ RespBit
	return base >= TAcquire && base <= TResize
}

// BeginFrame appends a header placeholder for one frame and returns the
// extended buffer plus the frame's start offset; encode the payload with
// the Append* helpers, then patch the length and CRC with EndFrame. The
// begin/end split lets one reusable buffer carry header + payload with
// no separate length pass and no allocation beyond the buffer's growth.
//
//renamed:noalloc
func BeginFrame(dst []byte, t Type, id uint64) ([]byte, int) {
	start := len(dst)
	var hdr [HeaderLen]byte
	PutHeader(hdr[:], t, id, 0, 0)
	return append(dst, hdr[:]...), start
}

// EndFrame patches the payload length and CRC of the frame opened at
// start, once the payload bytes between them are final.
//
//renamed:noalloc
func EndFrame(buf []byte, start int) []byte {
	payload := buf[start+HeaderLen:]
	binary.BigEndian.PutUint32(buf[start+12:start+16], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[start+16:start+20], Checksum(payload))
	return buf
}
