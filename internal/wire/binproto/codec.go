package binproto

import (
	"encoding/binary"

	"repro/internal/wire"
	"repro/lease"
)

// Payload layouts (all integers big-endian, str = uint16 length + bytes):
//
//	TAcquire       req:  ttlMs i64 | owner str | metaCount u16 {k str, v str}*
//	               resp: name i64 | token u64 | expiresMs i64
//	TAcquireBatch  req:  ttlMs i64 | count u32 | owner str | meta as above
//	               resp: count u32 | count * (name i64 | token u64 | expiresMs i64)
//	TRenew         req:  name i64 | token u64 | ttlMs i64
//	               resp: name i64 | token u64 | expiresMs i64
//	TRenewBatch    req:  ttlMs i64 | count u32 | count * (name i64 | token u64)
//	               resp: count u32 | count * (code u8 | name i64 | token u64 | expiresMs i64)
//	TRelease       req:  name i64 | token u64
//	               resp: empty
//	TReleaseBatch  req:  count u32 | count * (name i64 | token u64)
//	               resp: count u32 | count * code u8
//	TStats         req:  empty
//	               resp: live i64 | acquired i64 | renewed i64 | released i64 | expired i64 | rejected i64
//	                     | capacity i64 | maxLive i64 | resizes i64 | draining i64 (0/1)
//	TResize        req:  capacity i64
//	               resp: capacity i64 | maxLive i64 | epoch u64 | draining u8 | count u8 | count * (code u8 | component str | msg str)
//	TError         resp: code u8 | msg str
//
// Batch counts are validated against the actual payload length BEFORE
// any slice is grown, so a hostile count cannot force an allocation the
// frame's bytes don't pay for.

// reqItemSize is the wire size of one (name, token) batch-request item;
// renewRespItemSize one renew-batch response item; leaseSize one lease.
const (
	reqItemSize       = 16
	renewRespItemSize = 25
	leaseSize         = 24
)

// Lease is the binary wire form of one granted lease. Owner and meta do
// not travel on the binary surface — the acquirer knows what it sent,
// and the hot renew path has no use for them.
type Lease struct {
	Name      int64
	Token     uint64
	ExpiresMs int64
}

// RenewResult is one decoded renew-batch response item.
type RenewResult struct {
	Code      byte
	Name      int64
	Token     uint64
	ExpiresMs int64
}

// reader is a bounds-checked cursor over a payload; every take reports
// truncation through ok instead of panicking.
type reader struct {
	p   []byte
	off int
}

func (r *reader) remaining() int { return len(r.p) - r.off }

func (r *reader) u16() (uint16, bool) {
	if r.remaining() < 2 {
		return 0, false
	}
	v := binary.BigEndian.Uint16(r.p[r.off:])
	r.off += 2
	return v, true
}

func (r *reader) u32() (uint32, bool) {
	if r.remaining() < 4 {
		return 0, false
	}
	v := binary.BigEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v, true
}

func (r *reader) u64() (uint64, bool) {
	if r.remaining() < 8 {
		return 0, false
	}
	v := binary.BigEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v, true
}

func (r *reader) i64() (int64, bool) {
	v, ok := r.u64()
	return int64(v), ok
}

func (r *reader) byte() (byte, bool) {
	if r.remaining() < 1 {
		return 0, false
	}
	b := r.p[r.off]
	r.off++
	return b, true
}

// str decodes a uint16-length-prefixed string. The byte copy is the one
// place decoding allocates, and only on the cold paths that carry
// strings at all.
func (r *reader) str() (string, bool) {
	n, ok := r.u16()
	if !ok || r.remaining() < int(n) {
		return "", false
	}
	s := string(r.p[r.off : r.off+int(n)])
	r.off += int(n)
	return s, true
}

// done returns ErrTrailingBytes if the payload has unconsumed bytes —
// a frame must be exactly its declared content.
func (r *reader) done() error {
	if r.remaining() != 0 {
		return ErrTrailingBytes
	}
	return nil
}

//renamed:noalloc
func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

//renamed:noalloc
func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

//renamed:noalloc
func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

//renamed:noalloc
func appendI64(dst []byte, v int64) []byte { return appendU64(dst, uint64(v)) }

func appendStr(dst []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendMeta(dst []byte, meta map[string]string) []byte {
	if len(meta) > 0xFFFF {
		// Unrepresentable; the server would reject the frame anyway at
		// MaxPayload long before 65k meta entries fit.
		meta = nil
	}
	dst = appendU16(dst, uint16(len(meta)))
	for k, v := range meta {
		dst = appendStr(dst, k)
		dst = appendStr(dst, v)
	}
	return dst
}

func decodeMeta(r *reader) (map[string]string, bool) {
	n, ok := r.u16()
	if !ok {
		return nil, false
	}
	if n == 0 {
		return nil, true
	}
	// Each entry costs at least 4 bytes of length prefixes; reject a
	// count the remaining bytes cannot possibly carry before allocating.
	if int(n)*4 > r.remaining() {
		return nil, false
	}
	m := make(map[string]string, n)
	for i := 0; i < int(n); i++ {
		k, ok := r.str()
		if !ok {
			return nil, false
		}
		v, ok := r.str()
		if !ok {
			return nil, false
		}
		m[k] = v
	}
	return m, true
}

// --- acquire ---

// AppendAcquireReq encodes a TAcquire request payload.
func AppendAcquireReq(dst []byte, owner string, ttlMs int64, meta map[string]string) []byte {
	dst = appendI64(dst, ttlMs)
	dst = appendStr(dst, owner)
	return appendMeta(dst, meta)
}

// DecodeAcquireReq decodes a TAcquire request payload.
func DecodeAcquireReq(p []byte) (owner string, ttlMs int64, meta map[string]string, err error) {
	r := reader{p: p}
	ttlMs, ok := r.i64()
	if !ok {
		return "", 0, nil, ErrTruncated
	}
	if owner, ok = r.str(); !ok {
		return "", 0, nil, ErrTruncated
	}
	if meta, ok = decodeMeta(&r); !ok {
		return "", 0, nil, ErrTruncated
	}
	return owner, ttlMs, meta, r.done()
}

// AppendAcquireBatchReq encodes a TAcquireBatch request payload.
func AppendAcquireBatchReq(dst []byte, owner string, count int, ttlMs int64, meta map[string]string) []byte {
	dst = appendI64(dst, ttlMs)
	dst = appendU32(dst, uint32(count))
	dst = appendStr(dst, owner)
	return appendMeta(dst, meta)
}

// DecodeAcquireBatchReq decodes a TAcquireBatch request payload.
func DecodeAcquireBatchReq(p []byte) (owner string, count int, ttlMs int64, meta map[string]string, err error) {
	r := reader{p: p}
	ttlMs, ok := r.i64()
	if !ok {
		return "", 0, 0, nil, ErrTruncated
	}
	c, ok := r.u32()
	if !ok {
		return "", 0, 0, nil, ErrTruncated
	}
	if owner, ok = r.str(); !ok {
		return "", 0, 0, nil, ErrTruncated
	}
	if meta, ok = decodeMeta(&r); !ok {
		return "", 0, 0, nil, ErrTruncated
	}
	return owner, int(c), ttlMs, meta, r.done()
}

// AppendLease encodes one granted lease (acquire/renew responses).
//
//renamed:noalloc
func AppendLease(dst []byte, name int64, token uint64, expiresMs int64) []byte {
	dst = appendI64(dst, name)
	dst = appendU64(dst, token)
	return appendI64(dst, expiresMs)
}

// DecodeLease decodes a single-lease response payload (TAcquire, TRenew).
//
//renamed:noalloc
func DecodeLease(p []byte) (Lease, error) {
	r := reader{p: p}
	l, ok := decodeLease(&r)
	if !ok {
		return Lease{}, ErrTruncated
	}
	return l, r.done()
}

func decodeLease(r *reader) (Lease, bool) {
	name, ok := r.i64()
	if !ok {
		return Lease{}, false
	}
	token, ok := r.u64()
	if !ok {
		return Lease{}, false
	}
	exp, ok := r.i64()
	if !ok {
		return Lease{}, false
	}
	return Lease{Name: name, Token: token, ExpiresMs: exp}, true
}

// AppendLeasesRespHeader opens a TAcquireBatch response; follow with one
// AppendLease per granted lease.
//
//renamed:noalloc
func AppendLeasesRespHeader(dst []byte, count int) []byte {
	return appendU32(dst, uint32(count))
}

// DecodeLeasesResp decodes a TAcquireBatch response into out (reused
// when capacity allows).
//
//renamed:noalloc
func DecodeLeasesResp(p []byte, out []Lease) ([]Lease, error) {
	r := reader{p: p}
	count, ok := r.u32()
	if !ok {
		return nil, ErrTruncated
	}
	if int(count)*leaseSize != r.remaining() {
		return nil, ErrTruncated
	}
	out = out[:0]
	for i := 0; i < int(count); i++ {
		l, _ := decodeLease(&r)
		out = append(out, l)
	}
	return out, r.done()
}

// --- renew ---

// AppendRenewReq encodes a TRenew request payload.
//
//renamed:noalloc
func AppendRenewReq(dst []byte, name int64, token uint64, ttlMs int64) []byte {
	dst = appendI64(dst, name)
	dst = appendU64(dst, token)
	return appendI64(dst, ttlMs)
}

// DecodeRenewReq decodes a TRenew request payload.
//
//renamed:noalloc
func DecodeRenewReq(p []byte) (name int64, token uint64, ttlMs int64, err error) {
	r := reader{p: p}
	name, ok := r.i64()
	if !ok {
		return 0, 0, 0, ErrTruncated
	}
	if token, ok = r.u64(); !ok {
		return 0, 0, 0, ErrTruncated
	}
	if ttlMs, ok = r.i64(); !ok {
		return 0, 0, 0, ErrTruncated
	}
	return name, token, ttlMs, r.done()
}

// AppendRenewBatchReq encodes a TRenewBatch request payload from wire
// items (the client-side shape).
func AppendRenewBatchReq(dst []byte, ttlMs int64, items []wire.Item) []byte {
	dst = appendI64(dst, ttlMs)
	dst = appendU32(dst, uint32(len(items)))
	for _, it := range items {
		dst = appendI64(dst, int64(it.Name))
		dst = appendU64(dst, it.Token)
	}
	return dst
}

// DecodeRenewBatchReq decodes a TRenewBatch request directly into a
// lease.RenewItem slice (reused when capacity allows) — the server-side
// shape, no intermediate representation, zero allocations once the
// slice has grown to the connection's working batch size.
func DecodeRenewBatchReq(p []byte, items []lease.RenewItem) (ttlMs int64, out []lease.RenewItem, err error) {
	r := reader{p: p}
	ttlMs, ok := r.i64()
	if !ok {
		return 0, nil, ErrTruncated
	}
	count, ok := r.u32()
	if !ok {
		return 0, nil, ErrTruncated
	}
	if int(count)*reqItemSize != r.remaining() {
		return 0, nil, ErrTruncated
	}
	items = items[:0]
	for i := 0; i < int(count); i++ {
		name, _ := r.i64()
		token, _ := r.u64()
		items = append(items, lease.RenewItem{Name: int(name), Token: token})
	}
	return ttlMs, items, r.done()
}

// AppendBatchRespHeader opens a TRenewBatch/TReleaseBatch response.
//
//renamed:noalloc
func AppendBatchRespHeader(dst []byte, count int) []byte {
	return appendU32(dst, uint32(count))
}

// AppendRenewResult encodes one renew-batch response item. On failure
// (code != CodeOK) the lease fields travel as zeros.
//
//renamed:noalloc
func AppendRenewResult(dst []byte, code byte, name int64, token uint64, expiresMs int64) []byte {
	dst = append(dst, code)
	dst = appendI64(dst, name)
	dst = appendU64(dst, token)
	return appendI64(dst, expiresMs)
}

// DecodeRenewBatchResp decodes a TRenewBatch response into out (reused
// when capacity allows).
//
//renamed:noalloc
func DecodeRenewBatchResp(p []byte, out []RenewResult) ([]RenewResult, error) {
	r := reader{p: p}
	count, ok := r.u32()
	if !ok {
		return nil, ErrTruncated
	}
	if int(count)*renewRespItemSize != r.remaining() {
		return nil, ErrTruncated
	}
	out = out[:0]
	for i := 0; i < int(count); i++ {
		code, _ := r.byte()
		name, _ := r.i64()
		token, _ := r.u64()
		exp, _ := r.i64()
		out = append(out, RenewResult{Code: code, Name: name, Token: token, ExpiresMs: exp})
	}
	return out, r.done()
}

// --- release ---

// AppendReleaseReq encodes a TRelease request payload.
//
//renamed:noalloc
func AppendReleaseReq(dst []byte, name int64, token uint64) []byte {
	dst = appendI64(dst, name)
	return appendU64(dst, token)
}

// DecodeReleaseReq decodes a TRelease request payload.
//
//renamed:noalloc
func DecodeReleaseReq(p []byte) (name int64, token uint64, err error) {
	r := reader{p: p}
	name, ok := r.i64()
	if !ok {
		return 0, 0, ErrTruncated
	}
	if token, ok = r.u64(); !ok {
		return 0, 0, ErrTruncated
	}
	return name, token, r.done()
}

// AppendReleaseBatchReq encodes a TReleaseBatch request payload.
func AppendReleaseBatchReq(dst []byte, items []wire.Item) []byte {
	dst = appendU32(dst, uint32(len(items)))
	for _, it := range items {
		dst = appendI64(dst, int64(it.Name))
		dst = appendU64(dst, it.Token)
	}
	return dst
}

// DecodeReleaseBatchReq decodes a TReleaseBatch request into a
// lease.ReleaseItem slice (reused when capacity allows).
func DecodeReleaseBatchReq(p []byte, items []lease.ReleaseItem) ([]lease.ReleaseItem, error) {
	r := reader{p: p}
	count, ok := r.u32()
	if !ok {
		return nil, ErrTruncated
	}
	if int(count)*reqItemSize != r.remaining() {
		return nil, ErrTruncated
	}
	items = items[:0]
	for i := 0; i < int(count); i++ {
		name, _ := r.i64()
		token, _ := r.u64()
		items = append(items, lease.ReleaseItem{Name: int(name), Token: token})
	}
	return items, r.done()
}

// DecodeReleaseBatchResp decodes a TReleaseBatch response (one code
// byte per item) into out.
//
//renamed:noalloc
func DecodeReleaseBatchResp(p []byte, out []byte) ([]byte, error) {
	r := reader{p: p}
	count, ok := r.u32()
	if !ok {
		return nil, ErrTruncated
	}
	if int(count) != r.remaining() {
		return nil, ErrTruncated
	}
	out = append(out[:0], r.p[r.off:]...)
	return out, nil
}

// --- stats ---

// Stats is the binary stats response: the lease-table counters a
// monitoring client (or a transport-level health check) reads in one
// round trip. Capacity, MaxLive, Resizes and Draining describe the
// elastic namespace: the namer's current capacity, the lease cap, how
// many times either has been resized, and (0/1) whether a shrink is
// still draining held names above the new bound.
type Stats struct {
	Live     int64
	Acquired int64
	Renewed  int64
	Released int64
	Expired  int64
	Rejected int64
	Capacity int64
	MaxLive  int64
	Resizes  int64
	Draining int64
}

// AppendStatsResp encodes a TStats response payload.
//
//renamed:noalloc
func AppendStatsResp(dst []byte, s Stats) []byte {
	dst = appendI64(dst, s.Live)
	dst = appendI64(dst, s.Acquired)
	dst = appendI64(dst, s.Renewed)
	dst = appendI64(dst, s.Released)
	dst = appendI64(dst, s.Expired)
	dst = appendI64(dst, s.Rejected)
	dst = appendI64(dst, s.Capacity)
	dst = appendI64(dst, s.MaxLive)
	dst = appendI64(dst, s.Resizes)
	return appendI64(dst, s.Draining)
}

// DecodeStatsResp decodes a TStats response payload.
//
//renamed:noalloc
func DecodeStatsResp(p []byte) (Stats, error) {
	r := reader{p: p}
	var s Stats
	for _, f := range []*int64{&s.Live, &s.Acquired, &s.Renewed, &s.Released, &s.Expired,
		&s.Rejected, &s.Capacity, &s.MaxLive, &s.Resizes, &s.Draining} {
		v, ok := r.i64()
		if !ok {
			return Stats{}, ErrTruncated
		}
		*f = v
	}
	return s, r.done()
}

// --- resize ---

// ResizeVerdict is one component's outcome inside a TResize response:
// the admin op touches both the namer and the lease cap, and either can
// fail independently (e.g. a namer built without WithResizable). Code
// is a shared result byte; Msg carries the rendered error on failure.
type ResizeVerdict struct {
	Component string
	Code      byte
	Msg       string
}

// ResizeResult is a decoded TResize response: the post-resize geometry
// plus the per-component verdicts.
type ResizeResult struct {
	Capacity int64
	MaxLive  int64
	Epoch    uint64
	Draining bool
	Verdicts []ResizeVerdict
}

// AppendResizeReq encodes a TResize request payload.
//
//renamed:noalloc
func AppendResizeReq(dst []byte, capacity int64) []byte {
	return appendI64(dst, capacity)
}

// DecodeResizeReq decodes a TResize request payload.
//
//renamed:noalloc
func DecodeResizeReq(p []byte) (capacity int64, err error) {
	r := reader{p: p}
	capacity, ok := r.i64()
	if !ok {
		return 0, ErrTruncated
	}
	return capacity, r.done()
}

// AppendResizeResp encodes a TResize response payload. Resize is a rare
// admin op; unlike the hot-path codecs it is free to allocate.
func AppendResizeResp(dst []byte, res ResizeResult) []byte {
	dst = appendI64(dst, res.Capacity)
	dst = appendI64(dst, res.MaxLive)
	dst = appendU64(dst, res.Epoch)
	var d byte
	if res.Draining {
		d = 1
	}
	dst = append(dst, d)
	n := len(res.Verdicts)
	if n > 0xFF {
		n = 0xFF
	}
	dst = append(dst, byte(n))
	for _, v := range res.Verdicts[:n] {
		dst = append(dst, v.Code)
		dst = appendStr(dst, v.Component)
		dst = appendStr(dst, v.Msg)
	}
	return dst
}

// DecodeResizeResp decodes a TResize response payload.
func DecodeResizeResp(p []byte) (ResizeResult, error) {
	r := reader{p: p}
	var res ResizeResult
	var ok bool
	if res.Capacity, ok = r.i64(); !ok {
		return ResizeResult{}, ErrTruncated
	}
	if res.MaxLive, ok = r.i64(); !ok {
		return ResizeResult{}, ErrTruncated
	}
	if res.Epoch, ok = r.u64(); !ok {
		return ResizeResult{}, ErrTruncated
	}
	d, ok := r.byte()
	if !ok {
		return ResizeResult{}, ErrTruncated
	}
	res.Draining = d != 0
	count, ok := r.byte()
	if !ok {
		return ResizeResult{}, ErrTruncated
	}
	// Each verdict costs at least 5 bytes (code + two length prefixes);
	// reject a count the remaining bytes cannot carry before allocating.
	if int(count)*5 > r.remaining() {
		return ResizeResult{}, ErrTruncated
	}
	if count > 0 {
		res.Verdicts = make([]ResizeVerdict, 0, count)
	}
	for i := 0; i < int(count); i++ {
		var v ResizeVerdict
		if v.Code, ok = r.byte(); !ok {
			return ResizeResult{}, ErrTruncated
		}
		if v.Component, ok = r.str(); !ok {
			return ResizeResult{}, ErrTruncated
		}
		if v.Msg, ok = r.str(); !ok {
			return ResizeResult{}, ErrTruncated
		}
		res.Verdicts = append(res.Verdicts, v)
	}
	return res, r.done()
}

// --- error ---

// AppendErrorResp encodes a TError response payload.
func AppendErrorResp(dst []byte, code byte, msg string) []byte {
	dst = append(dst, code)
	return appendStr(dst, msg)
}

// DecodeErrorResp decodes a TError response payload.
func DecodeErrorResp(p []byte) (code byte, msg string, err error) {
	r := reader{p: p}
	code, ok := r.byte()
	if !ok {
		return 0, "", ErrTruncated
	}
	if msg, ok = r.str(); !ok {
		return 0, "", ErrTruncated
	}
	return code, msg, r.done()
}

// DecodePayload decodes any frame payload by header type, discarding
// the result — the fuzz harness's single entry point proving that no
// input panics or over-allocates. Request types decode with their
// request codec, response types with their response codec.
func DecodePayload(h Header, p []byte) error {
	if len(p) != int(h.Len) {
		return ErrTruncated
	}
	if err := VerifyPayload(h, p); err != nil {
		return err
	}
	var err error
	switch h.Type {
	case TAcquire:
		_, _, _, err = DecodeAcquireReq(p)
	case TAcquireBatch:
		_, _, _, _, err = DecodeAcquireBatchReq(p)
	case TRenew:
		_, _, _, err = DecodeRenewReq(p)
	case TRenewBatch:
		_, _, err = DecodeRenewBatchReq(p, nil)
	case TRelease:
		_, _, err = DecodeReleaseReq(p)
	case TReleaseBatch:
		_, err = DecodeReleaseBatchReq(p, nil)
	case TStats:
		if len(p) != 0 {
			err = ErrTrailingBytes
		}
	case TResize:
		_, err = DecodeResizeReq(p)
	case TAcquire | RespBit, TRenew | RespBit:
		_, err = DecodeLease(p)
	case TAcquireBatch | RespBit:
		_, err = DecodeLeasesResp(p, nil)
	case TRenewBatch | RespBit:
		_, err = DecodeRenewBatchResp(p, nil)
	case TRelease | RespBit:
		if len(p) != 0 {
			err = ErrTrailingBytes
		}
	case TReleaseBatch | RespBit:
		_, err = DecodeReleaseBatchResp(p, nil)
	case TStats | RespBit:
		_, err = DecodeStatsResp(p)
	case TResize | RespBit:
		_, err = DecodeResizeResp(p)
	case TError:
		_, _, err = DecodeErrorResp(p)
	default:
		err = ErrUnknownType
	}
	return err
}
