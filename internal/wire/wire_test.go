package wire

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	renaming "repro"
	"repro/lease"
)

// TestCodeRoundTrip: every typed lease error must survive the
// server→code→client trip as something errors.Is can still classify.
func TestCodeRoundTrip(t *testing.T) {
	for _, sentinel := range []error{
		lease.ErrUnknownName,
		lease.ErrWrongToken,
		lease.ErrExpired,
		lease.ErrClosed,
		renaming.ErrCancelled,
	} {
		// As the server produces them: possibly wrapped with context.
		wrapped := fmt.Errorf("lease: renew batch: %w", sentinel)
		code := CodeFor(wrapped)
		if code == "" || code == CodeInternal {
			t.Fatalf("CodeFor(%v) = %q, want a specific code", wrapped, code)
		}
		back := ErrFor(code, wrapped.Error())
		if !errors.Is(back, sentinel) {
			t.Fatalf("ErrFor(%q) = %v, does not match %v", code, back, sentinel)
		}
	}
	if got := CodeFor(nil); got != "" {
		t.Fatalf("CodeFor(nil) = %q, want empty", got)
	}
	if got := ErrFor("", ""); got != nil {
		t.Fatalf(`ErrFor("") = %v, want nil`, got)
	}
	// Outside the taxonomy: internal, and the message survives.
	odd := errors.New("namer exploded")
	if got := CodeFor(odd); got != CodeInternal {
		t.Fatalf("CodeFor(odd) = %q, want %q", got, CodeInternal)
	}
	if got := ErrFor(CodeInternal, "namer exploded"); !errors.Is(got, ErrServer) || got.Error() != "renamed: server error (server: namer exploded)" {
		t.Fatalf("ErrFor(internal) = %v", got)
	}
}

// TestTTLFromMs: the overflow guard must saturate, not wrap negative
// (which the manager would read as "use the default TTL").
func TestTTLFromMs(t *testing.T) {
	if got := TTLFromMs(0); got != 0 {
		t.Fatalf("TTLFromMs(0) = %v, want 0", got)
	}
	if got := TTLFromMs(-5); got != 0 {
		t.Fatalf("TTLFromMs(-5) = %v, want 0", got)
	}
	if got := TTLFromMs(1500); got != 1500*time.Millisecond {
		t.Fatalf("TTLFromMs(1500) = %v", got)
	}
	if got := TTLFromMs(math.MaxInt64); got != time.Duration(math.MaxInt64) {
		t.Fatalf("TTLFromMs(max) = %v, want saturation", got)
	}
	if got := TTLFromMs(math.MaxInt64/int64(time.Millisecond) + 1); got <= 0 {
		t.Fatalf("TTLFromMs(overflow boundary) = %v, wrapped negative", got)
	}
}
