// Package wire is the JSON wire contract of cmd/renamed's /v1 HTTP API,
// shared by the server's handlers and the leaseclient session layer so
// the two cannot drift. Durations travel as integer milliseconds and
// instants as Unix milliseconds — clients need no time-format parsing.
//
// Batch renew/release responses are PER-ITEM: the request was processed
// even when individual items failed, and each failed item carries both a
// human-readable error and a machine-readable code (see the Code
// constants) that round-trips to the lease package's typed sentinels via
// CodeFor/ErrFor. A heartbeating session uses the codes to learn exactly
// which leases it lost and why.
package wire

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	renaming "repro"
	"repro/lease"
)

// HeaderRequestID is the request-tracing header. A client stamps every
// request with a fresh opaque ID; the server echoes it on the response
// and attaches it to its slow-operation log lines, so one slow heartbeat
// in a client's log joins against the server-side record of the same
// request without any clock alignment.
const HeaderRequestID = "X-Request-Id"

// NewRequestID returns a fresh 16-hex-digit request ID. IDs are random,
// not sequential — two clients (or two sessions in one process) never
// need coordination — and non-cryptographic: they correlate log lines,
// they do not authenticate anything.
func NewRequestID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// AcquireRequest is the body of POST /v1/acquire.
type AcquireRequest struct {
	Owner string            `json:"owner"`
	TTLms int64             `json:"ttl_ms,omitempty"`
	Meta  map[string]string `json:"meta,omitempty"`
}

// AcquireBatchRequest is the body of POST /v1/acquire_batch.
type AcquireBatchRequest struct {
	Owner string            `json:"owner"`
	Count int               `json:"count"`
	TTLms int64             `json:"ttl_ms,omitempty"`
	Meta  map[string]string `json:"meta,omitempty"`
}

// RenewRequest is the body of POST /v1/renew.
type RenewRequest struct {
	Name  int    `json:"name"`
	Token uint64 `json:"token"`
	TTLms int64  `json:"ttl_ms,omitempty"`
}

// ReleaseRequest is the body of POST /v1/release.
type ReleaseRequest struct {
	Name  int    `json:"name"`
	Token uint64 `json:"token"`
}

// Item identifies one lease inside a batch renew/release request.
type Item struct {
	Name  int    `json:"name"`
	Token uint64 `json:"token"`
}

// RenewBatchRequest is the body of POST /v1/renew_batch: one TTL applied
// to every item, the etcd-style heartbeat shape.
type RenewBatchRequest struct {
	TTLms int64  `json:"ttl_ms,omitempty"`
	Items []Item `json:"items"`
}

// ReleaseBatchRequest is the body of POST /v1/release_batch.
type ReleaseBatchRequest struct {
	Items []Item `json:"items"`
}

// Lease is the wire form of one lease.
type Lease struct {
	Name        int               `json:"name"`
	Token       uint64            `json:"token,omitempty"`
	Owner       string            `json:"owner,omitempty"`
	ExpiresAtMs int64             `json:"expires_at_ms"`
	Meta        map[string]string `json:"meta,omitempty"`
}

// Leases is the body of acquire_batch and /v1/leases responses.
type Leases struct {
	Leases []Lease `json:"leases"`
}

// BatchResult is one item's outcome in a renew_batch/release_batch
// response, index-aligned with the request's items. Exactly one of Lease
// (renew success) or Error+Code is populated; a release success is all
// zero values.
type BatchResult struct {
	Lease *Lease `json:"lease,omitempty"`
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// BatchResults is the body of renew_batch/release_batch responses.
type BatchResults struct {
	Results []BatchResult `json:"results"`
}

// ResizeRequest is the body of POST /v1/resize: the requested namespace
// capacity. Resize is an admin operation, not a data-path one — the
// server retargets both the namer's capacity and the lease manager's
// live cap to the same bound.
type ResizeRequest struct {
	Capacity int `json:"capacity"`
}

// ResizeResult is one component's outcome inside a resize response,
// mirroring the batch per-item shape: the namer and the lease cap are
// adjusted independently and either can fail on its own (a non-elastic
// namer rejects the resize while the cap still moves).
type ResizeResult struct {
	Component string `json:"component"`
	Error     string `json:"error,omitempty"`
	Code      string `json:"code,omitempty"`
}

// ResizeResponse is the body of a /v1/resize response: the post-resize
// geometry plus per-component verdicts. Draining reports whether a
// shrink is still waiting on held names above the new bound.
type ResizeResponse struct {
	Capacity int            `json:"capacity"`
	MaxLive  int64          `json:"max_live"`
	Epoch    uint64         `json:"epoch"`
	Draining bool           `json:"draining"`
	Results  []ResizeResult `json:"results"`
}

// Error is the body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
}

// Per-item failure codes. CodeInternal covers errors outside the lease
// taxonomy (e.g. a namer that refuses to take a released name back).
const (
	CodeUnknownName = "unknown_name"
	CodeWrongToken  = "wrong_token"
	CodeExpired     = "expired"
	CodeClosed      = "closed"
	CodeCancelled   = "cancelled"
	CodeInternal    = "internal"
)

// CodeFor maps a per-item error from lease.Manager onto its wire code.
func CodeFor(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, lease.ErrUnknownName):
		return CodeUnknownName
	case errors.Is(err, lease.ErrWrongToken):
		return CodeWrongToken
	case errors.Is(err, lease.ErrExpired):
		return CodeExpired
	case errors.Is(err, lease.ErrClosed):
		return CodeClosed
	case errors.Is(err, renaming.ErrCancelled):
		return CodeCancelled
	default:
		return CodeInternal
	}
}

// ErrServer is the sentinel behind CodeInternal and any code this
// client does not recognize (typically a newer server speaking a newer
// taxonomy). It keeps the default arm of ErrFor inside the typed
// taxonomy: callers can errors.Is(err, wire.ErrServer) instead of
// string-matching the rendered message.
var ErrServer = errors.New("renamed: server error")

// ErrFor is CodeFor's client-side inverse: it rebuilds a typed error a
// session can errors.Is against the lease sentinels, keeping the
// server's rendered message for logs.
func ErrFor(code, msg string) error {
	var sentinel error
	switch code {
	case "":
		return nil
	case CodeUnknownName:
		sentinel = lease.ErrUnknownName
	case CodeWrongToken:
		sentinel = lease.ErrWrongToken
	case CodeExpired:
		sentinel = lease.ErrExpired
	case CodeClosed:
		sentinel = lease.ErrClosed
	case CodeCancelled:
		sentinel = renaming.ErrCancelled
	default:
		sentinel = ErrServer
	}
	if msg == "" || msg == sentinel.Error() {
		return sentinel
	}
	return fmt.Errorf("%w (server: %s)", sentinel, msg)
}

// FromLease converts a manager lease to its wire form.
func FromLease(l lease.Lease) Lease {
	return Lease{
		Name:        l.Name,
		Token:       l.Token,
		Owner:       l.Owner,
		ExpiresAtMs: l.ExpiresAt.UnixMilli(),
		Meta:        l.Meta,
	}
}

// TTLFromMs converts a client-supplied millisecond count to a Duration
// without overflowing: a wrapped multiplication would turn "longest
// possible lease" into a negative value the manager reads as "default
// TTL". Saturated requests still get capped at the manager's MaxTTL.
func TTLFromMs(ms int64) time.Duration {
	if ms <= 0 {
		return 0 // manager applies its default TTL
	}
	const maxMs = int64(math.MaxInt64) / int64(time.Millisecond)
	if ms > maxMs {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ms) * time.Millisecond
}
