package core

import (
	"testing"

	"repro/internal/tas"
	"repro/internal/xrand"
)

func TestMustConstructorsPanicOnBadConfig(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"rebatching", func() { MustReBatching(ReBatchingConfig{N: 0, Epsilon: 1}) }},
		{"adaptive", func() { MustAdaptive(AdaptiveConfig{Epsilon: -1}) }},
		{"fastadaptive", func() { MustFastAdaptive(FastAdaptiveConfig{MaxLevel: -3}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestLevelsObjectPanicsOutOfRange(t *testing.T) {
	lv := newLevels(1, 3, 0)
	for _, i := range []int{0, -1, maxAdaptiveLevel + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("object(%d) did not panic", i)
				}
			}()
			lv.object(i)
		}()
	}
}

func TestFastAdaptiveEnsurePanicsPastAddressSpace(t *testing.T) {
	f := MustFastAdaptive(FastAdaptiveConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("ensure past the address space did not panic")
		}
	}()
	f.ensure(maxAdaptiveLevel)
}

func TestAdaptiveSpaceUpperBound(t *testing.T) {
	a := MustAdaptive(AdaptiveConfig{Epsilon: 1, MaxLevel: 8})
	if got, want := a.SpaceUpperBound(), a.Namespace(); got != want {
		t.Fatalf("SpaceUpperBound = %d, want %d", got, want)
	}
	// The bounded collection occupies Sum_{i<8} 2^(i+1) + m_top locations.
	wantTop := 0
	for i := 1; i < 8; i++ {
		wantTop += 1 << (i + 1)
	}
	wantTop += 1 << 9 // m_8 = 2*2^8
	if a.SpaceUpperBound() != wantTop {
		t.Fatalf("SpaceUpperBound = %d, want %d", a.SpaceUpperBound(), wantTop)
	}
}

func TestFastAdaptiveNamespacePanicsWhenUnbounded(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Namespace() on unbounded FastAdaptive did not panic")
		}
	}()
	MustFastAdaptive(FastAdaptiveConfig{}).Namespace()
}

// TestAdaptiveBoundedOverCapacity drives a bounded Adaptive past its
// configured contention: the top object's backup phase must keep serving
// names until its namespace is truly full, then GetName reports NoName.
func TestAdaptiveBoundedOverCapacity(t *testing.T) {
	a := MustAdaptive(AdaptiveConfig{Epsilon: 1, MaxLevel: 3})
	space := tas.NewSparse()
	served := 0
	for p := 0; ; p++ {
		env := &testEnv{space: space, rng: xrand.NewStream(4, uint64(p))}
		if a.GetName(env) == NoName {
			break
		}
		served++
		if served > a.Namespace() {
			t.Fatal("served more names than the address space holds")
		}
	}
	// Every location of the top object must be claimable: at least the top
	// object's namespace is served even under collisions below.
	if served < 16 { // top object R_3 alone holds 16 names
		t.Fatalf("served only %d names before exhaustion", served)
	}
}

// TestFastAdaptiveBoundedOverCapacity mirrors the above for FastAdaptive's
// top-object fallback path.
func TestFastAdaptiveBoundedOverCapacity(t *testing.T) {
	f := MustFastAdaptive(FastAdaptiveConfig{MaxLevel: 3})
	space := tas.NewSparse()
	served := 0
	for p := 0; ; p++ {
		env := &testEnv{space: space, rng: xrand.NewStream(8, uint64(p))}
		if f.GetName(env) == NoName {
			break
		}
		served++
		if served > f.Namespace() {
			t.Fatal("served more names than the address space holds")
		}
	}
	if served < 16 {
		t.Fatalf("served only %d names before exhaustion", served)
	}
}

// TestSearchRespectsRangeInvariant checks Fig. 2's contract: Search(a,b)
// returns a name from some R_i with a <= i <= b.
func TestSearchRespectsRangeInvariant(t *testing.T) {
	f := MustFastAdaptive(FastAdaptiveConfig{})
	space := tas.NewSparse()
	for p := 0; p < 400; p++ {
		env := &testEnv{space: space, rng: xrand.NewStream(21, uint64(p))}
		u := f.GetName(env)
		if u == NoName {
			t.Fatalf("process %d failed", p)
		}
		// Every name must belong to exactly one object's range.
		owner := -1
		for i := 1; i <= 20; i++ {
			if contains(i, u) {
				if owner != -1 {
					t.Fatalf("name %d in two object ranges (%d and %d)", u, owner, i)
				}
				owner = i
			}
		}
		if owner == -1 {
			t.Fatalf("name %d outside every object range", u)
		}
	}
}

// TestReBatchingStepBudget verifies that without the backup phase no
// process can exceed the Eq. 2 probe budget — the step-complexity ceiling
// Theorem 4.1's additive constant comes from.
func TestReBatchingStepBudget(t *testing.T) {
	r := MustReBatching(ReBatchingConfig{N: 128, Epsilon: 1, DisableBackup: true})
	budget := 0
	for i := 0; i <= r.MaxBatch(); i++ {
		budget += r.BatchProbes(i)
	}
	space := tas.NewSparse()
	for p := 0; p < 128; p++ {
		counter := &countingEnv{inner: &testEnv{space: space, rng: xrand.NewStream(31, uint64(p))}}
		r.GetName(counter)
		if counter.steps > budget {
			t.Fatalf("process %d took %d steps, budget %d", p, counter.steps, budget)
		}
	}
}

// countingEnv wraps an Env and counts TAS steps.
type countingEnv struct {
	inner Env
	steps int
}

func (c *countingEnv) TAS(loc int) bool {
	c.steps++
	return c.inner.TAS(loc)
}

func (c *countingEnv) Intn(n int) int { return c.inner.Intn(n) }
