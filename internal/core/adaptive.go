package core

import (
	"fmt"
	"math"
)

// maxAdaptiveLevel caps the index of ReBatching objects in the unbounded
// formulation so that global location offsets fit in an int64: object R_i
// ends near 2^(i+2) for ε = 1. Reaching this cap would require contention
// beyond 2^56 or an event of probability < 2^-1000; we fail loudly instead
// of overflowing silently.
const maxAdaptiveLevel = 60

// levels lays out a collection R_1, R_2, ... of ReBatching objects in one
// global TAS address space: R_i has parameter n_i = 2^i, namespace size
// m_i = ceil((1+ε)·2^i), and occupies [s_i, s_i+m_i) with s_i = Σ_{j<i} m_j.
// Objects are built lazily because the unbounded formulation has no a
// priori top level.
type levels struct {
	eps  float64
	beta int
	t0   int
	objs []*ReBatching // objs[i] is R_{i+1}
	next int           // s for the next object to be built
}

func newLevels(eps float64, beta, t0Override int) *levels {
	return &levels{eps: eps, beta: beta, t0: t0Override}
}

// object returns R_i (1-based), building layouts up to i on first use.
// It panics beyond maxAdaptiveLevel; see the constant's comment.
func (lv *levels) object(i int) *ReBatching {
	if i < 1 {
		panic(fmt.Sprintf("core: level %d out of range", i))
	}
	if i > maxAdaptiveLevel {
		panic(fmt.Sprintf("core: adaptive level %d exceeds the %d-level address space", i, maxAdaptiveLevel))
	}
	for len(lv.objs) < i {
		j := len(lv.objs) + 1 // building R_j
		r := MustReBatching(ReBatchingConfig{
			N:             1 << j,
			Epsilon:       lv.eps,
			Beta:          lv.beta,
			T0Override:    lv.t0,
			DisableBackup: true,
			Base:          lv.next,
		})
		lv.objs = append(lv.objs, r)
		lv.next += r.Size()
	}
	return lv.objs[i-1]
}

// AdaptiveConfig parameterizes AdaptiveReBatching (§5.1).
type AdaptiveConfig struct {
	// Epsilon is the per-object namespace slack (must be > 0).
	Epsilon float64
	// Beta and T0Override tune the underlying ReBatching objects.
	Beta       int
	T0Override int
	// MaxLevel, if positive, bounds the collection at R_MaxLevel and
	// enables the backup phase on that top object, guaranteeing
	// termination with O(2^MaxLevel) total TAS objects — the paper's
	// "if n is known" modification. If zero, the collection is unbounded
	// (the paper's idealized formulation) and GetName can in principle
	// return NoName only with probability 0.
	MaxLevel int
}

func (c AdaptiveConfig) validate() error {
	if !(c.Epsilon > 0) || math.IsInf(c.Epsilon, 0) {
		return fmt.Errorf("core: Adaptive Epsilon = %v, need > 0", c.Epsilon)
	}
	if c.MaxLevel < 0 || c.MaxLevel > maxAdaptiveLevel {
		return fmt.Errorf("core: Adaptive MaxLevel = %d, need 0..%d", c.MaxLevel, maxAdaptiveLevel)
	}
	if c.Beta < 0 || c.T0Override < 0 {
		return fmt.Errorf("core: Adaptive Beta/T0Override must be non-negative")
	}
	return nil
}

// Adaptive is the AdaptiveReBatching algorithm of §5.1. A process first
// races up the doubling sequence R_1, R_2, R_4, R_16, ... (calling the full
// GetName of each object, without backup) until it acquires a name, then
// binary-searches the objects R_{2^(ℓ-1)+1} .. R_{2^ℓ} for the smallest
// index at which it can still acquire a name. Theorem 5.1: step complexity
// O((log log k)²) and largest name O(k), both w.h.p., where k is the actual
// contention.
//
// Adaptive is safe for concurrent use by multiple processes when MaxLevel
// is set (layouts are precomputed); the unbounded variant is reserved for
// the single-threaded simulator.
type Adaptive struct {
	cfg AdaptiveConfig
	lv  *levels
	top *ReBatching // backup-enabled top object when MaxLevel > 0
}

// NewAdaptive builds an AdaptiveReBatching instance.
func NewAdaptive(cfg AdaptiveConfig) (*Adaptive, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Beta == 0 {
		cfg.Beta = 3
	}
	a := &Adaptive{
		cfg: cfg,
		lv:  newLevels(cfg.Epsilon, cfg.Beta, cfg.T0Override),
	}
	if cfg.MaxLevel > 0 {
		// Precompute layouts R_1..R_{MaxLevel-1} and build the top object
		// with its backup phase enabled: any process that reaches the top
		// is guaranteed a name there because R_MaxLevel has at least
		// (1+ε)·2^MaxLevel >= n locations.
		var base int
		if cfg.MaxLevel > 1 {
			below := a.lv.object(cfg.MaxLevel - 1)
			base = below.Base() + below.Size()
		}
		a.top = MustReBatching(ReBatchingConfig{
			N:          1 << cfg.MaxLevel,
			Epsilon:    cfg.Epsilon,
			Beta:       cfg.Beta,
			T0Override: cfg.T0Override,
			Base:       base,
		})
	}
	return a, nil
}

// MustAdaptive is NewAdaptive for statically-valid configurations.
func MustAdaptive(cfg AdaptiveConfig) *Adaptive {
	a, err := NewAdaptive(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// object returns R_i, substituting the backup-enabled top object at the
// bounded collection's cap.
func (a *Adaptive) object(i int) *ReBatching {
	if a.top != nil && i >= a.cfg.MaxLevel {
		return a.top
	}
	return a.lv.object(i)
}

// level clamps a requested level to the collection's cap.
func (a *Adaptive) level(i int) int {
	if a.top != nil && i > a.cfg.MaxLevel {
		return a.cfg.MaxLevel
	}
	return i
}

// GetName implements §5.1: the doubling race followed by binary search.
func (a *Adaptive) GetName(env Env) int {
	// Phase 1: access R_{2^ℓ} for ℓ = 0, 1, ... until some GetName
	// succeeds. With a bounded collection the sequence is capped at
	// MaxLevel, where the backup phase guarantees success.
	var (
		u    = NoName
		prev = 0 // previous index in the (capped) doubling sequence
		idx  = 1
	)
	for ell := 0; ; ell++ {
		u = a.object(idx).GetName(env)
		if u == Cancelled {
			// Interrupted while holding nothing: abandon with no slot won.
			return Cancelled
		}
		if u != NoName {
			break
		}
		if a.top != nil && idx >= a.cfg.MaxLevel {
			// The backup-enabled top object failed: contention exceeded
			// the configured bound.
			return NoName
		}
		prev = idx
		idx = a.level(1 << (ell + 1))
	}
	if idx == 1 {
		return u // name from R_1; nothing below to search
	}

	// Phase 2: binary search on R_{prev+1} .. R_idx for the smallest
	// index still able to hand out a name. The invariant is that u is a
	// name already acquired from R_hi — so an interrupt here returns u,
	// the name already won, never Cancelled (that would leak the slot).
	lo, hi := prev+1, idx
	for lo < hi {
		if Interrupted(env) {
			return u
		}
		d := (lo + hi) / 2
		if v := a.object(d).GetName(env); v != NoName && v != Cancelled {
			hi = d
			u = v
		} else if v == Cancelled {
			return u
		} else {
			lo = d + 1
		}
	}
	return u
}

// Namespace returns the exclusive upper bound on names the bounded
// collection can produce. It panics for unbounded collections, whose names
// are bounded only in terms of the execution's contention.
func (a *Adaptive) Namespace() int {
	if a.top == nil {
		panic("core: Namespace undefined for unbounded Adaptive; names are O(k) w.h.p.")
	}
	return a.top.Base() + a.top.Size()
}

// SpaceUpperBound returns the total number of TAS locations a bounded
// collection occupies (O(2^MaxLevel)); it panics for unbounded collections.
func (a *Adaptive) SpaceUpperBound() int { return a.Namespace() }

var _ Algorithm = (*Adaptive)(nil)
