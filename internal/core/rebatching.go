package core

import (
	"fmt"
	"math"
)

// ReBatchingConfig parameterizes a ReBatching object (§4 of the paper).
type ReBatchingConfig struct {
	// N is the maximum contention (the paper's n). Must be >= 1.
	N int
	// Epsilon is the namespace slack: the object serves names out of
	// m = ceil((1+Epsilon)*N) TAS locations. Must be > 0.
	Epsilon float64
	// Beta is the number of probes on the last batch (the paper's β >= 1,
	// tunable to set the "with high probability" exponent). Defaults to 3,
	// which by Theorem 4.1 also makes the expected total step complexity
	// O(n).
	Beta int
	// T0Override, if positive, replaces Eq. (2)'s batch-0 probe count
	// t0 = ceil(17*ln(8e/eps)/eps). The analysis constant is conservative;
	// the F2 ablation measures how far.
	T0Override int
	// DisableBackup omits the backup phase (lines 5-7 of Fig. 1), making
	// GetName return NoName when all batch probes fail. The adaptive
	// algorithms of §5 use ReBatching objects in exactly this mode.
	DisableBackup bool
	// Base is the first global TAS location of this object; the object
	// occupies locations [Base, Base+Namespace()). Composite (adaptive)
	// algorithms lay several objects out in one address space.
	Base int
}

func (c ReBatchingConfig) validate() error {
	if c.N < 1 {
		return fmt.Errorf("core: ReBatching N = %d, need >= 1", c.N)
	}
	if !(c.Epsilon > 0) || math.IsInf(c.Epsilon, 0) {
		return fmt.Errorf("core: ReBatching Epsilon = %v, need > 0", c.Epsilon)
	}
	if c.Beta < 0 || c.T0Override < 0 {
		return fmt.Errorf("core: ReBatching Beta/T0Override must be non-negative")
	}
	if c.Base < 0 {
		return fmt.Errorf("core: ReBatching Base = %d, need >= 0", c.Base)
	}
	return nil
}

// batch is one contiguous group of TAS locations (the paper's B_i).
type batch struct {
	start  int // offset of the batch's first location relative to Base
	size   int // b_i locations
	probes int // t_i probes per process (Eq. 2)
}

// ReBatching is the non-adaptive loose-renaming algorithm of §4 (Fig. 1).
//
// The object owns m = ceil((1+ε)n) TAS locations, arranged into batches
// B_0..B_κ with κ = ceil(log2 log2 n):
//
//	b_0 = n,    b_i = ceil(ε·n/2^i)  for 1 <= i <= κ              (Eq. 1)
//	t_0 = ceil(17·ln(8e/ε)/ε),  t_i = 1 (1<=i<κ),  t_κ = β        (Eq. 2)
//
// (The HAL scan of the paper drops ε glyphs; the b_0 = n / b_i = εn/2^i
// reading is forced by the Lemma 4.2 proof, which states "the size of B_0
// is b_0 = n" and computes Σb_i = (1+ε)n − εn/2^κ + κ.)
//
// A process probes t_i uniformly random locations in each batch in order,
// stopping at its first TAS win; if every batch probe fails it sequentially
// scans all m locations (the backup phase), which Lemma 4.2 shows happens
// with probability at most n^-(β-o(1)).
//
// ReBatching is immutable after construction and is shared by all processes
// of an execution; all mutable state lives in the TAS space behind Env.
type ReBatching struct {
	cfg     ReBatchingConfig
	m       int // namespace size
	batches []batch
}

// NewReBatching builds the batch layout for cfg.
func NewReBatching(cfg ReBatchingConfig) (*ReBatching, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Beta == 0 {
		cfg.Beta = 3
	}
	m := int(math.Ceil((1 + cfg.Epsilon) * float64(cfg.N)))
	r := &ReBatching{
		cfg:     cfg,
		m:       m,
		batches: buildBatches(cfg.N, cfg.Epsilon, m, cfg.Beta, cfg.T0Override),
	}
	return r, nil
}

// MustReBatching is NewReBatching for statically-valid configurations.
func MustReBatching(cfg ReBatchingConfig) *ReBatching {
	r, err := NewReBatching(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// buildBatches materializes Eq. (1) and Eq. (2). The paper assumes n large
// enough that the batches fit in m; for small n the ceilings can overshoot,
// so trailing batches are clamped to the remaining capacity (correctness is
// unaffected: uniqueness comes from TAS, termination from the backup scan).
func buildBatches(n int, eps float64, m, beta, t0Override int) []batch {
	kappa := kappaFor(n)
	t0 := t0Override
	if t0 <= 0 {
		t0 = T0(eps)
	}
	batches := make([]batch, 0, kappa+1)
	next := 0
	for i := 0; i <= kappa; i++ {
		size := n
		if i > 0 {
			size = int(math.Ceil(eps * float64(n) / float64(int64(1)<<i)))
		}
		if size > m-next {
			size = m - next
		}
		if size <= 0 {
			break
		}
		probes := 1
		switch {
		case i == 0:
			probes = t0
		case i == kappa:
			probes = beta
		}
		batches = append(batches, batch{start: next, size: size, probes: probes})
		next += size
	}
	// If clamping removed the final batch, the (new) last batch plays the
	// role of B_κ and receives β probes.
	if last := len(batches) - 1; last >= 1 && batches[last].probes < beta {
		batches[last].probes = beta
	}
	return batches
}

// kappaFor returns κ = ceil(log2 log2 n), the paper's top batch index,
// extended to small n (κ = 0 for n <= 2).
func kappaFor(n int) int {
	if n <= 2 {
		return 0
	}
	return int(math.Ceil(math.Log2(math.Log2(float64(n)))))
}

// T0 returns Eq. (2)'s probe count for batch 0: ceil(17*ln(8e/eps)/eps).
func T0(eps float64) int {
	return int(math.Ceil(17 * math.Log(8*math.E/eps) / eps))
}

// GetName implements Fig. 1's GetName: batch probes in order, then the
// backup scan (unless disabled). The returned name is a global location
// index in [Base, Base+Namespace()), or NoName. Interruptible environments
// are polled on every batch boundary and every InterruptStride locations
// of the backup scan; an interrupt yields Cancelled before the next probe.
func (r *ReBatching) GetName(env Env) int {
	for i := range r.batches {
		if Interrupted(env) {
			return Cancelled
		}
		if u := r.TryGetName(env, i); u != NoName {
			return u
		}
	}
	if r.cfg.DisableBackup {
		return NoName
	}
	for u := 0; u < r.m; u++ {
		if u%InterruptStride == 0 && Interrupted(env) {
			return Cancelled
		}
		if env.TAS(r.cfg.Base + u) {
			return r.cfg.Base + u
		}
	}
	return NoName
}

// TryGetName implements Fig. 1's TryGetName(i): at most t_i independent
// uniform probes into batch i, returning the first location won, or NoName.
// Batch indices beyond the last batch report NoName without probing, which
// is what Fig. 2's Search relies on when t exceeds κ.
func (r *ReBatching) TryGetName(env Env, i int) int {
	if i < 0 || i >= len(r.batches) {
		return NoName
	}
	b := r.batches[i]
	for j := 0; j < b.probes; j++ {
		x := env.Intn(b.size)
		if env.TAS(r.cfg.Base + b.start + x) {
			return r.cfg.Base + b.start + x
		}
	}
	return NoName
}

// Namespace returns the exclusive upper bound on names, Base + m where
// m = ceil((1+ε)n) is the object's namespace size.
func (r *ReBatching) Namespace() int { return r.cfg.Base + r.m }

// Size returns the object's namespace size m = ceil((1+ε)n).
func (r *ReBatching) Size() int { return r.m }

// Base returns the object's first global location.
func (r *ReBatching) Base() int { return r.cfg.Base }

// Contains reports whether global name u belongs to this object's
// namespace (the paper's "u ∈ R_i" test).
func (r *ReBatching) Contains(u int) bool {
	return u >= r.cfg.Base && u < r.cfg.Base+r.m
}

// MaxBatch returns the index of the last batch (the paper's κ, after
// small-n clamping).
func (r *ReBatching) MaxBatch() int { return len(r.batches) - 1 }

// BatchBounds returns the global location range [lo, hi) of batch i,
// for tests and instrumentation.
func (r *ReBatching) BatchBounds(i int) (lo, hi int) {
	b := r.batches[i]
	return r.cfg.Base + b.start, r.cfg.Base + b.start + b.size
}

// BatchProbes returns t_i for batch i.
func (r *ReBatching) BatchProbes(i int) int { return r.batches[i].probes }

// MaxProbeSteps returns the worst-case number of TAS steps of one GetName
// call: all batch probes plus (unless disabled) the full backup scan.
func (r *ReBatching) MaxProbeSteps() int {
	total := 0
	for _, b := range r.batches {
		total += b.probes
	}
	if !r.cfg.DisableBackup {
		total += r.m
	}
	return total
}

var _ Algorithm = (*ReBatching)(nil)
