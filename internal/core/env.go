// Package core implements the renaming algorithms of Alistarh, Aspnes,
// Giakkoupis and Woelfel, "Randomized loose renaming in O(log log n) time"
// (PODC 2013): the non-adaptive ReBatching algorithm (§4, Fig. 1), the
// adaptive AdaptiveReBatching algorithm (§5.1), and the work-efficient
// FastAdaptiveReBatching algorithm (§5.2, Fig. 2).
//
// Every algorithm is written once, against the tiny Env interface below,
// and is executed by two different drivers:
//
//   - the concurrent driver (package renaming at the repository root),
//     where Env.TAS is an atomic compare-and-swap and processes are
//     goroutines scheduled by the Go runtime; and
//   - the lock-step simulator (internal/sim), where an adversary policy
//     decides which process performs its next shared-memory step, and
//     steps are counted exactly as the paper's complexity measure defines.
//
// Names are global TAS-location indices: a process owns name u exactly when
// it won the test-and-set at location u.
package core

// NoName is returned by renaming attempts that did not acquire a name
// (the paper's pseudocode returns -1).
const NoName = -1

// Env is the execution environment of a single process. Every call to TAS
// is one shared-memory step in the paper's complexity measure; Intn models
// a local coin flip and is free.
//
// An Env is owned by exactly one process and must not be shared.
type Env interface {
	// TAS performs a test-and-set on global location loc and reports
	// whether the calling process won it.
	TAS(loc int) bool
	// Intn returns a uniform random int in [0, n); it must panic if n <= 0.
	Intn(n int) int
}

// Algorithm is a single-process renaming procedure: it runs to completion
// inside env and returns the acquired name, or NoName on failure (only
// possible for variants without a backup phase).
//
// All algorithm types in this package implement Algorithm and are stateless
// with respect to executions: the same object is shared by all processes of
// a run, and all mutable state lives behind Env.TAS.
type Algorithm interface {
	GetName(env Env) int
	// Namespace returns the exclusive upper bound of the target namespace:
	// every name returned by GetName lies in [0, Namespace()). For objects
	// based at location 0 this equals the namespace size.
	Namespace() int
}

// LongLived marks algorithms whose probe-complexity analysis survives
// release/re-acquire churn: as long as at most MaxConcurrency() names are
// held at any instant, GetName keeps its stated probe bound in steady state.
// Releasing a name is performed by the driver (resetting the TAS location),
// not by the algorithm; the algorithms of this package are one-shot and do
// not implement LongLived, internal/levelarray does.
type LongLived interface {
	Algorithm
	// MaxConcurrency returns the largest number of concurrently held names
	// the analysis supports.
	MaxConcurrency() int
}
