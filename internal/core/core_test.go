package core

import (
	"math"
	"testing"

	"repro/internal/tas"
	"repro/internal/xrand"
)

// testEnv is a minimal sequential Env: a shared TAS space plus a private
// deterministic PRNG stream per process.
type testEnv struct {
	space tas.Space
	rng   *xrand.Rand
}

func (e *testEnv) TAS(loc int) bool { return e.space.TAS(loc) }
func (e *testEnv) Intn(n int) int   { return e.rng.Intn(n) }

// runSequential executes GetName for k processes one after another against
// a shared space and returns the acquired names.
func runSequential(t *testing.T, alg Algorithm, space tas.Space, k int, seed uint64) []int {
	t.Helper()
	names := make([]int, k)
	for p := 0; p < k; p++ {
		env := &testEnv{space: space, rng: xrand.NewStream(seed, uint64(p))}
		names[p] = alg.GetName(env)
	}
	return names
}

// assertUniqueInRange fails unless all names are distinct and inside
// [0, bound).
func assertUniqueInRange(t *testing.T, names []int, bound int) {
	t.Helper()
	seen := make(map[int]bool, len(names))
	for p, u := range names {
		if u == NoName {
			t.Fatalf("process %d failed to acquire a name", p)
		}
		if u < 0 || u >= bound {
			t.Fatalf("process %d: name %d outside [0,%d)", p, u, bound)
		}
		if seen[u] {
			t.Fatalf("duplicate name %d", u)
		}
		seen[u] = true
	}
}

func TestT0Formula(t *testing.T) {
	// t0 = ceil(17*ln(8e/eps)/eps), Eq. (2).
	tests := []struct {
		eps  float64
		want int
	}{
		{1, 53},   // ceil(17*ln(8e)) = ceil(52.36)
		{2, 21},   // ceil(8.5*ln(4e)) = ceil(20.28)
		{0.5, 96}, // ceil(34*ln(16e)) = ceil(94.29) -> 95? verified below
	}
	for _, tt := range tests {
		want := int(math.Ceil(17 * math.Log(8*math.E/tt.eps) / tt.eps))
		if got := T0(tt.eps); got != want {
			t.Errorf("T0(%v) = %d, want %d", tt.eps, got, want)
		}
	}
	if T0(1) != 53 {
		t.Errorf("T0(1) = %d, want 53", T0(1))
	}
}

func TestKappaFor(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3},
		{256, 3}, {257, 4}, {1 << 16, 4}, {1<<16 + 1, 5}, {1 << 20, 5},
	}
	for _, tt := range tests {
		if got := kappaFor(tt.n); got != tt.want {
			t.Errorf("kappaFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestReBatchingLayoutEq1NonUnitEps(t *testing.T) {
	// For n = 1024, eps = 0.5: kappa = 4, b_0 = n = 1024 and
	// b_i = ceil(0.5*1024/2^i) = 256,128,64,32. Total 1504 <= m = 1536.
	r := MustReBatching(ReBatchingConfig{N: 1024, Epsilon: 0.5})
	wantSizes := []int{1024, 256, 128, 64, 32}
	for i, want := range wantSizes {
		lo, hi := r.BatchBounds(i)
		if hi-lo != want {
			t.Errorf("batch %d: size %d, want %d", i, hi-lo, want)
		}
	}
	if r.Size() != 1536 {
		t.Errorf("Size = %d, want 1536", r.Size())
	}
	// Batch 0 must always have n locations: Lemma 4.2's injection argument
	// ("for each process failing in B_0 there is a distinct unprobed
	// object") requires b_0 >= n.
	for _, eps := range []float64{0.1, 0.25, 0.5, 1, 2} {
		r := MustReBatching(ReBatchingConfig{N: 256, Epsilon: eps})
		lo, hi := r.BatchBounds(0)
		if hi-lo != 256 {
			t.Errorf("eps=%v: b_0 = %d, want n = 256", eps, hi-lo)
		}
	}
}

func TestReBatchingLayoutEq1(t *testing.T) {
	// For n = 1024, eps = 1: kappa = 4, batch sizes 1024,512,256,128,64.
	r := MustReBatching(ReBatchingConfig{N: 1024, Epsilon: 1})
	wantSizes := []int{1024, 512, 256, 128, 64}
	if got := r.MaxBatch(); got != len(wantSizes)-1 {
		t.Fatalf("MaxBatch = %d, want %d", got, len(wantSizes)-1)
	}
	next := 0
	for i, want := range wantSizes {
		lo, hi := r.BatchBounds(i)
		if lo != next || hi-lo != want {
			t.Errorf("batch %d: bounds [%d,%d), want start %d size %d", i, lo, hi, next, want)
		}
		next = hi
	}
	if next > r.Size() {
		t.Errorf("batches occupy %d locations, exceeding namespace %d", next, r.Size())
	}
	if r.Size() != 2048 {
		t.Errorf("Size = %d, want 2048", r.Size())
	}
}

func TestReBatchingProbeCountsEq2(t *testing.T) {
	r := MustReBatching(ReBatchingConfig{N: 1024, Epsilon: 1, Beta: 2})
	if got := r.BatchProbes(0); got != 53 {
		t.Errorf("t_0 = %d, want 53", got)
	}
	for i := 1; i < r.MaxBatch(); i++ {
		if got := r.BatchProbes(i); got != 1 {
			t.Errorf("t_%d = %d, want 1", i, got)
		}
	}
	if got := r.BatchProbes(r.MaxBatch()); got != 2 {
		t.Errorf("t_kappa = %d, want beta = 2", got)
	}
}

func TestReBatchingSmallN(t *testing.T) {
	// The layout must stay inside the namespace for every small n.
	for n := 1; n <= 64; n++ {
		for _, eps := range []float64{0.25, 0.5, 1, 2} {
			r := MustReBatching(ReBatchingConfig{N: n, Epsilon: eps})
			_, hi := r.BatchBounds(r.MaxBatch())
			if hi > r.Namespace() {
				t.Fatalf("n=%d eps=%v: batches end at %d > namespace %d", n, eps, hi, r.Namespace())
			}
		}
	}
}

func TestReBatchingUniqueNames(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 1000} {
		r := MustReBatching(ReBatchingConfig{N: n, Epsilon: 1})
		names := runSequential(t, r, tas.NewDense(r.Namespace()), n, 42)
		assertUniqueInRange(t, names, r.Namespace())
	}
}

func TestReBatchingBackupGuaranteesTermination(t *testing.T) {
	// Starve the random phase (1 probe per batch) so some processes must
	// take the backup scan; every process must still get a unique name.
	r := MustReBatching(ReBatchingConfig{N: 256, Epsilon: 0.1, T0Override: 1, Beta: 1})
	names := runSequential(t, r, tas.NewDense(r.Namespace()), 256, 7)
	assertUniqueInRange(t, names, r.Namespace())
}

func TestReBatchingDisableBackup(t *testing.T) {
	r := MustReBatching(ReBatchingConfig{N: 64, Epsilon: 0.1, T0Override: 1, Beta: 1, DisableBackup: true})
	space := tas.NewDense(r.Namespace())
	got := make(map[int]bool)
	failures := 0
	for p := 0; p < 64; p++ {
		env := &testEnv{space: space, rng: xrand.NewStream(11, uint64(p))}
		u := r.GetName(env)
		if u == NoName {
			failures++
			continue
		}
		if got[u] {
			t.Fatalf("duplicate name %d", u)
		}
		got[u] = true
	}
	// With only one probe per batch into a nearly-full space some processes
	// must fail; the mode exists exactly for that.
	if failures == 0 {
		t.Log("no failures observed; acceptable but unexpected at this density")
	}
}

func TestReBatchingBaseOffset(t *testing.T) {
	r := MustReBatching(ReBatchingConfig{N: 32, Epsilon: 1, Base: 1000})
	space := tas.NewSparse()
	names := runSequential(t, r, space, 32, 3)
	for _, u := range names {
		if !r.Contains(u) {
			t.Fatalf("name %d outside object range [%d,%d)", u, r.Base(), r.Namespace())
		}
	}
	if r.Base() != 1000 || r.Namespace() != 1000+r.Size() {
		t.Fatalf("Base/Namespace = %d/%d", r.Base(), r.Namespace())
	}
}

func TestReBatchingContains(t *testing.T) {
	r := MustReBatching(ReBatchingConfig{N: 16, Epsilon: 1, Base: 100})
	for _, tt := range []struct {
		u    int
		want bool
	}{{99, false}, {100, true}, {100 + r.Size() - 1, true}, {100 + r.Size(), false}} {
		if got := r.Contains(tt.u); got != tt.want {
			t.Errorf("Contains(%d) = %v, want %v", tt.u, got, tt.want)
		}
	}
}

func TestReBatchingMaxProbeSteps(t *testing.T) {
	r := MustReBatching(ReBatchingConfig{N: 1024, Epsilon: 1, Beta: 2})
	// 53 (batch 0) + 3 middle batches x 1 + 2 (last) + 2048 backup.
	if got, want := r.MaxProbeSteps(), 53+3+2+2048; got != want {
		t.Errorf("MaxProbeSteps = %d, want %d", got, want)
	}
}

func TestReBatchingConfigValidation(t *testing.T) {
	bad := []ReBatchingConfig{
		{N: 0, Epsilon: 1},
		{N: 4, Epsilon: 0},
		{N: 4, Epsilon: -1},
		{N: 4, Epsilon: math.Inf(1)},
		{N: 4, Epsilon: 1, Base: -1},
		{N: 4, Epsilon: 1, Beta: -1},
	}
	for _, cfg := range bad {
		if _, err := NewReBatching(cfg); err == nil {
			t.Errorf("NewReBatching(%+v) accepted invalid config", cfg)
		}
	}
}

func TestTryGetNameOutOfRangeBatch(t *testing.T) {
	r := MustReBatching(ReBatchingConfig{N: 16, Epsilon: 1})
	env := &testEnv{space: tas.NewSparse(), rng: xrand.New(1)}
	if got := r.TryGetName(env, r.MaxBatch()+1); got != NoName {
		t.Errorf("TryGetName past kappa = %d, want NoName", got)
	}
	if got := r.TryGetName(env, -1); got != NoName {
		t.Errorf("TryGetName(-1) = %d, want NoName", got)
	}
}

func TestAdaptiveBoundedUniqueAndSmallNames(t *testing.T) {
	for _, k := range []int{1, 2, 8, 64, 400} {
		a := MustAdaptive(AdaptiveConfig{Epsilon: 1, MaxLevel: 14})
		space := tas.NewSparse()
		names := runSequential(t, a, space, k, 99)
		assertUniqueInRange(t, names, a.Namespace())
		// Theorem 5.1: largest name O(k) w.h.p. — with the fixed seed we
		// assert the concrete constant 4(1+eps)k + small slack.
		maxName := 0
		for _, u := range names {
			if u > maxName {
				maxName = u
			}
		}
		if bound := 8*k + 64; maxName > bound {
			t.Errorf("k=%d: max name %d exceeds O(k) bound %d", k, maxName, bound)
		}
	}
}

func TestAdaptiveUnboundedUnique(t *testing.T) {
	a := MustAdaptive(AdaptiveConfig{Epsilon: 1})
	names := runSequential(t, a, tas.NewSparse(), 200, 5)
	seen := make(map[int]bool)
	for p, u := range names {
		if u == NoName {
			t.Fatalf("process %d failed", p)
		}
		if seen[u] {
			t.Fatalf("duplicate name %d", u)
		}
		seen[u] = true
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	run := func() []int {
		a := MustAdaptive(AdaptiveConfig{Epsilon: 1, MaxLevel: 10})
		names := make([]int, 50)
		space := tas.NewSparse()
		for p := range names {
			env := &testEnv{space: space, rng: xrand.NewStream(1234, uint64(p))}
			names[p] = a.GetName(env)
		}
		return names
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at process %d: %d != %d", i, a[i], b[i])
		}
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	bad := []AdaptiveConfig{
		{Epsilon: 0},
		{Epsilon: -2},
		{Epsilon: 1, MaxLevel: -1},
		{Epsilon: 1, MaxLevel: maxAdaptiveLevel + 1},
	}
	for _, cfg := range bad {
		if _, err := NewAdaptive(cfg); err == nil {
			t.Errorf("NewAdaptive(%+v) accepted invalid config", cfg)
		}
	}
}

func TestAdaptiveNamespacePanicsWhenUnbounded(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Namespace() on unbounded Adaptive did not panic")
		}
	}()
	MustAdaptive(AdaptiveConfig{Epsilon: 1}).Namespace()
}

func TestLevelsLayoutIsContiguous(t *testing.T) {
	lv := newLevels(1, 3, 0)
	next := 0
	for i := 1; i <= 12; i++ {
		r := lv.object(i)
		if r.Base() != next {
			t.Fatalf("R_%d base = %d, want %d", i, r.Base(), next)
		}
		if want := 1 << (i + 1); r.Size() != want { // ceil((1+1)*2^i)
			t.Fatalf("R_%d size = %d, want %d", i, r.Size(), want)
		}
		next += r.Size()
	}
}

func TestFastAdaptiveLayoutMatchesFig2(t *testing.T) {
	f := MustFastAdaptive(FastAdaptiveConfig{MaxLevel: 10})
	for i := 1; i <= 10; i++ {
		r := f.object(i)
		if got, want := r.Base(), 1<<(i+1); got != want {
			t.Errorf("R_%d base = %d, want %d", i, got, want)
		}
		if got, want := r.Size(), 1<<(i+1); got != want {
			t.Errorf("R_%d size = %d, want %d", i, got, want)
		}
	}
}

func TestContainsFig2(t *testing.T) {
	// u in R_i iff 2^(i+1) <= u < 2^(i+2).
	tests := []struct {
		i, u int
		want bool
	}{
		{1, 3, false}, {1, 4, true}, {1, 7, true}, {1, 8, false},
		{3, 16, true}, {3, 31, true}, {3, 32, false}, {3, 15, false},
	}
	for _, tt := range tests {
		if got := contains(tt.i, tt.u); got != tt.want {
			t.Errorf("contains(%d,%d) = %v, want %v", tt.i, tt.u, got, tt.want)
		}
	}
}

func TestFastAdaptiveKappa(t *testing.T) {
	f := MustFastAdaptive(FastAdaptiveConfig{MaxLevel: 16})
	// kappa(i) = ceil(log2 i) for i >= 2 (R_i has n = 2^i).
	tests := []struct{ i, want int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}}
	for _, tt := range tests {
		if got := f.kappaOf(tt.i); got != tt.want {
			t.Errorf("kappa(%d) = %d, want %d", tt.i, got, tt.want)
		}
	}
}

func TestFastAdaptiveBoundedUniqueAndSmallNames(t *testing.T) {
	for _, k := range []int{1, 2, 8, 64, 400} {
		f := MustFastAdaptive(FastAdaptiveConfig{MaxLevel: 14})
		names := runSequential(t, f, tas.NewSparse(), k, 77)
		assertUniqueInRange(t, names, f.Namespace())
		maxName := 0
		for _, u := range names {
			if u > maxName {
				maxName = u
			}
		}
		// Theorem 5.2: largest name O(k); the Fig. 2 layout yields < 16k.
		if bound := 16*k + 64; maxName > bound {
			t.Errorf("k=%d: max name %d exceeds O(k) bound %d", k, maxName, bound)
		}
	}
}

func TestFastAdaptiveUnboundedUnique(t *testing.T) {
	f := MustFastAdaptive(FastAdaptiveConfig{})
	names := runSequential(t, f, tas.NewSparse(), 300, 15)
	seen := make(map[int]bool)
	for p, u := range names {
		if u == NoName {
			t.Fatalf("process %d failed", p)
		}
		if seen[u] {
			t.Fatalf("duplicate name %d", u)
		}
		seen[u] = true
	}
}

func TestFastAdaptiveConfigValidation(t *testing.T) {
	bad := []FastAdaptiveConfig{
		{MaxLevel: -1},
		{MaxLevel: maxAdaptiveLevel},
		{Beta: -1},
	}
	for _, cfg := range bad {
		if _, err := NewFastAdaptive(cfg); err == nil {
			t.Errorf("NewFastAdaptive(%+v) accepted invalid config", cfg)
		}
	}
}

func TestMaxLevelFor(t *testing.T) {
	tests := []struct{ n, want int }{{0, 1}, {1, 1}, {2, 2}, {3, 3}, {4, 3}, {1000, 11}, {1024, 11}, {1025, 12}}
	for _, tt := range tests {
		if got := MaxLevelFor(tt.n); got != tt.want {
			t.Errorf("MaxLevelFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}
