package core

import (
	"fmt"
	"math"
)

// FastAdaptiveConfig parameterizes FastAdaptiveReBatching (§5.2, Fig. 2).
// The paper fixes ε = 1 for this algorithm, so R_i's namespace is exactly
// {2^(i+1), ..., 2^(i+2)-1} (the Fig. 2 layout comment).
type FastAdaptiveConfig struct {
	// Beta and T0Override tune the underlying ReBatching objects.
	Beta       int
	T0Override int
	// MaxLevel, if positive, bounds the collection at R_MaxLevel; a process
	// whose doubling race reaches the top and fails its constant-probe
	// visit falls back to the top object's full GetName (backup enabled),
	// guaranteeing termination with O(2^MaxLevel) TAS locations. If zero,
	// the collection is unbounded (single-threaded simulation only).
	MaxLevel int
}

func (c FastAdaptiveConfig) validate() error {
	if c.MaxLevel < 0 || c.MaxLevel > maxAdaptiveLevel-2 {
		return fmt.Errorf("core: FastAdaptive MaxLevel = %d, need 0..%d", c.MaxLevel, maxAdaptiveLevel-2)
	}
	if c.Beta < 0 || c.T0Override < 0 {
		return fmt.Errorf("core: FastAdaptive Beta/T0Override must be non-negative")
	}
	return nil
}

// FastAdaptive is the FastAdaptiveReBatching algorithm of §5.2 (Fig. 2).
//
// Like Adaptive it races up the doubling sequence and then searches
// downward, but each visit to an object performs only the constant-size
// probe set of a single batch (TryGetName) rather than a full GetName, and
// the recursive Search method revisits objects with increasing batch
// indices as the binary search tightens. Theorem 5.2: total step complexity
// O(k log log k) and largest name O(k), both w.h.p.
//
// The bounded variant is safe for concurrent use (layouts precomputed);
// the unbounded variant is reserved for the single-threaded simulator.
type FastAdaptive struct {
	cfg FastAdaptiveConfig
	// objs[i] is R_{i+1}, with base 2^(i+2) per the Fig. 2 layout.
	objs []*ReBatching
	top  *ReBatching // backup-enabled duplicate layout of R_MaxLevel
}

// NewFastAdaptive builds a FastAdaptiveReBatching instance.
func NewFastAdaptive(cfg FastAdaptiveConfig) (*FastAdaptive, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Beta == 0 {
		cfg.Beta = 3
	}
	f := &FastAdaptive{cfg: cfg}
	if cfg.MaxLevel > 0 {
		f.ensure(cfg.MaxLevel)
		topCfg := f.objs[cfg.MaxLevel-1].cfg
		topCfg.DisableBackup = false
		f.top = MustReBatching(topCfg)
	}
	return f, nil
}

// MustFastAdaptive is NewFastAdaptive for statically-valid configurations.
func MustFastAdaptive(cfg FastAdaptiveConfig) *FastAdaptive {
	f, err := NewFastAdaptive(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// ensure builds layouts R_1..R_i.
func (f *FastAdaptive) ensure(i int) {
	if i > maxAdaptiveLevel-2 {
		panic(fmt.Sprintf("core: adaptive level %d exceeds the address space", i))
	}
	for len(f.objs) < i {
		j := len(f.objs) + 1 // building R_j: n_j = 2^j, ε = 1, base 2^(j+1)
		f.objs = append(f.objs, MustReBatching(ReBatchingConfig{
			N:             1 << j,
			Epsilon:       1,
			Beta:          f.cfg.Beta,
			T0Override:    f.cfg.T0Override,
			DisableBackup: true,
			Base:          1 << (j + 1),
		}))
	}
}

// object returns R_i (1-based).
func (f *FastAdaptive) object(i int) *ReBatching {
	f.ensure(i)
	return f.objs[i-1]
}

// contains reports the paper's "u ∈ R_i" test; with the Fig. 2 layout it is
// the interval check 2^(i+1) <= u < 2^(i+2).
func contains(i, u int) bool {
	return u >= 1<<(i+1) && u < 1<<(i+2)
}

// kappaOf returns κ(i) = the maximum batch index of R_i (⌈log2 i⌉ for the
// Fig. 2 layout).
func (f *FastAdaptive) kappaOf(i int) int {
	return f.object(i).MaxBatch()
}

// GetName implements Fig. 2's GetName.
func (f *FastAdaptive) GetName(env Env) int {
	capLevel := f.cfg.MaxLevel
	// Doubling race (lines 1-5): visit R_{2^ℓ} with a single TryGetName(0)
	// until one succeeds. seq records the capped index sequence so the
	// downward sweep can recover its predecessor levels.
	var (
		u   = NoName
		seq []int
	)
	for ell := 0; ; ell++ {
		if Interrupted(env) {
			// Interrupted while holding nothing: abandon with no slot won.
			return Cancelled
		}
		idx := 1 << ell
		if capLevel > 0 && idx > capLevel {
			idx = capLevel
		}
		seq = append(seq, idx)
		u = f.object(idx).TryGetName(env, 0)
		if u != NoName {
			break
		}
		if capLevel > 0 && idx == capLevel {
			// Bounded collection: the top visit failed, so fall back to
			// the top object's full GetName (backup enabled). Guaranteed
			// to succeed while contention stays within the bound.
			u = f.top.GetName(env)
			if u == NoName || u == Cancelled {
				return u
			}
			break
		}
	}

	// Downward sweep (lines 6-9): while the current name still belongs to
	// the top of the active range, search the lower half for a smaller one.
	// From here on u is a name the process has already won, so an interrupt
	// stops the sweep and returns u — never Cancelled, which would leak it.
	for pos := len(seq) - 1; pos >= 1 && contains(seq[pos], u); pos-- {
		if Interrupted(env) {
			return u
		}
		u = f.search(seq[pos-1], seq[pos], u, 1, env)
	}
	return u
}

// search implements Fig. 2's Search(a, b, u, t): on entry u is a name the
// process has acquired from R_b, a < b, and R_a has been visited with batch
// indices 0..t-1 already. It returns a name from some R_i with a <= i <= b.
// Because u is always a held name, an interrupt returns u unchanged.
func (f *FastAdaptive) search(a, b, u, t int, env Env) int {
	if t > f.kappaOf(a) || Interrupted(env) {
		return u
	}
	if uPrime := f.object(a).TryGetName(env, t); uPrime != NoName {
		return uPrime
	}
	d := (a + b + 1) / 2 // ⌈(a+b)/2⌉
	if d < b {
		u = f.search(d, b, u, 0, env)
	}
	if contains(d, u) {
		u = f.search(a, d, u, t+1, env)
	}
	return u
}

// Namespace returns the exclusive upper bound on names for the bounded
// collection (2^(MaxLevel+2) with the Fig. 2 layout); it panics for
// unbounded collections.
func (f *FastAdaptive) Namespace() int {
	if f.cfg.MaxLevel == 0 {
		panic("core: Namespace undefined for unbounded FastAdaptive; names are O(k) w.h.p.")
	}
	return 1 << (f.cfg.MaxLevel + 2)
}

var _ Algorithm = (*FastAdaptive)(nil)

// MaxLevelFor returns the level cap the paper's "n is known" modification
// prescribes for maximum contention n: the smallest L with 2^L >= 2n, so
// the top object alone can name every process.
func MaxLevelFor(n int) int {
	if n < 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n)))) + 1
}
