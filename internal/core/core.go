package core

// Cancelled is returned by renaming attempts that were abandoned because
// the environment reported an interrupt mid-probe-sequence (see
// Interruptible). Unlike NoName it does not mean the probe budget was
// exhausted — the process simply stopped probing. Drivers map it to their
// cancellation error; the lock-step simulator never produces it.
const Cancelled = -2

// Interruptible is an optional extension of Env for drivers that can
// cancel a renaming attempt while it is running (the concurrent driver
// threads a context through it). Algorithms poll Interrupted between probe
// batches/levels — never inside a constant-size probe set — and return
// Cancelled instead of starting the next batch, so an interrupt costs at
// most one batch of extra probes and never abandons a won TAS slot:
// either the process stops before probing (nothing held) or it already won
// a slot (and returns it as usual, leaving release policy to the driver).
type Interruptible interface {
	Env
	// Interrupted reports whether the probe sequence should be abandoned.
	Interrupted() bool
}

// Interrupted reports whether env requests cancellation. Plain Envs (the
// simulator, non-cancellable drivers) are never interrupted.
func Interrupted(env Env) bool {
	i, ok := env.(Interruptible)
	return ok && i.Interrupted()
}

// InterruptStride is how many sequential backup-scan probes an algorithm
// performs between Interrupted polls. Backup scans are O(namespace), so
// they poll periodically; batch/level loops poll on every boundary.
const InterruptStride = 256
