package core
