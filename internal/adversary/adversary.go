// Package adversary provides scheduler policies for the lock-step
// simulator: oblivious adversaries (random, round-robin, the layered
// schedule of the paper's §6 lower bound) and strong adaptive adversaries
// that inspect pending operations to maximize contention, plus a crash-
// injection wrapper.
//
// The paper's upper bounds (Theorems 4.1, 5.1, 5.2) are claimed against a
// strong adaptive adversary; a worst-case adversary is not computable, so
// the strong policies here are greedy heuristics that empirically dominate
// random scheduling (experiment F3 quantifies by how much).
package adversary

import (
	"fmt"

	"repro/internal/sim"
)

// Random schedules a uniformly random ready process each turn.
// It is an oblivious adversary. The zero value is ready to use.
type Random struct{}

// Next implements sim.Adversary.
func (Random) Next(v *sim.View) sim.Action {
	ready := v.Ready()
	return sim.Action{Step: ready[v.Rand().Intn(len(ready))]}
}

// RoundRobin cycles through processes in pid order, skipping processes
// that are not ready. It is an oblivious adversary and the most benign
// schedule (closest to synchronous lock-step).
type RoundRobin struct {
	next int
}

// Next implements sim.Adversary.
func (a *RoundRobin) Next(v *sim.View) sim.Action {
	for i := 0; i < v.N(); i++ {
		pid := (a.next + i) % v.N()
		if isReady(v, pid) {
			a.next = pid + 1
			return sim.Action{Step: pid}
		}
	}
	// Unreachable: the simulator only asks when someone is ready.
	return sim.Action{Step: v.Ready()[0]}
}

// Layered realizes the oblivious layered schedule of the §6 lower bound:
// the execution proceeds in layers, each layer steps every still-active
// process exactly once, in an order drawn as a fresh uniformly random
// permutation per layer.
type Layered struct {
	// OnLayer, if non-nil, is called at the start of each layer with the
	// 1-based layer number and the number of active processes — the hook
	// experiment T7 uses to count survivors per layer.
	OnLayer func(layer, active int)

	queue []int
	layer int
}

// Next implements sim.Adversary.
func (a *Layered) Next(v *sim.View) sim.Action {
	for {
		if len(a.queue) == 0 {
			ready := v.Ready()
			a.layer++
			if a.OnLayer != nil {
				a.OnLayer(a.layer, len(ready))
			}
			a.queue = append(a.queue[:0], ready...)
			v.Rand().Shuffle(len(a.queue), func(i, j int) {
				a.queue[i], a.queue[j] = a.queue[j], a.queue[i]
			})
		}
		pid := a.queue[0]
		a.queue = a.queue[1:]
		// A process scheduled earlier in this layer may have finished.
		if isReady(v, pid) {
			return sim.Action{Step: pid}
		}
	}
}

// Layer returns the number of layers started so far.
func (a *Layered) Layer() int { return a.layer }

// CollisionSeeker is a strong adaptive adversary that tries to maximize
// wasted probes: it preferentially schedules a process whose pending TAS
// is guaranteed to lose (its location is already set), breaking ties toward
// the process that has already taken the most steps (driving up the maximum
// individual step complexity). When no guaranteed loser exists it schedules
// a process that shares its pending location with another ready process, so
// the loser of that collision stays in the game; otherwise it falls back to
// a random choice.
//
// A true worst-case adversary would inspect every ready process each turn,
// costing Θ(n) per step and Θ(n²) per execution; CollisionSeeker instead
// scans a rotating window of Lookahead ready processes, which keeps runs at
// n = 2^16 feasible while preserving most of the scheduling pressure (the
// F3 ablation quantifies the gap against random scheduling).
type CollisionSeeker struct {
	// Lookahead bounds the per-turn scan; <= 0 selects 512.
	Lookahead int

	cursor int
	locs   map[int]int
}

// Next implements sim.Adversary.
func (c *CollisionSeeker) Next(v *sim.View) sim.Action {
	ready := v.Ready()
	window := c.Lookahead
	if window <= 0 {
		window = 512
	}
	if window > len(ready) {
		window = len(ready)
	}
	if c.locs == nil {
		c.locs = make(map[int]int, window)
	}
	clear(c.locs)

	bestLoser, bestSteps := -1, -1
	collider := -1
	for i := 0; i < window; i++ {
		pid := ready[(c.cursor+i)%len(ready)]
		loc := v.Pending(pid)
		if v.IsSet(loc) {
			if s := v.StepsTaken(pid); s > bestSteps {
				bestLoser, bestSteps = pid, s
			}
		}
		if other, dup := c.locs[loc]; dup && collider == -1 {
			collider = other
		}
		c.locs[loc] = pid
	}
	c.cursor = (c.cursor + window) % (len(ready) + 1)
	if bestLoser != -1 {
		return sim.Action{Step: bestLoser}
	}
	if collider != -1 {
		return sim.Action{Step: collider}
	}
	return sim.Action{Step: ready[v.Rand().Intn(len(ready))]}
}

// LaggardFirst is a strong adversary that always schedules the ready
// process with the most steps taken, concentrating scheduling on the
// unluckiest process to stretch the maximum individual step complexity.
type LaggardFirst struct{}

// Next implements sim.Adversary.
func (LaggardFirst) Next(v *sim.View) sim.Action {
	ready := v.Ready()
	best, bestSteps := ready[0], -1
	for _, pid := range ready {
		if s := v.StepsTaken(pid); s > bestSteps {
			best, bestSteps = pid, s
		}
	}
	return sim.Action{Step: best}
}

// Crashing wraps another adversary and crashes F distinct processes, the
// i-th victim after After(i) global steps. Victims are chosen uniformly
// (and deterministically, from the view's randomness) among processes
// still ready at the crash point.
type Crashing struct {
	// Inner supplies the schedule between crashes. Required.
	Inner sim.Adversary
	// F is the number of crash failures to inject.
	F int
	// Every is the gap, in global steps, between consecutive crashes;
	// the i-th crash (0-based) fires once GlobalStep >= (i+1)*Every.
	// Defaults to 1 (crash as early as possible).
	Every int64

	crashed int
}

// Next implements sim.Adversary.
func (c *Crashing) Next(v *sim.View) sim.Action {
	every := c.Every
	if every <= 0 {
		every = 1
	}
	act := c.Inner.Next(v)
	if c.crashed < c.F && v.GlobalStep() >= int64(c.crashed+1)*every {
		ready := v.Ready()
		if len(ready) > 1 { // leave someone to finish the run
			victim := ready[v.Rand().Intn(len(ready))]
			c.crashed++
			act.Crash = append(act.Crash, victim)
			if act.Step == victim {
				// The intended step just crashed; pick any survivor.
				act.Step = -1
				for _, pid := range ready {
					if pid != victim {
						act.Step = pid
						break
					}
				}
			}
		}
	}
	return act
}

// Crashed returns the number of crash failures injected so far.
func (c *Crashing) Crashed() int { return c.crashed }

// ByName constructs a fresh adversary from a CLI-friendly name.
func ByName(name string) (sim.Adversary, error) {
	switch name {
	case "random":
		return Random{}, nil
	case "roundrobin":
		return &RoundRobin{}, nil
	case "layered":
		return &Layered{}, nil
	case "collision":
		return &CollisionSeeker{}, nil
	case "laggard":
		return LaggardFirst{}, nil
	default:
		return nil, fmt.Errorf("adversary: unknown adversary %q (want random, roundrobin, layered, collision, laggard)", name)
	}
}

// Names lists the adversaries ByName accepts.
func Names() []string {
	return []string{"random", "roundrobin", "layered", "collision", "laggard"}
}

func isReady(v *sim.View, pid int) bool { return v.IsReady(pid) }
