package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func rebatching(t *testing.T, n int) *core.ReBatching {
	t.Helper()
	return core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
}

// runUnder executes n ReBatching processes under adv and returns the result.
func runUnder(t *testing.T, n int, adv sim.Adversary, seed uint64) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{N: n, Algorithm: rebatching(t, n), Adversary: adv, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.UniqueNames(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllAdversariesCompleteCorrectly(t *testing.T) {
	const n = 128
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			adv, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res := runUnder(t, n, adv, 17)
			for p, u := range res.Names {
				if u == sim.NoName {
					t.Fatalf("process %d unnamed under %s", p, name)
				}
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}

func TestRoundRobinIsFair(t *testing.T) {
	// Under round-robin every process gets scheduled before any process is
	// scheduled twice, so the spread of step counts is minimal: at the end,
	// counts differ only by completion times. Check the schedule is valid
	// and that no process is starved (all have >= 1 step).
	res := runUnder(t, 64, &RoundRobin{}, 3)
	for p, s := range res.Steps {
		if s < 1 {
			t.Fatalf("process %d starved", p)
		}
	}
}

func TestLayeredCountsLayers(t *testing.T) {
	var layers []int
	adv := &Layered{OnLayer: func(layer, active int) {
		layers = append(layers, active)
	}}
	res := runUnder(t, 256, adv, 5)
	if adv.Layer() < 2 {
		t.Fatalf("execution finished in %d layers; expected at least 2", adv.Layer())
	}
	if len(layers) != adv.Layer() {
		t.Fatalf("OnLayer fired %d times, Layer() = %d", len(layers), adv.Layer())
	}
	// Layer occupancy must be non-increasing: processes only leave.
	for i := 1; i < len(layers); i++ {
		if layers[i] > layers[i-1] {
			t.Fatalf("layer %d grew: %d -> %d", i, layers[i-1], layers[i])
		}
	}
	if layers[0] != 256 {
		t.Fatalf("first layer saw %d active, want 256", layers[0])
	}
	// In a layered schedule every live process steps once per layer, so the
	// max individual step count equals the number of layers it survived.
	if res.MaxSteps() > adv.Layer() {
		t.Fatalf("max steps %d exceeds layer count %d", res.MaxSteps(), adv.Layer())
	}
}

func TestCollisionSeekerForcesMoreWork(t *testing.T) {
	// The strong adversary should extract at least as much total work as a
	// random schedule on the same workload, on average. Compare sums over a
	// few seeds to keep the test deterministic and robust.
	const n = 256
	var randomTotal, strongTotal int64
	for seed := uint64(0); seed < 5; seed++ {
		randomTotal += runUnder(t, n, Random{}, seed).TotalSteps
		strongTotal += runUnder(t, n, &CollisionSeeker{}, seed).TotalSteps
	}
	if strongTotal < randomTotal {
		t.Logf("collision seeker total %d < random total %d (heuristic, not guaranteed)", strongTotal, randomTotal)
	}
	if strongTotal == 0 || randomTotal == 0 {
		t.Fatal("no work recorded")
	}
}

func TestLaggardFirstCompletes(t *testing.T) {
	res := runUnder(t, 128, LaggardFirst{}, 9)
	if res.TotalSteps < 128 {
		t.Fatalf("total steps %d < n", res.TotalSteps)
	}
}

func TestCrashingInjectsExactlyF(t *testing.T) {
	const n, f = 64, 16
	adv := &Crashing{Inner: Random{}, F: f, Every: 3}
	res, err := sim.Run(sim.Config{N: n, Algorithm: rebatching(t, n), Adversary: adv, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	crashed := 0
	for p, c := range res.Crashed {
		if !c {
			continue
		}
		crashed++
		if res.Names[p] != sim.NoName {
			t.Fatalf("crashed process %d holds name %d", p, res.Names[p])
		}
	}
	if crashed != f {
		t.Fatalf("crashed %d processes, want %d", crashed, f)
	}
	if adv.Crashed() != f {
		t.Fatalf("Crashed() = %d, want %d", adv.Crashed(), f)
	}
	// All survivors must terminate with unique names (wait-freedom under
	// crashes).
	for p := range res.Names {
		if !res.Crashed[p] && res.Names[p] == sim.NoName {
			t.Fatalf("surviving process %d unnamed", p)
		}
	}
	if err := res.UniqueNames(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashingLeavesALiveProcess(t *testing.T) {
	// Even with F = n the wrapper must keep at least one process alive so
	// the execution terminates.
	const n = 8
	adv := &Crashing{Inner: Random{}, F: n, Every: 1}
	res, err := sim.Run(sim.Config{N: n, Algorithm: rebatching(t, n), Adversary: adv, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	named := 0
	for p := range res.Names {
		if res.Names[p] != sim.NoName {
			named++
		}
	}
	if named == 0 {
		t.Fatal("every process crashed; none named")
	}
}

func TestAdversariesDeterministic(t *testing.T) {
	for _, name := range Names() {
		a1, _ := ByName(name)
		a2, _ := ByName(name)
		r1 := runUnder(t, 64, a1, 33)
		r2 := runUnder(t, 64, a2, 33)
		if r1.TotalSteps != r2.TotalSteps {
			t.Errorf("%s: nondeterministic total steps %d vs %d", name, r1.TotalSteps, r2.TotalSteps)
		}
		for p := range r1.Names {
			if r1.Names[p] != r2.Names[p] {
				t.Errorf("%s: nondeterministic name for %d", name, p)
				break
			}
		}
	}
}
