package xrand

import (
	"fmt"
	"math"
)

// Numerical regimes for the Poisson routines. Below smallLambdaCutoff the
// exact inverse-CDF recurrence is used; above it a normal approximation
// with continuity correction takes over (the exact recurrence underflows
// near exp(-746)). The lower-bound gadget operates on per-location rates
// that are O(1), far inside the exact regime.
const smallLambdaCutoff = 500.0

// Poisson returns a sample from the Poisson distribution with rate lambda.
// It panics if lambda is negative or NaN.
func (r *Rand) Poisson(lambda float64) int {
	switch {
	case math.IsNaN(lambda) || lambda < 0:
		panic(fmt.Sprintf("xrand: Poisson rate %v out of range", lambda))
	case lambda == 0:
		return 0
	default:
		return PoissonQuantile(lambda, r.Float64Open())
	}
}

// PoissonQuantile returns the smallest k such that P(X <= k) >= u for
// X ~ Pois(lambda), i.e. the inverse CDF evaluated at u in (0, 1).
func PoissonQuantile(lambda, u float64) int {
	if lambda == 0 {
		return 0
	}
	if lambda > smallLambdaCutoff {
		return normalApproxQuantile(lambda, u)
	}
	// Inverse transform by sequential search using the term recurrence
	// p_{k+1} = p_k * lambda / (k+1), starting from p_0 = exp(-lambda).
	p := math.Exp(-lambda)
	cdf := p
	k := 0
	// The loop bound guards against u so close to 1 that float64 summation
	// saturates before reaching it; the tail clamp is astronomically rare.
	limit := int(lambda + 60*math.Sqrt(lambda) + 60)
	for cdf < u && k < limit {
		k++
		p *= lambda / float64(k)
		cdf += p
	}
	return k
}

// PoissonCDF returns P(X <= k) for X ~ Pois(lambda). Exact summation for
// lambda within the small regime; normal approximation beyond it.
func PoissonCDF(lambda float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if lambda == 0 {
		return 1
	}
	if lambda > smallLambdaCutoff {
		return normalApproxCDF(lambda, k)
	}
	p := math.Exp(-lambda)
	cdf := p
	for i := 1; i <= k; i++ {
		p *= lambda / float64(i)
		cdf += p
	}
	if cdf > 1 {
		return 1
	}
	return cdf
}

// CoupledPoissonPair returns a pair (z, y) where z ~ Pois(lambda),
// y ~ Pois(min(lambda²/4, lambda/4)), and y <= max(0, z-1) holds with
// certainty. This is the coupling gadget of Lemmas 6.4/6.5 in the paper:
// both variables are produced from one shared uniform by inverse CDF, and
// Lemma 6.5's dominance P_λ(n+1) <= P_γ(n) turns quantile coupling into the
// almost-sure inequality. Conditioned on z, the shared uniform is uniform on
// the z-th CDF slab independently of how z decomposes into per-type counts,
// which is exactly the conditional independence Lemma 6.4 requires.
func (r *Rand) CoupledPoissonPair(lambda float64) (z, y int) {
	if lambda < 0 || math.IsNaN(lambda) {
		panic(fmt.Sprintf("xrand: CoupledPoissonPair rate %v out of range", lambda))
	}
	if lambda == 0 {
		return 0, 0
	}
	u := r.Float64Open()
	z = PoissonQuantile(lambda, u)
	gamma := CouplingRate(lambda)
	y = PoissonQuantile(gamma, u)
	// Lemma 6.5 guarantees y <= max(0, z-1); clamp defensively so a
	// floating-point boundary tie can never violate the gadget's invariant.
	if max := z - 1; max < 0 {
		y = 0
	} else if y > max {
		y = max
	}
	return z, y
}

// CoupledYGivenZ samples Y conditioned on Z = z under the same quantile
// coupling as CoupledPoissonPair: the shared uniform, conditioned on Z = z,
// is uniform on the z-th CDF slab (P_lambda(z-1), P_lambda(z)], so drawing
// from that slab and inverting P_gamma reproduces the joint law exactly.
// The marking procedure needs this form because the per-location counts Z
// are realized by the simulated instances rather than freshly sampled.
func (r *Rand) CoupledYGivenZ(lambda float64, z int) int {
	if z <= 0 || lambda <= 0 {
		return 0
	}
	lo := PoissonCDF(lambda, z-1)
	hi := PoissonCDF(lambda, z)
	u := lo + (hi-lo)*r.Float64Open()
	y := PoissonQuantile(CouplingRate(lambda), u)
	if y > z-1 {
		y = z - 1
	}
	return y
}

// CouplingRate returns min(lambda²/4, lambda/4), the rate of the coupled
// survivor variable Y in the paper's marking procedure.
func CouplingRate(lambda float64) float64 {
	q := lambda * lambda / 4
	if l4 := lambda / 4; l4 < q {
		return l4
	}
	return q
}

// normalApproxQuantile inverts a normal approximation with continuity
// correction: X ≈ N(lambda, lambda).
func normalApproxQuantile(lambda, u float64) int {
	x := lambda + math.Sqrt(lambda)*normQuantile(u) - 0.5
	if x < 0 {
		return 0
	}
	return int(math.Round(x))
}

func normalApproxCDF(lambda float64, k int) float64 {
	z := (float64(k) + 0.5 - lambda) / math.Sqrt(lambda)
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// normQuantile returns the standard normal quantile via bisection on the
// erfc-based CDF. Bisection is branch-predictable, exact enough for the
// tail regime it serves (|z| <= 40), and has no magic constants to verify.
func normQuantile(u float64) float64 {
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if 0.5*math.Erfc(-mid/math.Sqrt2) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
