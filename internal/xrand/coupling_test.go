package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoupledYGivenZInvariant(t *testing.T) {
	// For every realized z, the conditional draw must respect
	// y <= max(0, z-1).
	property := func(seed uint64, rawLambda, rawZ uint8) bool {
		lambda := float64(rawLambda%80)/10 + 0.05
		z := int(rawZ % 40)
		r := New(seed)
		for i := 0; i < 20; i++ {
			y := r.CoupledYGivenZ(lambda, z)
			if z <= 0 && y != 0 {
				return false
			}
			if z > 0 && y > z-1 {
				return false
			}
			if y < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300, Rand: stdRandFrom(New(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestCoupledYGivenZZeroCases(t *testing.T) {
	r := New(9)
	if y := r.CoupledYGivenZ(0, 5); y != 0 {
		t.Errorf("lambda=0: y = %d, want 0", y)
	}
	if y := r.CoupledYGivenZ(3, 0); y != 0 {
		t.Errorf("z=0: y = %d, want 0", y)
	}
	if y := r.CoupledYGivenZ(3, -2); y != 0 {
		t.Errorf("z=-2: y = %d, want 0", y)
	}
}

// TestCoupledYGivenZMatchesJointLaw checks that sampling Z ~ Pois(lambda)
// and then Y via CoupledYGivenZ reproduces the same Y-marginal as the
// direct CoupledPoissonPair — both must have mean ~ CouplingRate(lambda).
func TestCoupledYGivenZMatchesJointLaw(t *testing.T) {
	r := New(17)
	const lambda = 1.5
	const n = 80_000
	sumY := 0.0
	for i := 0; i < n; i++ {
		z := r.Poisson(lambda)
		sumY += float64(r.CoupledYGivenZ(lambda, z))
	}
	gamma := CouplingRate(lambda)
	if mean := sumY / n; math.Abs(mean-gamma) > 0.05 {
		t.Fatalf("conditional-composition mean %v, want ~%v", mean, gamma)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(23)
	for i := 0; i < 10_000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63() = %d < 0", v)
		}
	}
}

func TestNormalApproxCDFAgreesWithExact(t *testing.T) {
	// At lambda just below the cutoff the exact summation is available;
	// the normal approximation must agree within a small absolute error in
	// the bulk (it is only used for lambda > 500 where it is even better).
	const lambda = 400.0
	for _, k := range []int{360, 380, 400, 420, 440} {
		exact := PoissonCDF(lambda, k)
		approx := normalApproxCDF(lambda, k)
		if math.Abs(exact-approx) > 0.01 {
			t.Errorf("k=%d: exact %v vs normal approx %v", k, exact, approx)
		}
	}
}

func TestPoissonQuantileLargeLambdaRegime(t *testing.T) {
	// Above the cutoff, quantiles come from the normal approximation; the
	// median must be ~lambda and quantiles must be monotone in u.
	const lambda = 10_000.0
	med := PoissonQuantile(lambda, 0.5)
	if math.Abs(float64(med)-lambda) > 3*math.Sqrt(lambda) {
		t.Fatalf("median %d too far from lambda %v", med, lambda)
	}
	prev := 0
	for _, u := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		q := PoissonQuantile(lambda, u)
		if q < prev {
			t.Fatalf("quantile not monotone at u=%v: %d < %d", u, q, prev)
		}
		prev = q
	}
}
