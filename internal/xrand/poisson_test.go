package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonZeroRate(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if v := r.Poisson(0); v != 0 {
			t.Fatalf("Poisson(0) = %d, want 0", v)
		}
	}
}

func TestPoissonPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	New(1).Poisson(-1)
}

func TestPoissonMomentsSmallLambda(t *testing.T) {
	// For a Poisson variable both mean and variance equal lambda.
	r := New(21)
	for _, lambda := range []float64{0.1, 0.5, 1, 4, 20, 100} {
		const n = 60_000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		tol := 4 * math.Sqrt(lambda/n) * math.Max(1, math.Sqrt(lambda))
		if math.Abs(mean-lambda) > math.Max(tol, 0.05*lambda+0.01) {
			t.Errorf("lambda=%v: mean=%v", lambda, mean)
		}
		if math.Abs(variance-lambda) > math.Max(0.1*lambda, 0.05) {
			t.Errorf("lambda=%v: variance=%v", lambda, variance)
		}
	}
}

func TestPoissonLargeLambdaRegime(t *testing.T) {
	// Above the exact-summation cutoff the normal approximation takes over;
	// the moments must still be right.
	r := New(22)
	const lambda = 2000.0
	const n = 20_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(lambda))
	}
	if mean := sum / n; math.Abs(mean-lambda) > 5 {
		t.Fatalf("lambda=%v: mean=%v", lambda, mean)
	}
}

func TestPoissonCDFBasics(t *testing.T) {
	if got := PoissonCDF(3, -1); got != 0 {
		t.Errorf("CDF(3,-1) = %v, want 0", got)
	}
	if got := PoissonCDF(0, 0); got != 1 {
		t.Errorf("CDF(0,0) = %v, want 1", got)
	}
	// P(X=0) = e^-lambda.
	if got, want := PoissonCDF(2, 0), math.Exp(-2); math.Abs(got-want) > 1e-12 {
		t.Errorf("CDF(2,0) = %v, want %v", got, want)
	}
	// CDF is monotone in k and approaches 1.
	prev := 0.0
	for k := 0; k <= 40; k++ {
		c := PoissonCDF(5, k)
		if c < prev {
			t.Fatalf("CDF(5,%d)=%v < CDF(5,%d)=%v", k, c, k-1, prev)
		}
		prev = c
	}
	if prev < 1-1e-9 {
		t.Fatalf("CDF(5,40) = %v, want ~1", prev)
	}
}

func TestPoissonQuantileInvertsCDF(t *testing.T) {
	for _, lambda := range []float64{0.3, 1, 7, 50} {
		for _, u := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			k := PoissonQuantile(lambda, u)
			if PoissonCDF(lambda, k) < u {
				t.Errorf("lambda=%v u=%v: CDF(quantile)=%v < u", lambda, u, PoissonCDF(lambda, k))
			}
			if k > 0 && PoissonCDF(lambda, k-1) >= u {
				t.Errorf("lambda=%v u=%v: quantile %d not minimal", lambda, u, k)
			}
		}
	}
}

// TestCDFDominanceLemma65 numerically verifies Lemma 6.5 of the paper:
// P_lambda(n+1) <= P_gamma(n) with gamma = min(lambda^2/4, lambda/4), which
// is the inequality that makes the quantile coupling sound.
func TestCDFDominanceLemma65(t *testing.T) {
	lambdas := []float64{0.05, 0.1, 0.25, 0.5, 1, 1.5, 2, 3, 5, 8, 13, 21, 50, 100, 300}
	for _, lambda := range lambdas {
		gamma := CouplingRate(lambda)
		limit := int(lambda + 40*math.Sqrt(lambda) + 40)
		for n := 0; n <= limit; n++ {
			pl := PoissonCDF(lambda, n+1)
			pg := PoissonCDF(gamma, n)
			if pl > pg+1e-12 {
				t.Fatalf("lambda=%v n=%d: P_lambda(n+1)=%v > P_gamma(n)=%v", lambda, n, pl, pg)
			}
		}
	}
}

// TestCoupledPairInvariant property-tests the gadget's almost-sure
// guarantee y <= max(0, z-1) across random rates and seeds.
func TestCoupledPairInvariant(t *testing.T) {
	property := func(seed uint64, rawLambda uint16) bool {
		lambda := float64(rawLambda%1000)/100 + 0.01 // (0.01, 10.01)
		r := New(seed)
		for i := 0; i < 50; i++ {
			z, y := r.CoupledPoissonPair(lambda)
			if z == 0 && y != 0 {
				return false
			}
			if z > 0 && y > z-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300, Rand: stdRandFrom(New(77))}); err != nil {
		t.Fatal(err)
	}
}

func TestCoupledPairMarginals(t *testing.T) {
	// z must have mean lambda; y must have mean close to gamma. (y's clamp
	// fires with probability ~0 given Lemma 6.5, so the mean is preserved.)
	r := New(31)
	const lambda = 2.0
	gamma := CouplingRate(lambda)
	const n = 80_000
	sumZ, sumY := 0.0, 0.0
	for i := 0; i < n; i++ {
		z, y := r.CoupledPoissonPair(lambda)
		sumZ += float64(z)
		sumY += float64(y)
	}
	if meanZ := sumZ / n; math.Abs(meanZ-lambda) > 0.05 {
		t.Errorf("mean z = %v, want ~%v", meanZ, lambda)
	}
	if meanY := sumY / n; math.Abs(meanY-gamma) > 0.05 {
		t.Errorf("mean y = %v, want ~%v", meanY, gamma)
	}
}

func TestCouplingRate(t *testing.T) {
	tests := []struct {
		lambda float64
		want   float64
	}{
		{0, 0},
		{0.5, 0.0625}, // lambda^2/4 branch
		{1, 0.25},     // boundary: both equal
		{4, 1},        // lambda/4 branch
		{100, 25},     // lambda/4 branch
	}
	for _, tt := range tests {
		if got := CouplingRate(tt.lambda); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("CouplingRate(%v) = %v, want %v", tt.lambda, got, tt.want)
		}
	}
}

func TestNormQuantile(t *testing.T) {
	tests := []struct {
		u    float64
		want float64
	}{
		{0.5, 0},
		{0.841344746068543, 1},
		{0.158655253931457, -1},
		{0.977249868051821, 2},
	}
	for _, tt := range tests {
		if got := normQuantile(tt.u); math.Abs(got-tt.want) > 1e-6 {
			t.Errorf("normQuantile(%v) = %v, want %v", tt.u, got, tt.want)
		}
	}
}

func BenchmarkPoissonSmall(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Poisson(2.5)
	}
}

func BenchmarkCoupledPair(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.CoupledPoissonPair(1.5)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
