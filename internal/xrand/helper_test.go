package xrand

import mathrand "math/rand"

// stdRandFrom adapts an xrand generator into the *math/rand.Rand that
// testing/quick requires for its Config.Rand field.
func stdRandFrom(r *Rand) *mathrand.Rand {
	return mathrand.New(mathrand.NewSource(int64(r.Uint64())))
}
