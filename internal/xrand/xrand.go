// Package xrand provides the deterministic randomness substrate used by the
// renaming algorithms, the lock-step simulator, and the lower-bound gadget.
//
// The package implements SplitMix64 (seed expansion and stream derivation)
// and xoshiro256** (bulk generation) from scratch so that every experiment
// in this repository is exactly reproducible from a single uint64 seed,
// across platforms and Go releases. The standard library's math/rand makes
// no cross-version stream stability promises, which is why it is not used.
//
// A Rand is NOT safe for concurrent use; concurrent callers derive
// independent per-process streams with NewStream.
package xrand

import "math/bits"

// Rand is a deterministic pseudo-random number generator
// (xoshiro256** seeded via SplitMix64).
type Rand struct {
	s [4]uint64
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	return &r
}

// NewStream returns a generator for an independent stream derived from
// (seed, stream). Distinct stream values yield statistically independent
// sequences, which is how per-process randomness is created without
// sharing state between goroutines.
func NewStream(seed, stream uint64) *Rand {
	// Mix the stream index through SplitMix64 twice so that consecutive
	// stream ids land far apart in seed space.
	sm := stream
	mixed := splitMix64(&sm)
	mixed = splitMix64(&mixed)
	return New(seed ^ mixed)
}

// splitMix64 advances *state and returns the next SplitMix64 output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9

	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)

	return result
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform random int in [0, n). It panics if n <= 0.
// Uniformity uses Lemire's multiply-shift rejection method.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform random float64 in the open interval (0, 1),
// which quantile-coupling code relies on (u = 0 would break inverse-CDF
// monotonicity arguments at the boundary).
func (r *Rand) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
