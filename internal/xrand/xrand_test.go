package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("output %d diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 64 outputs", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	const n = 1 << 12
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	matches := 0
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches != 0 {
		t.Fatalf("streams 0 and 1 matched on %d of %d outputs", matches, n)
	}
}

func TestNewStreamDeterministic(t *testing.T) {
	a := NewStream(9, 123)
	b := NewStream(9, 123)
	if a.Uint64() != b.Uint64() {
		t.Fatal("same (seed, stream) produced different outputs")
	}
}

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference values for SplitMix64 seeded with 1234567, from the
	// public-domain reference implementation by Sebastiano Vigna.
	state := uint64(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := splitMix64(&state); got != w {
			t.Fatalf("splitMix64 output %d = %d, want %d", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-style sanity check: 10 buckets, 100k draws. With a fair
	// generator each bucket holds 10k ± a few hundred.
	const (
		buckets = 10
		draws   = 100_000
	)
	r := New(99)
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want-500 || c > want+500 {
			t.Errorf("bucket %d: %d draws, want %d±500", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100_000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestFloat64OpenExcludesZero(t *testing.T) {
	r := New(6)
	for i := 0; i < 100_000; i++ {
		if f := r.Float64Open(); f <= 0 || f >= 1 {
			t.Fatalf("Float64Open() = %v out of (0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 5, 64, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUnbiasedFirstElement(t *testing.T) {
	// The first element of Perm(4) should be uniform over {0,1,2,3}.
	r := New(11)
	counts := make([]int, 4)
	const trials = 40_000
	for i := 0; i < trials; i++ {
		counts[r.Perm(4)[0]]++
	}
	for v, c := range counts {
		if c < trials/4-600 || c > trials/4+600 {
			t.Errorf("first element %d appeared %d times, want %d±600", v, c, trials/4)
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	r := New(13)
	property := func(seed uint64, rawN uint8) bool {
		n := int(rawN%50) + 1
		s := New(seed)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		s.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := make([]bool, n)
		for _, v := range vals {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200, Rand: stdRandFrom(r)}); err != nil {
		t.Fatal(err)
	}
}
