// Package levelarray implements the LevelArray long-lived loose-renaming
// algorithm of Alistarh, Kopinsky, Matveev and Shavit, "The LevelArray: A
// Fast, Practical Long-Lived Renaming Algorithm" (ICDCS 2014,
// arXiv:1405.5461), adapted to this repository's TAS/Env substrate.
//
// The one-shot ReBatching algorithms of internal/core place their batches so
// that *each process acquires once*; their analysis collapses under churn,
// where released slots reopen in already-drained batches. The LevelArray is
// built for the long-lived regime instead. The namespace is split into
// geometrically shrinking levels
//
//	size(i) = ceil((1+γ)·N / 2^i),  i = 0, 1, ..., floor(log2 N)
//
// for capacity N (maximum concurrently held names) and per-level slack
// γ > 0. A thread probes t uniformly random slots in level 0, then level 1,
// and so on, taking the first test-and-set it wins; if every level fails it
// falls back to a linear scan of the whole array. Releasing a name resets
// its slot (the driver's TryReset), after which the slot is immediately
// re-acquirable — there is no per-level occupancy bookkeeping to repair,
// which is what makes release-and-reacquire safe.
//
// Why the levels stay useful under churn: with at most N names held, level 0
// (size (1+γ)N) is at worst 1/(1+γ) full at every instant, so each level-0
// probe wins with probability at least γ/(1+γ) — a coin flip at γ = 1 —
// regardless of how many acquire/release cycles preceded it. Deeper levels
// only see the exponentially small fraction of threads whose level-0 probes
// all lost, so the expected probe count is a constant (≈ t/γ' summed over a
// geometric series) in steady state, not just in a fresh array. The paper
// proves the stronger statement that level i's occupancy stays O(N/2^i)
// w.h.p., giving O(1) expected and O(log log N) w.h.p. probes per acquire.
//
// Total space is Σ size(i) < 2(1+γ)N = O(N), the loose-renaming namespace.
//
// # Online resize
//
// The capacity N is mutable at runtime via Resize. The whole level layout
// lives behind one epoch-stamped geometry word (an atomic pointer to an
// immutable snapshot): GetName loads it exactly once per call, so a probe
// sequence sees either the old or the new layout in full, never a torn mix.
//
// Growing appends: each level's allowed size rises to the new
// ceil((1+γ)N'/2^i), and the extra slots are laid out as fresh segments at
// the end of the array (plus wholly new levels when floor(log2 N') grows).
// Slots already handed out never move — a level becomes a chain of
// segments, and probe index x walks the chain — so concurrent holders and
// releases are untouched and the geometric occupancy argument carries over
// level by level.
//
// Shrinking marks the tail drain-only: each level's allowed size drops to
// the new formula value (deep levels beyond floor(log2 N')+1 drop to zero)
// while the physical segments stay addressable. New probes and the backup
// scan only visit the allowed prefix, so no new name is ever granted from
// the drained region; names already held there remain valid until released.
// Draining reports whether any drain-only slot is still held — the shrink
// has quiesced once it returns false. A later grow reclaims drained
// segments before appending new ones.
package levelarray

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Config parameterizes a LevelArray.
type Config struct {
	// N is the capacity: the maximum number of names held at any instant for
	// which the probe analysis holds. Must be >= 1. Uniqueness and the
	// backup-scan termination argument tolerate any load up to Namespace().
	N int
	// Gamma is the per-level slack γ > 0: level i holds ceil((1+γ)N/2^i)
	// slots. Larger γ means fewer probes and more space. Defaults to 1.
	Gamma float64
	// Probes is the number of random probes per level before descending.
	// Defaults to 2; the paper's analysis works for any constant >= 1.
	Probes int
	// DisableBackup omits the final linear scan, making GetName return
	// NoName when every level probe loses (used by tests that measure pure
	// level behaviour).
	DisableBackup bool
	// Base is the first global TAS location of this object; the object
	// occupies locations [Base, Base+Size()).
	Base int
	// EnsureSpace, when set, is called by Resize with the new exclusive
	// upper bound on global locations (Base + extent) BEFORE the grown
	// geometry is published, so the owner of the TAS space can extend it
	// first and no probe ever addresses a location the space lacks. An
	// error aborts the resize unpublished.
	EnsureSpace func(namespace int) error
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("levelarray: N = %d, need >= 1", c.N)
	}
	if c.Gamma != 0 && (!(c.Gamma > 0) || math.IsInf(c.Gamma, 0)) {
		return fmt.Errorf("levelarray: Gamma = %v, need > 0", c.Gamma)
	}
	// The full array is < 2(1+γ)N slots; refuse configurations whose size
	// would overflow int (the float→int conversion would otherwise wrap and
	// panic deep inside make()).
	if c.Gamma > 0 && (1+c.Gamma)*float64(c.N) > 1<<40 {
		return fmt.Errorf("levelarray: (1+Gamma)*N = %v exceeds the 2^40-slot limit", (1+c.Gamma)*float64(c.N))
	}
	if c.Probes < 0 {
		return fmt.Errorf("levelarray: Probes = %d, need >= 0", c.Probes)
	}
	if c.Base < 0 {
		return fmt.Errorf("levelarray: Base = %d, need >= 0", c.Base)
	}
	return nil
}

// segment is one contiguous physical run of a level's slots. Offsets are
// relative to Base.
type segment struct {
	start int
	size  int
}

// lvl is one geometric tier: a chain of segments accreted across grows.
// The first `size` chain positions are probe-able; positions beyond size
// (possible after a shrink) are drain-only — addressable for release,
// never granted.
type lvl struct {
	segs []segment
	phys int // Σ seg.size — physical slots ever laid out for this level
	size int // allowed (probe-able) prefix of the chain; size <= phys
}

// geometry is one immutable epoch of the layout. GetName loads the
// current geometry exactly once, so concurrent Resize publications are
// seen whole or not at all.
type geometry struct {
	epoch  uint64
	n      int   // capacity N of this epoch
	levels []lvl // levels[i].size may be 0 after a deep shrink
	extent int   // total physical slots; monotone non-decreasing
}

// LevelArray is the long-lived namer. All layout state lives in the
// atomically-swapped geometry; every bit of slot state lives behind
// Env.TAS, so the same object drives both the concurrent library and the
// lock-step simulator. GetName and the accessors are safe for concurrent
// use with Resize; Resize calls are serialized internally.
type LevelArray struct {
	cfg      Config
	geo      atomic.Pointer[geometry]
	resizeMu sync.Mutex
}

// New builds the level layout for cfg.
func New(cfg Config) (*LevelArray, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 1
	}
	if cfg.Probes == 0 {
		cfg.Probes = 2
	}
	la := &LevelArray{cfg: cfg}
	levels, extent := buildLevels(cfg.N, cfg.Gamma)
	la.geo.Store(&geometry{n: cfg.N, levels: levels, extent: extent})
	return la, nil
}

// Must is New for statically-valid configurations.
func Must(cfg Config) *LevelArray {
	la, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return la
}

// levelSize is the paper's size(i) = ceil((1+γ)N/2^i).
func levelSize(n int, gamma float64, i int) int {
	return int(math.Ceil((1 + gamma) * float64(n) / float64(int64(1)<<i)))
}

// maxLevels caps the layout at floor(log2 N)+1 levels so the tail does
// not degenerate into many 1-slot levels.
func maxLevels(n int) int {
	return int(math.Floor(math.Log2(float64(n)))) + 1
}

// buildLevels materializes the fresh single-segment layout for capacity n.
func buildLevels(n int, gamma float64) ([]lvl, int) {
	levels := make([]lvl, 0, maxLevels(n))
	next := 0
	for i := 0; i < maxLevels(n); i++ {
		size := levelSize(n, gamma, i)
		levels = append(levels, lvl{
			segs: []segment{{start: next, size: size}},
			phys: size,
			size: size,
		})
		next += size
	}
	return levels, next
}

// slot maps chain position x of level lv onto its physical offset
// (relative to Base). x must be < lv.phys.
func (lv *lvl) slot(x int) int {
	for _, s := range lv.segs {
		if x < s.size {
			return s.start + x
		}
		x -= s.size
	}
	panic(fmt.Sprintf("levelarray: chain position %d beyond level extent %d", x, lv.phys))
}

// GetName probes cfg.Probes random slots per level, top level first, and
// returns the first location won; if every level loses it linearly scans
// the allowed region of the array (the long-lived analogue of ReBatching's
// backup phase). The returned name is a global location index in
// [Base, Base+Size()), or core.NoName. Interruptible environments are
// polled on level boundaries and every core.InterruptStride locations of
// the backup scan; an interrupt yields core.Cancelled before the next
// probe. The geometry is loaded once, so one call's probes all see the
// same resize epoch.
func (la *LevelArray) GetName(env core.Env) int {
	g := la.geo.Load()
	for i := range g.levels {
		lv := &g.levels[i]
		if lv.size == 0 {
			continue
		}
		if core.Interrupted(env) {
			return core.Cancelled
		}
		for j := 0; j < la.cfg.Probes; j++ {
			x := lv.slot(env.Intn(lv.size))
			if env.TAS(la.cfg.Base + x) {
				return la.cfg.Base + x
			}
		}
	}
	if la.cfg.DisableBackup {
		return core.NoName
	}
	// Backup: scan every allowed slot, level by level, segment by segment.
	// Drain-only chain suffixes are skipped — the scan must never grant a
	// name above the shrunk bound.
	steps := 0
	for i := range g.levels {
		lv := &g.levels[i]
		remaining := lv.size
		for _, s := range lv.segs {
			if remaining == 0 {
				break
			}
			take := s.size
			if take > remaining {
				take = remaining
			}
			remaining -= take
			for u := s.start; u < s.start+take; u++ {
				if steps%core.InterruptStride == 0 && core.Interrupted(env) {
					return core.Cancelled
				}
				steps++
				if env.TAS(la.cfg.Base + u) {
					return la.cfg.Base + u
				}
			}
		}
	}
	return core.NoName
}

// Resize changes the capacity to n online. Growing appends segments (and
// levels) sized for the new N and publishes the layout atomically after
// cfg.EnsureSpace has extended the backing space; shrinking publishes
// reduced allowed sizes immediately, leaving the tail drain-only until
// its holders release (see Draining). Concurrent GetName calls see the
// old or the new geometry in full. Resize does not wait for a shrink to
// quiesce.
func (la *LevelArray) Resize(n int) error {
	if err := (Config{N: n, Gamma: la.cfg.Gamma, Probes: la.cfg.Probes}).validate(); err != nil {
		return err
	}
	la.resizeMu.Lock()
	defer la.resizeMu.Unlock()
	cur := la.geo.Load()
	if n == cur.n {
		return nil
	}
	active := maxLevels(n)
	count := len(cur.levels)
	if active > count {
		count = active
	}
	levels := make([]lvl, 0, count)
	extent := cur.extent
	for i := 0; i < count; i++ {
		want := 0
		if i < active {
			want = levelSize(n, la.cfg.Gamma, i)
		}
		if i >= len(cur.levels) {
			// Wholly new level for the larger capacity.
			levels = append(levels, lvl{
				segs: []segment{{start: extent, size: want}},
				phys: want,
				size: want,
			})
			extent += want
			continue
		}
		old := cur.levels[i]
		if want <= old.phys {
			// Fits in the slots already laid out: either a shrink (the
			// chain suffix beyond want turns drain-only) or a grow
			// reclaiming previously drained slots.
			levels = append(levels, lvl{segs: old.segs, phys: old.phys, size: want})
			continue
		}
		// Extend the chain. Copy the segment list: the old geometry is
		// still being read concurrently and append must not alias it.
		segs := make([]segment, len(old.segs), len(old.segs)+1)
		copy(segs, old.segs)
		segs = append(segs, segment{start: extent, size: want - old.phys})
		extent += want - old.phys
		levels = append(levels, lvl{segs: segs, phys: want, size: want})
	}
	if extent > cur.extent && la.cfg.EnsureSpace != nil {
		if err := la.cfg.EnsureSpace(la.cfg.Base + extent); err != nil {
			return fmt.Errorf("levelarray: Resize(%d): extending space: %w", n, err)
		}
	}
	la.geo.Store(&geometry{epoch: cur.epoch + 1, n: n, levels: levels, extent: extent})
	return nil
}

// Allowed reports whether global location name may be granted under the
// CURRENT geometry — false for drain-only slots after a shrink. The
// driver calls it after winning a slot: a probe sequence that raced a
// shrink (won under the old epoch, published after) hands the slot back
// and retries, so no new grant lands above the shrunk bound.
func (la *LevelArray) Allowed(name int) bool {
	g := la.geo.Load()
	u := name - la.cfg.Base
	if u < 0 || u >= g.extent {
		return false
	}
	for i := range g.levels {
		lv := &g.levels[i]
		pos := 0
		for _, s := range lv.segs {
			if u >= s.start && u < s.start+s.size {
				return pos+(u-s.start) < lv.size
			}
			pos += s.size
		}
	}
	return false
}

// Draining reports whether any drain-only slot (laid out physically but
// beyond its level's allowed size after a shrink) is still held, as
// observed through held, which is called with global location indexes.
// A shrink has quiesced once Draining returns false; it stays false for
// a geometry with no drain-only slots.
func (la *LevelArray) Draining(held func(loc int) bool) bool {
	g := la.geo.Load()
	for i := range g.levels {
		lv := &g.levels[i]
		pos := 0
		for _, s := range lv.segs {
			for off := 0; off < s.size; off++ {
				if pos+off >= lv.size && held(la.cfg.Base+s.start+off) {
					return true
				}
			}
			pos += s.size
		}
	}
	return false
}

// Epoch returns the resize epoch of the current geometry: 0 at
// construction, incremented by every successful capacity change.
func (la *LevelArray) Epoch() uint64 { return la.geo.Load().epoch }

// Namespace returns the exclusive upper bound on names, Base + Size().
// It never decreases: a shrink keeps the drained tail addressable so
// outstanding holders can still release.
func (la *LevelArray) Namespace() int { return la.cfg.Base + la.geo.Load().extent }

// MaxConcurrency implements core.LongLived: the current capacity N.
func (la *LevelArray) MaxConcurrency() int { return la.geo.Load().n }

// Size returns the total number of physical slots laid out so far,
// Σ ceil((1+γ)N/2^i) < 2(1+γ)N for the largest N yet configured.
func (la *LevelArray) Size() int { return la.geo.Load().extent }

// Base returns the object's first global location.
func (la *LevelArray) Base() int { return la.cfg.Base }

// Levels returns the number of probe-able levels, floor(log2 N)+1 (deep
// levels drained empty by a shrink are not counted).
func (la *LevelArray) Levels() int {
	g := la.geo.Load()
	count := 0
	for i := range g.levels {
		if g.levels[i].size > 0 {
			count++
		}
	}
	return count
}

// LevelBounds returns the global location range [lo, hi) of level i's
// first physical segment, for tests and instrumentation. Before any
// resize every level is a single segment, so this is the whole level.
func (la *LevelArray) LevelBounds(i int) (lo, hi int) {
	s := la.geo.Load().levels[i].segs[0]
	return la.cfg.Base + s.start, la.cfg.Base + s.start + s.size
}

// MaxProbeSteps returns the worst-case TAS steps of one GetName call
// under the current geometry: all level probes plus (unless disabled)
// the full backup scan of the allowed region.
func (la *LevelArray) MaxProbeSteps() int {
	g := la.geo.Load()
	total := 0
	for i := range g.levels {
		if g.levels[i].size > 0 {
			total += la.cfg.Probes
		}
		if !la.cfg.DisableBackup {
			total += g.levels[i].size
		}
	}
	return total
}

var (
	_ core.Algorithm = (*LevelArray)(nil)
	_ core.LongLived = (*LevelArray)(nil)
)
