// Package levelarray implements the LevelArray long-lived loose-renaming
// algorithm of Alistarh, Kopinsky, Matveev and Shavit, "The LevelArray: A
// Fast, Practical Long-Lived Renaming Algorithm" (ICDCS 2014,
// arXiv:1405.5461), adapted to this repository's TAS/Env substrate.
//
// The one-shot ReBatching algorithms of internal/core place their batches so
// that *each process acquires once*; their analysis collapses under churn,
// where released slots reopen in already-drained batches. The LevelArray is
// built for the long-lived regime instead. The namespace is split into
// geometrically shrinking levels
//
//	size(i) = ceil((1+γ)·N / 2^i),  i = 0, 1, ..., floor(log2 N)
//
// for capacity N (maximum concurrently held names) and per-level slack
// γ > 0. A thread probes t uniformly random slots in level 0, then level 1,
// and so on, taking the first test-and-set it wins; if every level fails it
// falls back to a linear scan of the whole array. Releasing a name resets
// its slot (the driver's TryReset), after which the slot is immediately
// re-acquirable — there is no per-level occupancy bookkeeping to repair,
// which is what makes release-and-reacquire safe.
//
// Why the levels stay useful under churn: with at most N names held, level 0
// (size (1+γ)N) is at worst 1/(1+γ) full at every instant, so each level-0
// probe wins with probability at least γ/(1+γ) — a coin flip at γ = 1 —
// regardless of how many acquire/release cycles preceded it. Deeper levels
// only see the exponentially small fraction of threads whose level-0 probes
// all lost, so the expected probe count is a constant (≈ t/γ' summed over a
// geometric series) in steady state, not just in a fresh array. The paper
// proves the stronger statement that level i's occupancy stays O(N/2^i)
// w.h.p., giving O(1) expected and O(log log N) w.h.p. probes per acquire.
//
// Total space is Σ size(i) < 2(1+γ)N = O(N), the loose-renaming namespace.
package levelarray

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Config parameterizes a LevelArray.
type Config struct {
	// N is the capacity: the maximum number of names held at any instant for
	// which the probe analysis holds. Must be >= 1. Uniqueness and the
	// backup-scan termination argument tolerate any load up to Namespace().
	N int
	// Gamma is the per-level slack γ > 0: level i holds ceil((1+γ)N/2^i)
	// slots. Larger γ means fewer probes and more space. Defaults to 1.
	Gamma float64
	// Probes is the number of random probes per level before descending.
	// Defaults to 2; the paper's analysis works for any constant >= 1.
	Probes int
	// DisableBackup omits the final linear scan, making GetName return
	// NoName when every level probe loses (used by tests that measure pure
	// level behaviour).
	DisableBackup bool
	// Base is the first global TAS location of this object; the object
	// occupies locations [Base, Base+Size()).
	Base int
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("levelarray: N = %d, need >= 1", c.N)
	}
	if c.Gamma != 0 && (!(c.Gamma > 0) || math.IsInf(c.Gamma, 0)) {
		return fmt.Errorf("levelarray: Gamma = %v, need > 0", c.Gamma)
	}
	// The full array is < 2(1+γ)N slots; refuse configurations whose size
	// would overflow int (the float→int conversion would otherwise wrap and
	// panic deep inside make()).
	if c.Gamma > 0 && (1+c.Gamma)*float64(c.N) > 1<<40 {
		return fmt.Errorf("levelarray: (1+Gamma)*N = %v exceeds the 2^40-slot limit", (1+c.Gamma)*float64(c.N))
	}
	if c.Probes < 0 {
		return fmt.Errorf("levelarray: Probes = %d, need >= 0", c.Probes)
	}
	if c.Base < 0 {
		return fmt.Errorf("levelarray: Base = %d, need >= 0", c.Base)
	}
	return nil
}

// level is one geometric tier of the array.
type level struct {
	start int // offset of the level's first slot relative to Base
	size  int
}

// LevelArray is the long-lived namer. Like the core algorithms it is
// immutable after construction and shared by all processes of an execution;
// every bit of mutable state lives behind Env.TAS, so the same object drives
// both the concurrent library and the lock-step simulator.
type LevelArray struct {
	cfg    Config
	m      int // total slots
	levels []level
}

// New builds the level layout for cfg.
func New(cfg Config) (*LevelArray, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 1
	}
	if cfg.Probes == 0 {
		cfg.Probes = 2
	}
	la := &LevelArray{cfg: cfg}
	la.levels, la.m = buildLevels(cfg.N, cfg.Gamma)
	return la, nil
}

// Must is New for statically-valid configurations.
func Must(cfg Config) *LevelArray {
	la, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return la
}

// buildLevels materializes size(i) = ceil((1+γ)N/2^i), capped at
// floor(log2 N)+1 levels so the tail does not degenerate into many 1-slot
// levels (the ceiling keeps every level's size >= 1).
func buildLevels(n int, gamma float64) ([]level, int) {
	maxLevels := int(math.Floor(math.Log2(float64(n)))) + 1
	levels := make([]level, 0, maxLevels)
	next := 0
	for i := 0; i < maxLevels; i++ {
		size := int(math.Ceil((1 + gamma) * float64(n) / float64(int64(1)<<i)))
		levels = append(levels, level{start: next, size: size})
		next += size
	}
	return levels, next
}

// GetName probes cfg.Probes random slots per level, top level first, and
// returns the first location won; if every level loses it linearly scans
// the whole array (the long-lived analogue of ReBatching's backup phase).
// The returned name is a global location index in [Base, Base+Size()), or
// core.NoName. Interruptible environments are polled on level boundaries
// and every core.InterruptStride locations of the backup scan; an
// interrupt yields core.Cancelled before the next probe.
func (la *LevelArray) GetName(env core.Env) int {
	for _, lv := range la.levels {
		if core.Interrupted(env) {
			return core.Cancelled
		}
		for j := 0; j < la.cfg.Probes; j++ {
			x := env.Intn(lv.size)
			if env.TAS(la.cfg.Base + lv.start + x) {
				return la.cfg.Base + lv.start + x
			}
		}
	}
	if la.cfg.DisableBackup {
		return core.NoName
	}
	for u := 0; u < la.m; u++ {
		if u%core.InterruptStride == 0 && core.Interrupted(env) {
			return core.Cancelled
		}
		if env.TAS(la.cfg.Base + u) {
			return la.cfg.Base + u
		}
	}
	return core.NoName
}

// Namespace returns the exclusive upper bound on names, Base + Size().
func (la *LevelArray) Namespace() int { return la.cfg.Base + la.m }

// MaxConcurrency implements core.LongLived: the capacity N.
func (la *LevelArray) MaxConcurrency() int { return la.cfg.N }

// Size returns the total number of slots, Σ ceil((1+γ)N/2^i) < 2(1+γ)N.
func (la *LevelArray) Size() int { return la.m }

// Base returns the object's first global location.
func (la *LevelArray) Base() int { return la.cfg.Base }

// Levels returns the number of levels, floor(log2 N)+1.
func (la *LevelArray) Levels() int { return len(la.levels) }

// LevelBounds returns the global location range [lo, hi) of level i, for
// tests and instrumentation.
func (la *LevelArray) LevelBounds(i int) (lo, hi int) {
	lv := la.levels[i]
	return la.cfg.Base + lv.start, la.cfg.Base + lv.start + lv.size
}

// MaxProbeSteps returns the worst-case TAS steps of one GetName call: all
// level probes plus (unless disabled) the full backup scan.
func (la *LevelArray) MaxProbeSteps() int {
	total := len(la.levels) * la.cfg.Probes
	if !la.cfg.DisableBackup {
		total += la.m
	}
	return total
}

var (
	_ core.Algorithm = (*LevelArray)(nil)
	_ core.LongLived = (*LevelArray)(nil)
)
