package levelarray

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tas"
	"repro/internal/xrand"
)

// env is a single-threaded core.Env over a TAS space, for direct tests.
type env struct {
	space tas.Space
	rng   *xrand.Rand
}

func (e *env) TAS(loc int) bool { return e.space.TAS(loc) }
func (e *env) Intn(n int) int   { return e.rng.Intn(n) }

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0},
		{N: -3},
		{N: 8, Gamma: -0.5},
		{N: 8, Gamma: math.Inf(1)},
		{N: 8, Gamma: 1e16}, // (1+γ)N would overflow the slot count
		{N: 8, Probes: -1},
		{N: 8, Base: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
	if _, err := New(Config{N: 1}); err != nil {
		t.Errorf("New(N=1) rejected: %v", err)
	}
}

func TestLayout(t *testing.T) {
	const n, gamma = 64, 1.0
	la := Must(Config{N: n, Gamma: gamma})
	if got, want := la.Levels(), int(math.Floor(math.Log2(n)))+1; got != want {
		t.Fatalf("Levels() = %d, want %d", got, want)
	}
	next := 0
	total := 0
	prev := math.MaxInt
	for i := 0; i < la.Levels(); i++ {
		lo, hi := la.LevelBounds(i)
		if lo != next {
			t.Errorf("level %d starts at %d, want contiguous %d", i, lo, next)
		}
		size := hi - lo
		want := int(math.Ceil((1 + gamma) * float64(n) / float64(int64(1)<<i)))
		if size != want {
			t.Errorf("level %d size = %d, want %d", i, size, want)
		}
		if size > prev {
			t.Errorf("level %d size %d grew past previous %d", i, size, prev)
		}
		prev = size
		next = hi
		total += size
	}
	if total != la.Size() {
		t.Errorf("levels sum to %d, Size() = %d", total, la.Size())
	}
	if la.Size() >= int(2*(1+gamma)*n)+la.Levels() {
		t.Errorf("Size() = %d, want < 2(1+γ)N + rounding = %d", la.Size(), int(2*(1+gamma)*n)+la.Levels())
	}
	// The loose-renaming promise: space is O(N), here at least (1+γ)N and
	// comfortably above 2N so the backup scan can absorb full capacity.
	if la.Size() < 2*n {
		t.Errorf("Size() = %d, want >= 2N = %d", la.Size(), 2*n)
	}
	if la.Namespace() != la.Size() {
		t.Errorf("Namespace() = %d, want %d at Base 0", la.Namespace(), la.Size())
	}
}

func TestBaseOffsetsNames(t *testing.T) {
	la := Must(Config{N: 4, Base: 100})
	e := &env{space: tas.NewSparse(), rng: xrand.New(1)}
	u := la.GetName(e)
	if u < 100 || u >= la.Namespace() {
		t.Fatalf("name %d outside [100, %d)", u, la.Namespace())
	}
	if la.Namespace() != 100+la.Size() {
		t.Fatalf("Namespace() = %d, want Base+Size = %d", la.Namespace(), 100+la.Size())
	}
}

func TestDefaultsApplied(t *testing.T) {
	la := Must(Config{N: 16})
	// γ defaults to 1: level 0 has 2N slots.
	if lo, hi := la.LevelBounds(0); hi-lo != 32 {
		t.Errorf("default level-0 size = %d, want 32", hi-lo)
	}
	// Probes defaults to 2.
	if got, want := la.MaxProbeSteps(), la.Levels()*2+la.Size(); got != want {
		t.Errorf("MaxProbeSteps() = %d, want %d", got, want)
	}
}

// TestOneShotUnique runs the full one-shot workload through the lock-step
// simulator: N processes, each acquiring once, must end with N distinct
// names inside the namespace.
func TestOneShotUnique(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 256} {
		la := Must(Config{N: n})
		res, err := sim.Run(sim.Config{N: n, Algorithm: la, Seed: uint64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := res.UniqueNames(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestExpectedProbesConstant checks the headline claim in the regime the
// paper targets: full one-shot contention, where average steps per acquire
// must stay a small constant independent of N.
func TestExpectedProbesConstant(t *testing.T) {
	for _, n := range []int{1 << 8, 1 << 10, 1 << 12} {
		la := Must(Config{N: n})
		res, err := sim.Run(sim.Config{N: n, Algorithm: la, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.UniqueNames(); err != nil {
			t.Fatal(err)
		}
		avg := float64(res.TotalSteps) / float64(n)
		// Expected probes ≈ Σ t·(loss rate)^i; with γ=1, t=2 this is well
		// under 4. Allow generous slack for adversarial-free randomness.
		if avg > 6 {
			t.Errorf("n=%d: average steps %.2f, want O(1) <= 6", n, avg)
		}
	}
}

func TestDisableBackupReturnsNoName(t *testing.T) {
	la := Must(Config{N: 2, DisableBackup: true})
	s := tas.NewDense(la.Namespace())
	for i := 0; i < la.Namespace(); i++ {
		s.TAS(i)
	}
	e := &env{space: s, rng: xrand.New(3)}
	if u := la.GetName(e); u != core.NoName {
		t.Fatalf("GetName on a full array = %d, want NoName", u)
	}
}

// TestBackupScanFindsLastFreeSlot fills every slot but one and checks the
// linear-scan fallback recovers it, whichever slot it is.
func TestBackupScanFindsLastFreeSlot(t *testing.T) {
	la := Must(Config{N: 8})
	for hole := 0; hole < la.Namespace(); hole += 3 {
		s := tas.NewDense(la.Namespace())
		for i := 0; i < la.Namespace(); i++ {
			if i != hole {
				s.TAS(i)
			}
		}
		e := &env{space: s, rng: xrand.New(uint64(hole))}
		if u := la.GetName(e); u != hole {
			t.Fatalf("hole %d: GetName = %d", hole, u)
		}
	}
}

// TestReleaseReacquire exercises the defining long-lived property in a
// deterministic single-threaded setting: a released slot is immediately
// re-acquirable and uniqueness is never violated.
func TestReleaseReacquire(t *testing.T) {
	la := Must(Config{N: 4})
	s := tas.NewDense(la.Namespace())
	e := &env{space: s, rng: xrand.New(11)}
	held := map[int]bool{}
	for cycle := 0; cycle < 200; cycle++ {
		u := la.GetName(e)
		if u == core.NoName {
			t.Fatalf("cycle %d: exhausted with %d held", cycle, len(held))
		}
		if held[u] {
			t.Fatalf("cycle %d: name %d double-allocated", cycle, u)
		}
		held[u] = true
		if len(held) == 4 {
			// Release an arbitrary held name (map order is fine).
			for v := range held {
				if !s.TryReset(v) {
					t.Fatalf("TryReset(%d) lost on a held name", v)
				}
				delete(held, v)
				break
			}
		}
	}
}

func TestLongLivedInterface(t *testing.T) {
	la := Must(Config{N: 32})
	var ll core.LongLived = la
	if got := ll.MaxConcurrency(); got != 32 {
		t.Fatalf("MaxConcurrency() = %d, want 32", got)
	}
}
