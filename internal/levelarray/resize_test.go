package levelarray

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/tas"
	"repro/internal/xrand"
)

func TestResizeGrow(t *testing.T) {
	var ensured []int
	la := Must(Config{N: 16, EnsureSpace: func(ns int) error {
		ensured = append(ensured, ns)
		return nil
	}})
	oldSize := la.Size()
	if la.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", la.Epoch())
	}
	if err := la.Resize(64); err != nil {
		t.Fatal(err)
	}
	if got := la.MaxConcurrency(); got != 64 {
		t.Fatalf("MaxConcurrency() = %d, want 64", got)
	}
	if la.Epoch() != 1 {
		t.Fatalf("epoch = %d after one resize", la.Epoch())
	}
	if la.Size() <= oldSize {
		t.Fatalf("Size() = %d did not grow past %d", la.Size(), oldSize)
	}
	if len(ensured) != 1 || ensured[0] != la.Namespace() {
		t.Fatalf("EnsureSpace calls = %v, want [%d]", ensured, la.Namespace())
	}
	if got, want := la.Levels(), int(math.Floor(math.Log2(64)))+1; got != want {
		t.Fatalf("Levels() = %d, want %d", got, want)
	}
	// Allowed size per level matches the formula for the new N.
	g := la.geo.Load()
	for i, lv := range g.levels {
		if want := levelSize(64, 1, i); lv.size != want {
			t.Fatalf("level %d allowed size = %d, want %d", i, lv.size, want)
		}
	}
	// The grown array must still hand out 64 distinct names one-shot.
	s := tas.NewDense(la.Namespace())
	e := &env{space: s, rng: xrand.New(5)}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		u := la.GetName(e)
		if u < 0 || u >= la.Namespace() || seen[u] {
			t.Fatalf("acquire %d: name %d (seen=%v)", i, u, seen[u])
		}
		seen[u] = true
	}
}

func TestResizeShrinkDrains(t *testing.T) {
	la := Must(Config{N: 64})
	s := tas.NewDense(la.Namespace())
	e := &env{space: s, rng: xrand.New(9)}
	// Fill the entire array (well past capacity — uniqueness holds up to
	// Namespace()) so the shrunk allowed region is provably saturated.
	held := make([]int, 0, la.Namespace())
	for {
		u := la.GetName(e)
		if u == core.NoName {
			break
		}
		held = append(held, u)
	}
	if len(held) != la.Size() {
		t.Fatalf("filled %d slots, want %d", len(held), la.Size())
	}
	if err := la.Resize(8); err != nil {
		t.Fatal(err)
	}
	if got := la.MaxConcurrency(); got != 8 {
		t.Fatalf("MaxConcurrency() = %d, want 8", got)
	}
	if la.Namespace() < 64 {
		t.Fatalf("Namespace() shrank to %d with names outstanding", la.Namespace())
	}
	// With everything held the array has no free allowed slot.
	if u := la.GetName(e); u != core.NoName {
		t.Fatalf("GetName on a full shrunk array = %d, want NoName", u)
	}
	// Names above the new bound are now drain-only.
	if !la.Draining(s.IsSet) {
		t.Fatal("Draining() = false with the old population still held")
	}
	// Release everything; the drained region empties and new grants stay
	// inside the shrunk allowed region.
	for _, u := range held {
		s.TryReset(u)
	}
	if la.Draining(s.IsSet) {
		t.Fatal("Draining() = true after every holder released")
	}
	for i := 0; i < 8; i++ {
		u := la.GetName(e)
		if u == core.NoName {
			t.Fatalf("acquire %d exhausted after drain", i)
		}
		if !la.Allowed(u) {
			t.Fatalf("granted drain-only name %d after shrink", u)
		}
	}
	// Deep levels beyond floor(log2 8)+1 are fully drained.
	if got, want := la.Levels(), int(math.Floor(math.Log2(8)))+1; got != want {
		t.Fatalf("Levels() = %d after shrink, want %d", got, want)
	}
}

func TestResizeGrowReclaimsDrainedTail(t *testing.T) {
	la := Must(Config{N: 64})
	if err := la.Resize(8); err != nil {
		t.Fatal(err)
	}
	size := la.Size()
	if err := la.Resize(64); err != nil {
		t.Fatal(err)
	}
	// Growing back reuses the drained segments: no new slots appended.
	if la.Size() != size {
		t.Fatalf("Size() = %d after shrink+regrow, want unchanged %d", la.Size(), size)
	}
	g := la.geo.Load()
	for i, lv := range g.levels {
		if lv.size != lv.phys {
			t.Fatalf("level %d still drain-bounded (%d < %d) after regrow", i, lv.size, lv.phys)
		}
	}
}

func TestResizeValidationAndNoop(t *testing.T) {
	la := Must(Config{N: 16})
	if err := la.Resize(0); err == nil {
		t.Fatal("Resize(0) accepted")
	}
	if err := la.Resize(16); err != nil {
		t.Fatalf("no-op Resize failed: %v", err)
	}
	if la.Epoch() != 0 {
		t.Fatalf("no-op Resize bumped epoch to %d", la.Epoch())
	}
}

func TestAllowedOutsideExtent(t *testing.T) {
	la := Must(Config{N: 8, Base: 50})
	if la.Allowed(49) || la.Allowed(la.Namespace()) {
		t.Fatal("Allowed accepted out-of-range names")
	}
	if !la.Allowed(50) {
		t.Fatal("Allowed rejected the base slot")
	}
}

// TestResizeConcurrentAcquire races GetName against grow/shrink cycles
// over an Elastic space (grown via EnsureSpace, exactly as the driver
// wires it): every granted name must be unique and inside the namespace,
// and torn geometries would surface as panics or range violations.
func TestResizeConcurrentAcquire(t *testing.T) {
	space := tas.NewElastic(0)
	la := Must(Config{N: 32, EnsureSpace: func(ns int) error {
		space.Grow(ns)
		return nil
	}})
	space.Grow(la.Namespace())

	var mu sync.Mutex
	seen := map[int]int{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w + 1))
			e := &env{space: space, rng: rng}
			local := make([]int, 0, 8)
			for iter := 0; iter < 500; iter++ {
				u := la.GetName(e)
				if u == core.NoName {
					continue
				}
				if u < 0 || u >= la.Namespace() {
					t.Errorf("name %d outside namespace %d", u, la.Namespace())
					return
				}
				mu.Lock()
				seen[u]++
				if seen[u] > 1 {
					t.Errorf("name %d granted twice concurrently", u)
				}
				mu.Unlock()
				local = append(local, u)
				if len(local) >= 8 {
					// Ledger first, then the slot: once TryReset lands the
					// name is immediately re-grantable to another worker.
					for _, v := range local {
						mu.Lock()
						seen[v]--
						mu.Unlock()
						space.TryReset(v)
					}
					local = local[:0]
				}
			}
			for _, v := range local {
				mu.Lock()
				seen[v]--
				mu.Unlock()
				space.TryReset(v)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			n := 8 << (i % 4) // 8, 16, 32, 64
			if err := la.Resize(n); err != nil {
				t.Errorf("Resize(%d): %v", n, err)
				return
			}
		}
	}()
	wg.Wait()
}
