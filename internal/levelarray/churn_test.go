package levelarray

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/tas"
	"repro/internal/xrand"
)

// concurrentEnv is a per-goroutine core.Env over a shared atomic TAS space,
// mirroring the driver in the root renaming package.
type concurrentEnv struct {
	space tas.Space
	rng   *xrand.Rand
}

func (e *concurrentEnv) TAS(loc int) bool { return e.space.TAS(loc) }
func (e *concurrentEnv) Intn(n int) int   { return e.rng.Intn(n) }

// TestChurn10k is the acceptance workload: >= 10,000 acquire/release
// operations from 16 goroutines against one LevelArray, run under -race in
// CI. Holder flags are tracked in an independent atomic array so a double
// allocation is caught at the instant it happens, and every release goes
// through the atomic TryReset that the concurrent driver uses.
func TestChurn10k(t *testing.T) {
	const (
		capacity = 64
		workers  = 16
		cycles   = 640 // 16 * 640 = 10,240 acquire/release pairs
	)
	la := Must(Config{N: capacity})
	space := tas.NewDense(la.Namespace())
	holders := make([]atomic.Int32, la.Namespace())
	var violations atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e := &concurrentEnv{space: space, rng: xrand.NewStream(42, uint64(id))}
			for c := 0; c < cycles; c++ {
				u := la.GetName(e)
				if u == core.NoName {
					violations.Add(1)
					return
				}
				if holders[u].Add(1) != 1 {
					violations.Add(1)
				}
				holders[u].Add(-1)
				if !space.TryReset(u) {
					violations.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d safety violations across 10k churn operations", v)
	}
	// The array must be fully drained: every slot released.
	for i := 0; i < la.Namespace(); i++ {
		if space.IsSet(i) {
			t.Fatalf("slot %d still set after full drain", i)
		}
	}
	// And still serve a full generation of distinct names.
	e := &concurrentEnv{space: space, rng: xrand.NewStream(43, 0)}
	seen := make(map[int]bool)
	for i := 0; i < capacity; i++ {
		u := la.GetName(e)
		if u == core.NoName {
			t.Fatalf("post-churn acquire %d failed", i)
		}
		if seen[u] {
			t.Fatalf("post-churn duplicate name %d", u)
		}
		seen[u] = true
	}
}

// TestSteadyStateProbesStayConstant drives sustained churn at half load and
// checks the property that distinguishes LevelArray from the one-shot
// algorithms: probes per acquire do not degrade as churn accumulates.
func TestSteadyStateProbesStayConstant(t *testing.T) {
	const (
		capacity = 256
		pinned   = 128 // steady background load: half capacity
		workers  = 8
		cycles   = 500
	)
	la := Must(Config{N: capacity})
	inner := tas.NewDense(la.Namespace())
	counted := tas.NewCounting(inner) // probes are counted; releases go to inner
	pin := &concurrentEnv{space: counted, rng: xrand.NewStream(1, 999)}
	for i := 0; i < pinned; i++ {
		if u := la.GetName(pin); u == core.NoName {
			t.Fatalf("pinning name %d failed", i)
		}
	}
	opsBefore := counted.Ops()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e := &concurrentEnv{space: counted, rng: xrand.NewStream(2, uint64(id))}
			for c := 0; c < cycles; c++ {
				u := la.GetName(e)
				if u == core.NoName {
					t.Error("acquire failed under half load")
					return
				}
				if !inner.TryReset(u) {
					t.Errorf("release of %d lost", u)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	acquires := float64(workers * cycles)
	perAcquire := float64(counted.Ops()-opsBefore) / acquires
	// At half load with γ=1, level 0 is at most ~3/4 full transiently, so a
	// probe wins with probability >= 1/4 and expected probes stay under ~4;
	// 12 leaves ample room for scheduling noise while still catching the
	// one-shot algorithms' degradation (which reaches the 100s here).
	if perAcquire > 12 {
		t.Errorf("steady-state probes per acquire = %.1f, want O(1) <= 12", perAcquire)
	}
}
