package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 2, 2})
	if s.Mean != 2 || s.Std != 0 {
		t.Fatalf("unexpected summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {0.25, 17.5},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestFitRecoversLine(t *testing.T) {
	xs := []float64{4, 16, 256, 65536, 1 << 20}
	// y = 2 + 3*log2(x)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 3*math.Log2(x)
	}
	f := Fit(xs, ys, Log2)
	if math.Abs(f.Slope-3) > 1e-9 || math.Abs(f.Intercept-2) > 1e-9 || f.R2 < 1-1e-12 {
		t.Fatalf("fit = %+v, want slope 3 intercept 2 R2 1", f)
	}
}

func TestFitConstantY(t *testing.T) {
	f := Fit([]float64{1, 2, 3}, []float64{7, 7, 7}, Identity)
	if f.R2 != 1 {
		t.Fatalf("constant y R2 = %v, want 1", f.R2)
	}
}

func TestFitDegenerateX(t *testing.T) {
	f := Fit([]float64{5, 5, 5}, []float64{1, 2, 3}, Identity)
	if f.Slope != 0 || math.Abs(f.Intercept-2) > 1e-12 {
		t.Fatalf("degenerate fit %+v", f)
	}
}

func TestBestFitIdentifiesGrowth(t *testing.T) {
	xs := []float64{16, 64, 256, 1024, 4096, 16384, 65536, 1 << 18, 1 << 20}
	// A log log n signal with a small bounded wobble must be classified as
	// log log n over log n / linear alternatives.
	ys := make([]float64, len(xs))
	for i, x := range xs {
		wobble := 0.05 * math.Sin(float64(i))
		ys[i] = 1 + 2*LogLog2.F(x) + wobble
	}
	fits := BestFit(xs, ys)
	if fits[0].Transform != "log log n" {
		t.Fatalf("best fit = %v, want log log n; all: %v", fits[0], fits)
	}
}

func TestBestFitLogVsLogLog(t *testing.T) {
	xs := []float64{16, 64, 256, 1024, 4096, 16384, 65536, 1 << 18, 1 << 20}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Log2(x)
		_ = i
	}
	fits := BestFit(xs, ys)
	if fits[0].Transform != "log n" {
		t.Fatalf("best fit = %v, want log n", fits[0])
	}
}

func TestTransformsAtSmallInputs(t *testing.T) {
	// Transforms must be finite at n = 1 and 2 (clamped).
	for _, tr := range []Transform{Identity, Log2, LogLog2, LogLogSq} {
		for _, x := range []float64{1, 2} {
			if v := tr.F(x); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s(%v) = %v", tr.Name, x, v)
			}
		}
	}
}

func TestRatio(t *testing.T) {
	r := Ratio([]float64{2, 9, 5}, []float64{1, 3, 0})
	if r[0] != 2 || r[1] != 3 || !math.IsNaN(r[2]) {
		t.Fatalf("Ratio = %v", r)
	}
}

func TestFitResultString(t *testing.T) {
	f := FitResult{Transform: "log n", Slope: 1.5, Intercept: 0.25, R2: 0.9876}
	if got := f.String(); got != "y = 0.250 + 1.500·log n (R²=0.9876)" {
		t.Fatalf("String() = %q", got)
	}
}

// TestQuantileMonotoneProperty checks Quantile is monotone in q for random
// sorted samples.
func TestQuantileMonotoneProperty(t *testing.T) {
	property := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		sorted := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				sorted = append(sorted, v)
			}
		}
		if len(sorted) == 0 {
			return true
		}
		sortFloats(sorted)
		a, b := math.Mod(math.Abs(q1), 1), math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		return Quantile(sorted, a) <= Quantile(sorted, b)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
