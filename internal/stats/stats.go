// Package stats provides the small statistics toolbox used by the
// experiment harness: summaries, quantiles, and least-squares fits against
// the growth functions the paper's theorems claim (log n, log log n,
// (log log n)², linear).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual scalar description of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	P50  float64
	P95  float64
	P99  float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Quantile(sorted, 0.50)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// SummarizeInts is Summarize for integer samples.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Transform is a named x-axis transformation for growth-rate fits.
type Transform struct {
	Name string
	F    func(float64) float64
}

// The growth candidates the paper's claims distinguish between. Log2 and
// friends clamp at tiny positive inputs so that n = 1, 2 don't produce
// -Inf/NaN in fits.
var (
	Identity = Transform{Name: "n", F: func(x float64) float64 { return x }}
	Log2     = Transform{Name: "log n", F: func(x float64) float64 { return math.Log2(math.Max(x, 2)) }}
	LogLog2  = Transform{Name: "log log n", F: func(x float64) float64 {
		return math.Log2(math.Max(math.Log2(math.Max(x, 2)), 1))
	}}
	LogLogSq = Transform{Name: "(log log n)^2", F: func(x float64) float64 {
		l := math.Log2(math.Max(math.Log2(math.Max(x, 2)), 1))
		return l * l
	}}
)

// FitResult is a least-squares line y ≈ Intercept + Slope·T(x) with its
// coefficient of determination.
type FitResult struct {
	Transform string
	Slope     float64
	Intercept float64
	R2        float64
}

func (f FitResult) String() string {
	return fmt.Sprintf("y = %.3f + %.3f·%s (R²=%.4f)", f.Intercept, f.Slope, f.Transform, f.R2)
}

// Fit least-squares fits ys against t(xs). It panics unless len(xs) ==
// len(ys) >= 2.
func Fit(xs, ys []float64, t Transform) FitResult {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic(fmt.Sprintf("stats: Fit needs two aligned samples, got %d/%d", len(xs), len(ys)))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	tx := make([]float64, len(xs))
	for i, x := range xs {
		tx[i] = t.F(x)
		sx += tx[i]
		sy += ys[i]
		sxx += tx[i] * tx[i]
		sxy += tx[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	res := FitResult{Transform: t.Name}
	if denom == 0 {
		// Degenerate x: horizontal fit.
		res.Intercept = sy / n
	} else {
		res.Slope = (n*sxy - sx*sy) / denom
		res.Intercept = (sy - res.Slope*sx) / n
	}
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range ys {
		pred := res.Intercept + res.Slope*tx[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		// Constant y is perfectly explained by any horizontal line.
		res.R2 = 1
	} else {
		res.R2 = 1 - ssRes/ssTot
	}
	return res
}

// BestFit fits ys against every candidate transform and returns the fits
// sorted by descending R² (ties broken by candidate order).
func BestFit(xs, ys []float64, candidates ...Transform) []FitResult {
	if len(candidates) == 0 {
		candidates = []Transform{LogLog2, Log2, LogLogSq, Identity}
	}
	fits := make([]FitResult, len(candidates))
	for i, c := range candidates {
		fits[i] = Fit(xs, ys, c)
	}
	sort.SliceStable(fits, func(i, j int) bool { return fits[i].R2 > fits[j].R2 })
	return fits
}

// Ratio returns element-wise ys[i]/xs[i]; it panics on length mismatch and
// maps division by zero to NaN.
func Ratio(ys, xs []float64) []float64 {
	if len(xs) != len(ys) {
		panic("stats: Ratio length mismatch")
	}
	out := make([]float64, len(xs))
	for i := range xs {
		if xs[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = ys[i] / xs[i]
		}
	}
	return out
}
