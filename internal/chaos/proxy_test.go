package chaos

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"testing"
	"time"
)

// collectDecisions drives a plan through n chunks with a fixed wall
// offset, rendering each decision compactly.
func collectDecisions(pl *pipePlan, n int) string {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		d := pl.next(time.Duration(i)*10*time.Millisecond, 0, true)
		fmt.Fprintf(&b, "%v|%v|%v|%v|%v|%v|%.4f|%d;",
			d.blackhole, d.drop, d.reset, d.reorder, d.delay, d.corrupt, d.corruptPos, d.corruptMask)
	}
	return b.String()
}

// TestPlanDeterministic: the fault schedule is a pure function of
// (seed, conn, dir) — the reproducibility every chaos report's printed
// seed promises.
func TestPlanDeterministic(t *testing.T) {
	f := Faults{Drop: 0.1, Delay: 0.3, DelayMax: 20 * time.Millisecond, Reorder: 0.1, Reset: 0.05, Groups: 1}
	p1 := &Proxy{seed: 42, faults: f}
	p2 := &Proxy{seed: 42, faults: f}
	if a, b := collectDecisions(p1.pipePlan(3, 0), 256), collectDecisions(p2.pipePlan(3, 0), 256); a != b {
		t.Fatal("same (seed, conn, dir) produced different fault schedules")
	}
	if a, b := collectDecisions(p1.pipePlan(3, 0), 256), collectDecisions(p1.pipePlan(4, 0), 256); a == b {
		t.Fatal("different connections produced identical schedules")
	}
	if a, b := collectDecisions(p1.pipePlan(3, 0), 256), collectDecisions(p1.pipePlan(3, 1), 256); a == b {
		t.Fatal("different directions produced identical schedules")
	}
	p3 := &Proxy{seed: 43, faults: f}
	if a, b := collectDecisions(p1.pipePlan(3, 0), 256), collectDecisions(p3.pipePlan(3, 0), 256); a == b {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestPlanDrawOrderStable: toggling one fault's probability must not
// reshuffle the other faults' schedule — the draws happen
// unconditionally in fixed order.
func TestPlanDrawOrderStable(t *testing.T) {
	base := Faults{Drop: 0, Delay: 0.3, DelayMax: 20 * time.Millisecond, Groups: 1}
	withDrop := base
	withDrop.Drop = 0.0001 // nearly never fires, but the draw happens either way
	pa := &Proxy{seed: 7, faults: base}
	pb := &Proxy{seed: 7, faults: withDrop}
	a := collectDecisions(pa.pipePlan(0, 0), 512)
	b := collectDecisions(pb.pipePlan(0, 0), 512)
	if a != b {
		t.Fatal("enabling an (almost-never-firing) fault reshuffled the other faults' schedule")
	}
}

// echoServer accepts and echoes bytes back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					n, err := conn.Read(buf)
					if n > 0 {
						if _, werr := conn.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestProxyPassThrough(t *testing.T) {
	upstream := echoServer(t)
	p, err := NewProxy(upstream, 1, Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("through the quiet proxy")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echoed %q, want %q", buf, msg)
	}
	if st := p.Stats(); st.Conns != 1 || st.Chunks < 2 {
		t.Fatalf("stats %+v, want 1 conn and >= 2 chunks", st)
	}
}

// TestProxyPartitionBlackholes: during the window bytes vanish silently
// — the connection stays up, the response never comes. After the window
// a fresh exchange works on the same connection.
func TestProxyPartitionBlackholes(t *testing.T) {
	upstream := echoServer(t)
	p, err := NewProxy(upstream, 1, Faults{
		Partitions: []Window{{At: 0, For: 600 * time.Millisecond, Group: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("eaten")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
	if _, err := conn.Read(buf); !os.IsTimeout(err) {
		t.Fatalf("read during partition: err = %v, want timeout (black hole, not reset)", err)
	}

	time.Sleep(500 * time.Millisecond) // window over
	if _, err := conn.Write([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("read after partition healed: %v", err)
	}
	if string(buf[:n]) != "alive" {
		t.Fatalf("post-heal echo %q, want %q", buf[:n], "alive")
	}
	if st := p.Stats(); st.Blackholed == 0 {
		t.Fatal("no chunks counted as blackholed")
	}
}

// TestProxyCorruptFlipsBytes: with Corrupt at 1 every forwarded chunk is
// damaged — same length, different content — so an echo round trip comes
// back corrupted on both legs. This is the fault that must light up the
// binproto CRC gate; here we only prove the proxy actually flips bytes
// and keeps the framing (byte count) intact.
func TestProxyCorruptFlipsBytes(t *testing.T) {
	upstream := echoServer(t)
	p, err := NewProxy(upstream, 1, Faults{Corrupt: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("checksums exist for a reason")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range msg {
		if buf[i] != msg[i] {
			diff++
		}
	}
	// Each direction flips exactly one byte; the two flips can land on
	// different positions (2 differing bytes) or the same one (1, or 0
	// only if the masks cancel — seed 1 does not do that).
	if diff == 0 || diff > 2 {
		t.Fatalf("echo differs in %d bytes, want 1 or 2 (one flip per direction)", diff)
	}
	if st := p.Stats(); st.Corrupted != 2 {
		t.Fatalf("stats %+v, want Corrupted == 2 (one per direction)", st)
	}
}

// TestProxySeverConns: severing releases a client blocked on a response
// that will never come — the teardown path for wedged unbounded calls.
func TestProxySeverConns(t *testing.T) {
	upstream := echoServer(t)
	p, err := NewProxy(upstream, 1, Faults{Drop: 1}) // every chunk dropped
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("dropped"))
	done := make(chan error, 1)
	go func() {
		_, err := conn.Read(make([]byte, 8))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("read returned early (%v); drop-all should hang it", err)
	case <-time.After(300 * time.Millisecond):
	}
	p.SeverConns()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("SeverConns did not release the blocked read")
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
