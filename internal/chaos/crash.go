package chaos

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ServerConfig describes how to run one renamed process under the
// harness. Addresses are FIXED (the caller picks free ports once) so
// clients and the proxy survive restarts without re-resolving.
type ServerConfig struct {
	// Binary is the path to a built renamed binary.
	Binary string
	// DataDir is the -data-dir; crash scenarios restart against the same
	// one, which is the whole point.
	DataDir string
	// HTTPAddr and BinAddr are the fixed -addr / -listen-bin listen
	// addresses. BinAddr empty disables the binary listener.
	HTTPAddr, BinAddr string
	// TTL is the server's default lease TTL.
	TTL time.Duration
	// Capacity bounds live leases; 0 uses the server default.
	Capacity int
	// Resizable builds the server's namer elastic (-resizable): the
	// /v1/resize endpoint and the binary TResize op retarget Capacity
	// online. Resize scenarios need it; everything else leaves the
	// geometry fixed.
	Resizable bool
	// Fsync is the journal policy. Crash scenarios use "always": a reply
	// the client saw is then durable by construction, so the checker may
	// treat every acknowledged token as surviving the kill.
	Fsync string
	// Stdout, when set, receives a copy of the process output (both
	// streams), prefixed per line — the flight recorder for failed runs.
	Stdout io.Writer
}

// Server manages one renamed process: start (waiting for its serving
// banners), SIGKILL, graceful stop, restart. Safe for one controlling
// goroutine plus observers of Starts/Kills.
type Server struct {
	cfg ServerConfig

	mu      sync.Mutex
	cmd     *exec.Cmd
	waitErr chan error

	starts atomic.Int64
	kills  atomic.Int64
}

// StartServer launches the process and blocks until it is serving (all
// configured listeners announced) or it exits early.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.Fsync == "" {
		cfg.Fsync = "always"
	}
	s := &Server{cfg: cfg}
	if err := s.Start(); err != nil {
		return nil, err
	}
	return s, nil
}

// Starts and Kills count process launches and SIGKILLs delivered.
func (s *Server) Starts() int64 { return s.starts.Load() }
func (s *Server) Kills() int64  { return s.kills.Load() }

// Start launches (or relaunches) the process against the same data
// directory and waits until every configured listener has printed its
// serving banner.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cmd != nil {
		return fmt.Errorf("chaos: server already running")
	}
	args := []string{
		"-addr", s.cfg.HTTPAddr,
		"-data-dir", s.cfg.DataDir,
		"-fsync", s.cfg.Fsync,
		"-ttl", s.cfg.TTL.String(),
		"-drain", "2s",
	}
	if s.cfg.BinAddr != "" {
		args = append(args, "-listen-bin", s.cfg.BinAddr)
	}
	if s.cfg.Capacity > 0 {
		args = append(args, "-capacity", fmt.Sprint(s.cfg.Capacity))
	}
	if s.cfg.Resizable {
		args = append(args, "-resizable")
	}
	cmd := exec.Command(s.cfg.Binary, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = cmd.Stdout // interleave; banner scanning reads both
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: start %s: %w", s.cfg.Binary, err)
	}

	// Scan output until every listener banner has appeared, then keep
	// draining (into cfg.Stdout when set) so the child never blocks on a
	// full pipe.
	want := 1
	if s.cfg.BinAddr != "" {
		want = 2
	}
	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 64<<10), 64<<10)
		seen := 0
		signaled := false
		for sc.Scan() {
			line := sc.Text()
			if s.cfg.Stdout != nil {
				fmt.Fprintf(s.cfg.Stdout, "[renamed] %s\n", line)
			}
			if !signaled && strings.Contains(line, "renamed: serving") && strings.Contains(line, " on ") {
				if seen++; seen == want {
					signaled = true
					ready <- nil
				}
			}
		}
		if !signaled {
			ready <- fmt.Errorf("chaos: renamed exited before serving")
		}
	}()

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()

	select {
	case err := <-ready:
		if err != nil {
			<-waitErr
			return err
		}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		<-waitErr
		return fmt.Errorf("chaos: renamed did not start serving within 10s")
	}
	s.cmd = cmd
	s.waitErr = waitErr
	s.starts.Add(1)
	return nil
}

// Kill SIGKILLs the process — no drain, no snapshot, the crash the
// journal exists for — and reaps it.
func (s *Server) Kill() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cmd == nil {
		return nil
	}
	s.kills.Add(1)
	s.cmd.Process.Kill()
	<-s.waitErr
	s.cmd, s.waitErr = nil, nil
	return nil
}

// Stop is the graceful shutdown: SIGTERM, wait for the drain and the
// final snapshot (bounded), escalating to SIGKILL if the process hangs.
// After a clean Stop the journal is empty and the snapshot is the whole
// durable state — the strongest post-run audit.
func (s *Server) Stop(timeout time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cmd == nil {
		return nil
	}
	s.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-s.waitErr:
		s.cmd, s.waitErr = nil, nil
		if err != nil && !isSignalExit(err) {
			return err
		}
		return nil
	case <-time.After(timeout):
		s.cmd.Process.Kill()
		<-s.waitErr
		s.cmd, s.waitErr = nil, nil
		return fmt.Errorf("chaos: graceful stop timed out after %v; killed", timeout)
	}
}

// isSignalExit reports an exit caused by the signal we sent — renamed
// exits 0 on SIGTERM after a clean drain, but a kill during the drain
// window surfaces as a signal exit, which the caller already knows.
func isSignalExit(err error) bool {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok {
			return ws.Signaled()
		}
	}
	return false
}

// CrashSchedule shapes the kill/restart cadence.
type CrashSchedule struct {
	// MinUp/MaxUp bound how long the process lives between kills.
	MinUp, MaxUp time.Duration
	// MinDown/MaxDown bound how long it stays dead. Downtime must stay
	// well under the lease TTL or every lease legitimately expires.
	MinDown, MaxDown time.Duration
}

// CrashLoop kills and restarts the server on a seeded schedule until
// ctx is done, then guarantees the server is RUNNING before returning —
// teardown always meets a live process. onDown/onUp (optional) observe
// each transition with its wall-clock instant; the checker registers
// these as fault windows.
//
//lint:wallclock fault windows are stamped with the checker's real clock; crash timing itself comes from the seeded rng
func (s *Server) CrashLoop(ctx context.Context, seed uint64, cs CrashSchedule, onDown, onUp func(t time.Time)) error {
	r := rng(seed, "crash")
	for {
		up := durBetween(r, cs.MinUp, cs.MaxUp)
		select {
		case <-ctx.Done():
			return s.ensureUp()
		case <-time.After(up):
		}
		if err := s.Kill(); err != nil {
			return err
		}
		if onDown != nil {
			onDown(time.Now())
		}
		down := durBetween(r, cs.MinDown, cs.MaxDown)
		// The down sleep is NOT cancellable: a kill already happened, so
		// the restart must too.
		time.Sleep(down)
		if err := s.restartWithRetry(); err != nil {
			return err
		}
		if onUp != nil {
			onUp(time.Now())
		}
	}
}

// ensureUp restarts the server if a cancellation raced the kill window.
func (s *Server) ensureUp() error {
	s.mu.Lock()
	running := s.cmd != nil
	s.mu.Unlock()
	if running {
		return nil
	}
	return s.restartWithRetry()
}

// restartWithRetry absorbs transient bind races (the dead process's
// listener may take a beat to fully release on a loaded machine).
func (s *Server) restartWithRetry() error {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if err = s.Start(); err == nil {
			return nil
		}
		time.Sleep(time.Duration(attempt+1) * 200 * time.Millisecond)
	}
	return fmt.Errorf("chaos: restart failed after retries: %w", err)
}
