package chaos

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults configures the proxy's per-chunk misbehavior. A "chunk" is one
// read from the source socket — write-flush granularity, since both the
// binary transport and net/http write a request (or response) as one
// buffered flush. Probabilities are evaluated per chunk against the
// connection's seeded stream; zero values mean the fault is off.
type Faults struct {
	// Drop discards the chunk entirely. Mid-stream this desyncs the
	// protocol framing, which is the point: the peer must detect the
	// corruption, drop the connection, and recover by redialing.
	Drop float64
	// Delay holds the chunk for a uniform [0, DelayMax] pause before
	// forwarding. DelayMax defaults to 50ms when Delay is set.
	Delay    float64
	DelayMax time.Duration
	// Reorder holds the chunk back and forwards it AFTER the next chunk
	// on the same direction — adjacent-write transposition.
	Reorder float64
	// Reset forwards a prefix of the chunk (half of it — mid-frame) and
	// then severs the connection, both directions.
	Reset float64
	// Corrupt XOR-flips one byte of the chunk before forwarding it. The
	// framing stays intact — length prefixes and HTTP headers still
	// parse — but the content is damaged, which is the fault Drop and
	// Reset cannot produce: it probes the payload CRC gate (binproto
	// ErrChecksum) rather than the framing discipline. A run where the
	// proxy corrupted chunks but no endpoint reported an error means
	// damaged data was accepted silently — the checker fails it.
	Corrupt float64
	// ByteRate throttles each direction to roughly this many bytes per
	// second. 0 = unthrottled.
	ByteRate int
	// Groups is how many client groups partitions select over;
	// connections are assigned round-robin by accept order. 0 or 1 means
	// every connection is in group 0.
	Groups int
	// Partitions are the black-hole windows, relative to proxy start.
	Partitions []Window
}

// Window is one partition: from At for For, connections in Group (−1 =
// all groups) are black-holed — bytes in BOTH directions are read and
// silently discarded, the connection stays open. A request sent into
// the window is gone, and so is its response: the client sees a call
// that never completes, which is precisely the failure mode an
// unbounded client cannot survive.
type Window struct {
	At    time.Duration
	For   time.Duration
	Group int
}

// ProxyStats counts what the proxy did. All fields are cumulative.
type ProxyStats struct {
	Conns      int64
	Chunks     int64 // chunks forwarded intact
	Bytes      int64
	Dropped    int64
	Delayed    int64
	Reordered  int64
	Resets     int64
	Corrupted  int64 // chunks forwarded with one byte flipped
	Blackholed int64 // chunks eaten by a partition window
}

// Proxy is a fault-injecting TCP relay in front of one upstream
// address. It is transport-agnostic: HTTP and the binary protocol are
// both just byte streams to it.
type Proxy struct {
	target string
	seed   uint64
	faults Faults
	ln     net.Listener
	start  time.Time

	// active gates every probabilistic fault; partitions are windows and
	// gate themselves. The scenario flips it off for the heal phase.
	active atomic.Bool

	mu       sync.Mutex
	conns    map[net.Conn]struct{} // client-side conns, for SeverConns
	upstream map[net.Conn]struct{}
	nextConn int
	closed   bool

	conNs      atomic.Int64
	chunks     atomic.Int64
	bytes      atomic.Int64
	dropped    atomic.Int64
	delayed    atomic.Int64
	reordered  atomic.Int64
	resets     atomic.Int64
	corrupted  atomic.Int64
	blackholed atomic.Int64
}

// NewProxy listens on 127.0.0.1 (an ephemeral port) and relays every
// accepted connection to target, applying faults on both directions.
// The fault schedule for connection i is a pure function of (seed, i).
func NewProxy(target string, seed uint64, faults Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	if faults.Delay > 0 && faults.DelayMax == 0 {
		faults.DelayMax = 50 * time.Millisecond
	}
	if faults.Groups < 1 {
		faults.Groups = 1
	}
	p := &Proxy{
		target: target,
		seed:   seed,
		faults: faults,
		ln:     ln,
		//lint:wallclock the proxy shapes real traffic in real time; elapsed-since-start only phases fault groups, decisions stay seeded
		start:    time.Now(),
		conns:    map[net.Conn]struct{}{},
		upstream: map[net.Conn]struct{}{},
	}
	p.active.Store(true)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address, host:port.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetActive toggles every probabilistic fault at once; partition windows
// expire on their own. The scenario runner turns faults off for the
// heal phase so sessions can prove they recover.
func (p *Proxy) SetActive(on bool) { p.active.Store(on) }

// SeverConns closes every connection currently relayed, both sides,
// while the listener keeps accepting. A client wedged on a response the
// proxy already discarded is released by this — teardown runs it before
// closing sessions so even a deliberately unbounded client can exit.
func (p *Proxy) SeverConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
	}
	for c := range p.upstream {
		c.Close()
	}
}

// Close stops accepting and severs everything.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.SeverConns()
	return err
}

// Stats snapshots the counters.
func (p *Proxy) Stats() ProxyStats {
	return ProxyStats{
		Conns:      p.conNs.Load(),
		Chunks:     p.chunks.Load(),
		Bytes:      p.bytes.Load(),
		Dropped:    p.dropped.Load(),
		Delayed:    p.delayed.Load(),
		Reordered:  p.reordered.Load(),
		Resets:     p.resets.Load(),
		Corrupted:  p.corrupted.Load(),
		Blackholed: p.blackholed.Load(),
	}
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			return
		}
		idx := p.nextConn
		p.nextConn++
		p.conns[client] = struct{}{}
		p.mu.Unlock()
		p.conNs.Add(1)
		go p.relay(client, idx)
	}
}

// relay dials upstream and pumps both directions, each with its own
// deterministic fault stream.
func (p *Proxy) relay(client net.Conn, idx int) {
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		// Upstream down (a crash window): refuse by closing — the client
		// sees a reset, exactly what a dead server produces.
		client.Close()
		p.forget(client, nil)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		client.Close()
		upstream.Close()
		return
	}
	p.upstream[upstream] = struct{}{}
	p.mu.Unlock()

	group := idx % p.faults.Groups
	var wg sync.WaitGroup
	wg.Add(2)
	sever := func() { client.Close(); upstream.Close() }
	go func() {
		defer wg.Done()
		p.pump(client, upstream, p.pipePlan(idx, 0), group, sever)
	}()
	go func() {
		defer wg.Done()
		p.pump(upstream, client, p.pipePlan(idx, 1), group, sever)
	}()
	wg.Wait()
	p.forget(client, upstream)
}

func (p *Proxy) forget(client, upstream net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.conns, client)
	if upstream != nil {
		delete(p.upstream, upstream)
	}
}

// decision is one chunk's fate, drawn deterministically.
type decision struct {
	blackhole   bool
	drop        bool
	reset       bool
	reorder     bool
	corrupt     bool
	corruptPos  float64 // fraction of the chunk length, [0,1)
	corruptMask byte    // nonzero XOR mask for the flipped byte
	delay       time.Duration
}

// pipePlan is the deterministic decision stream for one direction of
// one connection: given the chunk index's draw order is fixed, the
// schedule is a pure function of (seed, conn, dir).
type pipePlan struct {
	r *rand.Rand
	f Faults
}

func (p *Proxy) pipePlan(conn, dir int) *pipePlan {
	return &pipePlan{
		r: rng(p.seed, fmt.Sprintf("proxy/%d/%d", conn, dir)),
		f: p.faults,
	}
}

// next draws the fate of one chunk. The draws happen unconditionally
// and in fixed order so the stream stays aligned regardless of which
// faults are enabled — flipping one probability never reshuffles the
// others' schedule. sinceStart and active are the only external inputs.
func (pl *pipePlan) next(sinceStart time.Duration, group int, active bool) decision {
	var d decision
	dropDraw := pl.r.Float64()
	resetDraw := pl.r.Float64()
	reorderDraw := pl.r.Float64()
	delayDraw := pl.r.Float64()
	delayAmt := pl.r.Float64()
	corruptDraw := pl.r.Float64()
	corruptPos := pl.r.Float64()
	corruptMask := byte(1 + pl.r.IntN(255)) // never 0: a flip must flip
	for _, w := range pl.f.Partitions {
		if (w.Group == -1 || w.Group == group) && sinceStart >= w.At && sinceStart < w.At+w.For {
			d.blackhole = true
			return d
		}
	}
	if !active {
		return d
	}
	if dropDraw < pl.f.Drop {
		d.drop = true
		return d
	}
	if resetDraw < pl.f.Reset {
		d.reset = true
		return d
	}
	d.reorder = reorderDraw < pl.f.Reorder
	if corruptDraw < pl.f.Corrupt {
		d.corrupt = true
		d.corruptPos = corruptPos
		d.corruptMask = corruptMask
	}
	if delayDraw < pl.f.Delay {
		d.delay = time.Duration(delayAmt * float64(pl.f.DelayMax))
	}
	return d
}

// pump relays src→dst chunk by chunk through the plan. held is the
// reorder buffer: a held chunk is written after the one that follows
// it (or discarded if the stream ends first — a tail byte lost in
// flight).
//
//lint:wallclock pacing (throttle windows, delivery delays) is real-time behavior; every decision that shapes the schedule comes from the seeded plan
func (p *Proxy) pump(src, dst net.Conn, plan *pipePlan, group int, sever func()) {
	defer func() {
		// Half-close propagation: a finished direction closes both ends;
		// the lease protocols never half-close, so symmetric teardown is
		// simpler and right.
		sever()
	}()
	buf := make([]byte, 32<<10)
	var held []byte
	throttleStart := time.Now()
	var throttled int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			d := plan.next(time.Since(p.start), group, p.active.Load())
			chunk := buf[:n]
			switch {
			case d.blackhole:
				p.blackholed.Add(1)
			case d.drop:
				p.dropped.Add(1)
			case d.reset:
				p.resets.Add(1)
				dst.Write(chunk[:n/2])
				return
			default:
				if d.corrupt {
					// One byte, XOR-flipped in place. Position scales with
					// the chunk so small heartbeat frames and large batch
					// responses are both covered; Float64 is in [0,1) so
					// the index stays in range.
					chunk[int(d.corruptPos*float64(n))] ^= d.corruptMask
					p.corrupted.Add(1)
				}
				if d.delay > 0 {
					p.delayed.Add(1)
					time.Sleep(d.delay)
				}
				if p.faults.ByteRate > 0 {
					throttled += int64(n)
					due := throttleStart.Add(time.Duration(throttled * int64(time.Second) / int64(p.faults.ByteRate)))
					if ahead := time.Until(due); ahead > 0 {
						time.Sleep(ahead)
					}
				}
				if d.reorder && held == nil {
					held = append([]byte(nil), chunk...)
					p.reordered.Add(1)
					break
				}
				if _, err := dst.Write(chunk); err != nil {
					return
				}
				p.chunks.Add(1)
				p.bytes.Add(int64(n))
				if held != nil {
					if _, err := dst.Write(held); err != nil {
						return
					}
					p.chunks.Add(1)
					p.bytes.Add(int64(len(held)))
					held = nil
				}
			}
		}
		if err != nil {
			return
		}
	}
}
