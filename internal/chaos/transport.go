package chaos

import (
	"context"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
	"repro/leaseclient"
)

// TransportFaults configures call-level misbehavior: whole protocol
// calls duplicated or deferred, above any wire-level corruption the
// proxy injects. Duplication targets renew and release only — the
// operations whose token guards make them idempotent by contract. A
// duplicated ACQUIRE would mint a real server-side lease no session
// tracks; that is a client bug, not a fault, so the wrapper never
// does it.
type TransportFaults struct {
	// DupRenew re-sends a RenewBatch before returning the second
	// result — the retransmit-after-lost-response pattern.
	DupRenew float64
	// DupRelease re-sends a ReleaseBatch the same way. The second copy
	// must come back all unknown_name/expired, never a fresh success.
	DupRelease float64
	// Defer holds a call for a uniform [0, DeferMax] pause before
	// issuing it, shuffling this session's calls against every other
	// session's — cross-session reordering at the call level.
	Defer    float64
	DeferMax time.Duration
}

// TransportStats counts injected call-level faults.
type TransportStats struct {
	DupRenews   int64
	DupReleases int64
	Deferred    int64
}

// FaultTransport wraps a real transport with TransportFaults. All
// decisions come from one seeded stream (guarded by a mutex — the
// Session serializes its calls anyway, the lock is for Acquire racing
// a heartbeat).
type FaultTransport struct {
	inner  leaseclient.Transport
	f      TransportFaults
	active *atomic.Bool

	mu sync.Mutex
	r  *rand.Rand

	dupRenews   atomic.Int64
	dupReleases atomic.Int64
	deferred    atomic.Int64
}

// WrapTransport layers call-level faults over inner. active gates the
// faults (nil means always on); the scenario shares one flag between
// the proxy and every wrapper so the heal phase silences everything at
// once. The decision stream is a pure function of (seed, label).
func WrapTransport(inner leaseclient.Transport, seed uint64, label string, f TransportFaults, active *atomic.Bool) *FaultTransport {
	if f.Defer > 0 && f.DeferMax == 0 {
		f.DeferMax = 50 * time.Millisecond
	}
	return &FaultTransport{inner: inner, f: f, active: active, r: rng(seed, "transport/"+label)}
}

// Stats snapshots the fault counters.
func (t *FaultTransport) Stats() TransportStats {
	return TransportStats{
		DupRenews:   t.dupRenews.Load(),
		DupReleases: t.dupReleases.Load(),
		Deferred:    t.deferred.Load(),
	}
}

// draw makes this call's decisions in fixed order.
func (t *FaultTransport) draw() (dup bool, dupRelease bool, wait time.Duration) {
	t.mu.Lock()
	dupDraw := t.r.Float64()
	dupRelDraw := t.r.Float64()
	deferDraw := t.r.Float64()
	amtDraw := t.r.Float64()
	t.mu.Unlock()
	if t.active != nil && !t.active.Load() {
		return false, false, 0
	}
	if deferDraw < t.f.Defer {
		wait = time.Duration(amtDraw * float64(t.f.DeferMax))
	}
	return dupDraw < t.f.DupRenew, dupRelDraw < t.f.DupRelease, wait
}

func (t *FaultTransport) pause(ctx context.Context, wait time.Duration) {
	if wait <= 0 {
		return
	}
	t.deferred.Add(1)
	select {
	case <-ctx.Done():
	case <-time.After(wait):
	}
}

func (t *FaultTransport) Acquire(ctx context.Context, req *wire.AcquireRequest) (wire.Lease, error) {
	_, _, wait := t.draw()
	t.pause(ctx, wait)
	return t.inner.Acquire(ctx, req)
}

func (t *FaultTransport) AcquireBatch(ctx context.Context, req *wire.AcquireBatchRequest) (wire.Leases, error) {
	_, _, wait := t.draw()
	t.pause(ctx, wait)
	return t.inner.AcquireBatch(ctx, req)
}

func (t *FaultTransport) Renew(ctx context.Context, req *wire.RenewRequest) (wire.Lease, error) {
	dup, _, wait := t.draw()
	t.pause(ctx, wait)
	if dup {
		t.dupRenews.Add(1)
		t.inner.Renew(ctx, req)
	}
	return t.inner.Renew(ctx, req)
}

func (t *FaultTransport) RenewBatch(ctx context.Context, req *wire.RenewBatchRequest) (wire.BatchResults, error) {
	dup, _, wait := t.draw()
	t.pause(ctx, wait)
	if dup {
		t.dupRenews.Add(1)
		// First copy's result is discarded — the retransmit case where
		// the response was lost. The SECOND response is what the session
		// acts on, so the server must answer a duplicate identically.
		t.inner.RenewBatch(ctx, req)
	}
	return t.inner.RenewBatch(ctx, req)
}

func (t *FaultTransport) Release(ctx context.Context, req *wire.ReleaseRequest) error {
	_, dup, wait := t.draw()
	t.pause(ctx, wait)
	err := t.inner.Release(ctx, req)
	if dup && err == nil {
		t.dupReleases.Add(1)
		// Replay AFTER a successful release: the duplicate must be
		// refused (unknown/expired), and the session must not see it —
		// the first (successful) verdict is returned.
		t.inner.Release(ctx, req)
	}
	return err
}

func (t *FaultTransport) ReleaseBatch(ctx context.Context, req *wire.ReleaseBatchRequest) (wire.BatchResults, error) {
	_, dup, wait := t.draw()
	t.pause(ctx, wait)
	res, err := t.inner.ReleaseBatch(ctx, req)
	if dup && err == nil {
		t.dupReleases.Add(1)
		t.inner.ReleaseBatch(ctx, req)
	}
	return res, err
}

func (t *FaultTransport) Ping(ctx context.Context) error { return t.inner.Ping(ctx) }

func (t *FaultTransport) Close() error { return t.inner.Close() }
