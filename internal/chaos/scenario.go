package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
	"repro/lease/persist"
	"repro/leaseclient"
)

// Scenario is one named, composed adversary: which faults run, how many
// sessions push against them, and for how sharp a TTL.
type Scenario struct {
	Name        string
	Description string

	// Clients is how many concurrent sessions run; LeasesEach is the
	// standing lease population per session.
	Clients    int
	LeasesEach int
	// TTL is the lease TTL requested by every session (and configured as
	// the server default). Heartbeats run at TTL/3.
	TTL time.Duration

	// Proxy is the wire-level fault mix; Transport the call-level one.
	Proxy     Faults
	Transport TransportFaults
	// Crash, when set, runs the kill/restart scheduler.
	Crash *CrashSchedule
	// Skews are per-client clock offsets, assigned round-robin. Empty
	// means every client keeps real time.
	Skews []time.Duration
	// PartitionEvery/PartitionFor generate black-hole windows across the
	// fault phase, alternating client groups; zero disables.
	PartitionEvery, PartitionFor time.Duration
	// Churn is the per-tick probability (per client, ~4 ticks/sec) of
	// releasing one lease and acquiring a fresh one.
	Churn float64
	// Resize, when set, plays an operator retargeting the namespace
	// online while sessions churn against it: the server starts at
	// Resize.Base (-capacity, -resizable), cycles through Resize.Steps
	// during the fault phase, and returns to Base when the heal phase
	// begins. Every applied retarget feeds the checker's capacity
	// timeline (invariant 6).
	Resize *ResizePlan
}

// ResizePlan shapes the resize adversary.
type ResizePlan struct {
	// Base is the capacity the server boots with and returns to for the
	// heal phase.
	Base int
	// Steps are the target capacities cycled through, in order, during
	// the fault phase. Steps below the standing lease population force
	// shrink-below-live: holders drain out while fresh acquires bounce
	// off the cap.
	Steps []int
	// Every is the nominal interval between retargets; each wait adds
	// seeded jitter of up to a quarter interval.
	Every time.Duration
}

// Options configures one run of a scenario.
type Options struct {
	// Seed parameterizes every random stream in the run. The same seed
	// reproduces the same fault schedule.
	Seed uint64
	// Duration is the whole run, heal phase included.
	Duration time.Duration
	// Binary is the renamed binary to run.
	Binary string
	// WorkDir holds the data directory; it must exist. A temp dir.
	WorkDir string
	// Transport selects the wire under test: "bin" (default) or "http".
	Transport string
	// Inject re-introduces a known-fixed bug so the harness can prove it
	// still catches it. Known values:
	//   no-call-timeout — sessions run with CallTimeout disabled, the
	//     pre-fix behavior where a black-holed call wedges forever.
	Inject string
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Report is the machine-readable outcome of one run.
type Report struct {
	Scenario    string         `json:"scenario"`
	Description string         `json:"description"`
	Seed        uint64         `json:"seed"`
	Transport   string         `json:"transport"`
	Inject      string         `json:"inject,omitempty"`
	Start       time.Time      `json:"start"`
	Duration    time.Duration  `json:"duration_ns"`
	Clients     int            `json:"clients"`
	Checker     CheckerStats   `json:"checker"`
	Proxy       ProxyStats     `json:"proxy"`
	CallFaults  TransportStats `json:"call_faults"`
	// TransportErrors aggregates every session's failed round trips —
	// the evidence that injected corruption was DETECTED, not absorbed.
	TransportErrors int64           `json:"transport_errors"`
	Crashes         int64           `json:"crashes"`
	Resizes         int64           `json:"resizes,omitempty"`
	Violations      []Violation     `json:"violations"`
	AuditLive       int             `json:"audit_live_leases"`
	AuditToken      uint64          `json:"audit_max_token"`
	AuditTorn       int64           `json:"audit_torn_bytes"`
	ServerVars      json.RawMessage `json:"server_vars,omitempty"`
	Pass            bool            `json:"pass"`
}

// Print renders the human summary.
func (r *Report) Print(w io.Writer) {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(w, "chaos %s: %s (seed %d, %s, %v, %d clients)\n",
		r.Scenario, status, r.Seed, r.Transport, r.Duration.Round(time.Millisecond), r.Clients)
	fmt.Fprintf(w, "  leases: %d acquired, %d released, %d lost, %d names, max token %d\n",
		r.Checker.Acquired, r.Checker.Released, r.Checker.Lost, r.Checker.Names, r.Checker.MaxToken)
	fmt.Fprintf(w, "  proxy: %d conns, %d chunks, %d dropped, %d delayed, %d reordered, %d resets, %d corrupted, %d blackholed\n",
		r.Proxy.Conns, r.Proxy.Chunks, r.Proxy.Dropped, r.Proxy.Delayed, r.Proxy.Reordered, r.Proxy.Resets, r.Proxy.Corrupted, r.Proxy.Blackholed)
	if r.Proxy.Corrupted > 0 {
		fmt.Fprintf(w, "  corruption: %d chunks damaged, %d transport errors observed\n",
			r.Proxy.Corrupted, r.TransportErrors)
	}
	fmt.Fprintf(w, "  calls: %d dup renews, %d dup releases, %d deferred; crashes: %d\n",
		r.CallFaults.DupRenews, r.CallFaults.DupReleases, r.CallFaults.Deferred, r.Crashes)
	if r.Resizes > 0 {
		fmt.Fprintf(w, "  resizes: %d capacity retargets applied\n", r.Resizes)
	}
	fmt.Fprintf(w, "  audit: %d live leases, watermark %d, %d torn bytes\n",
		r.AuditLive, r.AuditToken, r.AuditTorn)
	if len(r.Violations) == 0 {
		fmt.Fprintf(w, "  invariants: all clean\n")
		return
	}
	fmt.Fprintf(w, "  VIOLATIONS (%d):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(w, "    [%s] %s\n", v.Invariant, v.Detail)
	}
}

// Scenarios is the named-adversary registry, keyed by name.
func Scenarios() map[string]Scenario {
	list := []Scenario{
		{
			Name:        "healthy",
			Description: "no faults at all — the baseline every invariant must trivially pass",
			Clients:     4, LeasesEach: 8, TTL: 3 * time.Second,
			Churn: 0.3,
		},
		{
			Name:        "lossy",
			Description: "dropped and delayed chunks with occasional mid-frame resets",
			Clients:     5, LeasesEach: 10, TTL: 3 * time.Second,
			Proxy: Faults{Drop: 0.03, Delay: 0.25, DelayMax: 40 * time.Millisecond, Reset: 0.004},
			Churn: 0.3,
		},
		{
			Name:        "corrupt",
			Description: "bytes flipped in flight — framing intact, content damaged; every corruption must be caught by the payload CRC, never accepted as data",
			Clients:     5, LeasesEach: 10, TTL: 3 * time.Second,
			Proxy: Faults{Corrupt: 0.04, Delay: 0.15, DelayMax: 25 * time.Millisecond},
			Churn: 0.3,
		},
		{
			Name:        "partition",
			Description: "alternating client groups black-holed for windows shorter than the TTL",
			Clients:     6, LeasesEach: 8, TTL: 4 * time.Second,
			Proxy:          Faults{Groups: 2},
			PartitionEvery: 4 * time.Second, PartitionFor: 1500 * time.Millisecond,
			Churn: 0.2,
		},
		{
			Name:        "crash-storm",
			Description: "SIGKILL and restart against the same data dir, fsync always",
			Clients:     4, LeasesEach: 8, TTL: 5 * time.Second,
			Crash: &CrashSchedule{MinUp: 1500 * time.Millisecond, MaxUp: 3 * time.Second,
				MinDown: 200 * time.Millisecond, MaxDown: 700 * time.Millisecond},
			Churn: 0.2,
		},
		{
			Name:        "skew",
			Description: "client clocks offset both directions; schedules shift, safety must not",
			Clients:     5, LeasesEach: 8, TTL: 6 * time.Second,
			Skews: []time.Duration{-2 * time.Second, -time.Second, 0, time.Second, 2 * time.Second},
			Churn: 0.3,
		},
		{
			Name:        "dup-reorder",
			Description: "duplicated renew/release calls over a delaying, reordering wire",
			Clients:     5, LeasesEach: 10, TTL: 3 * time.Second,
			Proxy:     Faults{Delay: 0.3, DelayMax: 30 * time.Millisecond, Reorder: 0.05},
			Transport: TransportFaults{DupRenew: 0.2, DupRelease: 0.2, Defer: 0.2, DeferMax: 40 * time.Millisecond},
			Churn:     0.4,
		},
		{
			Name:        "resize-churn",
			Description: "online grow/shrink retargets racing lease churn over a delaying wire — no grant may exceed the instantaneous capacity, and every shrink must eventually quiesce",
			Clients:     5, LeasesEach: 8, TTL: 3 * time.Second,
			Proxy:  Faults{Delay: 0.2, DelayMax: 25 * time.Millisecond},
			Churn:  0.5,
			Resize: &ResizePlan{Base: 64, Steps: []int{192, 48, 256, 32, 128}, Every: 2 * time.Second},
		},
		{
			Name:        "kitchen-sink",
			Description: "everything at once: loss, partitions, crashes, skew, duplication",
			Clients:     6, LeasesEach: 8, TTL: 5 * time.Second,
			Proxy:          Faults{Drop: 0.015, Delay: 0.2, DelayMax: 30 * time.Millisecond, Reset: 0.002, Groups: 2},
			Transport:      TransportFaults{DupRenew: 0.1, DupRelease: 0.1, Defer: 0.1, DeferMax: 30 * time.Millisecond},
			Crash:          &CrashSchedule{MinUp: 4 * time.Second, MaxUp: 8 * time.Second, MinDown: 200 * time.Millisecond, MaxDown: 600 * time.Millisecond},
			Skews:          []time.Duration{-time.Second, 0, time.Second},
			PartitionEvery: 6 * time.Second, PartitionFor: 1200 * time.Millisecond,
			Churn: 0.25,
		},
	}
	m := make(map[string]Scenario, len(list))
	for _, s := range list {
		m[s.Name] = s
	}
	return m
}

// ScenarioNames lists the registry in stable order.
func ScenarioNames() []string {
	m := Scenarios()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// freePort reserves an ephemeral port and releases it for the server to
// bind: the address stays stable across crash restarts.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// Run executes one scenario end to end: real server process, fault
// proxy, real sessions, invariant checker, post-run journal audit.
//
//lint:wallclock the run clock frames real subprocess and socket activity; everything schedule-shaping draws from rng(seed, label)
func Run(ctx context.Context, sc Scenario, opts Options) (*Report, error) {
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "chaos: "+format+"\n", args...)
		}
	}
	if opts.Transport == "" {
		opts.Transport = "bin"
	}
	if opts.Transport != "bin" && opts.Transport != "http" {
		return nil, fmt.Errorf("chaos: transport %q (want bin or http)", opts.Transport)
	}
	if opts.Duration < 4*sc.TTL {
		// The heal phase alone needs ~2 TTLs for sessions to recover and
		// prove invariant 5 fairly.
		opts.Duration = 4 * sc.TTL
		logf("duration raised to %v (4x TTL %v)", opts.Duration, sc.TTL)
	}

	httpAddr, err := freePort()
	if err != nil {
		return nil, err
	}
	binAddr, err := freePort()
	if err != nil {
		return nil, err
	}
	dataDir := filepath.Join(opts.WorkDir, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}

	srvCfg := ServerConfig{
		Binary:   opts.Binary,
		DataDir:  dataDir,
		HTTPAddr: httpAddr,
		BinAddr:  binAddr,
		TTL:      sc.TTL,
		Fsync:    "always",
		Stdout:   opts.Log,
	}
	if sc.Resize != nil {
		if sc.Resize.Base <= 0 || len(sc.Resize.Steps) == 0 || sc.Resize.Every <= 0 {
			return nil, fmt.Errorf("chaos: degenerate resize plan %+v", *sc.Resize)
		}
		srvCfg.Capacity = sc.Resize.Base
		srvCfg.Resizable = true
	}
	srv, err := StartServer(srvCfg)
	if err != nil {
		return nil, err
	}
	defer srv.Stop(10 * time.Second) // backstop; the happy path stops explicitly below

	upstream := binAddr
	if opts.Transport == "http" {
		upstream = httpAddr
	}

	// Generate the partition windows inside the fault phase. The run's
	// last quarter (at least 2 TTLs) is the heal phase: every fault goes
	// quiet so sessions must demonstrably recover.
	start := time.Now()
	faultPhase := opts.Duration * 3 / 4
	if opts.Duration-faultPhase < 2*sc.TTL {
		faultPhase = opts.Duration - 2*sc.TTL
	}
	proxyFaults := sc.Proxy
	if sc.PartitionEvery > 0 {
		if proxyFaults.Groups < 2 {
			proxyFaults.Groups = 2
		}
		r := rng(opts.Seed, "partitions")
		group := 0
		for at := sc.PartitionEvery; at+sc.PartitionFor < faultPhase; at += sc.PartitionEvery + durBetween(r, 0, sc.PartitionEvery/2) {
			proxyFaults.Partitions = append(proxyFaults.Partitions, Window{At: at, For: sc.PartitionFor, Group: group})
			group = (group + 1) % proxyFaults.Groups
		}
	}

	proxy, err := NewProxy(upstream, opts.Seed, proxyFaults)
	if err != nil {
		srv.Stop(5 * time.Second)
		return nil, err
	}
	defer proxy.Close()
	logf("server on %s (http) / %s (bin), proxy on %s -> %s, %d partition windows",
		httpAddr, binAddr, proxy.Addr(), upstream, len(proxyFaults.Partitions))

	checker := NewChecker(sc.TTL)
	if sc.Resize != nil {
		// Seed the capacity timeline before any grant can be judged
		// against it.
		checker.CapacityChanged(start, sc.Resize.Base)
	}
	// Probabilistic faults cover the whole fault phase; windows and
	// crashes register themselves as they happen.
	probabilistic := sc.Proxy.Drop > 0 || sc.Proxy.Delay > 0 || sc.Proxy.Reorder > 0 ||
		sc.Proxy.Reset > 0 || sc.Proxy.Corrupt > 0 || sc.Proxy.ByteRate > 0 ||
		sc.Transport.DupRenew > 0 || sc.Transport.DupRelease > 0 || sc.Transport.Defer > 0
	if probabilistic {
		checker.Fault(start, start.Add(faultPhase).Add(sc.TTL), "probabilistic")
	}
	for _, w := range proxyFaults.Partitions {
		// A partition can starve heartbeats into the next TTL; pad the
		// window by one TTL so recovery-phase losses stay excused.
		checker.Fault(start.Add(w.At), start.Add(w.At+w.For+sc.TTL), "partition")
	}
	for i := range sc.Skews {
		if sc.Skews[i] != 0 {
			// A skewed clock shifts schedules for the whole run.
			checker.Fault(start, start.Add(opts.Duration), "skew")
			break
		}
	}

	// The shared fault gate: flipped off at heal time.
	var active atomic.Bool
	active.Store(true)

	// Sessions, each with its own seeded jitter stream and (possibly
	// skewed) clock, all dialing through the proxy.
	target := "bin://" + proxy.Addr()
	if opts.Transport == "http" {
		target = "http://" + proxy.Addr()
	}
	callTimeout := sc.TTL / 4
	if opts.Inject == "no-call-timeout" {
		callTimeout = -1 // the pre-fix unbounded client
	} else if opts.Inject != "" {
		proxy.Close()
		srv.Stop(5 * time.Second)
		return nil, fmt.Errorf("chaos: unknown injection %q", opts.Inject)
	}

	type clientRun struct {
		sess  *leaseclient.Session
		hooks *Client
		ft    *FaultTransport
	}
	clients := make([]*clientRun, sc.Clients)
	for i := range clients {
		hooks := checker.Client(i)
		var skew time.Duration
		if len(sc.Skews) > 0 {
			skew = sc.Skews[i%len(sc.Skews)]
		}
		inner, err := leaseclient.NewTransportTimeout(target, callTimeout)
		if err != nil {
			proxy.Close()
			srv.Stop(5 * time.Second)
			return nil, err
		}
		ft := WrapTransport(inner, opts.Seed, fmt.Sprintf("client/%d", i), sc.Transport, &active)
		jitter := rng(opts.Seed, fmt.Sprintf("session/%d", i))
		sess, err := leaseclient.NewSession(leaseclient.Config{
			Transport:   ft,
			Owner:       fmt.Sprintf("chaos-%d", i),
			TTL:         sc.TTL,
			CallTimeout: callTimeout,
			Now:         SkewedClock(skew),
			Rand:        jitter.Float64,
			OnLost:      hooks.LostFunc(),
		})
		if err != nil {
			proxy.Close()
			srv.Stop(5 * time.Second)
			return nil, err
		}
		clients[i] = &clientRun{sess: sess, hooks: hooks, ft: ft}
	}

	// Seed the lease population. The server may be mid-crash already in
	// pathological schedules, so acquire with patience.
	for i, cr := range clients {
		var acquired []leaseclient.Lease
		for attempt := 0; len(acquired) == 0 && attempt < 10; attempt++ {
			ls, err := cr.sess.AcquireN(ctx, sc.LeasesEach)
			if err == nil {
				acquired = ls
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
		if len(acquired) == 0 {
			logf("client %d failed to seed its leases", i)
			continue
		}
		cr.hooks.Acquired(acquired...)
	}

	runCtx, cancelRun := context.WithDeadline(ctx, start.Add(opts.Duration))
	defer cancelRun()
	faultCtx, cancelFaults := context.WithDeadline(ctx, start.Add(faultPhase))
	defer cancelFaults()

	var wg sync.WaitGroup

	// Crash scheduler.
	var crashErr error
	if sc.Crash != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crashErr = srv.CrashLoop(faultCtx, opts.Seed, *sc.Crash,
				func(t time.Time) {
					// Downtime plus a TTL of recovery grace is an excused
					// window; the next onUp only narrows it.
					checker.Fault(t, t.Add(sc.TTL*2), "crash")
					logf("server killed")
				},
				func(time.Time) { logf("server restarted") })
		}()
	}

	// Churn drivers: one per client, seeded independently.
	for i, cr := range clients {
		wg.Add(1)
		go func(i int, cr *clientRun) {
			defer wg.Done()
			r := rng(opts.Seed, fmt.Sprintf("churn/%d", i))
			ticker := time.NewTicker(250 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-faultCtx.Done():
					return
				case <-ticker.C:
				}
				if r.Float64() >= sc.Churn {
					continue
				}
				held := cr.sess.Leases()
				if len(held) == 0 {
					continue
				}
				victim := held[r.IntN(len(held))]
				cr.hooks.ReleaseSent(victim.Name, victim.Token)
				// A failed release is interesting, not an error: either the
				// server refused (already gone) or the transport dropped it
				// and the session re-adopted — the sampler's next Observe
				// reopens the belief in that case.
				if err := cr.sess.Release(runCtx, victim.Name); err == nil {
					if ls, err := cr.sess.AcquireN(runCtx, 1); err == nil {
						cr.hooks.Acquired(ls...)
					}
				}
			}
		}(i, cr)
	}

	// Resize driver: retargets the namespace through the fault phase on
	// a seeded cadence, then returns it to base for the heal phase. The
	// admin calls go DIRECTLY to the server, not through the proxy —
	// resize is operator traffic, not the wire under test, and judging
	// invariant 6 against a capacity report the proxy delayed or dropped
	// would test the harness, not the server.
	var resizesApplied atomic.Int64
	if sc.Resize != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng(opts.Seed, "resize")
			step := 0
			for {
				wait := sc.Resize.Every + durBetween(r, 0, sc.Resize.Every/4)
				select {
				case <-faultCtx.Done():
					// Heal: the recovery phase runs against the base
					// geometry, with whatever drain the last shrink left.
					if st, err := postResize(httpAddr, sc.Resize.Base); err == nil {
						checker.CapacityChanged(time.Now(), st.Capacity)
						resizesApplied.Add(1)
					}
					return
				case <-time.After(wait):
				}
				target := sc.Resize.Steps[step%len(sc.Resize.Steps)]
				step++
				st, err := postResize(httpAddr, target)
				if err != nil {
					logf("resize to %d failed: %v", target, err)
					continue
				}
				checker.CapacityChanged(time.Now(), st.Capacity)
				resizesApplied.Add(1)
				logf("resized to %d (epoch %d, draining %v)", st.Capacity, st.Epoch, st.Draining)
			}
		}()
	}

	// Sampler: refresh belief expiries from every session.
	samplerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(samplerDone)
		ticker := time.NewTicker(25 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
				for _, cr := range clients {
					cr.hooks.Observe(cr.sess.Leases())
				}
			}
		}
	}()

	<-faultCtx.Done()
	active.Store(false)
	logf("fault phase over (%v); healing", faultPhase.Round(time.Millisecond))
	<-runCtx.Done()
	wg.Wait()
	if crashErr != nil {
		proxy.Close()
		return nil, fmt.Errorf("chaos: crash scheduler: %w", crashErr)
	}

	// Final observation sweep, then freeze the run clock for invariants.
	for _, cr := range clients {
		cr.hooks.Observe(cr.sess.Leases())
	}
	end := time.Now()

	// Teardown. Severing first releases any wedged round trip (the
	// injected-bug case) so Close can always finish; sessions then
	// redial through the still-open proxy and release cleanly.
	proxy.SeverConns()
	for _, cr := range clients {
		for _, l := range cr.sess.Leases() {
			cr.hooks.ReleaseSent(l.Name, l.Token)
		}
		cr.hooks.Closed()
		cr.sess.Close()
	}

	// Shrink-quiesce (resize runs only): with every session closed and
	// its releases landed, any name still draining above the base bound
	// can only be an expired straggler — the sweeper must reclaim it
	// within a couple of TTLs, after which the drain state clears for
	// good. A drain that never clears means the shrink wedged. The probe
	// is an idempotent same-capacity resize: its response reports the
	// authoritative drain state.
	var quiesce *Violation
	if sc.Resize != nil {
		deadline := time.Now().Add(2*sc.TTL + 2*time.Second)
		for {
			st, err := postResize(httpAddr, sc.Resize.Base)
			if err == nil && !st.Draining {
				break
			}
			if time.Now().After(deadline) {
				detail := "shrink never quiesced: drain state still set after every session released and expiries passed"
				if err != nil {
					detail = fmt.Sprintf("shrink-quiesce probe failed: %v", err)
				}
				quiesce = &Violation{Invariant: "shrink-quiesces", Detail: detail, Time: time.Now()}
				logf("shrink-quiesce: %s", detail)
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
	}

	// Server metrics snapshot, then the graceful stop and the read-only
	// audit of what the disk says happened.
	serverVars := scrapeVars(httpAddr)
	crashes := srv.Kills()
	if err := srv.Stop(10 * time.Second); err != nil {
		logf("graceful stop: %v", err)
	}
	proxy.Close()
	audit, err := persist.ReadAudit(dataDir)
	if err != nil {
		return nil, fmt.Errorf("chaos: post-run audit: %w", err)
	}

	violations := checker.Finish(end, audit)
	if quiesce != nil {
		violations = append(violations, *quiesce)
	}

	// Corruption-detection expectation: the CRC gate must convert every
	// damaged chunk into an observable error. If the proxy flipped bytes
	// and NO session ever saw a round trip fail, damaged frames were
	// accepted as data — a fail-open checksum, and a violation in its
	// own right even when the lease invariants happen to hold.
	var transportErrs int64
	for _, cr := range clients {
		transportErrs += cr.sess.Stats().TransportErrors
	}
	if ps := proxy.Stats(); ps.Corrupted > 0 && transportErrs == 0 {
		violations = append(violations, Violation{
			Invariant: "corruption-detected",
			Detail: fmt.Sprintf("proxy corrupted %d chunks but no session observed a transport error — damaged frames were accepted silently",
				ps.Corrupted),
			Time: end,
		})
	}

	rep := &Report{
		Scenario:        sc.Name,
		Description:     sc.Description,
		Seed:            opts.Seed,
		Transport:       opts.Transport,
		Inject:          opts.Inject,
		Start:           start,
		Duration:        time.Since(start),
		Clients:         sc.Clients,
		Checker:         checker.Stats(),
		Proxy:           proxy.Stats(),
		Crashes:         crashes,
		Resizes:         resizesApplied.Load(),
		Violations:      violations,
		AuditLive:       len(audit.Leases),
		AuditToken:      audit.MaxToken,
		AuditTorn:       audit.TornBytes,
		ServerVars:      serverVars,
		TransportErrors: transportErrs,
		Pass:            len(violations) == 0,
	}
	for _, cr := range clients {
		st := cr.ft.Stats()
		rep.CallFaults.DupRenews += st.DupRenews
		rep.CallFaults.DupReleases += st.DupReleases
		rep.CallFaults.Deferred += st.Deferred
	}
	return rep, nil
}

// postResize drives one capacity retarget through the server's admin
// endpoint. The endpoint answers 200 with per-component verdicts even
// when a component refused (the batch per-item contract); a verdict
// failure is surfaced as an error here because the chaos driver only
// ever asks for retargets the elastic server must accept.
func postResize(httpAddr string, n int) (wire.ResizeResponse, error) {
	var out wire.ResizeResponse
	body, err := json.Marshal(wire.ResizeRequest{Capacity: n})
	if err != nil {
		return out, err
	}
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Post("http://"+httpAddr+"/v1/resize", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("resize to %d: HTTP %d", n, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	for _, r := range out.Results {
		if r.Code != "" {
			return out, fmt.Errorf("resize to %d: %s refused: %s (%s)", n, r.Component, r.Error, r.Code)
		}
	}
	return out, nil
}

// scrapeVars fetches the server's /debug/vars directly (not through the
// proxy) for the report; best-effort.
func scrapeVars(httpAddr string) json.RawMessage {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + httpAddr + "/debug/vars")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || !json.Valid(body) {
		return nil
	}
	return body
}
