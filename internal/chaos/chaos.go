// Package chaos is the fault-injection harness for the full renamed
// service stack: a TCP proxy that corrupts the wire (drops, delays,
// reorders, resets, bandwidth throttling, partitions), a transport
// wrapper that duplicates whole protocol calls, a crash scheduler that
// SIGKILLs and restarts a real renamed process against its data
// directory, a clock-skew injector for sessions, and an invariant
// checker that watches real leaseclient.Sessions drive the faulted
// stack and proves the safety story holds: no two clients believe they
// hold one name at the same instant, fencing tokens only move forward,
// a lease reported lost stays lost, and nothing is dropped without a
// fault to blame.
//
// Everything is seeded. Each component derives its own random stream
// from (seed, label), so the fault SCHEDULE — which chunk is dropped,
// when the process dies, how long each heartbeat jitters — is a pure
// function of the scenario seed and is printed with every report. Two
// runs with one seed make the same decisions in the same order; the
// operating system's scheduling still interleaves them differently,
// which is exactly the point: one deterministic adversary, many real
// executions.
//
// The composed, named scenarios (lossy, partition, crash-storm, skew,
// dup-reorder, resize-churn, kitchen-sink) live in scenario.go and are
// driven by cmd/chaos.
package chaos

import (
	"hash/fnv"
	"math/rand/v2"
	"time"
)

// subSeed derives a stable per-component seed from the scenario seed, so
// every RNG consumer owns an independent stream and adding a consumer
// never shifts another's schedule.
func subSeed(seed uint64, label string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return seed ^ h.Sum64()
}

// rng builds the component's deterministic random stream.
func rng(seed uint64, label string) *rand.Rand {
	return rand.New(rand.NewPCG(subSeed(seed, label), 0x9e3779b97f4a7c15))
}

// SkewedClock returns a clock offset from real time by skew — the
// chaos spelling of a client whose wall clock is wrong. Wired into
// leaseclient.Config.Now it shifts the session's view of every TTL and
// heartbeat deadline while the server (and the checker) keep real time.
func SkewedClock(skew time.Duration) func() time.Time {
	//lint:wallclock skew is an offset from the real wall clock by definition; the server and checker keep real time
	return func() time.Time { return time.Now().Add(skew) }
}

// durBetween draws a duration uniformly from [lo, hi].
func durBetween(r *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.Int64N(int64(hi-lo)))
}
