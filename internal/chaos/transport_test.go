package chaos

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/wire"
	"repro/leaseclient"
)

// countingTransport records call counts and returns canned successes.
type countingTransport struct {
	renews, renewBatches, releases, releaseBatches, acquires atomic.Int64
}

func (f *countingTransport) Acquire(ctx context.Context, req *wire.AcquireRequest) (wire.Lease, error) {
	f.acquires.Add(1)
	return wire.Lease{Name: 1, Token: 1}, nil
}
func (f *countingTransport) AcquireBatch(ctx context.Context, req *wire.AcquireBatchRequest) (wire.Leases, error) {
	f.acquires.Add(1)
	return wire.Leases{}, nil
}
func (f *countingTransport) Renew(ctx context.Context, req *wire.RenewRequest) (wire.Lease, error) {
	f.renews.Add(1)
	return wire.Lease{Name: int(req.Name), Token: req.Token}, nil
}
func (f *countingTransport) RenewBatch(ctx context.Context, req *wire.RenewBatchRequest) (wire.BatchResults, error) {
	f.renewBatches.Add(1)
	return wire.BatchResults{}, nil
}
func (f *countingTransport) Release(ctx context.Context, req *wire.ReleaseRequest) error {
	f.releases.Add(1)
	return nil
}
func (f *countingTransport) ReleaseBatch(ctx context.Context, req *wire.ReleaseBatchRequest) (wire.BatchResults, error) {
	f.releaseBatches.Add(1)
	return wire.BatchResults{}, nil
}
func (f *countingTransport) Ping(ctx context.Context) error { return nil }
func (f *countingTransport) Close() error                   { return nil }

var _ leaseclient.Transport = (*countingTransport)(nil)

// TestTransportDuplication: with DupRenew/DupRelease at 1.0, every
// renew_batch and release_batch reaches the inner transport twice —
// and acquires NEVER duplicate, whatever the probabilities say.
func TestTransportDuplication(t *testing.T) {
	inner := &countingTransport{}
	ft := WrapTransport(inner, 1, "t", TransportFaults{DupRenew: 1, DupRelease: 1}, nil)
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		if _, err := ft.RenewBatch(ctx, &wire.RenewBatchRequest{}); err != nil {
			t.Fatal(err)
		}
		if _, err := ft.ReleaseBatch(ctx, &wire.ReleaseBatchRequest{}); err != nil {
			t.Fatal(err)
		}
		if _, err := ft.Acquire(ctx, &wire.AcquireRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.renewBatches.Load(); got != 10 {
		t.Fatalf("inner saw %d renew_batches, want 10 (every call duplicated)", got)
	}
	if got := inner.releaseBatches.Load(); got != 10 {
		t.Fatalf("inner saw %d release_batches, want 10", got)
	}
	if got := inner.acquires.Load(); got != 5 {
		t.Fatalf("inner saw %d acquires, want 5 — acquires must NEVER duplicate", got)
	}
	st := ft.Stats()
	if st.DupRenews != 5 || st.DupReleases != 5 {
		t.Fatalf("stats %+v, want 5 dup renews and 5 dup releases", st)
	}
}

// TestTransportGate: flipping the shared active flag off silences every
// fault — the heal phase in one store.
func TestTransportGate(t *testing.T) {
	inner := &countingTransport{}
	var active atomic.Bool
	active.Store(false)
	ft := WrapTransport(inner, 1, "t", TransportFaults{DupRenew: 1, DupRelease: 1}, &active)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		ft.RenewBatch(ctx, &wire.RenewBatchRequest{})
	}
	if got := inner.renewBatches.Load(); got != 5 {
		t.Fatalf("inner saw %d renew_batches with faults gated off, want 5", got)
	}
}

// TestTransportDeterministicSchedule: the dup decisions are a pure
// function of (seed, label).
func TestTransportDeterministicSchedule(t *testing.T) {
	run := func(seed uint64, label string) string {
		ft := WrapTransport(&countingTransport{}, seed, label, TransportFaults{DupRenew: 0.5}, nil)
		out := make([]byte, 64)
		for i := range out {
			dup, _, _ := ft.draw()
			if dup {
				out[i] = '1'
			} else {
				out[i] = '0'
			}
		}
		return string(out)
	}
	if run(9, "a") != run(9, "a") {
		t.Fatal("same seed and label produced different dup schedules")
	}
	if run(9, "a") == run(9, "b") {
		t.Fatal("different labels produced identical dup schedules")
	}
	if run(9, "a") == run(10, "a") {
		t.Fatal("different seeds produced identical dup schedules")
	}
}
