package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/lease/persist"
	"repro/leaseclient"
)

// Checker watches every session in a chaos run and evaluates the
// system's global safety invariants over what it saw:
//
//  1. Exclusive holding — no two clients believe they hold the same
//     name at the same instant. A client's belief interval starts at
//     the acquire grant and ends at the EARLIEST of: the release it
//     sent, the loss it was told about, its session closing, or the
//     last server-stamped expiry it knows — a correct client must not
//     act on a lease past that expiry, so belief is clipped there even
//     if the session is still optimistically retrying.
//  2. Fencing monotonicity — grants of one name carry strictly
//     increasing tokens, in grant order, across crashes and restarts.
//  3. Lost is final — after a session is told a lease is lost, it must
//     never again observe itself holding that (name, token).
//  4. No silent loss — a lease reported lost with no fault window
//     anywhere in the preceding TTL is a bug: healthy heartbeats at
//     TTL/3 cannot lose a lease.
//  5. No wedged leases — at run end every surviving claim must be
//     live (expiry within TTL of now) or closed. A claim whose expiry
//     is long past with no loss report means the session stopped
//     heartbeating AND stopped noticing — the unbounded-call failure.
//  6. Capacity bound — when the run retargets the namespace online
//     (CapacityChanged), no acquire may succeed above the instantaneous
//     capacity: a grant admitted while as many unexpired beliefs as the
//     capacity were already open means the cap was not enforced.
//     Holders above a shrink's bound legitimately REMAIN held while
//     they drain out — only fresh grants are charged. Every belief
//     interval is a subset of the server's own hold interval (belief
//     starts at the grant ack and ends at release-send, loss, close, or
//     the client-known — hence never-later — expiry), so the open count
//     can only undercount the server's live table and the check never
//     fires falsely. Judged with a ±capEps slack window around each
//     grant so an acquire in flight across a retarget is charged
//     against whichever capacity was live at any instant the grant
//     could have been issued.
//
// Belief intervals are built from driver hooks (Acquired/ReleaseSent/
// Closed), the session's OnLost callback, and a periodic Observe
// sample of Session.Leases() that refreshes known expiries. All
// timestamps come from the checker's own clock — sessions may run
// skewed clocks, the checker never does.
//
// Finish folds in the post-run journal audit (lease/persist.ReadAudit):
// the journal's own per-name token order must be clean, and its
// watermark must cover every token any client ever saw — a grant the
// journal never heard of means the durability path dropped a record.
type Checker struct {
	ttl time.Duration
	// eps absorbs sampling and delivery slop when comparing instants
	// from different goroutines.
	eps time.Duration

	// capEps is the slack around a grant instant when judging it against
	// the capacity timeline (invariant 6): it must cover the in-flight
	// RTT between a resize response landing and a grant issued under the
	// previous geometry still being delivered through a delaying proxy.
	capEps time.Duration

	mu         sync.Mutex
	claims     map[int][]*claim // name -> claims in grant order
	open       map[claimKey]*claim
	faults     []faultWindow
	caps       []capRecord
	violations []Violation
	maxToken   uint64
	lost       int
	acquired   int
	released   int
}

// capRecord is one step of the namespace-capacity timeline: capacity is
// active from `from` until the next record's instant.
type capRecord struct {
	from     time.Time
	capacity int
}

type claimKey struct {
	client int
	name   int
	token  uint64
}

// claim is one client's belief that it holds (name, token).
type claim struct {
	claimKey
	start  time.Time
	expiry time.Time // latest server-stamped expiry observed
	end    time.Time // zero while the belief is live
	why    string    // what ended it: released | lost | closed
}

// effectiveEnd is when the belief stops counting for exclusivity: the
// recorded end, clipped to the last known expiry (belief past expiry
// is invalid by contract), or the expiry alone while still open.
func (c *claim) effectiveEnd(runEnd time.Time) time.Time {
	end := runEnd
	if !c.end.IsZero() && c.end.Before(end) {
		end = c.end
	}
	if c.expiry.Before(end) {
		end = c.expiry
	}
	return end
}

type faultWindow struct {
	from, to time.Time
	kind     string
}

// Violation is one broken invariant, with enough detail to chase.
type Violation struct {
	Invariant string    `json:"invariant"`
	Detail    string    `json:"detail"`
	Time      time.Time `json:"time"`
}

// NewChecker builds a checker for sessions leasing with the given TTL.
func NewChecker(ttl time.Duration) *Checker {
	return &Checker{
		ttl:    ttl,
		eps:    50 * time.Millisecond,
		capEps: 500 * time.Millisecond,
		claims: map[int][]*claim{},
		open:   map[claimKey]*claim{},
	}
}

// CapacityChanged records an applied capacity retarget — or, before the
// first grant, the initial capacity — at the instant its outcome was
// observed. Once any record exists, every subsequent grant is judged
// against the timeline (invariant 6).
func (c *Checker) CapacityChanged(at time.Time, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.caps = append(c.caps, capRecord{from: at, capacity: capacity})
}

// maxCapacityNear is the largest capacity active at any instant within
// ±capEps of t. The slack absorbs delivery skew: a grant issued just
// before a shrink's response landed is judged against the pre-shrink
// capacity instead of being falsely flagged. Caller holds mu.
func (c *Checker) maxCapacityNear(t time.Time) int {
	lo, hi := t.Add(-c.capEps), t.Add(c.capEps)
	max := 0
	for i, rec := range c.caps {
		end := hi // the last record runs to the end of time
		if i+1 < len(c.caps) {
			end = c.caps[i+1].from
		}
		if rec.from.After(hi) || end.Before(lo) {
			continue
		}
		if rec.capacity > max {
			max = rec.capacity
		}
	}
	return max
}

// Fault registers a window during which faults were active for some or
// all clients. Loss classification (invariant 4) excuses any loss whose
// preceding TTL overlaps a window.
func (c *Checker) Fault(from, to time.Time, kind string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = append(c.faults, faultWindow{from: from, to: to, kind: kind})
}

func (c *Checker) violate(inv, format string, args ...any) {
	c.violations = append(c.violations, Violation{
		Invariant: inv,
		Detail:    fmt.Sprintf(format, args...),
		//lint:wallclock violation timestamps are checker observations; sessions may run skewed clocks, the checker never does
		Time: time.Now(),
	})
}

// Client returns the hook bundle for one session, identified by id.
type Client struct {
	c  *Checker
	id int
}

func (c *Checker) Client(id int) *Client { return &Client{c: c, id: id} }

// Acquired records granted leases. Token monotonicity per name is
// checked here, at grant time: grants arrive in real-time order per
// name (the server serializes them), so a token at or below the name's
// previous grant is a fencing regression no matter what else happens.
func (cl *Client) Acquired(leases ...leaseclient.Lease) {
	//lint:wallclock belief intervals are judged on the checker's real clock, never a session's skewed one
	now := time.Now()
	c := cl.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range leases {
		c.acquired++
		if l.Token > c.maxToken {
			c.maxToken = l.Token
		}
		// Invariant 6: the grant must have fit under some capacity that
		// was live within the slack window of the grant instant — counting
		// every belief still open and unexpired across all clients.
		if len(c.caps) > 0 {
			held := 0
			for _, cm := range c.open {
				if cm.expiry.After(now) {
					held++
				}
			}
			if max := c.maxCapacityNear(now); held >= max {
				c.violate("capacity-bound",
					"client %d granted name %d while %d leases were already held, but the capacity never exceeded %d within ±%v of the grant",
					cl.id, l.Name, held, max, c.capEps)
			}
		}
		if prev := c.claims[l.Name]; len(prev) > 0 {
			if last := prev[len(prev)-1]; l.Token <= last.token {
				c.violate("fencing-monotonic",
					"name %d granted token %d to client %d after token %d (client %d)",
					l.Name, l.Token, cl.id, last.token, last.client)
			}
		}
		k := claimKey{client: cl.id, name: l.Name, token: l.Token}
		cm := &claim{claimKey: k, start: now, expiry: l.ExpiresAt}
		c.claims[l.Name] = append(c.claims[l.Name], cm)
		c.open[k] = cm
	}
}

// Observe feeds one sample of Session.Leases(): refreshes each open
// claim's known expiry, detects a lost lease coming back from the dead
// (invariant 3), and reopens a released claim the session re-adopted
// after a failed release round trip. The re-adoption gap (belief closed
// at send, reopened at the next sample) is safe: a belief gap can only
// hide an overlap from the checker, never invent one, and the server
// never freed the lease in that window.
func (cl *Client) Observe(leases []leaseclient.Lease) {
	c := cl.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range leases {
		k := claimKey{client: cl.id, name: l.Name, token: l.Token}
		if cm, ok := c.open[k]; ok {
			if l.ExpiresAt.After(cm.expiry) {
				cm.expiry = l.ExpiresAt
			}
			continue
		}
		// Held with no open claim: a closed claim resurfaced.
		for _, cm := range c.claims[l.Name] {
			if cm.claimKey != k {
				continue
			}
			switch cm.why {
			case "lost":
				c.violate("lost-is-final",
					"client %d observed holding name %d token %d after it was reported lost",
					cl.id, l.Name, l.Token)
			case "released":
				cm.end, cm.why = time.Time{}, ""
				c.open[k] = cm
				c.released--
				if l.ExpiresAt.After(cm.expiry) {
					cm.expiry = l.ExpiresAt
				}
			}
		}
	}
}

// ReleaseSent records that the client sent a release and no longer
// believes it holds the lease — belief ends at SEND time, before the
// server acts, so exclusivity is judged conservatively.
func (cl *Client) ReleaseSent(name int, token uint64) {
	c := cl.c
	c.mu.Lock()
	defer c.mu.Unlock()
	k := claimKey{client: cl.id, name: name, token: token}
	if cm, ok := c.open[k]; ok {
		//lint:wallclock belief intervals are judged on the checker's real clock, never a session's skewed one
		cm.end = time.Now()
		cm.why = "released"
		delete(c.open, k)
		c.released++
	}
}

// LostFunc adapts the hooks to leaseclient.Config.OnLost. The session
// does not pass the token, but a session holds at most one token per
// name, so the open claim identifies it.
func (cl *Client) LostFunc() func(name int, err error) {
	return func(name int, err error) {
		c := cl.c
		c.mu.Lock()
		defer c.mu.Unlock()
		for k, cm := range c.open {
			if k.client == cl.id && k.name == name {
				//lint:wallclock belief intervals are judged on the checker's real clock, never a session's skewed one
				cm.end = time.Now()
				cm.why = "lost"
				delete(c.open, k)
				c.lost++
				// Invariant 4: a loss with no fault anywhere in the
				// preceding TTL (plus slack) is silent and therefore a bug.
				from := cm.end.Add(-c.ttl - c.eps)
				excused := false
				for _, w := range c.faults {
					if w.from.Before(cm.end) && w.to.After(from) {
						excused = true
						break
					}
				}
				if !excused {
					c.violate("no-silent-loss",
						"client %d lost name %d token %d (%v) with no fault active in the preceding %v",
						cl.id, name, k.token, err, c.ttl)
				}
				return
			}
		}
	}
}

// Closed ends every remaining belief for the client at session close.
func (cl *Client) Closed() {
	c := cl.c
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:wallclock belief intervals are judged on the checker's real clock, never a session's skewed one
	now := time.Now()
	for k, cm := range c.open {
		if k.client != cl.id {
			continue
		}
		cm.end = now
		cm.why = "closed"
		delete(c.open, k)
	}
}

// CheckerStats summarizes what the checker processed.
type CheckerStats struct {
	Acquired int    `json:"acquired"`
	Released int    `json:"released"`
	Lost     int    `json:"lost"`
	Names    int    `json:"names"`
	MaxToken uint64 `json:"max_token"`
}

// Finish evaluates the end-of-run invariants and returns every
// violation found over the whole run. end is the instant the run's
// observation stopped (before teardown began); audit is the post-run
// read-only journal scan, nil when the scenario ran without durability.
func (c *Checker) Finish(end time.Time, audit *persist.Audit) []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Invariant 1: exclusivity. Claims per name are in grant order;
	// every claim must start after every EARLIER claim's belief has
	// ended (different clients only — one session re-observing its own
	// lease is just bookkeeping).
	for name, claims := range c.claims {
		for i, cur := range claims {
			for _, prev := range claims[:i] {
				if prev.client == cur.client {
					continue
				}
				prevEnd := prev.effectiveEnd(end)
				if cur.start.Add(c.eps).Before(prevEnd) {
					c.violate("exclusive-holding",
						"name %d: client %d granted token %d at %s while client %d still held token %d until %s (overlap %v)",
						name, cur.client, cur.token, cur.start.Format(time.RFC3339Nano),
						prev.client, prev.token, prevEnd.Format(time.RFC3339Nano),
						prevEnd.Sub(cur.start))
				}
			}
		}
	}

	// Invariant 5: wedged leases. An open claim whose expiry is more
	// than a TTL behind the run's end was neither renewed nor reported
	// lost for at least that long — the session is wedged.
	for _, cm := range c.open {
		if end.Sub(cm.expiry) > c.ttl+c.eps {
			c.violate("no-wedged-leases",
				"client %d still believes it holds name %d token %d but its expiry passed %v ago with no loss report",
				cm.client, cm.name, cm.token, end.Sub(cm.expiry))
		}
	}

	// The durable record must corroborate the clients' view.
	if audit != nil {
		for _, r := range audit.Regressions {
			c.violate("journal-fencing", "journal token order broken: %v", r)
		}
		if audit.MaxToken < c.maxToken {
			c.violate("journal-watermark",
				"journal watermark %d below highest client-observed token %d: an acknowledged grant never reached the journal",
				audit.MaxToken, c.maxToken)
		}
	}

	sort.Slice(c.violations, func(i, j int) bool { return c.violations[i].Time.Before(c.violations[j].Time) })
	return append([]Violation(nil), c.violations...)
}

// Stats summarizes the run for the report.
func (c *Checker) Stats() CheckerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CheckerStats{
		Acquired: c.acquired,
		Released: c.released,
		Lost:     c.lost,
		Names:    len(c.claims),
		MaxToken: c.maxToken,
	}
}
