package chaos

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/leaseclient"
)

func violationsByKind(vs []Violation) map[string]int {
	m := map[string]int{}
	for _, v := range vs {
		m[v.Invariant]++
	}
	return m
}

// lease builds a leaseclient.Lease expiring after d.
func heldLease(name int, token uint64, d time.Duration) leaseclient.Lease {
	return leaseclient.Lease{Name: name, Token: token, ExpiresAt: time.Now().Add(d)}
}

// TestCheckerCleanLifecycle: acquire → observe → release → finish must
// produce zero violations.
func TestCheckerCleanLifecycle(t *testing.T) {
	c := NewChecker(time.Second)
	a, b := c.Client(0), c.Client(1)
	a.Acquired(heldLease(1, 10, time.Second))
	b.Acquired(heldLease(2, 11, time.Second))
	a.Observe([]leaseclient.Lease{heldLease(1, 10, time.Second)})
	a.ReleaseSent(1, 10)
	// Name 1 freed: client 1 may now take it with a higher token.
	b.Acquired(heldLease(1, 12, time.Second))
	b.ReleaseSent(1, 12)
	b.ReleaseSent(2, 11)
	a.Closed()
	b.Closed()
	if vs := c.Finish(time.Now(), nil); len(vs) != 0 {
		t.Fatalf("clean lifecycle produced violations: %v", vs)
	}
	st := c.Stats()
	if st.Acquired != 3 || st.Released != 3 || st.Lost != 0 || st.MaxToken != 12 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCheckerExclusiveHolding: a second client granted a name while the
// first still believes it holds it (expiry in the future, no release)
// is the core safety violation.
func TestCheckerExclusiveHolding(t *testing.T) {
	c := NewChecker(time.Second)
	a, b := c.Client(0), c.Client(1)
	a.Acquired(heldLease(7, 10, 10*time.Second))
	time.Sleep(60 * time.Millisecond)
	b.Acquired(heldLease(7, 11, 10*time.Second))
	// The overlap must OUTLIVE the epsilon slack before the run ends for
	// the checker to count it as observed.
	time.Sleep(120 * time.Millisecond)
	vs := c.Finish(time.Now(), nil)
	if violationsByKind(vs)["exclusive-holding"] != 1 {
		t.Fatalf("want 1 exclusive-holding violation, got %v", vs)
	}
}

// TestCheckerExclusivityRespectsExpiry: the same sequence is LEGAL when
// the first holder's expiry passed before the regrant — that is exactly
// how the system reissues names lost to a dead client.
func TestCheckerExclusivityRespectsExpiry(t *testing.T) {
	c := NewChecker(time.Second)
	a, b := c.Client(0), c.Client(1)
	a.Acquired(heldLease(7, 10, 50*time.Millisecond))
	time.Sleep(150 * time.Millisecond) // expiry long gone
	b.Acquired(heldLease(7, 11, time.Second))
	b.ReleaseSent(7, 11)
	vs := c.Finish(time.Now(), nil)
	for _, v := range vs {
		if v.Invariant == "exclusive-holding" {
			t.Fatalf("expired-then-regranted flagged as overlap: %v", v)
		}
	}
}

// TestCheckerFencingMonotonic: a regrant with a NON-increasing token is
// flagged at grant time.
func TestCheckerFencingMonotonic(t *testing.T) {
	c := NewChecker(time.Second)
	a, b := c.Client(0), c.Client(1)
	a.Acquired(heldLease(3, 20, 50*time.Millisecond))
	time.Sleep(120 * time.Millisecond)
	b.Acquired(heldLease(3, 20, time.Second)) // same token again
	vs := c.Finish(time.Now(), nil)
	if violationsByKind(vs)["fencing-monotonic"] != 1 {
		t.Fatalf("want 1 fencing-monotonic violation, got %v", vs)
	}
}

// TestCheckerLostIsFinal: observing a lease after its loss was reported
// is a violation.
func TestCheckerLostIsFinal(t *testing.T) {
	c := NewChecker(time.Second)
	c.Fault(time.Now().Add(-time.Minute), time.Now().Add(time.Minute), "test") // excuse the loss itself
	a := c.Client(0)
	a.Acquired(heldLease(5, 30, time.Second))
	a.LostFunc()(5, errors.New("expired"))
	a.Observe([]leaseclient.Lease{heldLease(5, 30, time.Second)})
	vs := c.Finish(time.Now(), nil)
	if violationsByKind(vs)["lost-is-final"] != 1 {
		t.Fatalf("want 1 lost-is-final violation, got %v", vs)
	}
}

// TestCheckerSilentLoss: a loss with no fault window in the preceding
// TTL is a violation; the same loss inside a fault window is excused.
func TestCheckerSilentLoss(t *testing.T) {
	c := NewChecker(time.Second)
	a := c.Client(0)
	a.Acquired(heldLease(1, 40, time.Second))
	a.LostFunc()(1, errors.New("expired"))
	vs := c.Finish(time.Now(), nil)
	if violationsByKind(vs)["no-silent-loss"] != 1 {
		t.Fatalf("want 1 no-silent-loss violation, got %v", vs)
	}

	c2 := NewChecker(time.Second)
	c2.Fault(time.Now().Add(-500*time.Millisecond), time.Now().Add(500*time.Millisecond), "partition")
	b := c2.Client(0)
	b.Acquired(heldLease(1, 40, time.Second))
	b.LostFunc()(1, errors.New("expired"))
	if vs := c2.Finish(time.Now(), nil); len(vs) != 0 {
		t.Fatalf("excused loss still flagged: %v", vs)
	}
}

// TestCheckerWedgedLease: an open claim whose expiry is far in the past
// at finish time means the session neither renewed nor noticed — the
// unbounded-call wedge.
func TestCheckerWedgedLease(t *testing.T) {
	c := NewChecker(100 * time.Millisecond)
	a := c.Client(0)
	a.Acquired(heldLease(9, 50, 100*time.Millisecond))
	time.Sleep(300 * time.Millisecond)
	vs := c.Finish(time.Now(), nil)
	if violationsByKind(vs)["no-wedged-leases"] != 1 {
		t.Fatalf("want 1 no-wedged-leases violation, got %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "name 9") {
		t.Fatalf("violation detail %q does not name the lease", vs[0].Detail)
	}
}

// TestCheckerCapacityBound: with a capacity timeline registered, a
// grant admitted while as many beliefs as the capacity were already
// open is a violation; grants that fit — or that land within the slack
// window of a shrink, where the old capacity still excuses them — are
// not.
func TestCheckerCapacityBound(t *testing.T) {
	c := NewChecker(time.Second)
	c.CapacityChanged(time.Now().Add(-10*time.Second), 2)
	a := c.Client(0)
	a.Acquired(heldLease(1, 10, time.Second)) // 0 held: fits
	a.Acquired(heldLease(2, 11, time.Second)) // 1 held: fits, cap reached
	a.Acquired(heldLease(3, 12, time.Second)) // 2 held: over the cap
	for n := 1; n <= 3; n++ {
		a.ReleaseSent(n, uint64(9+n))
	}
	vs := c.Finish(time.Now(), nil)
	if violationsByKind(vs)["capacity-bound"] != 1 {
		t.Fatalf("want 1 capacity-bound violation, got %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "name 3") {
		t.Fatalf("violation detail %q does not name the grant", vs[0].Detail)
	}

	// A grant in flight across a shrink is judged against the pre-shrink
	// capacity: the shrink landed within the slack window.
	c2 := NewChecker(time.Second)
	c2.CapacityChanged(time.Now().Add(-10*time.Second), 8)
	b := c2.Client(0)
	for n := 1; n <= 4; n++ {
		b.Acquired(heldLease(n, uint64(19+n), time.Second))
	}
	c2.CapacityChanged(time.Now().Add(-50*time.Millisecond), 2)
	b.Acquired(heldLease(5, 24, time.Second)) // 4 held > cap 2, but 8 was live within ±capEps
	for n := 1; n <= 5; n++ {
		b.ReleaseSent(n, uint64(19+n))
	}
	if vs := c2.Finish(time.Now(), nil); len(vs) != 0 {
		t.Fatalf("in-flight grant across a shrink flagged: %v", vs)
	}

	// The same grant long after the shrink has no excuse — but an
	// expired belief no longer counts against the cap.
	c3 := NewChecker(time.Second)
	c3.CapacityChanged(time.Now().Add(-10*time.Second), 2)
	d := c3.Client(0)
	d.Acquired(heldLease(1, 30, time.Second))
	d.Acquired(heldLease(2, 31, -time.Second)) // already expired: not held
	d.Acquired(heldLease(3, 32, time.Second))  // 1 unexpired held: fits
	d.Acquired(heldLease(4, 33, time.Second))  // 2 unexpired held: over
	if vs := violationsByKind(c3.Finish(time.Now(), nil)); vs["capacity-bound"] != 1 {
		t.Fatalf("want 1 capacity-bound violation, got %v", vs)
	}

	// Without a timeline the invariant never fires.
	c4 := NewChecker(time.Second)
	e := c4.Client(0)
	for n := 1; n <= 16; n++ {
		e.Acquired(heldLease(n, uint64(39+n), time.Second))
		e.ReleaseSent(n, uint64(39+n))
	}
	if vs := c4.Finish(time.Now(), nil); len(vs) != 0 {
		t.Fatalf("grants with no capacity timeline flagged: %v", vs)
	}
}

// TestCheckerReadoptionReopens: a release whose round trip failed gets
// re-adopted by the session; the next Observe must reopen the belief
// rather than flag it.
func TestCheckerReadoptionReopens(t *testing.T) {
	c := NewChecker(time.Second)
	a := c.Client(0)
	a.Acquired(heldLease(4, 60, time.Second))
	a.ReleaseSent(4, 60)
	a.Observe([]leaseclient.Lease{heldLease(4, 60, time.Second)}) // re-adopted
	if st := c.Stats(); st.Released != 0 {
		t.Fatalf("re-adopted release still counted: %+v", st)
	}
	a.ReleaseSent(4, 60)
	a.Closed()
	if vs := c.Finish(time.Now(), nil); len(vs) != 0 {
		t.Fatalf("re-adoption flagged: %v", vs)
	}
}
