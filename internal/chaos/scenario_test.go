package chaos

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildRenamed compiles the real server binary once per test binary.
func buildRenamed(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "renamed")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/renamed")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build renamed: %v\n%s", err, out)
	}
	return bin
}

// TestScenarioHealthySmoke drives the WHOLE pipeline — real server
// process, proxy, sessions, checker, post-run audit — through a short
// fault-free run. Every invariant must hold trivially; a violation here
// is a harness bug, not a server bug.
func TestScenarioHealthySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real server process")
	}
	sc := Scenario{
		Name:        "healthy-smoke",
		Description: "miniature fault-free run",
		Clients:     2, LeasesEach: 4, TTL: time.Second,
		Churn: 0.3,
	}
	rep, err := Run(context.Background(), sc, Options{
		Seed:     1,
		Duration: 4 * time.Second,
		Binary:   buildRenamed(t),
		WorkDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("healthy run failed: %+v", rep.Violations)
	}
	if rep.Checker.Acquired < 8 {
		t.Fatalf("only %d leases acquired; sessions never got going", rep.Checker.Acquired)
	}
	if rep.Proxy.Chunks == 0 {
		t.Fatal("no traffic flowed through the proxy")
	}
	if rep.AuditTorn != 0 {
		t.Fatalf("graceful shutdown left %d torn journal bytes", rep.AuditTorn)
	}
	if rep.AuditToken < rep.Checker.MaxToken {
		t.Fatalf("audit watermark %d below client-observed max token %d", rep.AuditToken, rep.Checker.MaxToken)
	}
}

// TestScenarioLossySmoke pushes the pipeline through real wire faults:
// drops, delays, resets. Safety must hold even while liveness degrades.
func TestScenarioLossySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real server process")
	}
	sc := Scenario{
		Name:        "lossy-smoke",
		Description: "miniature lossy run",
		Clients:     3, LeasesEach: 4, TTL: 1500 * time.Millisecond,
		Proxy: Faults{Drop: 0.03, Delay: 0.2, DelayMax: 20 * time.Millisecond, Reset: 0.004},
		Churn: 0.3,
	}
	rep, err := Run(context.Background(), sc, Options{
		Seed:     2,
		Duration: 6 * time.Second,
		Binary:   buildRenamed(t),
		WorkDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("lossy run reported violations: %+v", rep.Violations)
	}
	if rep.Proxy.Dropped+rep.Proxy.Delayed == 0 {
		t.Fatal("lossy scenario injected no faults at all")
	}
}

// TestScenarioResizeChurnSmoke drives a miniature elastic run: the
// namespace grows and shrinks (including below the live population)
// while sessions churn, and both resize invariants — capacity-bound
// grants and shrink quiescence — must come out clean.
func TestScenarioResizeChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real server process")
	}
	sc := Scenario{
		Name:        "resize-churn-smoke",
		Description: "miniature grow/shrink run",
		Clients:     2, LeasesEach: 4, TTL: time.Second,
		Churn:  0.5,
		Resize: &ResizePlan{Base: 16, Steps: []int{48, 8, 32}, Every: 500 * time.Millisecond},
	}
	rep, err := Run(context.Background(), sc, Options{
		Seed:     3,
		Duration: 5 * time.Second,
		Binary:   buildRenamed(t),
		WorkDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("resize run reported violations: %+v", rep.Violations)
	}
	if rep.Resizes < 3 {
		t.Fatalf("only %d resizes applied; the driver never got going", rep.Resizes)
	}
	if rep.Checker.Acquired < 8 {
		t.Fatalf("only %d leases acquired; sessions never got going", rep.Checker.Acquired)
	}
}

// TestScenarioRegistry pins the registry: the named adversaries (and
// the healthy baseline) exist and are self-consistent.
func TestScenarioRegistry(t *testing.T) {
	m := Scenarios()
	for _, name := range []string{"healthy", "lossy", "partition", "crash-storm", "skew", "dup-reorder", "resize-churn", "kitchen-sink"} {
		sc, ok := m[name]
		if !ok {
			t.Fatalf("scenario %q missing from registry", name)
		}
		if sc.Name != name {
			t.Fatalf("scenario %q registered under key %q", sc.Name, name)
		}
		if sc.Clients <= 0 || sc.LeasesEach <= 0 || sc.TTL <= 0 {
			t.Fatalf("scenario %q has degenerate shape: %+v", name, sc)
		}
	}
	if names := ScenarioNames(); len(names) != len(m) {
		t.Fatalf("ScenarioNames lists %d, registry has %d", len(names), len(m))
	}
}
