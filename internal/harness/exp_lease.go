package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	renaming "repro"
	"repro/lease"
)

// runF8 measures the lease layer itself: full acquire→renew→release
// cycles through lease.Manager, sweeping the shard count of its lease
// table (Shards: 1 is the pre-sharding single-mutex manager) and the
// namer underneath. The quantity of interest is how much bookkeeping —
// lock striping, heap pushes, atomic capacity reservation — costs on top
// of the namer's probes, and whether it scales instead of serializing
// every operation on one mutex.
func runF8(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "F8",
		Title:   "Sharded lease manager: acquire/renew/release throughput",
		Claim:   "lock-striped lease table scales bookkeeping with cores; shards=1 reproduces the old single-mutex manager",
		Columns: []string{"namer", "shards", "ns/cycle", "cycles/sec"},
	}
	capacity := 1 << 10
	cycles := 4000
	if cfg.Quick {
		capacity = 1 << 8
		cycles = 1000
	}
	const workers = 8

	// Namer selection goes through the driver registry (the renamed -namer
	// DSN surface) rather than hard-coded constructors.
	namers := []struct {
		name string
		dsn  string
	}{
		{"levelarray", "levelarray?n=%d&seed=%d"},
		{"uniform", "uniform?n=%d&seed=%d"},
	}
	shardCounts := []int{1, 2, 4, 8}

	cell := 0
	for _, spec := range namers {
		for _, shards := range shardCounts {
			nm, err := renaming.Open(fmt.Sprintf(spec.dsn, capacity, seedAt(cfg.Seed, cell)))
			cell++
			if err != nil {
				return nil, err
			}
			nsPerCycle, err := leaseCycleNs(nm, capacity, shards, workers, cycles)
			if err != nil {
				return nil, err
			}
			t.AddRow(spec.name, shards, nsPerCycle, 1e9/nsPerCycle)
		}
	}
	t.AddNote("GOMAXPROCS=%d, %d workers x %d acquire+renew+release cycles, MaxLive=capacity=%d",
		runtime.GOMAXPROCS(0), workers, cycles, capacity)
	t.AddNote("background sweeper off: the cycle cost isolates lock striping + expiry-heap bookkeeping")
	return t, nil
}

// leaseCycleNs runs workers through acquire→renew→release cycles against
// a manager with the given shard count and reports mean wall-clock
// nanoseconds per cycle.
func leaseCycleNs(nm renaming.Namer, capacity, shards, workers, cycles int) (float64, error) {
	mgr, err := lease.New(nm, lease.Config{
		TTL:           time.Minute,
		SweepInterval: -1,
		MaxLive:       capacity,
		Shards:        shards,
	})
	if err != nil {
		return 0, err
	}
	defer mgr.Close()

	run := func(perWorker int) error {
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := 0; c < perWorker; c++ {
					l, err := mgr.Acquire("f8", 0, nil)
					if err != nil {
						errs <- fmt.Errorf("acquire: %w", err)
						return
					}
					if _, err := mgr.Renew(l.Name, l.Token, 0); err != nil {
						errs <- fmt.Errorf("renew: %w", err)
						return
					}
					if err := mgr.Release(l.Name, l.Token); err != nil {
						errs <- fmt.Errorf("release: %w", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		return <-errs
	}
	// Warm up scheduler and namer level occupancy before timing.
	if err := run(cycles / 4); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := run(cycles); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(workers*cycles), nil
}
