package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "X",
		Title:   "demo",
		Claim:   "c",
		Columns: []string{"a", "bb"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("long-cell", 0.125)
	tab.AddNote("note %d", 7)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "claim: c", "long-cell", "2.5", "0.125", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("x,y", 3)
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "a,b\nx;y,3\n"; got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"}, {2, "2"}, {0.125, "0.125"}, {-0.0001, "0"}, {3.14159, "3.142"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.in); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("T1"); !ok {
		t.Error("T1 not registered")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id found")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
	}
}

// TestAllExperimentsQuick runs the entire registry in quick mode: every
// experiment must complete without error and produce a non-empty table.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes tens of seconds")
	}
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			tab, err := exp.Run(RunConfig{Seed: 1, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows produced")
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if err := tab.CSV(&buf); err != nil {
				t.Fatal(err)
			}
		})
	}
}
