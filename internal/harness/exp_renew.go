package harness

import (
	"context"
	"fmt"
	"runtime"
	"time"

	renaming "repro"
	"repro/lease"
)

// runF9 measures the renewal hot path — the traffic that dominates a
// name service at scale, since every live holder heartbeats every
// TTL·fraction while the acquire path idles. The sweep crosses the
// standing holder population with the renew batch size (1 = the per-lease
// Renew API, >1 = RenewBatch) and reads each measurement against the
// heartbeat DEMAND the fraction axis implies: holders/(TTL·fraction)
// required renewals per second. Headroom < 1 means that configuration
// cannot keep its holders alive on one core.
func runF9(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:    "F9",
		Title: "Batched renewal: holders x heartbeat fraction x batch size",
		Claim: "RenewBatch amortizes stripe locks, the clock read and counter updates; per-lease cost drops vs single Renew at scale",
		Columns: []string{
			"holders", "hb frac", "batch", "ns/renew", "renews/sec", "required/sec", "headroom",
		},
	}
	holderCounts := []int{1 << 12, 1 << 16}
	batches := []int{1, 64, 512}
	fracs := []float64{0.5, 1.0 / 3, 0.2}
	passes := 3
	if cfg.Quick {
		holderCounts = []int{1 << 10, 1 << 12}
		batches = []int{1, 64}
		fracs = []float64{1.0 / 3}
		passes = 2
	}
	const ttl = 30 * time.Second // the renamed default lease class

	cell := 0
	for _, holders := range holderCounts {
		for _, batch := range batches {
			nsPerRenew, err := renewNs(holders, batch, passes, seedAt(cfg.Seed, cell))
			cell++
			if err != nil {
				return nil, err
			}
			measured := 1e9 / nsPerRenew
			for _, f := range fracs {
				required := float64(holders) / (ttl.Seconds() * f)
				t.AddRow(holders, fmt.Sprintf("1/%.0f", 1/f), batch,
					nsPerRenew, measured, required, measured/required)
			}
		}
	}
	t.AddNote("GOMAXPROCS=%d; ns/renew is wall time over %d sequential passes across the full standing set",
		runtime.GOMAXPROCS(0), passes)
	t.AddNote("required/sec assumes every holder heartbeats each TTL*frac (TTL=%v); headroom = renews/sec / required", ttl)
	t.AddNote("batch=1 drives Manager.Renew per lease; batch>1 drives RenewBatch in chunks (one lock visit per involved stripe)")
	return t, nil
}

// renewNs builds a manager with `holders` standing leases and measures
// mean wall-clock nanoseconds per renewal, driving the per-lease Renew
// when batch == 1 and RenewBatch chunks otherwise.
func renewNs(holders, batch, passes int, seed uint64) (float64, error) {
	nm, err := renaming.Open(fmt.Sprintf("levelarray?n=%d&seed=%d", holders, seed))
	if err != nil {
		return 0, err
	}
	mgr, err := lease.New(nm, lease.Config{TTL: time.Hour, SweepInterval: -1, MaxLive: holders})
	if err != nil {
		return 0, err
	}
	defer mgr.Close()
	ctx := context.Background()
	leases, err := mgr.AcquireBatch(ctx, "f9", holders, 0, nil)
	if err != nil {
		return 0, err
	}
	items := make([]lease.RenewItem, len(leases))
	for i, l := range leases {
		items[i] = lease.RenewItem{Name: l.Name, Token: l.Token}
	}

	pass := func() error {
		if batch == 1 {
			for _, it := range items {
				if _, err := mgr.Renew(it.Name, it.Token, 0); err != nil {
					return err
				}
			}
			return nil
		}
		for start := 0; start < len(items); start += batch {
			end := start + batch
			if end > len(items) {
				end = len(items)
			}
			results, err := mgr.RenewBatch(ctx, items[start:end], 0)
			if err != nil {
				return err
			}
			for i := range results {
				if results[i].Err != nil {
					return results[i].Err
				}
			}
		}
		return nil
	}
	// One warmup pass settles heap shape and map layout before timing.
	if err := pass(); err != nil {
		return 0, err
	}
	start := time.Now()
	for p := 0; p < passes; p++ {
		if err := pass(); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(passes*holders), nil
}
