package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"

	renaming "repro"
)

// runF1 is the headline comparison: maximum individual step complexity of
// ReBatching (paper constants and tuned), uniform probing, segmented
// scanning, and linear scanning, across a contention sweep.
func runF1(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "F1",
		Title:   "Algorithm comparison: max steps vs n",
		Claim:   "ReBatching flat (lglg n + const) vs uniform's log n vs linear scan's n",
		Columns: []string{"n", "rebatch(paper)", "rebatch(t0=6)", "uniform", "segscan", "linscan"},
	}
	ns := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14}
	if cfg.Quick {
		ns = []int{1 << 8, 1 << 10}
	}
	// Linear scan's total work is Theta(n^2); cap its sweep so F1 stays fast.
	linCap := 1 << 12
	runs := repeats(cfg.Quick)

	measure := func(alg core.Algorithm, n int) (float64, error) {
		var worst float64
		for r := 0; r < runs; r++ {
			res, err := sim.Run(sim.Config{N: n, Algorithm: alg, Seed: seedAt(cfg.Seed, r)})
			if err != nil {
				return 0, err
			}
			if err := res.UniqueNames(); err != nil {
				return 0, err
			}
			if m := float64(res.MaxSteps()); m > worst {
				worst = m
			}
		}
		return worst, nil
	}

	series := make(map[string][]float64, 5)
	for _, n := range ns {
		rebPaper, err := measure(core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1}), n)
		if err != nil {
			return nil, err
		}
		rebTuned, err := measure(core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1, T0Override: 6}), n)
		if err != nil {
			return nil, err
		}
		uni, err := measure(baseline.MustUniform(n, 1, 0), n)
		if err != nil {
			return nil, err
		}
		seg, err := measure(baseline.MustSegScan(n, 1, 0), n)
		if err != nil {
			return nil, err
		}
		lin := "-"
		if n <= linCap {
			v, err := measure(baseline.MustLinearScan(n), n)
			if err != nil {
				return nil, err
			}
			lin = fmt.Sprintf("%d", int(v))
			series["linscan"] = append(series["linscan"], v)
		}
		t.AddRow(n, int(rebPaper), int(rebTuned), int(uni), int(seg), lin)
		series["rebatch(paper)"] = append(series["rebatch(paper)"], rebPaper)
		series["rebatch(t0=6)"] = append(series["rebatch(t0=6)"], rebTuned)
		series["uniform"] = append(series["uniform"], uni)
	}
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	for _, name := range []string{"rebatch(t0=6)", "uniform"} {
		ys := series[name]
		if len(ys) == len(xs) {
			fits := stats.BestFit(xs, ys, stats.LogLog2, stats.Log2, stats.Identity)
			t.AddNote("%s growth: best fit %s", name, fits[0])
		}
	}
	t.AddNote("paper-constant ReBatching carries the additive t0=53; its curve is flat but starts above uniform until n ~ 2^53 (see EXPERIMENTS.md)")
	return t, nil
}

// runF3 compares ReBatching's step complexity across adversaries: the
// upper bound is claimed against the strongest scheduler.
func runF3(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "F3",
		Title:   "Adversary ablation (ReBatching)",
		Claim:   "Thm 4.1 holds against a strong adaptive adversary; strong schedulers cost only a constant factor",
		Columns: []string{"n", "adversary", "max steps", "total/n"},
	}
	ns := []int{1 << 10, 1 << 12}
	if cfg.Quick {
		ns = []int{1 << 10}
	}
	for _, n := range ns {
		alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
		for _, name := range adversary.Names() {
			var worstMax float64
			var totals []float64
			for r := 0; r < repeats(cfg.Quick); r++ {
				adv, err := adversary.ByName(name)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(sim.Config{N: n, Algorithm: alg, Adversary: adv, Seed: seedAt(cfg.Seed, r)})
				if err != nil {
					return nil, err
				}
				if err := res.UniqueNames(); err != nil {
					return nil, err
				}
				if m := float64(res.MaxSteps()); m > worstMax {
					worstMax = m
				}
				totals = append(totals, float64(res.TotalSteps))
			}
			t.AddRow(n, name, int(worstMax), stats.Summarize(totals).Mean/float64(n))
		}
	}
	return t, nil
}

// runF4 profiles the real concurrent driver: wall-clock latency and probe
// counts under actual goroutine contention, packed vs padded TAS arrays.
func runF4(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "F4",
		Title:   "Real-concurrency profile",
		Claim:   "goroutine-contended renaming costs O(lglg n) probes; padding trades 16x memory for fewer cache-line bounces",
		Columns: []string{"goroutines", "layout", "ns/GetName", "probes/GetName"},
	}
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 12
	}
	counts := []int{1, 4, 16, 64, 256}
	layouts := []struct {
		name string
		opts []renaming.Option
	}{
		{"packed", nil},
		{"padded", []renaming.Option{renaming.WithPaddedTAS()}},
	}
	for _, g := range counts {
		for _, layout := range layouts {
			opts := append([]renaming.Option{
				renaming.WithCounting(),
				renaming.WithSeed(seedAt(cfg.Seed, g)),
			}, layout.opts...)
			nm, err := renaming.NewReBatching(n, opts...)
			if err != nil {
				return nil, err
			}
			perG := n / g
			if perG > 64 {
				perG = 64 // bound wall time; per-call cost is what matters
			}
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						if _, err := nm.GetName(); err != nil {
							panic(err) // capacity sized to make this impossible
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			calls := int64(g * perG)
			ops, _, _ := nm.Probes()
			t.AddRow(g, layout.name, elapsed.Nanoseconds()/calls, float64(ops)/float64(calls))
		}
	}
	t.AddNote("namespace n=%d, GOMAXPROCS=%d; probes/GetName is schedule-dependent but stays O(lglg n)+t0 tail", n, runtime.GOMAXPROCS(0))
	return t, nil
}

// runF5 injects crash failures and checks that survivors still terminate
// quickly with small names (wait-freedom under the paper's crash model).
func runF5(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "F5",
		Title:   "Crash-failure tolerance",
		Claim:   "renaming is wait-free: crashes waste namespace but never block survivors",
		Columns: []string{"n", "crashes f", "survivor max steps", "total steps", "max name"},
	}
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 10
	}
	alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
	for _, f := range []int{0, n / 4, n / 2} {
		var worstMax, worstName float64
		var totals []float64
		for r := 0; r < repeats(cfg.Quick); r++ {
			adv := &adversary.Crashing{Inner: adversary.Random{}, F: f, Every: 2}
			res, err := sim.Run(sim.Config{N: n, Algorithm: alg, Adversary: adv, Seed: seedAt(cfg.Seed, r)})
			if err != nil {
				return nil, err
			}
			if err := res.UniqueNames(); err != nil {
				return nil, err
			}
			for p, s := range res.Steps {
				if !res.Crashed[p] && float64(s) > worstMax {
					worstMax = float64(s)
				}
			}
			if m := float64(res.MaxName()); m > worstName {
				worstName = m
			}
			totals = append(totals, float64(res.TotalSteps))
		}
		t.AddRow(n, f, int(worstMax), stats.Summarize(totals).Mean, int(worstName))
	}
	return t, nil
}
