package harness

import (
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// kSweep returns the contention sweep for adaptive experiments (k is the
// actual contention; the algorithms do not know it).
func kSweep(quick bool) []int {
	if quick {
		return []int{1 << 4, 1 << 7, 1 << 10}
	}
	return []int{1 << 4, 1 << 6, 1 << 8, 1 << 10, 1 << 12}
}

// measureAdaptive runs R executions of alg with contention k and returns
// per-run (max individual steps, total steps, max name).
func measureAdaptive(mkAlg func() core.Algorithm, k int, seed uint64, runs int) (maxSteps, totals, maxNames []float64, err error) {
	for r := 0; r < runs; r++ {
		res, err := sim.Run(sim.Config{
			N:         k,
			Algorithm: mkAlg(),
			Seed:      seedAt(seed, r),
		})
		if err != nil {
			return nil, nil, nil, err
		}
		if err := res.UniqueNames(); err != nil {
			return nil, nil, nil, err
		}
		maxSteps = append(maxSteps, float64(res.MaxSteps()))
		totals = append(totals, float64(res.TotalSteps))
		maxNames = append(maxNames, float64(res.MaxName()))
	}
	return maxSteps, totals, maxNames, nil
}

// runT5 measures Theorem 5.1: AdaptiveReBatching's step complexity
// O((log log k)^2) and namespace O(k), with k unknown to the algorithm.
func runT5(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "T5",
		Title:   "AdaptiveReBatching steps and names",
		Claim:   "max steps = O((lglg k)^2), largest name = O(k), w.h.p. (Thm 5.1)",
		Columns: []string{"k", "max steps", "mean max", "(lglg k)^2", "max name", "name/k"},
	}
	mk := func() core.Algorithm { return core.MustAdaptive(core.AdaptiveConfig{Epsilon: 1}) }
	var xs, ys []float64
	for _, k := range kSweep(cfg.Quick) {
		maxSteps, _, maxNames, err := measureAdaptive(mk, k, cfg.Seed, repeats(cfg.Quick))
		if err != nil {
			return nil, err
		}
		s := stats.Summarize(maxSteps)
		nm := stats.Summarize(maxNames)
		lglg := math.Log2(math.Max(math.Log2(float64(k)), 1))
		t.AddRow(k, int(s.Max), s.Mean, lglg*lglg, int(nm.Max), nm.Max/float64(k))
		xs = append(xs, float64(k))
		ys = append(ys, s.Mean)
	}
	fits := stats.BestFit(xs, ys, stats.LogLogSq, stats.Log2, stats.Identity)
	t.AddNote("best growth fit (mean max steps): %s", fits[0])
	t.AddNote("paper bound on largest name: sum_{i<=ceil(lg k)} m_i <= 4(1+eps)k = 8k at eps=1")
	return t, nil
}

// runT6 measures Theorem 5.2: FastAdaptiveReBatching's total work
// O(k log log k), against AdaptiveReBatching's Theta(k (log log k)^2).
func runT6(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "T6",
		Title:   "FastAdaptiveReBatching total work",
		Claim:   "total steps = O(k lglg k); crossover vs Adaptive's k(lglg k)^2 total (Thm 5.2)",
		Columns: []string{"k", "fast total", "fast/(k lglg k)", "adaptive total", "fast/adaptive", "max name/k"},
	}
	mkFast := func() core.Algorithm { return core.MustFastAdaptive(core.FastAdaptiveConfig{}) }
	mkAdpt := func() core.Algorithm { return core.MustAdaptive(core.AdaptiveConfig{Epsilon: 1}) }
	var ratios []float64
	for _, k := range kSweep(cfg.Quick) {
		_, fastTotals, fastNames, err := measureAdaptive(mkFast, k, cfg.Seed, repeats(cfg.Quick))
		if err != nil {
			return nil, err
		}
		_, adptTotals, _, err := measureAdaptive(mkAdpt, k, cfg.Seed, repeats(cfg.Quick))
		if err != nil {
			return nil, err
		}
		fast := stats.Summarize(fastTotals)
		adpt := stats.Summarize(adptTotals)
		nm := stats.Summarize(fastNames)
		lglg := math.Max(math.Log2(math.Max(math.Log2(float64(k)), 1)), 1)
		ratio := fast.Mean / (float64(k) * lglg)
		ratios = append(ratios, ratio)
		t.AddRow(k, fast.Mean, ratio, adpt.Mean, fast.Mean/adpt.Mean, nm.Max/float64(k))
	}
	rs := stats.Summarize(ratios)
	t.AddNote("fast/(k lglg k) across sweep: min %.2f max %.2f — bounded ratio confirms O(k lglg k)", rs.Min, rs.Max)
	return t, nil
}
