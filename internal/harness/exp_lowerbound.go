package harness

import (
	"repro/internal/lowerbound"
	"repro/internal/stats"
)

// runT7 exercises the §6 machinery: the marking gadget's per-layer rates
// against Lemma 6.6's recurrence, and survival of the marked population for
// the Theorem 6.1 layer horizon.
func runT7(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "T7",
		Title:   "Lower-bound marking gadget",
		Claim:   "lambda_{l+1} >= lambda_l^2/(4s); marked processes survive Theta(lglg n) layers w.c.p. (Thm 6.1)",
		Columns: []string{"n", "survived layers (med/max)", "predicted l*", "P(survive l*)", "rate@l*"},
	}
	ns := []int{1 << 8, 1 << 12, 1 << 16, 1 << 20}
	runs := 40
	if cfg.Quick {
		ns = []int{1 << 8, 1 << 12, 1 << 16}
		runs = 15
	}
	for _, n := range ns {
		pred := lowerbound.PredictedLayers(n, 2*n)
		var survived []float64
		var rateAtPred float64
		for r := 0; r < runs; r++ {
			res, err := lowerbound.RunMarking(lowerbound.MarkingConfig{N: n, Seed: seedAt(cfg.Seed, r)})
			if err != nil {
				return nil, err
			}
			survived = append(survived, float64(res.SurvivedLayers()))
			if pred < len(res.Layers) {
				rateAtPred = res.Layers[pred].Rate
			}
		}
		p, err := lowerbound.SurvivalProbability(lowerbound.MarkingConfig{N: n, Seed: cfg.Seed + 7}, pred, runs)
		if err != nil {
			return nil, err
		}
		s := stats.Summarize(survived)
		t.AddRow(n, trimFloat(s.P50)+"/"+trimFloat(s.Max), pred, p, rateAtPred)
	}

	// One detailed rate trajectory: Lemma 6.6 per layer.
	detail, err := lowerbound.RunMarking(lowerbound.MarkingConfig{N: 1 << 16, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	t.AddNote("rate trajectory at n=2^16 (layer: marked, rate, Lemma-6.6 bound):")
	for _, st := range detail.Layers {
		if st.Rate < 1e-6 && st.Marked == 0 {
			break
		}
		t.AddNote("  layer %d: marked=%d rate=%.4g bound=%.4g", st.Layer, st.Marked, st.Rate, st.RecurrenceLB)
	}
	t.AddNote("predicted l* solves S*4*(r0/4)^(2^l) >= 4: l* = lglg(S) - lglg(4/r0) (the EA's '+' is a typo, see EXPERIMENTS.md)")
	t.AddNote("survival probability at l* must be Omega(1); the paper's explicit constant is 0.23")

	// Growth check: survived layers vs lglg n.
	var xs, ys []float64
	for _, n := range ns {
		res, err := lowerbound.RunMarking(lowerbound.MarkingConfig{N: n, Seed: cfg.Seed + 3})
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		ys = append(ys, float64(res.SurvivedLayers()))
	}
	if len(xs) >= 2 {
		fit := stats.Fit(xs, ys, stats.LogLog2)
		t.AddNote("survived-layers growth vs lglg n: %s", fit)
	}
	return t, nil
}
