package harness

import (
	"fmt"
	"os"
	"time"

	renaming "repro"
	"repro/lease"
	"repro/lease/persist"
)

// runF10 measures what durability costs and what recovery buys: the
// journal fsync policy axis (none / never / interval / always) crossed
// with a churn workload over a standing lease population, ending in a
// simulated crash (no flush, no snapshot) and a timed recovery —
// journal replay, snapshot load and Manager.Restore. "none" is the
// journaling-disabled baseline the <5% hot-path budget is measured
// against; "always" pays one fsync per operation and is the price of
// never forgetting a granted token.
func runF10(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:    "F10",
		Title: "Durable lease table: fsync policy x churn x recovery time",
		Claim: "journal+snapshot recovery restores every unexpired lease with its token; interval fsync keeps the hot path within a few % of no journaling",
		Columns: []string{
			"fsync", "standing", "churn ops", "ns/op", "vs none", "journal recs", "recover ms", "recovered",
		},
	}
	type workload struct{ standing, cycles int }
	loads := []workload{{1 << 10, 4096}, {1 << 14, 4096}}
	if cfg.Quick {
		loads = []workload{{1 << 8, 512}}
	}
	policies := []struct {
		name   string
		policy persist.Policy
		use    bool
	}{
		{"none", 0, false},
		{"never", persist.FsyncNever, true},
		{"interval", persist.FsyncInterval, true},
		{"always", persist.FsyncAlways, true},
	}
	cell := 0
	for _, w := range loads {
		var baseNs float64
		for _, p := range policies {
			nsPerOp, recs, recoverMs, recovered, err := churnCrashRecover(w.standing, w.cycles, p.use, p.policy, seedAt(cfg.Seed, cell))
			cell++
			if err != nil {
				return nil, err
			}
			ratio := "-"
			if p.name == "none" {
				baseNs = nsPerOp
			} else if baseNs > 0 {
				ratio = fmt.Sprintf("%.2fx", nsPerOp/baseNs)
			}
			recMs := "-"
			if p.use {
				recMs = fmt.Sprintf("%.1f", recoverMs)
			}
			t.AddRow(p.name, w.standing, w.cycles, nsPerOp, ratio, recs, recMs, recovered)
		}
	}
	t.AddNote("ns/op is wall time per acquire+release churn cycle (sequential, one goroutine) with `standing` leases held throughout")
	t.AddNote("crash = store abandoned without flush or snapshot (persist.Store.Crash); recover ms = persist.Open (replay) + lease.Manager.Restore")
	t.AddNote("always fsyncs per record (durable before the grant returns); interval/never lose at most the flush window / OS cache on kill -9")
	t.AddNote("recovered counts leases alive after recovery: the standing population, plus (interval/never only) up to a flush window of churn leases whose release record was lost — they sit ownerless until their TTL reaps them; under always, exactly the standing set")
	return t, nil
}

// churnCrashRecover runs the F10 cell: build a (possibly journaled)
// manager, hold `standing` leases, run `cycles` acquire+release churn
// cycles, crash, and — when journaled — time the recovery.
func churnCrashRecover(standing, cycles int, journaled bool, policy persist.Policy, seed uint64) (nsPerOp float64, journalRecs int64, recoverMs float64, recovered int, err error) {
	newNamer := func() (renaming.Namer, error) {
		return renaming.Open(fmt.Sprintf("levelarray?n=%d&seed=%d", standing+8, seed))
	}
	nm, err := newNamer()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	lcfg := lease.Config{TTL: time.Hour, SweepInterval: -1, MaxLive: standing + 8}
	var store *persist.Store
	var dir string
	if journaled {
		dir, err = os.MkdirTemp("", "f10-")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer os.RemoveAll(dir)
		// Background compaction off: the cell measures pure journal cost
		// and pure replay cost, not snapshot scheduling.
		store, err = persist.Open(dir, persist.Options{Fsync: policy, CompactEvery: -1})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		lcfg.Observer = store
	}
	mgr, err := lease.New(nm, lcfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for i := 0; i < standing; i++ {
		if _, err := mgr.Acquire("f10-standing", 0, nil); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	start := time.Now()
	for i := 0; i < cycles; i++ {
		l, err := mgr.Acquire("f10-churn", 0, nil)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if err := mgr.Release(l.Name, l.Token); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	nsPerOp = float64(time.Since(start).Nanoseconds()) / float64(cycles)
	if !journaled {
		mgr.Close()
		return nsPerOp, 0, 0, standing, nil
	}
	journalRecs = store.Stats().JournalRecords
	// Crash: manager abandoned (no Close — that would drain the table),
	// store dropped without flush or snapshot.
	mgr.Shutdown()
	if err := store.Crash(); err != nil {
		return 0, 0, 0, 0, err
	}
	t0 := time.Now()
	store2, err := persist.Open(dir, persist.Options{Fsync: policy, CompactEvery: -1})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	nm2, err := newNamer()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	mgr2, err := lease.New(nm2, lease.Config{TTL: time.Hour, SweepInterval: -1, MaxLive: standing + 8, Observer: store2})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	restored, _, err := mgr2.Restore(store2.State())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	recoverMs = float64(time.Since(t0).Microseconds()) / 1e3
	mgr2.Shutdown()
	if err := store2.Close(); err != nil {
		return 0, 0, 0, 0, err
	}
	return nsPerOp, journalRecs, recoverMs, restored, nil
}
