package harness

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// seedAt derives a per-measurement seed from the experiment seed, keeping
// repeated runs independent but reproducible.
func seedAt(base uint64, i int) uint64 {
	return base + uint64(i)*0x9e3779b97f4a7c15
}

// nSweep returns the contention sweep for non-adaptive experiments.
func nSweep(quick bool) []int {
	if quick {
		return []int{1 << 8, 1 << 10, 1 << 12}
	}
	return []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}
}

func repeats(quick bool) int {
	if quick {
		return 3
	}
	return 5
}

// measureReBatching runs R executions of ReBatching(n, eps) under adv and
// returns per-run max steps and total steps.
func measureReBatching(n int, eps float64, t0 int, mkAdv func() sim.Adversary, seed uint64, runs int) (maxSteps, totals []float64, err error) {
	alg, err := core.NewReBatching(core.ReBatchingConfig{N: n, Epsilon: eps, T0Override: t0})
	if err != nil {
		return nil, nil, err
	}
	for r := 0; r < runs; r++ {
		res, err := sim.Run(sim.Config{
			N:         n,
			Algorithm: alg,
			Adversary: mkAdv(),
			Seed:      seedAt(seed, r),
		})
		if err != nil {
			return nil, nil, err
		}
		if err := res.UniqueNames(); err != nil {
			return nil, nil, err
		}
		maxSteps = append(maxSteps, float64(res.MaxSteps()))
		totals = append(totals, float64(res.TotalSteps))
	}
	return maxSteps, totals, nil
}

// runT1 measures Theorem 4.1's individual step complexity:
// max steps <= log log n + O(1) w.h.p., against random and strong
// adversaries.
func runT1(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "T1",
		Title:   "ReBatching individual step complexity",
		Claim:   "max steps <= log2 log2 n + O(1) w.h.p. (additive constant t0+beta; t0=53 at eps=1)",
		Columns: []string{"n", "adversary", "max steps", "mean max", "lglg n", "max - (t0+lglg n)"},
	}
	advs := []struct {
		name string
		mk   func() sim.Adversary
	}{
		{"random", func() sim.Adversary { return adversary.Random{} }},
		{"collision", func() sim.Adversary { return &adversary.CollisionSeeker{} }},
	}
	t0 := core.T0(1)
	var xs, ys []float64
	for _, n := range nSweep(cfg.Quick) {
		for _, adv := range advs {
			maxSteps, _, err := measureReBatching(n, 1, 0, adv.mk, cfg.Seed, repeats(cfg.Quick))
			if err != nil {
				return nil, err
			}
			s := stats.Summarize(maxSteps)
			lglg := math.Log2(math.Log2(float64(n)))
			t.AddRow(n, adv.name, int(s.Max), s.Mean, lglg, s.Max-(float64(t0)+lglg))
			if adv.name == "random" {
				xs = append(xs, float64(n))
				ys = append(ys, s.Mean)
			}
		}
	}
	fits := stats.BestFit(xs, ys, stats.LogLog2, stats.Log2, stats.Identity)
	t.AddNote("best growth fit (random adversary, mean max steps): %s", fits[0])
	t.AddNote("runner-up: %s", fits[1])
	t.AddNote("Theorem 4.1 predicts flat-in-n behaviour dominated by the additive t0=%d until lglg n grows", t0)
	return t, nil
}

// runT2 measures Theorem 4.1's total step complexity: O(n) overall, i.e.
// total/n approximately constant across the sweep.
func runT2(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "T2",
		Title:   "ReBatching total step complexity",
		Claim:   "total steps = O(n): total/n flat as n grows 256x",
		Columns: []string{"n", "adversary", "mean total", "total/n"},
	}
	advs := []struct {
		name string
		mk   func() sim.Adversary
	}{
		{"random", func() sim.Adversary { return adversary.Random{} }},
		{"collision", func() sim.Adversary { return &adversary.CollisionSeeker{} }},
	}
	var ratios []float64
	for _, n := range nSweep(cfg.Quick) {
		for _, adv := range advs {
			_, totals, err := measureReBatching(n, 1, 0, adv.mk, cfg.Seed, repeats(cfg.Quick))
			if err != nil {
				return nil, err
			}
			s := stats.Summarize(totals)
			ratio := s.Mean / float64(n)
			t.AddRow(n, adv.name, s.Mean, ratio)
			if adv.name == "random" {
				ratios = append(ratios, ratio)
			}
		}
	}
	rs := stats.Summarize(ratios)
	t.AddNote("total/n across the sweep (random): min %.2f max %.2f — flat ratio confirms O(n) total work", rs.Min, rs.Max)
	return t, nil
}

// runT3 counts the processes that reach each batch (n_i of Lemma 4.2) and
// compares them against the analytic bound n*_i.
func runT3(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "T3",
		Title:   "Survivors per batch",
		Claim:   "n_i <= n*_i = eps*n/2^(2^i+i+delta) for 1<=i<kappa, n*_kappa = log^2 n (Lemma 4.2, delta->0, eps=1 here)",
		Columns: []string{"n", "adversary", "batch", "survivors n_i", "bound n*_i"},
	}
	ns := []int{1 << 10, 1 << 14}
	if cfg.Quick {
		ns = []int{1 << 10}
	}
	advs := []struct {
		name string
		mk   func() sim.Adversary
	}{
		{"random", func() sim.Adversary { return adversary.Random{} }},
		{"collision", func() sim.Adversary { return &adversary.CollisionSeeker{} }},
	}
	for _, n := range ns {
		alg, err := core.NewReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
		if err != nil {
			return nil, err
		}
		kappa := alg.MaxBatch()
		batchOf := func(loc int) int {
			for i := 0; i <= kappa; i++ {
				lo, hi := alg.BatchBounds(i)
				if loc >= lo && loc < hi {
					return i
				}
			}
			return -1
		}
		for _, adv := range advs {
			// survivors[i] = processes that probed batch i at least once.
			seen := make([]map[int]bool, kappa+1)
			for i := range seen {
				seen[i] = make(map[int]bool)
			}
			res, err := sim.Run(sim.Config{
				N:         n,
				Algorithm: alg,
				Adversary: adv.mk(),
				Seed:      cfg.Seed,
				Trace: func(ev sim.Event) {
					if b := batchOf(ev.Loc); b >= 0 {
						seen[b][ev.PID] = true
					}
				},
			})
			if err != nil {
				return nil, err
			}
			if err := res.UniqueNames(); err != nil {
				return nil, err
			}
			for i := 1; i <= kappa; i++ {
				var bound float64
				if i < kappa {
					bound = float64(n) / math.Pow(2, math.Pow(2, float64(i))+float64(i))
				} else {
					lg := math.Log2(float64(n))
					bound = lg * lg
				}
				t.AddRow(n, adv.name, i, len(seen[i]), bound)
			}
		}
	}
	t.AddNote("n_i counts processes probing batch i, i.e. processes that failed every probe on batches < i")
	return t, nil
}

// runT4 measures how often the backup phase is entered as a function of
// beta; Lemma 4.2 puts the probability at 1/n^(beta-o(1)).
func runT4(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "T4",
		Title:   "Backup-phase frequency",
		Claim:   "P(any process reaches backup) <= 1/n^(beta-o(1)) — zero hits expected at these scales",
		Columns: []string{"n", "beta", "runs", "runs w/ backup", "procs in backup"},
	}
	ns := []int{1 << 8, 1 << 10, 1 << 12}
	runs := 40
	if cfg.Quick {
		ns = []int{1 << 8, 1 << 10}
		runs = 10
	}
	for _, n := range ns {
		for _, beta := range []int{1, 2, 3} {
			alg, err := core.NewReBatching(core.ReBatchingConfig{N: n, Epsilon: 1, Beta: beta})
			if err != nil {
				return nil, err
			}
			// Any step beyond the total batch-probe budget is a backup probe.
			budget := 0
			for i := 0; i <= alg.MaxBatch(); i++ {
				budget += alg.BatchProbes(i)
			}
			runsWithBackup, procsInBackup := 0, 0
			for r := 0; r < runs; r++ {
				res, err := sim.Run(sim.Config{N: n, Algorithm: alg, Seed: seedAt(cfg.Seed, r)})
				if err != nil {
					return nil, err
				}
				hit := 0
				for _, s := range res.Steps {
					if s > budget {
						hit++
					}
				}
				if hit > 0 {
					runsWithBackup++
					procsInBackup += hit
				}
			}
			t.AddRow(n, beta, runs, runsWithBackup, procsInBackup)
		}
	}
	return t, nil
}

// runF2 sweeps the namespace slack epsilon at fixed n, showing the
// time/space trade-off of Eq. (2) and the effect of the analysis constant.
func runF2(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "F2",
		Title:   "Namespace/time trade-off",
		Claim:   "t0 = ceil(17 ln(8e/eps)/eps) shrinks as eps grows; max steps tracks t0 + lglg n",
		Columns: []string{"eps", "namespace m", "t0 (Eq.2)", "max steps", "total/n", "max steps (t0=6)"},
	}
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 10
	}
	for _, eps := range []float64{0.25, 0.5, 1, 2} {
		maxSteps, totals, err := measureReBatching(n, eps, 0, func() sim.Adversary { return adversary.Random{} }, cfg.Seed, repeats(cfg.Quick))
		if err != nil {
			return nil, err
		}
		tunedMax, _, err := measureReBatching(n, eps, 6, func() sim.Adversary { return adversary.Random{} }, cfg.Seed, repeats(cfg.Quick))
		if err != nil {
			return nil, err
		}
		s := stats.Summarize(maxSteps)
		st := stats.Summarize(totals)
		m := int(math.Ceil((1 + eps) * float64(n)))
		t.AddRow(fmt.Sprintf("%.2f", eps), m, core.T0(eps), int(s.Max), st.Mean/float64(n), int(stats.Summarize(tunedMax).Max))
	}
	t.AddNote("n = %d, random adversary; last column overrides the paper constant with t0=6", n)
	return t, nil
}
