package harness

import (
	"sync"

	renaming "repro"
)

// runF6 compares the deterministic Moir–Anderson splitter renaming
// (read/write registers, [31] in the paper) against the randomized
// adaptive TAS-based algorithms on the concurrent driver: namespace
// consumed and per-caller work as the contention k grows.
func runF6(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "F6",
		Title:   "Deterministic vs randomized adaptive renaming",
		Claim:   "Moir-Anderson: deterministic, O(k) steps but Theta(k^2) names; randomized TAS: O(k) names at O((lglg k)^2) probes",
		Columns: []string{"k", "MA max name", "MA regops/call", "adaptive max name", "adaptive probes/call"},
	}
	ks := []int{16, 64, 256, 1024}
	if cfg.Quick {
		ks = []int{16, 64, 256}
	}
	for _, k := range ks {
		ma, err := renaming.NewMoirAnderson(k)
		if err != nil {
			return nil, err
		}
		maMax, err := concurrentMaxName(ma, k)
		if err != nil {
			return nil, err
		}
		ad, err := renaming.NewAdaptive(k,
			renaming.WithCounting(),
			renaming.WithSeed(seedAt(cfg.Seed, k)))
		if err != nil {
			return nil, err
		}
		adMax, err := concurrentMaxName(ad, k)
		if err != nil {
			return nil, err
		}
		ops, _, _ := ad.Probes()
		t.AddRow(k,
			maMax,
			float64(ma.RegisterSteps())/float64(k),
			adMax,
			float64(ops)/float64(k))
	}
	t.AddNote("both columns measured under real goroutine contention (k concurrent callers)")
	t.AddNote("MA names grow ~quadratically with k; adaptive names stay O(k) — the paper's namespace win")
	t.AddNote("MA register ops grow with k; adaptive probes stay near their (lglg k)^2 + t0 budget")
	return t, nil
}

// concurrentMaxName launches k concurrent GetName calls and returns the
// largest acquired name.
func concurrentMaxName(nm renaming.Namer, k int) (int, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		maxName  int
		firstErr error
	)
	for g := 0; g < k; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			u, err := nm.GetName()
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if u > maxName {
				maxName = u
			}
		}()
	}
	wg.Wait()
	return maxName, firstErr
}
