package harness

import (
	"fmt"
	"sync"
	"time"

	renaming "repro"
)

// runF7 is the long-lived benchmark matrix: sustained release/re-acquire
// churn at a fixed background load, comparing the LevelArray against the
// one-shot ReBatching family and the uniform baseline. The quantity
// measured is steady-state TAS probes per acquire — the one-shot
// algorithms' batch layouts drain under churn (released slots reopen in
// batches later callers no longer probe effectively), while the LevelArray
// paper's claim is that its per-level occupancy is self-stabilizing and
// probes stay O(1).
func runF7(cfg RunConfig) (*Table, error) {
	t := &Table{
		ID:      "F7",
		Title:   "Long-lived churn: steady-state probes per acquire",
		Claim:   "LevelArray keeps O(1) probes under release/re-acquire churn; one-shot layouts degrade",
		Columns: []string{"namer", "load", "probes/acquire", "ns/cycle"},
	}
	capacity := 1 << 10
	cycles := 400
	if cfg.Quick {
		capacity = 1 << 8
		cycles = 100
	}
	const workers = 8

	// Namers are selected through the driver registry — the same DSNs an
	// operator would hand to renamed's -namer flag, so the experiment
	// matrix and the service configuration surface can't drift apart.
	namers := []struct {
		name string
		dsn  string
	}{
		{"levelarray", "levelarray?n=%d&counting=1&seed=%d"},
		{"rebatching(t0=6)", "rebatching?n=%d&counting=1&seed=%d&t0=6"},
		{"adaptive", "adaptive?n=%d&counting=1&seed=%d&t0=6"},
		{"fastadaptive", "fastadaptive?n=%d&counting=1&seed=%d&t0=6"},
		{"uniform", "uniform?n=%d&counting=1&seed=%d"},
	}
	loads := []float64{0.25, 0.5, 0.75}

	for _, spec := range namers {
		for li, load := range loads {
			nm, err := renaming.Open(fmt.Sprintf(spec.dsn, capacity, seedAt(cfg.Seed, li)))
			if err != nil {
				return nil, err
			}
			probes, nsPerCycle, err := churnProbes(nm, int(float64(capacity)*load), workers, cycles)
			if err != nil {
				return nil, err
			}
			t.AddRow(spec.name, fmt.Sprintf("%d%%", int(load*100)), probes, nsPerCycle)
		}
	}
	t.AddNote("capacity n=%d, %d workers x %d release/re-acquire cycles after pinning load*n names", capacity, workers, cycles)
	t.AddNote("measured after a warm-up quarter so tables reflect steady state, not the one-shot transient")
	return t, nil
}

// churnProbes pins `pinned` names as background load, then runs workers
// through release/re-acquire cycles and reports mean probes per acquire
// (Release performs no probes) and mean wall-clock nanoseconds per full
// acquire+release cycle.
func churnProbes(nm renaming.Namer, pinned, workers, cycles int) (probes, nsPerCycle float64, err error) {
	type prober interface {
		Probes() (ops, wins int64, ok bool)
	}
	p, ok := nm.(prober)
	if !ok {
		return 0, 0, fmt.Errorf("namer %T does not expose probe counts", nm)
	}
	for i := 0; i < pinned; i++ {
		if _, err := nm.GetName(); err != nil {
			return 0, 0, fmt.Errorf("pinning name %d/%d: %w", i, pinned, err)
		}
	}
	runWorkers := func(perWorker int) error {
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := 0; c < perWorker; c++ {
					u, err := nm.GetName()
					if err != nil {
						errs <- err
						return
					}
					if err := nm.Release(u); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		return <-errs
	}
	// Warm the array into steady state before measuring, so the table
	// reflects sustained traffic rather than the one-shot transient.
	if err := runWorkers(cycles / 4); err != nil {
		return 0, 0, err
	}
	opsBefore, _, _ := p.Probes()
	start := time.Now()
	if err := runWorkers(cycles); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	opsAfter, _, _ := p.Probes()
	acquires := float64(workers * cycles)
	return float64(opsAfter-opsBefore) / acquires, float64(elapsed.Nanoseconds()) / acquires, nil
}
