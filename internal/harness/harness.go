// Package harness defines the reproduction experiments: every quantitative
// claim of the paper (Theorems 4.1, 5.1, 5.2, 6.1, Lemma 4.2, Lemma 6.6 and
// the §4 strawman comparison) maps to a named experiment that sweeps a
// workload, measures the claimed quantity, and renders a table.
// EXPERIMENTS.md records paper-vs-measured for each one;
// cmd/renamebench regenerates them.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim being checked
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are rendered with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-text note rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (no notes).
func (t *Table) CSV(w io.Writer) error {
	rows := append([][]string{t.Columns}, t.Rows...)
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			cell = strings.ReplaceAll(cell, ",", ";")
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// trimFloat renders floats compactly (3 decimals, trailing zeros trimmed).
func trimFloat(x float64) string {
	s := fmt.Sprintf("%.3f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	if s == "-0" {
		s = "0"
	}
	return s
}

// RunConfig tunes an experiment run.
type RunConfig struct {
	// Seed drives all randomness; a fixed seed reproduces tables exactly.
	Seed uint64
	// Quick shrinks sweeps and repetition counts for smoke runs.
	Quick bool
}

// Experiment is one registered reproduction experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig) (*Table, error)
}

// Experiments returns the full registry in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "T1", Title: "ReBatching individual step complexity (Thm 4.1)", Run: runT1},
		{ID: "T2", Title: "ReBatching total step complexity (Thm 4.1)", Run: runT2},
		{ID: "T3", Title: "Survivors per batch vs Lemma 4.2 bound", Run: runT3},
		{ID: "T4", Title: "Backup-phase frequency (Lemma 4.2 tail)", Run: runT4},
		{ID: "T5", Title: "AdaptiveReBatching steps and names (Thm 5.1)", Run: runT5},
		{ID: "T6", Title: "FastAdaptiveReBatching total work (Thm 5.2)", Run: runT6},
		{ID: "T7", Title: "Lower-bound marking gadget (Thm 6.1, Lemma 6.6)", Run: runT7},
		{ID: "F1", Title: "Algorithm comparison: max steps vs n", Run: runF1},
		{ID: "F2", Title: "Namespace/time trade-off (epsilon sweep)", Run: runF2},
		{ID: "F3", Title: "Adversary ablation", Run: runF3},
		{ID: "F4", Title: "Real-concurrency profile (goroutines, padded vs packed)", Run: runF4},
		{ID: "F5", Title: "Crash-failure tolerance", Run: runF5},
		{ID: "F6", Title: "Deterministic (Moir-Anderson) vs randomized adaptive", Run: runF6},
		{ID: "F7", Title: "Long-lived churn: LevelArray vs one-shot namers", Run: runF7},
		{ID: "F8", Title: "Sharded lease manager throughput (shards x namer)", Run: runF8},
		{ID: "F9", Title: "Batched renewal hot path (holders x heartbeat fraction x batch)", Run: runF9},
		{ID: "F10", Title: "Durable lease table (fsync policy x churn x recovery)", Run: runF10},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
