package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
)

// runAll executes n processes of alg under the default (random oblivious)
// simulator schedule and asserts unique, in-range names.
func runAll(t *testing.T, alg core.Algorithm, n int, seed uint64) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{N: n, Algorithm: alg, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.UniqueNames(); err != nil {
		t.Fatal(err)
	}
	for p, u := range res.Names {
		if u == core.NoName {
			t.Fatalf("process %d unnamed", p)
		}
		if u < 0 || u >= alg.Namespace() {
			t.Fatalf("process %d: name %d outside namespace %d", p, u, alg.Namespace())
		}
	}
	return res
}

func TestUniformNamesEveryProcess(t *testing.T) {
	for _, n := range []int{1, 2, 16, 200} {
		runAll(t, MustUniform(n, 1, 0), n, 4)
	}
}

func TestUniformFallbackTerminates(t *testing.T) {
	// A probe cap of 1 forces nearly everyone through the scan fallback.
	runAll(t, MustUniform(100, 0.2, 1), 100, 9)
}

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewUniform(4, 0, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestLinearScanTightNamespace(t *testing.T) {
	const n = 150
	l := MustLinearScan(n)
	if l.Namespace() != n {
		t.Fatalf("Namespace = %d, want %d (tight)", l.Namespace(), n)
	}
	res := runAll(t, l, n, 2)
	// With n processes and n names, every name is assigned.
	assigned := make(map[int]bool, n)
	for _, u := range res.Names {
		assigned[u] = true
	}
	if len(assigned) != n {
		t.Fatalf("assigned %d distinct names, want %d", len(assigned), n)
	}
}

func TestLinearScanValidation(t *testing.T) {
	if _, err := NewLinearScan(0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSegScanNamesEveryProcess(t *testing.T) {
	for _, n := range []int{1, 2, 33, 200} {
		runAll(t, MustSegScan(n, 1, 0), n, 6)
	}
}

func TestSegScanCustomSegSize(t *testing.T) {
	runAll(t, MustSegScan(64, 0.5, 4), 64, 8)
}

func TestSegScanValidation(t *testing.T) {
	if _, err := NewSegScan(0, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewSegScan(4, -1, 0); err == nil {
		t.Error("eps<0 accepted")
	}
}

func TestAdaptiveUniformNamesAreOk(t *testing.T) {
	for _, k := range []int{1, 8, 64, 300} {
		a := MustAdaptiveUniform(2, 0)
		res := runAll(t, a, k, 12)
		if res.MaxName() > 16*k+64 {
			t.Errorf("k=%d: max name %d not O(k)", k, res.MaxName())
		}
	}
}

func TestAdaptiveUniformValidation(t *testing.T) {
	if _, err := NewAdaptiveUniform(1, 61); err == nil {
		t.Error("maxLevel=61 accepted")
	}
	if _, err := NewAdaptiveUniform(1, -1); err == nil {
		t.Error("maxLevel=-1 accepted")
	}
}

// TestF1ShapeUniformGrowsReBatchingFlat is the F1 claim at test scale.
//
// With the paper's literal constants, ReBatching's max steps are dominated
// by the additive t0 = 53 and uniform probing wins at practical n (the
// crossover extrapolates to n ~ 2^53) — EXPERIMENTS.md documents this. The
// *shape* is what the theorems claim: ReBatching's max steps are essentially
// flat in n (log log n + O(1)), uniform's grow like log n. With a tuned t0
// the same shape puts ReBatching strictly below uniform already at n=4096.
func TestF1ShapeUniformGrowsReBatchingFlat(t *testing.T) {
	maxOver := func(alg func(n int) core.Algorithm, n int) int {
		best := 0
		for seed := uint64(0); seed < 3; seed++ {
			if m := runAll(t, alg(n), n, seed).MaxSteps(); m > best {
				best = m
			}
		}
		return best
	}
	uniform := func(n int) core.Algorithm { return MustUniform(n, 1, 0) }
	tuned := func(n int) core.Algorithm {
		return core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1, T0Override: 6})
	}

	uniSmall, uniBig := maxOver(uniform, 256), maxOver(uniform, 4096)
	rebSmall, rebBig := maxOver(tuned, 256), maxOver(tuned, 4096)

	// Uniform grows with n (log-like): strictly more steps at 16x the size.
	if uniBig <= uniSmall {
		t.Errorf("uniform max steps did not grow: %d (n=256) vs %d (n=4096)", uniSmall, uniBig)
	}
	// Tuned ReBatching stays nearly flat: growth bounded by a small additive
	// constant (log log 4096 - log log 256 = 0.58).
	if rebBig > rebSmall+4 {
		t.Errorf("rebatching max steps grew too much: %d (n=256) vs %d (n=4096)", rebSmall, rebBig)
	}
	// And with the tuned constant it beats uniform outright at n=4096.
	if rebBig >= uniBig {
		t.Errorf("tuned rebatching (%d) not below uniform (%d) at n=4096", rebBig, uniBig)
	}
}

// TestBaselinesUniquePropertyQuick property-tests uniqueness across random
// seeds and contentions for each baseline.
func TestBaselinesUniquePropertyQuick(t *testing.T) {
	property := func(seed uint64, rawN uint8) bool {
		n := int(rawN%60) + 1
		for _, alg := range []core.Algorithm{
			MustUniform(n, 1, 0),
			MustLinearScan(n),
			MustSegScan(n, 1, 0),
			MustAdaptiveUniform(2, 0),
		} {
			res, err := sim.Run(sim.Config{N: n, Algorithm: alg, Seed: seed})
			if err != nil {
				return false
			}
			if res.UniqueNames() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
