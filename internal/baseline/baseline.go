// Package baseline implements the comparison renaming algorithms that the
// paper's experiments are measured against:
//
//   - Uniform: the §4 strawman — repeated uniform random probes into the
//     whole namespace, which needs Ω(log n) probes for some process with
//     probability 1-o(1).
//   - LinearScan: deterministic sequential scanning, the trivial O(n)
//     wait-free solution.
//   - SegScan: segmented scanning in the style of randomized naming à la
//     Panconesi et al. — pick a random segment, scan it, move on.
//   - AdaptiveUniform: the natural adaptive strawman — uniform probing
//     into doubling namespaces, giving O(k) names at Θ(log k) steps.
//
// All types implement core.Algorithm, so they run under both the
// concurrent driver and the adversarial simulator.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Uniform probes locations of a namespace of size m = ceil((1+ε)n)
// uniformly at random until it wins one. To keep the algorithm wait-free
// (pure uniform probing has unbounded worst case), it falls back to a
// sequential scan after MaxProbes failed probes; the fallback triggers with
// probability exponentially small in MaxProbes.
type Uniform struct {
	m         int
	maxProbes int
}

// NewUniform builds a uniform-probing namer for n processes with namespace
// slack eps. maxProbes <= 0 selects the default cap of 4m probes.
func NewUniform(n int, eps float64, maxProbes int) (*Uniform, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: Uniform n = %d, need >= 1", n)
	}
	if !(eps > 0) {
		return nil, fmt.Errorf("baseline: Uniform eps = %v, need > 0", eps)
	}
	m := int(math.Ceil((1 + eps) * float64(n)))
	if maxProbes <= 0 {
		maxProbes = 4 * m
	}
	return &Uniform{m: m, maxProbes: maxProbes}, nil
}

// MustUniform is NewUniform for statically-valid arguments.
func MustUniform(n int, eps float64, maxProbes int) *Uniform {
	u, err := NewUniform(n, eps, maxProbes)
	if err != nil {
		panic(err)
	}
	return u
}

// GetName implements core.Algorithm. Interruptible environments are
// polled every core.InterruptStride probes; an interrupt yields
// core.Cancelled before the next probe.
func (u *Uniform) GetName(env core.Env) int {
	for i := 0; i < u.maxProbes; i++ {
		if i%core.InterruptStride == 0 && core.Interrupted(env) {
			return core.Cancelled
		}
		x := env.Intn(u.m)
		if env.TAS(x) {
			return x
		}
	}
	for x := 0; x < u.m; x++ {
		if x%core.InterruptStride == 0 && core.Interrupted(env) {
			return core.Cancelled
		}
		if env.TAS(x) {
			return x
		}
	}
	return core.NoName
}

// Namespace implements core.Algorithm.
func (u *Uniform) Namespace() int { return u.m }

// LinearScan probes locations 0, 1, 2, ... in order until it wins one.
// Namespace size n exactly (tight renaming!), but step complexity Θ(n) per
// process and Θ(n²) total in the worst case.
type LinearScan struct {
	m int
}

// NewLinearScan builds a scanning namer for n processes.
func NewLinearScan(n int) (*LinearScan, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: LinearScan n = %d, need >= 1", n)
	}
	return &LinearScan{m: n}, nil
}

// MustLinearScan is NewLinearScan for statically-valid arguments.
func MustLinearScan(n int) *LinearScan {
	l, err := NewLinearScan(n)
	if err != nil {
		panic(err)
	}
	return l
}

// GetName implements core.Algorithm. Interruptible environments are
// polled every core.InterruptStride locations.
func (l *LinearScan) GetName(env core.Env) int {
	for x := 0; x < l.m; x++ {
		if x%core.InterruptStride == 0 && core.Interrupted(env) {
			return core.Cancelled
		}
		if env.TAS(x) {
			return x
		}
	}
	return core.NoName
}

// Namespace implements core.Algorithm.
func (l *LinearScan) Namespace() int { return l.m }

// SegScan divides a namespace of size m = ceil((1+ε)n) into segments of
// SegSize locations. A process picks a uniformly random segment, scans it
// sequentially, and on exhaustion picks another, falling back to a full
// scan after maxRounds segments. This is the flavour of the randomized
// naming algorithms predating the paper (e.g. Panconesi et al. 1998):
// randomization at the segment level, determinism inside.
type SegScan struct {
	m         int
	segSize   int
	segments  int
	maxRounds int
}

// NewSegScan builds a segmented scanner; segSize <= 0 selects
// max(2, ceil(log2 n)) — the classic choice.
func NewSegScan(n int, eps float64, segSize int) (*SegScan, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: SegScan n = %d, need >= 1", n)
	}
	if !(eps > 0) {
		return nil, fmt.Errorf("baseline: SegScan eps = %v, need > 0", eps)
	}
	m := int(math.Ceil((1 + eps) * float64(n)))
	if segSize <= 0 {
		segSize = 2
		if n > 4 {
			segSize = int(math.Ceil(math.Log2(float64(n))))
		}
	}
	if segSize > m {
		segSize = m
	}
	segments := (m + segSize - 1) / segSize
	return &SegScan{
		m:         m,
		segSize:   segSize,
		segments:  segments,
		maxRounds: 4 * segments,
	}, nil
}

// MustSegScan is NewSegScan for statically-valid arguments.
func MustSegScan(n int, eps float64, segSize int) *SegScan {
	s, err := NewSegScan(n, eps, segSize)
	if err != nil {
		panic(err)
	}
	return s
}

// GetName implements core.Algorithm. Interruptible environments are
// polled on segment boundaries and every core.InterruptStride locations
// of the fallback scan.
func (s *SegScan) GetName(env core.Env) int {
	for round := 0; round < s.maxRounds; round++ {
		if core.Interrupted(env) {
			return core.Cancelled
		}
		seg := env.Intn(s.segments)
		lo := seg * s.segSize
		hi := lo + s.segSize
		if hi > s.m {
			hi = s.m
		}
		for x := lo; x < hi; x++ {
			if env.TAS(x) {
				return x
			}
		}
	}
	for x := 0; x < s.m; x++ {
		if x%core.InterruptStride == 0 && core.Interrupted(env) {
			return core.Cancelled
		}
		if env.TAS(x) {
			return x
		}
	}
	return core.NoName
}

// Namespace implements core.Algorithm.
func (s *SegScan) Namespace() int { return s.m }

// AdaptiveUniform is the adaptive strawman: level ℓ = 0, 1, ... owns a
// fresh namespace of size 2^(ℓ+1) (laid out consecutively), and a process
// performs ProbesPerLevel uniform probes at each level before climbing.
// Names are O(k) w.h.p. and step complexity is Θ(log k): the baseline that
// AdaptiveReBatching's O((log log k)²) is compared against.
type AdaptiveUniform struct {
	probesPerLevel int
	maxLevel       int
}

// NewAdaptiveUniform builds the adaptive strawman. probesPerLevel <= 0
// selects 2. maxLevel bounds the address space (0 selects 40, addressing
// up to ~2^41 locations lazily).
func NewAdaptiveUniform(probesPerLevel, maxLevel int) (*AdaptiveUniform, error) {
	if probesPerLevel <= 0 {
		probesPerLevel = 2
	}
	if maxLevel == 0 {
		maxLevel = 40
	}
	if maxLevel < 1 || maxLevel > 60 {
		return nil, fmt.Errorf("baseline: AdaptiveUniform maxLevel = %d, need 1..60", maxLevel)
	}
	return &AdaptiveUniform{probesPerLevel: probesPerLevel, maxLevel: maxLevel}, nil
}

// MustAdaptiveUniform is NewAdaptiveUniform for statically-valid arguments.
func MustAdaptiveUniform(probesPerLevel, maxLevel int) *AdaptiveUniform {
	a, err := NewAdaptiveUniform(probesPerLevel, maxLevel)
	if err != nil {
		panic(err)
	}
	return a
}

// GetName implements core.Algorithm. Level ℓ occupies locations
// [2^(ℓ+1)-2, 2^(ℓ+2)-2). Interruptible environments are polled on level
// boundaries and every core.InterruptStride locations of the final scan.
func (a *AdaptiveUniform) GetName(env core.Env) int {
	for ell := 0; ell < a.maxLevel; ell++ {
		if core.Interrupted(env) {
			return core.Cancelled
		}
		base := 1<<(ell+1) - 2
		size := 1 << (ell + 1)
		for j := 0; j < a.probesPerLevel; j++ {
			x := base + env.Intn(size)
			if env.TAS(x) {
				return x
			}
		}
	}
	// Exhausted every level: scan the top level to stay wait-free. With
	// maxLevel chosen sensibly this is unreachable in practice.
	base := 1<<a.maxLevel - 2
	for x := base; x < base+(1<<a.maxLevel); x++ {
		if (x-base)%core.InterruptStride == 0 && core.Interrupted(env) {
			return core.Cancelled
		}
		if env.TAS(x) {
			return x
		}
	}
	return core.NoName
}

// Namespace implements core.Algorithm: the exclusive upper bound of the
// bounded address space.
func (a *AdaptiveUniform) Namespace() int { return 1<<(a.maxLevel+1) - 2 }

var (
	_ core.Algorithm = (*Uniform)(nil)
	_ core.Algorithm = (*LinearScan)(nil)
	_ core.Algorithm = (*SegScan)(nil)
	_ core.Algorithm = (*AdaptiveUniform)(nil)
)
