package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tas"
	"repro/internal/xrand"
)

// seqEnv is a minimal sequential Env for driving single GetName calls.
type seqEnv struct {
	space tas.Space
	rng   *xrand.Rand
}

func (e *seqEnv) TAS(loc int) bool { return e.space.TAS(loc) }
func (e *seqEnv) Intn(n int) int   { return e.rng.Intn(n) }

// fillAllBut sets every location of a dense space except `free`.
func fillAllBut(space *tas.Dense, free int) {
	for i := 0; i < space.Len(); i++ {
		if i != free {
			space.TAS(i)
		}
	}
}

func TestUniformScanFallbackFindsLastSlot(t *testing.T) {
	// One free slot and a probe cap of 1: the random probe almost surely
	// misses, so the scan fallback must find the slot deterministically.
	u := MustUniform(16, 0.5, 1)
	space := tas.NewDense(u.Namespace())
	free := u.Namespace() - 1
	fillAllBut(space, free)
	env := &seqEnv{space: space, rng: xrand.New(3)}
	if got := u.GetName(env); got != free {
		t.Fatalf("GetName = %d, want %d", got, free)
	}
}

func TestUniformReturnsNoNameWhenFull(t *testing.T) {
	u := MustUniform(4, 0.5, 1)
	space := tas.NewDense(u.Namespace())
	for i := 0; i < u.Namespace(); i++ {
		space.TAS(i)
	}
	env := &seqEnv{space: space, rng: xrand.New(1)}
	if got := u.GetName(env); got != core.NoName {
		t.Fatalf("GetName on full space = %d, want NoName", got)
	}
}

func TestLinearScanReturnsNoNameWhenFull(t *testing.T) {
	l := MustLinearScan(4)
	space := tas.NewDense(4)
	for i := 0; i < 4; i++ {
		space.TAS(i)
	}
	env := &seqEnv{space: space, rng: xrand.New(1)}
	if got := l.GetName(env); got != core.NoName {
		t.Fatalf("GetName on full space = %d, want NoName", got)
	}
}

func TestSegScanFallbackFindsLastSlot(t *testing.T) {
	s := MustSegScan(32, 0.5, 4)
	space := tas.NewDense(s.Namespace())
	free := s.Namespace() - 1
	fillAllBut(space, free)
	env := &seqEnv{space: space, rng: xrand.New(7)}
	if got := s.GetName(env); got != free {
		t.Fatalf("GetName = %d, want %d", got, free)
	}
}

func TestSegScanReturnsNoNameWhenFull(t *testing.T) {
	s := MustSegScan(8, 0.5, 2)
	space := tas.NewDense(s.Namespace())
	for i := 0; i < s.Namespace(); i++ {
		space.TAS(i)
	}
	env := &seqEnv{space: space, rng: xrand.New(2)}
	if got := s.GetName(env); got != core.NoName {
		t.Fatalf("GetName on full space = %d, want NoName", got)
	}
}

func TestAdaptiveUniformClimbsPastFullLevels(t *testing.T) {
	// Fill the first few levels entirely; the process must climb and win
	// at a higher level.
	a := MustAdaptiveUniform(2, 8)
	space := tas.NewDense(a.Namespace())
	// Levels 0..2 occupy locations [0, 2^4-2).
	for loc := 0; loc < 1<<4-2; loc++ {
		space.TAS(loc)
	}
	env := &seqEnv{space: space, rng: xrand.New(11)}
	got := a.GetName(env)
	if got < 1<<4-2 {
		t.Fatalf("GetName = %d, expected a name above the filled levels", got)
	}
}

func TestMustConstructorsPanicOnBadInput(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"uniform", func() { MustUniform(0, 1, 0) }},
		{"linscan", func() { MustLinearScan(0) }},
		{"segscan", func() { MustSegScan(0, 1, 0) }},
		{"adaptiveuniform", func() { MustAdaptiveUniform(1, 99) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}
