package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tas"
)

func rebatching(t *testing.T, n int) *core.ReBatching {
	t.Helper()
	return core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
}

func TestRunAllProcessesNamed(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 256} {
		res, err := Run(Config{N: n, Algorithm: rebatching(t, n), Seed: 42})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := res.UniqueNames(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for p, u := range res.Names {
			if u == NoName {
				t.Fatalf("n=%d: process %d unnamed", n, p)
			}
		}
		if res.TotalSteps <= 0 {
			t.Fatalf("n=%d: no steps recorded", n)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{N: 100, Algorithm: rebatching(t, 100), Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalSteps != b.TotalSteps {
		t.Fatalf("total steps diverged: %d != %d", a.TotalSteps, b.TotalSteps)
	}
	for p := range a.Names {
		if a.Names[p] != b.Names[p] || a.Steps[p] != b.Steps[p] {
			t.Fatalf("process %d diverged: name %d/%d steps %d/%d",
				p, a.Names[p], b.Names[p], a.Steps[p], b.Steps[p])
		}
	}
}

func TestRunSeedChangesExecution(t *testing.T) {
	a, err := Run(Config{N: 64, Algorithm: rebatching(t, 64), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{N: 64, Algorithm: rebatching(t, 64), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for p := range a.Names {
		if a.Names[p] != b.Names[p] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical name assignments")
	}
}

func TestRunStepAccounting(t *testing.T) {
	res, err := Run(Config{N: 32, Algorithm: rebatching(t, 32), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, s := range res.Steps {
		if s < 1 {
			t.Fatalf("a process took %d steps; every process must take >= 1", s)
		}
		sum += int64(s)
	}
	if sum != res.TotalSteps {
		t.Fatalf("per-process steps sum to %d, TotalSteps = %d", sum, res.TotalSteps)
	}
	if res.MaxSteps() < 1 {
		t.Fatal("MaxSteps < 1")
	}
}

func TestRunTraceMatchesCounters(t *testing.T) {
	var events int64
	wins := 0
	res, err := Run(Config{
		N:         16,
		Algorithm: rebatching(t, 16),
		Seed:      9,
		Trace: func(ev Event) {
			events++
			if ev.GlobalStep != events {
				t.Errorf("trace out of order: got global step %d at event %d", ev.GlobalStep, events)
			}
			if ev.Won {
				wins++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if events != res.TotalSteps {
		t.Fatalf("trace saw %d events, TotalSteps = %d", events, res.TotalSteps)
	}
	// Every process wins exactly once (ReBatching processes stop at their
	// first win).
	if wins != 16 {
		t.Fatalf("trace saw %d wins, want 16", wins)
	}
}

func TestRunWithDenseSpace(t *testing.T) {
	alg := rebatching(t, 50)
	res, err := Run(Config{N: 50, Algorithm: alg, Seed: 5, Space: tas.NewDense(alg.Namespace())})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.UniqueNames(); err != nil {
		t.Fatal(err)
	}
}

func TestRunAdaptiveUnbounded(t *testing.T) {
	res, err := Run(Config{
		N:         120,
		Algorithm: core.MustAdaptive(core.AdaptiveConfig{Epsilon: 1}),
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.UniqueNames(); err != nil {
		t.Fatal(err)
	}
	if res.MaxName() > 8*120+64 {
		t.Fatalf("adaptive max name %d not O(k)", res.MaxName())
	}
}

func TestRunFastAdaptiveUnbounded(t *testing.T) {
	res, err := Run(Config{
		N:         120,
		Algorithm: core.MustFastAdaptive(core.FastAdaptiveConfig{}),
		Seed:      13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.UniqueNames(); err != nil {
		t.Fatal(err)
	}
	if res.MaxName() > 16*120+64 {
		t.Fatalf("fast adaptive max name %d not O(k)", res.MaxName())
	}
}

func TestRunMaxStepsAborts(t *testing.T) {
	_, err := Run(Config{N: 64, Algorithm: rebatching(t, 64), Seed: 1, MaxSteps: 3})
	if err == nil {
		t.Fatal("expected MaxSteps error")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{N: 0, Algorithm: rebatching(t, 4)}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Run(Config{N: 4}); err == nil {
		t.Error("missing algorithm accepted")
	}
}

// invalidAdversary schedules pid 0 forever, even after it finishes.
type invalidAdversary struct{}

func (invalidAdversary) Next(v *View) Action {
	return Action{Step: 0}
}

func TestRunRejectsInvalidAdversary(t *testing.T) {
	// With n=2, once process 0 finishes the adversary's fixation on pid 0
	// becomes invalid and Run must error rather than hang.
	_, err := Run(Config{N: 2, Algorithm: rebatching(t, 2), Seed: 1, Adversary: invalidAdversary{}})
	if !errors.Is(err, errInvalidAction) {
		t.Fatalf("got %v, want errInvalidAction", err)
	}
}

// stallingAdversary returns an empty action.
type stallingAdversary struct{}

func (stallingAdversary) Next(v *View) Action { return Action{Step: -1} }

func TestRunRejectsStallingAdversary(t *testing.T) {
	if _, err := Run(Config{N: 2, Algorithm: rebatching(t, 2), Seed: 1, Adversary: stallingAdversary{}}); err == nil {
		t.Fatal("stalling adversary accepted")
	}
}

// crashFirstAdversary crashes process 0 at the first opportunity, then
// schedules randomly.
type crashFirstAdversary struct{ crashed bool }

func (a *crashFirstAdversary) Next(v *View) Action {
	ready := v.Ready()
	if !a.crashed && v.IsReady(0) {
		a.crashed = true
		step := -1
		for _, pid := range ready {
			if pid != 0 {
				step = pid
				break
			}
		}
		return Action{Crash: []int{0}, Step: step}
	}
	return Action{Step: ready[v.Rand().Intn(len(ready))]}
}

func TestRunCrashInjection(t *testing.T) {
	res, err := Run(Config{N: 8, Algorithm: rebatching(t, 8), Seed: 2, Adversary: &crashFirstAdversary{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed[0] {
		t.Fatal("process 0 not marked crashed")
	}
	if res.Names[0] != NoName {
		t.Fatalf("crashed process holds name %d", res.Names[0])
	}
	for p := 1; p < 8; p++ {
		if res.Crashed[p] {
			t.Fatalf("process %d unexpectedly crashed", p)
		}
		if res.Names[p] == NoName {
			t.Fatalf("surviving process %d unnamed", p)
		}
	}
	if err := res.UniqueNames(); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		if _, err := Run(Config{N: 50, Algorithm: rebatching(t, 50), Seed: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		// Error path must also reap all goroutines.
		if _, err := Run(Config{N: 50, Algorithm: rebatching(t, 50), Seed: uint64(i), MaxSteps: 5}); err == nil {
			t.Fatal("expected MaxSteps error")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Names: []int{5, NoName, 2},
		Steps: []int{3, 1, 9},
	}
	if got := r.MaxSteps(); got != 9 {
		t.Errorf("MaxSteps = %d, want 9", got)
	}
	if got := r.MaxName(); got != 5 {
		t.Errorf("MaxName = %d, want 5", got)
	}
	if err := r.UniqueNames(); err != nil {
		t.Errorf("UniqueNames: %v", err)
	}
	r.Names[1] = 5
	if err := r.UniqueNames(); err == nil {
		t.Error("duplicate names not detected")
	}
}
