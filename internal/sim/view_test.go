package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tas"
)

// inspectingAdversary exercises every View accessor while scheduling
// round-robin over the ready list.
type inspectingAdversary struct {
	t        *testing.T
	n        int
	sawSteps bool
	sawSet   bool
}

func (a *inspectingAdversary) Next(v *View) Action {
	if v.N() != a.n {
		a.t.Errorf("N() = %d, want %d", v.N(), a.n)
	}
	ready := v.Ready()
	if len(ready) == 0 {
		a.t.Error("Next called with empty ready set")
	}
	gs := v.GlobalStep()
	if gs < 0 {
		a.t.Errorf("GlobalStep() = %d", gs)
	}
	for _, pid := range ready {
		if !v.IsReady(pid) {
			a.t.Errorf("pid %d in Ready() but IsReady false", pid)
		}
		loc := v.Pending(pid)
		if loc < 0 {
			a.t.Errorf("Pending(%d) = %d", pid, loc)
		}
		if v.IsSet(loc) {
			a.sawSet = true
		}
		if v.StepsTaken(pid) > 0 {
			a.sawSteps = true
		}
	}
	return Action{Step: ready[0]}
}

func TestViewAccessors(t *testing.T) {
	const n = 64
	alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 0.25, T0Override: 1})
	adv := &inspectingAdversary{t: t, n: n}
	res, err := Run(Config{
		N:         n,
		Algorithm: alg,
		Adversary: adv,
		Seed:      13,
		Space:     tas.NewDense(alg.Namespace()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.UniqueNames(); err != nil {
		t.Fatal(err)
	}
	if !adv.sawSteps {
		t.Error("StepsTaken never exceeded 0 despite multi-step processes")
	}
	if !adv.sawSet {
		t.Error("IsSet never observed a set location in a dense, contended space")
	}
}

func TestViewPendingPanicsWhenNotReady(t *testing.T) {
	// Build a tiny run and probe Pending on a finished process via a
	// custom adversary that tracks completion.
	var v0 *View
	adv := funcAdversary(func(v *View) Action {
		v0 = v
		return Action{Step: v.Ready()[0]}
	})
	if _, err := Run(Config{N: 1, Algorithm: core.MustReBatching(core.ReBatchingConfig{N: 1, Epsilon: 1}), Adversary: adv, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Pending on finished process did not panic")
		}
	}()
	v0.Pending(0) // process 0 has terminated by now
}

// funcAdversary adapts a function to the Adversary interface.
type funcAdversary func(v *View) Action

func (f funcAdversary) Next(v *View) Action { return f(v) }

func TestViewIsSetWithoutReader(t *testing.T) {
	// A space without IsSet support must report false rather than panic.
	v := &View{space: nonReadableSpace{}}
	if v.IsSet(3) {
		t.Fatal("IsSet on non-readable space returned true")
	}
}

type nonReadableSpace struct{}

func (nonReadableSpace) TAS(int) bool { return true }
func (nonReadableSpace) Len() int     { return tas.Unbounded }

// TestAlgorithmForMixesAlgorithms runs two different algorithms in one
// execution sharing one TAS space — half the processes scan linearly from
// the top of the namespace, half run ReBatching — and uniqueness must
// still hold because it derives from TAS alone.
func TestAlgorithmForMixesAlgorithms(t *testing.T) {
	const n = 64
	reb := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
	res, err := Run(Config{
		N: n,
		AlgorithmFor: func(pid int) core.Algorithm {
			if pid%2 == 0 {
				return reb
			}
			return reverseScan{m: reb.Namespace()}
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.UniqueNames(); err != nil {
		t.Fatal(err)
	}
	for p, u := range res.Names {
		if u == NoName {
			t.Fatalf("process %d unnamed", p)
		}
	}
}

// reverseScan claims the highest free location.
type reverseScan struct{ m int }

func (r reverseScan) GetName(env core.Env) int {
	for x := r.m - 1; x >= 0; x-- {
		if env.TAS(x) {
			return x
		}
	}
	return core.NoName
}

func (r reverseScan) Namespace() int { return r.m }
