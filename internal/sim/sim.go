// Package sim executes the renaming algorithms under an adversarial
// scheduler, in lock step, counting exactly the shared-memory steps that
// the paper's complexity measure charges.
//
// Each simulated process runs the *real* algorithm code (internal/core)
// inside a goroutine, but every Env.TAS call blocks on a handshake with the
// scheduler: the process posts the location it wants to access and waits
// until the adversary schedules it. At any moment at most one process is
// executing, so runs are fully deterministic given a seed, adversary, and
// algorithm — and the adversary observes pending operations (including the
// outcome of coin flips) before choosing, which is precisely the paper's
// strong adaptive adversary. Crashes are injected by failing a process's
// pending step; the algorithm code itself stays crash-oblivious.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/tas"
	"repro/internal/xrand"
)

// NoName mirrors core.NoName for callers that only import sim.
const NoName = core.NoName

// Action is one adversary decision: optionally crash some ready processes,
// then schedule one ready process to take its pending shared-memory step.
// Step must name a ready process unless every process crashed.
type Action struct {
	Crash []int // pids to crash before the step; may be nil
	Step  int   // pid to schedule; -1 means "only crashes this turn"
}

// Adversary chooses the interleaving. Implementations that only look at
// View.Ready and their own randomness are oblivious adversaries; those that
// inspect pending operations or memory are strong (adaptive) adversaries.
type Adversary interface {
	Next(v *View) Action
}

// Event describes one executed shared-memory step, for tracing.
type Event struct {
	PID        int
	Loc        int
	Won        bool
	ProcStep   int   // 1-based step index within the process
	GlobalStep int64 // 1-based step index within the execution
}

// Config describes one simulated execution.
type Config struct {
	// N is the number of participating processes.
	N int
	// Algorithm is shared by all processes (the usual case).
	Algorithm core.Algorithm
	// AlgorithmFor, if set, overrides Algorithm per process (used to mix
	// algorithm instances; exactly one of the two must be non-nil).
	AlgorithmFor func(pid int) core.Algorithm
	// Adversary schedules the execution. Defaults to a uniformly random
	// (oblivious) scheduler.
	Adversary Adversary
	// Seed drives all randomness: process coins, adversary coins.
	Seed uint64
	// Space backs the shared memory. Defaults to tas.NewSparse(), which
	// supports the unbounded adaptive algorithms.
	Space tas.Space
	// MaxSteps aborts executions that exceed this many total steps
	// (a safety net against scheduling bugs). Defaults to 1<<40.
	MaxSteps int64
	// Trace, if non-nil, receives every executed step.
	Trace func(Event)
}

// Result summarizes a simulated execution.
type Result struct {
	// Names[p] is process p's acquired name, or NoName if it crashed or
	// its (backup-free) algorithm failed.
	Names []int
	// Steps[p] counts process p's shared-memory steps.
	Steps []int
	// Crashed[p] reports whether the adversary crashed process p.
	Crashed []bool
	// TotalSteps is the execution's total step complexity (work).
	TotalSteps int64
}

// MaxSteps returns the maximum individual step complexity.
func (r *Result) MaxSteps() int {
	maxSteps := 0
	for _, s := range r.Steps {
		if s > maxSteps {
			maxSteps = s
		}
	}
	return maxSteps
}

// MaxName returns the largest acquired name, or NoName if none.
func (r *Result) MaxName() int {
	maxName := NoName
	for _, u := range r.Names {
		if u > maxName {
			maxName = u
		}
	}
	return maxName
}

// UniqueNames verifies the renaming safety property: no two non-crashed,
// successful processes share a name. It returns an error describing the
// first violation.
func (r *Result) UniqueNames() error {
	seen := make(map[int]int, len(r.Names))
	for p, u := range r.Names {
		if u == NoName {
			continue
		}
		if q, dup := seen[u]; dup {
			return fmt.Errorf("sim: processes %d and %d both hold name %d", q, p, u)
		}
		seen[u] = p
	}
	return nil
}

// crashSignal is the sentinel panic used to unwind a crashed process out of
// the algorithm code.
type crashSignal struct{}

// tasReply is the scheduler's answer to a pending TAS request.
type tasReply struct {
	won   bool
	crash bool
}

// proc is the scheduler-side handle of one simulated process.
type proc struct {
	req  chan int      // process -> scheduler: pending TAS location
	resp chan tasReply // scheduler -> process: step outcome
	// pending is the location of the posted-but-not-executed TAS request;
	// valid iff ready.
	pending int
	ready   bool
	done    bool
	steps   int
}

// simEnv implements core.Env for one simulated process.
type simEnv struct {
	p   *proc
	rng *xrand.Rand
}

func (e *simEnv) TAS(loc int) bool {
	e.p.req <- loc
	rep := <-e.p.resp
	if rep.crash {
		panic(crashSignal{})
	}
	return rep.won
}

func (e *simEnv) Intn(n int) int { return e.rng.Intn(n) }

// errInvalidAction reports an adversary scheduling a non-ready process.
var errInvalidAction = errors.New("sim: adversary scheduled a process that is not ready")

// Run executes cfg to completion (all processes named, crashed, or failed)
// and returns the execution summary.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: N = %d, need >= 1", cfg.N)
	}
	algFor := cfg.AlgorithmFor
	if algFor == nil {
		if cfg.Algorithm == nil {
			return nil, errors.New("sim: no algorithm configured")
		}
		algFor = func(int) core.Algorithm { return cfg.Algorithm }
	}
	if cfg.Space == nil {
		cfg.Space = tas.NewSparse()
	}
	if cfg.Adversary == nil {
		cfg.Adversary = uniformAdversary{}
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1 << 40
	}

	res := &Result{
		Names:   make([]int, cfg.N),
		Steps:   make([]int, cfg.N),
		Crashed: make([]bool, cfg.N),
	}
	procs := make([]*proc, cfg.N)
	for p := 0; p < cfg.N; p++ {
		res.Names[p] = NoName
		procs[p] = &proc{
			req:  make(chan int),
			resp: make(chan tasReply),
		}
	}

	view := &View{
		procs: procs,
		space: cfg.Space,
		rng:   xrand.NewStream(cfg.Seed, ^uint64(0)),
		pos:   make([]int, cfg.N),
	}
	for i := range view.pos {
		view.pos[i] = -1
	}

	// await blocks until process p posts its next request or terminates,
	// keeping the view's ready-set current. Membership updates are O(1)
	// (swap-remove), so the scheduler's per-step cost is independent of n.
	await := func(p int) {
		pr := procs[p]
		loc, ok := <-pr.req
		if !ok {
			pr.done = true
			pr.ready = false
			view.removeReady(p)
			return
		}
		pr.pending = loc
		pr.ready = true
		view.addReady(p)
	}

	// Launch one goroutine per process. Each runs the unmodified algorithm
	// and communicates only through the Env handshake. Awaiting each
	// process's first request before spawning the next extends the
	// lock-step discipline to the code that runs before the first
	// shared-memory step — at every instant at most one process executes,
	// so algorithm-local lazy initialization needs no synchronization.
	// The goroutine writes its result before closing req, so the
	// scheduler's receive of the close synchronizes the write.
	for p := 0; p < cfg.N; p++ {
		go func(pid int) {
			pr := procs[pid]
			defer close(pr.req)
			defer func() {
				if r := recover(); r != nil {
					if _, isCrash := r.(crashSignal); isCrash {
						res.Crashed[pid] = true
						return
					}
					panic(r)
				}
			}()
			env := &simEnv{p: pr, rng: xrand.NewStream(cfg.Seed, uint64(pid))}
			res.Names[pid] = algFor(pid).GetName(env)
		}(p)
		await(p)
	}
	// kill crashes a ready process and reaps its goroutine.
	kill := func(p int) {
		pr := procs[p]
		pr.resp <- tasReply{crash: true}
		if _, ok := <-pr.req; ok {
			// The algorithm swallowed the crash panic; that would be a
			// bug in this repository, not in the adversary.
			panic("sim: process survived a crash")
		}
		pr.done = true
		pr.ready = false
		view.removeReady(p)
	}
	// Abort path: ensure no goroutine outlives Run even on error.
	defer func() {
		for p, pr := range procs {
			if pr.ready {
				kill(p)
			}
		}
	}()

	for {
		if len(view.ready) == 0 {
			return res, nil
		}
		act := cfg.Adversary.Next(view)
		if act.Step == -1 && len(act.Crash) == 0 {
			return nil, errors.New("sim: adversary made no progress (no step, no crash)")
		}
		for _, c := range act.Crash {
			if c < 0 || c >= cfg.N || !procs[c].ready {
				return nil, fmt.Errorf("sim: adversary crashed invalid process %d", c)
			}
			kill(c)
		}
		if act.Step == -1 {
			continue
		}
		if act.Step < 0 || act.Step >= cfg.N || !procs[act.Step].ready {
			return nil, errInvalidAction
		}
		pr := procs[act.Step]
		won := cfg.Space.TAS(pr.pending)
		pr.steps++
		res.Steps[act.Step]++
		res.TotalSteps++
		view.step = res.TotalSteps
		if cfg.Trace != nil {
			cfg.Trace(Event{
				PID:        act.Step,
				Loc:        pr.pending,
				Won:        won,
				ProcStep:   pr.steps,
				GlobalStep: res.TotalSteps,
			})
		}
		if res.TotalSteps > cfg.MaxSteps {
			return nil, fmt.Errorf("sim: exceeded MaxSteps = %d", cfg.MaxSteps)
		}
		pr.ready = false
		pr.resp <- tasReply{won: won}
		await(act.Step)
	}
}

// View is the adversary's window into the execution. Strong adversaries may
// use every method; oblivious adversaries must restrict themselves to
// Ready, N, GlobalStep and Rand (this is a documentation contract — the
// type system cannot cheaply enforce it).
type View struct {
	procs []*proc
	space tas.Space
	rng   *xrand.Rand
	step  int64
	// ready is maintained incrementally (swap-remove), so its order is
	// unspecified but deterministic for a fixed execution. pos[pid] is the
	// pid's index in ready, or -1.
	ready []int
	pos   []int
}

func (v *View) addReady(pid int) {
	if v.pos[pid] != -1 {
		return
	}
	v.pos[pid] = len(v.ready)
	v.ready = append(v.ready, pid)
}

func (v *View) removeReady(pid int) {
	i := v.pos[pid]
	if i == -1 {
		return
	}
	last := len(v.ready) - 1
	moved := v.ready[last]
	v.ready[i] = moved
	v.pos[moved] = i
	v.ready = v.ready[:last]
	v.pos[pid] = -1
}

// Ready returns the pids with a pending shared-memory step, in an
// unspecified but deterministic order. The returned slice is valid until
// the next scheduler turn and must not be mutated.
func (v *View) Ready() []int { return v.ready }

// IsReady reports whether pid has a pending shared-memory step.
func (v *View) IsReady(pid int) bool {
	return pid >= 0 && pid < len(v.procs) && v.procs[pid].ready
}

// N returns the number of processes in the execution.
func (v *View) N() int { return len(v.procs) }

// Pending returns the location of pid's pending TAS. Strong adversaries
// only. It panics if pid is not ready.
func (v *View) Pending(pid int) int {
	pr := v.procs[pid]
	if !pr.ready {
		panic(fmt.Sprintf("sim: Pending(%d): process not ready", pid))
	}
	return pr.pending
}

// StepsTaken returns how many steps pid has executed.
func (v *View) StepsTaken(pid int) int { return v.procs[pid].steps }

// GlobalStep returns the number of steps executed so far in the run.
func (v *View) GlobalStep() int64 { return v.step }

// IsSet reports whether TAS location loc has been won already. Strong
// adversaries only.
func (v *View) IsSet(loc int) bool {
	type reader interface{ IsSet(int) bool }
	r, ok := v.space.(reader)
	if !ok {
		return false
	}
	return r.IsSet(loc)
}

// Rand is the adversary's private randomness stream.
func (v *View) Rand() *xrand.Rand { return v.rng }

// uniformAdversary is the default scheduler: a uniformly random ready
// process each turn (an oblivious adversary).
type uniformAdversary struct{}

func (uniformAdversary) Next(v *View) Action {
	ready := v.Ready()
	return Action{Step: ready[v.Rand().Intn(len(ready))]}
}
