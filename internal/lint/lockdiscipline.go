package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// LockDiscipline pins the PR-5 reclaim protocol in the lease engine:
// while a goroutine holds a stripe lock it must not call back into the
// namer (`Release` re-enters LevelArray CAS loops and once deadlocked
// the reclaim path), must not invoke Observer methods beyond the four
// sanctioned hooks (the persist journal runs inside them — anything
// else under the lock is new, unaudited critical-section work), and
// must not touch anything that can block on I/O. The sanctioned shape
// is the one lease.Manager uses everywhere: collect names under the
// lock, release them after Unlock (releaseNames documents "callers
// must NOT hold any stripe lock").
//
// Locked contexts are found three ways, all intra-package:
//
//   - functions named *Locked — the repo convention for "caller holds
//     the stripe lock";
//   - statements executed between a sync (R)Lock call and the
//     (R)Unlock that follows it, tracked through nested if/for/switch
//     bodies (an early-exit branch that unlocks ends the region for
//     the rest of that branch — AcquireBatch's closed-race rollback
//     releases names exactly there, legally);
//   - functions reachable through static same-package calls from
//     either of the above (transitive closure, reported with the call
//     chain).
//
// Function literals and `go` statements are skipped: work launched
// under the lock runs outside it.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "forbid namer re-entry, unsanctioned Observer hooks, and blocking I/O under a stripe lock",
	Run:  runLockDiscipline,
}

// sanctionedHooks are the four lease.Observer methods that are
// designed to run under the stripe lock.
var sanctionedHooks = map[string]bool{
	"ObserveAcquire": true,
	"ObserveRenew":   true,
	"ObserveRelease": true,
	"ObserveExpire":  true,
}

// blockingPkgs can block on I/O; nothing in them belongs under a
// stripe lock.
var blockingPkgs = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
	"syscall":  true,
}

func runLockDiscipline(pass *Pass) error {
	if !pass.InScope("repro/lease") {
		return nil
	}
	ld := &lockDiscipline{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				ld.decls[fn] = fd
			}
		}
	}

	// Seed contexts: *Locked functions (whole body) and explicit
	// lock...unlock regions in every function.
	for fn, fd := range ld.decls {
		if strings.HasSuffix(fn.Name(), "Locked") {
			ld.enqueue(fn, fn.Name())
			continue
		}
		for _, lc := range lockedCalls(pass, fd.Body) {
			ld.checkCall(lc.call, fmt.Sprintf("%s's %s.Lock() region", fn.Name(), lc.mutex))
		}
	}
	ld.drain()
	return nil
}

type lockDiscipline struct {
	pass    *Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
	queue   []queued
}

type queued struct {
	fn    *types.Func
	chain string
}

func (ld *lockDiscipline) enqueue(fn *types.Func, chain string) {
	if ld.visited == nil {
		ld.visited = map[*types.Func]bool{}
	}
	if ld.visited[fn] {
		return
	}
	ld.visited[fn] = true
	ld.queue = append(ld.queue, queued{fn: fn, chain: chain})
}

// drain processes the transitive closure: every enqueued function's
// whole body counts as a locked context.
func (ld *lockDiscipline) drain() {
	for len(ld.queue) > 0 {
		q := ld.queue[0]
		ld.queue = ld.queue[1:]
		body := ld.decls[q.fn].Body
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false // runs outside the caller's lock
			case *ast.CallExpr:
				ld.checkCall(n, q.chain)
			}
			return true
		})
	}
}

// checkCall flags a forbidden call made in a locked context and
// enqueues same-package callees, whose bodies then count as locked
// too. ctx names the locked context for the diagnostic.
func (ld *lockDiscipline) checkCall(call *ast.CallExpr, ctx string) {
	fn := calleeFunc(ld.pass, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	onInterface := sig.Recv() != nil && types.IsInterface(sig.Recv().Type())

	switch {
	case onInterface && fn.Name() == "Release":
		ld.pass.Reportf(call.Pos(),
			"namer Release called while holding a stripe lock (%s): collect names under the lock and release after Unlock, like releaseNames", ctx)
	case onInterface && strings.HasPrefix(fn.Name(), "Observe") && !sanctionedHooks[fn.Name()]:
		ld.pass.Reportf(call.Pos(),
			"unsanctioned Observer method %s called while holding a stripe lock (%s): only ObserveAcquire/ObserveRenew/ObserveRelease/ObserveExpire run under the lock", fn.Name(), ctx)
	case fn.Pkg() != nil && blockingPkgs[fn.Pkg().Path()]:
		ld.pass.Reportf(call.Pos(),
			"call to %s.%s can block on I/O while holding a stripe lock (%s)", fn.Pkg().Name(), fn.Name(), ctx)
	case fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		ld.pass.Reportf(call.Pos(),
			"time.Sleep while holding a stripe lock (%s)", ctx)
	case fn.Pkg() == ld.pass.Pkg:
		if _, ok := ld.decls[fn]; ok {
			ld.enqueue(fn, fmt.Sprintf("%s via %s", fn.Name(), ctx))
		}
	}
}

// lockedCall is one call expression executed while a mutex is held,
// with the receiver expression of the Lock call for diagnostics.
type lockedCall struct {
	call  *ast.CallExpr
	mutex string
}

// lockedCalls walks a function body tracking sync (R)Lock/(R)Unlock
// state through the statement structure and collects every call made
// while the state is locked. The tracking is branch-local and
// deliberately simple: a nested body (if/for/switch/select) inherits
// the lock state at entry, state changes inside it do not leak out,
// and the statement after it keeps the pre-branch state. That matches
// the repo's early-exit idiom —
//
//	sh.mu.Lock()
//	if m.closed.Load() {
//	        sh.mu.Unlock()
//	        ... rollback, releaseNames ...   // correctly unlocked
//	        return nil, ErrClosed
//	}
//	...                                      // still locked
//
// — where the unlocking branch always leaves the function.
func lockedCalls(pass *Pass, body *ast.BlockStmt) []lockedCall {
	var out []lockedCall

	collect := func(n ast.Node, mutex string) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				out = append(out, lockedCall{call: n, mutex: mutex})
			}
			return true
		})
	}

	// walkStmts threads lock state through one statement list and
	// returns the state at its end.
	var walkStmts func(list []ast.Stmt, locked bool, mutex string) (bool, string)
	var walkStmt func(stmt ast.Stmt, locked bool, mutex string) (bool, string)

	branch := func(stmt ast.Stmt, locked bool, mutex string) {
		// Nested bodies inherit the entry state; their exit state is
		// discarded (see doc comment above).
		if stmt != nil {
			walkStmt(stmt, locked, mutex)
		}
	}

	walkStmt = func(stmt ast.Stmt, locked bool, mutex string) (bool, string) {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			switch kind, m := syncCall(pass, s.X); kind {
			case "lock":
				return true, m
			case "unlock":
				return false, ""
			}
			if locked {
				collect(s, mutex)
			}
		case *ast.DeferStmt:
			if kind, _ := syncCall(pass, s.Call); kind == "unlock" {
				// defer mu.Unlock(): held until the function returns.
				return locked, mutex
			}
			if locked {
				collect(s, mutex)
			}
		case *ast.GoStmt:
			// The spawned goroutine does not hold this lock.
		case *ast.BlockStmt:
			// A bare block is straight-line code: state flows through.
			return walkStmts(s.List, locked, mutex)
		case *ast.IfStmt:
			if s.Init != nil && locked {
				collect(s.Init, mutex)
			}
			if locked {
				collect(s.Cond, mutex)
			}
			walkStmts(s.Body.List, locked, mutex)
			branch(s.Else, locked, mutex)
		case *ast.ForStmt:
			if locked {
				if s.Init != nil {
					collect(s.Init, mutex)
				}
				if s.Cond != nil {
					collect(s.Cond, mutex)
				}
				if s.Post != nil {
					collect(s.Post, mutex)
				}
			}
			walkStmts(s.Body.List, locked, mutex)
		case *ast.RangeStmt:
			if locked {
				collect(s.X, mutex)
			}
			walkStmts(s.Body.List, locked, mutex)
		case *ast.SwitchStmt:
			if locked && s.Tag != nil {
				collect(s.Tag, mutex)
			}
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					walkStmts(cc.Body, locked, mutex)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					walkStmts(cc.Body, locked, mutex)
				}
			}
		case *ast.SelectStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					walkStmts(cc.Body, locked, mutex)
				}
			}
		case *ast.LabeledStmt:
			return walkStmt(s.Stmt, locked, mutex)
		default:
			// Assignments, returns, sends, declarations, ...
			if locked {
				collect(stmt, mutex)
			}
		}
		return locked, mutex
	}

	walkStmts = func(list []ast.Stmt, locked bool, mutex string) (bool, string) {
		for _, stmt := range list {
			locked, mutex = walkStmt(stmt, locked, mutex)
		}
		return locked, mutex
	}

	walkStmts(body.List, false, "")
	return out
}

// syncCall classifies expr as a sync.Mutex/RWMutex lock or unlock call
// and names the receiver expression for diagnostics.
func syncCall(pass *Pass, expr ast.Expr) (kind, mutex string) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	name := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name = exprString(sel.X)
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return "lock", name
	case "Unlock", "RUnlock":
		return "unlock", name
	}
	return "", ""
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	}
	return "mu"
}
