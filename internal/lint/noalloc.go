package lint

import (
	"fmt"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// NoAlloc turns the repo's benchmark-asserted zero-allocation claims
// (binproto encode/decode, telemetry counter/histogram ops — the PR-6
// and PR-7 hot paths) into a compile-time gate. Functions annotated
// //renamed:noalloc in their doc comment are checked against the
// compiler's own escape analysis: the package is rebuilt with
// -gcflags=-m and any "escapes to heap" / "moved to heap" line inside
// an annotated function fails the run. Benchmarks catch an allocation
// regression only on the inputs they happen to exercise; the escape
// analysis verdict covers every path through the function.
//
// "leaking param" lines are ignored — a parameter flowing to the
// caller's heap (append into a caller-owned slice) is exactly what the
// append-style codecs are for; what the annotation forbids is the
// function itself forcing a heap allocation per call.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "fail //renamed:noalloc functions that the compiler's escape analysis says allocate",
	Run:  runNoAlloc,
}

// escapeLine matches the compiler's -m diagnostics we care about, e.g.
//
//	./codec.go:115:17: string(...) escapes to heap
//	./binproto.go:42:6: moved to heap: hdr
var escapeLine = regexp.MustCompile(`^\.?/?([^:]+):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

func runNoAlloc(pass *Pass) error {
	funcs := noallocFuncs(pass)
	if len(funcs) == 0 {
		return nil
	}

	// The build cache replays compiler output, so repeated runs stay
	// cheap; -e keeps going past unrelated build errors elsewhere.
	cmd := exec.Command("go", "build", "-gcflags=-m", ".")
	cmd.Dir = pass.Dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go build -gcflags=-m in %s: %v\n%s", pass.Dir, err, out)
	}

	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		file := baseName(m[1])
		lineNo, _ := strconv.Atoi(m[2])
		for _, fn := range funcs {
			if fn.file == file && fn.from <= lineNo && lineNo <= fn.to {
				pass.Reportf(fn.decl.Name.Pos(),
					"%s is annotated //renamed:noalloc but the compiler reports a heap allocation at %s:%d: %s",
					fn.name, file, lineNo, m[4])
			}
		}
	}
	return nil
}
