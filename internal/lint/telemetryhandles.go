package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TelemetryHandles pins the PR-7 bind-time pre-resolution rule: metric
// series are looked up once, when a transport binds to the service
// core (service.Core.Bind / NewTelemetry / cmd/renamed's
// newServerMetrics), and the request path touches only the resolved
// handles. A Registry or Vec lookup on the request path re-hashes the
// label set and takes the family lock per request — exactly the cost
// the opHandle table exists to avoid.
//
// Heuristic: inside the scoped packages, a call to a lookup method
// (Registry.Counter/CounterVec/Histogram/HistogramVec/GaugeVec/
// CounterFunc/GaugeFunc, or With/WithLabelValues on a Vec) on a
// repro/internal/telemetry type is flagged unless the enclosing
// function is wiring-time by construction: a constructor (New*/new*),
// a mount helper (mount*), init, main, Bind, or the handle-table
// builder itself (handle). Request paths are everything else —
// including function literals built *inside* wiring-time functions
// and passed to another call or returned: a closure registered at
// mount time runs once per request (or per scrape), so a lookup in
// its body is still a per-request lookup. The one exception is a
// literal bound to a local name, the wiring-helper idiom
// (newServerMetrics's leaseCounter), which is invoked in place.
var TelemetryHandles = &Analyzer{
	Name: "telemetryhandles",
	Doc:  "flag telemetry registry/vec lookups outside bind-time wiring functions",
	Run:  runTelemetryHandles,
}

// telemetryLookups maps receiver type name to its lookup methods.
var telemetryLookups = map[string]map[string]bool{
	"Registry": {
		"Counter": true, "CounterVec": true, "CounterFunc": true,
		"Gauge": true, "GaugeVec": true, "GaugeFunc": true,
		"Histogram": true, "HistogramVec": true,
	},
	"CounterVec":   {"With": true, "WithLabelValues": true},
	"GaugeVec":     {"With": true, "WithLabelValues": true},
	"HistogramVec": {"With": true, "WithLabelValues": true},
}

func runTelemetryHandles(pass *Pass) error {
	if !pass.InScope("repro/internal/service", "repro/cmd/renamed") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !bindTimeFunc(fd.Name.Name) {
				inspectLookups(pass, fd.Body, "in "+fd.Name.Name)
				continue
			}
			// Wiring-time functions look series up freely, and so do
			// helper closures they bind to a local name and invoke in
			// place (newServerMetrics's leaseCounter idiom). A literal
			// passed straight to another call or returned is a
			// callback — it runs later, per request or per scrape —
			// so its body is checked.
			helpers := map[ast.Node]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, r := range as.Rhs {
						if lit, ok := r.(*ast.FuncLit); ok {
							helpers[lit] = true
						}
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok || helpers[lit] {
					return true
				}
				inspectLookups(pass, lit.Body, "in a closure built by "+fd.Name.Name)
				return false
			})
		}
	}
	return nil
}

// inspectLookups flags every telemetry lookup call in body, including
// inside nested function literals.
func inspectLookups(pass *Pass, body *ast.BlockStmt, where string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			return true
		}
		recv := namedTypeName(sig.Recv().Type())
		methods, ok := telemetryLookups[recv]
		if !ok || !methods[fn.Name()] || !telemetryType(sig.Recv().Type()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"telemetry lookup %s.%s on a request path (%s): resolve the handle at bind time (Core.Bind / NewTelemetry / newServerMetrics) and use the pre-resolved series",
			recv, fn.Name(), where)
		return true
	})
}

// bindTimeFunc reports whether a function name marks wiring-time code
// where registry lookups are sanctioned.
func bindTimeFunc(name string) bool {
	if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasPrefix(name, "mount") {
		return true
	}
	switch name {
	case "init", "main", "Bind", "handle":
		return true
	}
	return false
}

// namedTypeName unwraps pointers and returns the named type's bare
// name, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// telemetryType reports whether t is declared in the telemetry package
// (or in this analyzer's fixture, which stands in for it).
func telemetryType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "repro/internal/telemetry" ||
		strings.HasSuffix(path, "lint/testdata/src/telemetryhandles")
}
