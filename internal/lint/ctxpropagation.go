package lint

import (
	"go/ast"
)

// CtxPropagation pins the request-path cancellation contract: the
// packages that serve requests (internal/service), run the lease engine
// (lease), and drive it from the client side (leaseclient) thread one
// context.Context from the caller down to every blocking step. A
// context.Background() (or TODO()) minted mid-path severs that thread —
// the client disconnects, the server keeps probing; the caller times
// out, the round trip keeps running — and the leak is invisible until a
// chaos run wedges.
//
// Flagged in scope:
//
//   - context.Background() / context.TODO() calls inside a function
//     that already has a context.Context parameter — a context is in
//     scope, forward it.
//   - context.Background() / context.TODO() anywhere else in the
//     package, because request-path packages have no main and no
//     process bind-time: a detached context is legal only where a
//     lifetime genuinely outlives every caller.
//
// Escape hatch: //lint:ctx <justification> on the call line, the line
// above, or the enclosing function's doc comment. The justification is
// mandatory — a session's own heartbeat loop or a connection's serve
// context are real detached lifetimes, and the annotation is where
// that design decision is recorded.
var CtxPropagation = &Analyzer{
	Name: "ctxpropagation",
	Doc:  "flag detached contexts (Background/TODO) in request-path packages",
	Run:  runCtxPropagation,
}

func runCtxPropagation(pass *Pass) error {
	if !pass.InScope("repro/internal/service", "repro/lease", "repro/leaseclient") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() != "Background" && fn.Name() != "TODO" {
				return true
			}
			if d := ctxAt(pass, file, call.Pos()); d.found {
				if d.justification == "" {
					pass.Reportf(call.Pos(), "lint:ctx requires a justification string")
				}
				return true
			}
			if fd := enclosingFunc(file, call.Pos()); fd != nil && hasCtxParam(pass, fd) {
				pass.Reportf(call.Pos(),
					"context.%s() in a function that already takes a context.Context: forward the caller's context instead",
					fn.Name())
				return true
			}
			pass.Reportf(call.Pos(),
				"context.%s() in a request-path package severs caller cancellation: accept and forward a context.Context, or annotate //lint:ctx <why> for a genuinely detached lifetime",
				fn.Name())
			return true
		})
	}
	return nil
}

// hasCtxParam reports whether the declaration takes a context.Context
// parameter.
func hasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := pass.Info.TypeOf(field.Type); t != nil && t.String() == "context.Context" {
			return true
		}
	}
	return false
}
