package lint

import (
	"go/ast"
	"go/types"
)

// Determinism pins the PR-8 chaos contract: packages whose behavior
// must replay bit-for-bit from a seed (the chaos harness itself, the
// session client it drives, and the lease engine under test) draw time
// and randomness through injected fields — leaseclient.Config.Now/
// Rand, lease.Config.Now, chaos's rng(seed, label) streams — never
// through the process globals. A direct time.Now in a heartbeat path
// or a global rand draw in a fault schedule silently unpins every
// seed-reproducibility claim cmd/chaos prints.
//
// Flagged, as calls (bare references like `cfg.Now = time.Now` are the
// injection idiom and stay legal):
//
//   - time.Now, time.Since, time.Until — absolute wall-clock reads
//   - package-level math/rand and math/rand/v2 draws (rand.Uint64,
//     rand.Float64, ...) — the global source; constructing an owned
//     source (rand.New, rand.NewPCG, ...) is the sanctioned fix
//
// Escape hatch: //lint:wallclock <justification> on the call line, the
// line above, or the enclosing function's doc comment. The
// justification is mandatory — wall-clock use is legal only where it
// is an explicit design decision (net deadlines, the chaos checker's
// unskewed observer clock) and the annotation is where that decision
// is recorded.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock and global-rand calls in seed-reproducible packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !pass.InScope("repro/internal/chaos", "repro/leaseclient", "repro/lease") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			var what string
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					what = "wall-clock read time." + fn.Name()
				}
			case "math/rand", "math/rand/v2":
				// Only package-level draws hit the global source;
				// constructors build an owned, seedable source.
				if fn.Type().(*types.Signature).Recv() == nil && !randConstructor(fn.Name()) {
					what = "global rand draw " + fn.Pkg().Name() + "." + fn.Name()
				}
			}
			if what == "" {
				return true
			}
			wc := wallclockAt(pass, file, call.Pos())
			if wc.found {
				if wc.justification == "" {
					pass.Reportf(call.Pos(), "lint:wallclock requires a justification string")
				}
				return true
			}
			pass.Reportf(call.Pos(),
				"%s in a seed-reproducible package: use the injected clock/rand (Config.Now, Config.Rand, rng(seed, label)) or annotate //lint:wallclock <why>",
				what)
			return true
		})
	}
	return nil
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil for indirect calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

func randConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
		return true
	}
	return false
}
