package lint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts expectations from fixture comments:
//
//	code() // want `regex`
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	file    string // basename
	line    int
	pattern *regexp.Regexp
	matched bool
}

// runFixture loads the analyzer's testdata package, runs only that
// analyzer, and checks the findings against the `// want` comments:
// every diagnostic must match a want on its line, every want must be
// hit at least once.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+a.Name)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regex %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{
					file:    filepath.Base(pos.Filename),
					line:    pos.Line,
					pattern: re,
				})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture for %s has no // want comments", a.Name)
	}

	diags, err := Run([]*Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.pattern)
		}
	}
}

func TestLockDisciplineFixture(t *testing.T)   { runFixture(t, LockDiscipline) }
func TestDeterminismFixture(t *testing.T)      { runFixture(t, Determinism) }
func TestNoAllocFixture(t *testing.T)          { runFixture(t, NoAlloc) }
func TestTelemetryHandlesFixture(t *testing.T) { runFixture(t, TelemetryHandles) }
func TestWireErrorsFixture(t *testing.T)       { runFixture(t, WireErrors) }
func TestCtxPropagationFixture(t *testing.T)   { runFixture(t, CtxPropagation) }

// TestSuiteCleanOnTree is the in-test mirror of CI's
// `go run ./cmd/renamedlint ./...`: the shipped tree itself must be
// finding-free (testdata fixtures are outside the ./... wildcard).
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole tree")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	diags, err := Run(Analyzers(), pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestByName covers the -run selection path of cmd/renamedlint.
func TestByName(t *testing.T) {
	got, err := ByName([]string{"determinism", "noalloc"})
	if err != nil || len(got) != 2 || got[0].Name != "determinism" || got[1].Name != "noalloc" {
		t.Fatalf("ByName(determinism,noalloc) = %v, %v", got, err)
	}
	if _, err := ByName([]string{"nope"}); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("ByName(nope) error = %v, want unknown analyzer", err)
	}
	all, err := ByName(nil)
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(nil) = %d analyzers, %v", len(all), err)
	}
}

// TestDiagnosticString pins the file:line:col + analyzer format the CI
// log relies on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "determinism",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "nope",
	}
	if got, want := d.String(), "x.go:3:7: nope (determinism)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
