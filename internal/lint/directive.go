package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The annotation grammars the suite understands:
//
//	//lint:wallclock <justification>
//	    Suppresses a determinism finding. Valid on the offending line,
//	    the line directly above it, or in the enclosing function's doc
//	    comment (which then covers the whole function). The
//	    justification is mandatory: an empty one is itself a finding.
//
//	//lint:ctx <justification>
//	    Suppresses a ctxpropagation finding, same placement and
//	    mandatory-justification rules as //lint:wallclock. A detached
//	    context is legal only where a lifetime genuinely outlives every
//	    caller (a connection's serve loop, a session's own heartbeat)
//	    and the annotation is where that decision is recorded.
//
//	//renamed:noalloc
//	    Declares the annotated function heap-escape-free; the noalloc
//	    analyzer fails the build if the compiler's escape analysis
//	    disagrees. Valid only in a function's doc comment.
const (
	wallclockDirective = "//lint:wallclock"
	ctxDirective       = "//lint:ctx"
	noallocDirective   = "//renamed:noalloc"
)

// wallclock describes the annotation state covering one position.
type wallclock struct {
	found         bool
	justification string
	pos           token.Pos
}

// wallclockAt looks for a //lint:wallclock directive covering pos.
func wallclockAt(pass *Pass, file *ast.File, pos token.Pos) wallclock {
	return directiveAt(pass, file, pos, wallclockDirective)
}

// ctxAt looks for a //lint:ctx directive covering pos.
func ctxAt(pass *Pass, file *ast.File, pos token.Pos) wallclock {
	return directiveAt(pass, file, pos, ctxDirective)
}

// directiveAt looks for the given suppression directive covering pos:
// same line, the line above, or the doc comment of the enclosing
// function declaration. A directive matches only whole — "//lint:ctx"
// never claims a "//lint:ctxfoo" comment.
func directiveAt(pass *Pass, file *ast.File, pos token.Pos, directive string) wallclock {
	match := func(c *ast.Comment) (wallclock, bool) {
		if !strings.HasPrefix(c.Text, directive) {
			return wallclock{}, false
		}
		rest := strings.TrimPrefix(c.Text, directive)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			return wallclock{}, false
		}
		return wallclock{
			found:         true,
			justification: strings.TrimSpace(rest),
			pos:           c.Pos(),
		}, true
	}
	line := pass.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			wc, ok := match(c)
			if !ok {
				continue
			}
			cline := pass.Fset.Position(c.Pos()).Line
			if cline == line || cline == line-1 {
				return wc
			}
		}
	}
	if fd := enclosingFunc(file, pos); fd != nil && fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if wc, ok := match(c); ok {
				return wc
			}
		}
	}
	return wallclock{}
}

// enclosingFunc returns the function declaration whose body spans pos,
// or nil at package scope.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// noallocFuncs collects every function in the pass annotated
// //renamed:noalloc, keyed for matching against compiler escape output.
type noallocFunc struct {
	name      string
	file      string // basename, as the compiler prints it
	from, to  int    // inclusive line span of the declaration
	decl      *ast.FuncDecl
	annotated token.Pos
}

func noallocFuncs(pass *Pass) []noallocFunc {
	var out []noallocFunc
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if !strings.HasPrefix(c.Text, noallocDirective) {
					continue
				}
				start := pass.Fset.Position(fd.Pos())
				end := pass.Fset.Position(fd.End())
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) == 1 {
					name = recvTypeName(fd.Recv.List[0].Type) + "." + name
				}
				out = append(out, noallocFunc{
					name:      name,
					file:      baseName(start.Filename),
					from:      start.Line,
					to:        end.Line,
					decl:      fd,
					annotated: c.Pos(),
				})
				break
			}
		}
	}
	return out
}

func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return "?"
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
