package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// WireErrors pins the PR-3 error taxonomy across the wire boundary:
// internal/wire defines the machine-readable codes and their sentinel
// errors, and everything the service layer returns must stay
// errors.Is-able against them — that is what lets leaseclient decide
// retry-vs-surrender and lets per-item batch verdicts round-trip both
// transports. Two ways the taxonomy erodes, both flagged here:
//
//   - fmt.Errorf without %w: the chain breaks and errors.Is stops
//     seeing the sentinel behind the message.
//   - errors.New inside a function body: a fresh anonymous root error
//     no caller can classify. Sentinels belong at package level
//     (var ErrX = errors.New(...)), everything else wraps one.
var WireErrors = &Analyzer{
	Name: "wireerrors",
	Doc:  "flag fmt.Errorf without %w and ad-hoc errors.New in wire/service code",
	Run:  runWireErrors,
}

func runWireErrors(pass *Pass) error {
	if !pass.InScope("repro/internal/wire", "repro/internal/wire/binproto", "repro/internal/service") {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
					if format, ok := formatLiteral(call); ok && !strings.Contains(format, "%w") {
						pass.Reportf(call.Pos(),
							"fmt.Errorf without %%w severs the error chain: wrap a wire sentinel so errors.Is keeps classifying it")
					}
				case fn.Pkg().Path() == "errors" && fn.Name() == "New":
					pass.Reportf(call.Pos(),
						"errors.New inside a function bypasses the typed taxonomy: declare a package-level sentinel or wrap an existing wire error")
				}
				return true
			})
		}
	}
	return nil
}

// formatLiteral extracts a constant string first argument, unquoted.
func formatLiteral(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
