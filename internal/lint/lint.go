// Package lint is the repo's custom static-analysis suite: a small
// go/analysis-shaped framework (the container image carries no module
// proxy, so golang.org/x/tools is out of reach — the API mirrors it on
// the standard library instead) plus the analyzers that pin the coding
// invariants earlier PRs fought for:
//
//   - lockdiscipline — the PR-5 reclaim protocol: nothing that can
//     block or re-enter the namer runs under a stripe lock.
//   - determinism — the PR-8 chaos contract: seeded packages draw time
//     and randomness through injected fields, never the globals.
//   - noalloc — the PR-7 hot-path claim: //renamed:noalloc functions
//     stay free of heap escapes, checked against the compiler's own
//     escape analysis.
//   - telemetryhandles — the PR-7 bind-time rule: metric series are
//     resolved once at wiring time, never per request.
//   - wireerrors — the PR-3 taxonomy: wire/service errors wrap typed
//     sentinels so errors.Is keeps working across the wire.
//   - ctxpropagation — the PR-10 elastic contract: request-path
//     packages forward the caller's context.Context; a detached
//     context.Background() is legal only on a justified, genuinely
//     caller-outliving lifetime.
//
// Analyzers scope themselves by import path; each also accepts its own
// fixture package under internal/lint/testdata/src/<name>, which is how
// both the unit tests and the CI detection proof (cmd/renamedlint run
// directly against a known-bad fixture, asserting a nonzero exit)
// exercise it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single package and
// reports findings through the Pass; returning an error means the
// analyzer itself failed (missing input, subprocess failure), not that
// the code under analysis is bad.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Dir is the package directory on disk, for analyzers that shell
	// out to the toolchain (noalloc).
	Dir string

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InScope reports whether this pass's package is one of the given
// import paths, or the analyzer's own fixture package. Fixtures live
// under internal/lint/testdata/src/<analyzer> and are matched by
// suffix so they resolve both as repro/internal/lint/testdata/... (the
// in-module view) and under any future module path.
func (p *Pass) InScope(paths ...string) bool {
	got := p.Pkg.Path()
	for _, want := range paths {
		if got == want {
			return true
		}
	}
	return strings.HasSuffix(got, "lint/testdata/src/"+p.Analyzer.Name)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockDiscipline,
		Determinism,
		NoAlloc,
		TelemetryHandles,
		WireErrors,
		CtxPropagation,
	}
}

// ByName resolves a subset of the suite by name, erroring on unknowns.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(all))
			for _, a := range all {
				known = append(known, a.Name)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies every analyzer to every package and returns the findings
// sorted by position. Analyzer failures (not findings) come back as an
// error after all packages have been attempted.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	var errs []string
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Dir:      pkg.Dir,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Sprintf("%s on %s: %v", a.Name, pkg.ImportPath, err))
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	if len(errs) > 0 {
		return diags, fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	return diags, nil
}
