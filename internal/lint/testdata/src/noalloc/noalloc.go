// Package noalloc is the known-bad fixture for the noalloc analyzer:
// one annotated function the compiler's escape analysis proves clean,
// one it proves allocating.
package noalloc

// AppendU32 appends big-endian v to dst — the codec idiom: the only
// heap traffic is the caller's own slice.
//
//renamed:noalloc
func AppendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Box claims to be allocation-free but returns a pointer to a local,
// which the compiler moves to the heap.
//
//renamed:noalloc
func Box(v int) *int { // want `annotated //renamed:noalloc but the compiler reports a heap allocation`
	x := v
	return &x
}
