// Package noalloc is the known-bad fixture for the noalloc analyzer:
// annotated functions the compiler's escape analysis proves clean next
// to ones it proves allocating, covering the shapes the real tree
// annotates — codec appends, atomic gauge reads, and the closure trap
// a method value springs.
package noalloc

import "sync/atomic"

// AppendU32 appends big-endian v to dst — the codec idiom: the only
// heap traffic is the caller's own slice.
//
//renamed:noalloc
func AppendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Box claims to be allocation-free but returns a pointer to a local,
// which the compiler moves to the heap.
//
//renamed:noalloc
func Box(v int) *int { // want `annotated //renamed:noalloc but the compiler reports a heap allocation`
	x := v
	return &x
}

// gauge mirrors the elastic capacity gauges: one atomic load, no
// escapes — the shape Capacity()/MaxLive() readers must keep on the
// scrape path.
type gauge struct {
	v  atomic.Int64
	ok func(int) bool
}

// Load is the clean gauge read.
//
//renamed:noalloc
func (g *gauge) Load() float64 {
	return float64(g.v.Load())
}

// Probe claims the same but passes a method value as a callback, which
// materializes a closure on the heap — the reason the drain-state gauge
// stays un-annotated in the real tree.
//
//renamed:noalloc
func (g *gauge) Probe() bool { // want `annotated //renamed:noalloc but the compiler reports a heap allocation`
	g.ok = g.held
	return g.ok(int(g.v.Load()))
}

func (g *gauge) held(int) bool { return true }
