// Package wireerrors is the known-bad fixture for the wireerrors
// analyzer: sentinels and %w-wrapping stay silent, chain-severing
// Errorf and ad-hoc errors.New are flagged.
package wireerrors

import (
	"errors"
	"fmt"
)

// ErrExpired is a package-level sentinel — the taxonomy itself.
var ErrExpired = errors.New("renamed: lease expired")

func classify(code, msg string) error {
	switch code {
	case "expired":
		return fmt.Errorf("server %q: %w", msg, ErrExpired)
	case "unknown":
		return fmt.Errorf("unrecognized code %q", code) // want `fmt\.Errorf without %w severs the error chain`
	default:
		return errors.New("unclassified " + code) // want `errors\.New inside a function bypasses the typed taxonomy`
	}
}
