// Package telemetryhandles is the known-bad fixture for the
// telemetryhandles analyzer: local stand-ins for the telemetry types,
// bind-time lookups left silent, request-path lookups flagged.
package telemetryhandles

type Registry struct{}

func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}

type CounterVec struct{}

func (v *CounterVec) WithLabelValues(vals ...string) *Counter { return &Counter{} }

type Counter struct{}

func (c *Counter) Inc() {}

type server struct {
	reg *Registry
	vec *CounterVec
	ok  *Counter
}

// NewServer resolves every series once at wiring time: sanctioned.
func NewServer(reg *Registry) *server {
	v := reg.CounterVec("requests_total", "requests", "op")
	return &server{reg: reg, vec: v, ok: v.WithLabelValues("acquire")}
}

func (s *server) handleAcquire() {
	s.ok.Inc()                             // pre-resolved handle
	s.vec.WithLabelValues("acquire").Inc() // want `telemetry lookup CounterVec\.WithLabelValues on a request path`
	s.reg.CounterVec("x_total", "x", "op") // want `telemetry lookup Registry\.CounterVec on a request path`
}

// mountTimed itself is wiring-time (mount* prefix) — its own lookup is
// sanctioned — but the closure it returns runs per request, so a
// lookup inside the literal is still flagged.
func (s *server) mountTimed(op string) func() {
	ok := s.vec.WithLabelValues(op) // sanctioned: resolved at mount time
	return func() {
		ok.Inc()
		s.vec.WithLabelValues(op).Inc() // want `telemetry lookup CounterVec\.WithLabelValues on a request path \(in a closure built by mountTimed\)`
	}
}

// newGauges binds a helper closure to a local name and invokes it in
// place — the wiring-helper idiom — so its lookups stay sanctioned.
func newGauges(reg *Registry) {
	mk := func(name string) *CounterVec { return reg.CounterVec(name, "h", "op") }
	mk("a_total")
	mk("b_total")
}
