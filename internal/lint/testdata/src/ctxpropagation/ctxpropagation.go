// Package ctxpropagation is the known-bad fixture for the
// ctxpropagation analyzer: every flagged line carries a `// want`
// expectation, and the clean idioms (forwarded contexts, justified
// detached lifetimes) must stay silent.
package ctxpropagation

import (
	"context"
	"time"
)

// fetch stands in for any blocking request-path step.
func fetch(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// forwarded is the contract: the caller's context reaches the blocking
// step untouched.
func forwarded(ctx context.Context) error {
	return fetch(ctx)
}

// severed mints a fresh root even though the caller handed one in — the
// canonical cancellation leak.
func severed(ctx context.Context) error {
	_ = ctx
	return fetch(context.Background()) // want `already takes a context\.Context: forward`
}

// stubbed parks a TODO where a real context belongs.
func stubbed(ctx context.Context) error {
	_ = ctx
	return fetch(context.TODO()) // want `already takes a context\.Context: forward`
}

// rootless has no context to forward and no justification for not
// taking one.
func rootless() error {
	return fetch(context.Background()) // want `severs caller cancellation`
}

// heartbeatLoop is a genuinely detached lifetime: the session's own
// background renewals outlive any single caller, and the annotation
// records that decision.
func heartbeatLoop() error {
	//lint:ctx the heartbeat loop outlives every caller by design
	return fetch(context.Background())
}

// serveConn shows the function-level form covering the whole body.
//
//lint:ctx a connection's serve context is the connection's lifetime, not a request's
func serveConn() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return fetch(ctx)
}

// unjustified suppresses without saying why — itself a finding.
func unjustified() error {
	//lint:ctx
	return fetch(context.Background()) // want `lint:ctx requires a justification`
}
