// Package determinism is the known-bad fixture for the determinism
// analyzer: every flagged line carries a `// want` expectation, and the
// clean idioms (injected clocks, owned rand sources, justified
// wallclock annotations) must stay silent.
package determinism

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// Config mirrors leaseclient.Config: time and randomness are injected.
type Config struct {
	Now  func() time.Time
	Rand func() float64
}

// applyDefaults assigns the globals as function values — the injection
// idiom itself, never flagged.
func applyDefaults(c *Config) {
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
}

func heartbeat(c *Config) time.Duration {
	applyDefaults(c)
	start := time.Now()   // want `wall-clock read time\.Now`
	_ = time.Since(start) // want `wall-clock read time\.Since`
	_ = time.Until(start) // want `wall-clock read time\.Until`
	return c.Now().Sub(start)
}

func jitter(c *Config) float64 {
	_ = rand.Uint64()  // want `global rand draw rand\.Uint64`
	_ = randv2.IntN(5) // want `global rand draw rand\.IntN`
	r := randv2.New(randv2.NewPCG(1, 2))
	return r.Float64() * c.Rand()
}

// netDeadline shows the escape hatch: wall clock by explicit decision,
// justified on the line above.
func netDeadline() time.Time {
	//lint:wallclock net.Conn deadlines are wall-clock by contract
	return time.Now().Add(time.Second)
}

// checkerClock is covered by a function-level annotation.
//
//lint:wallclock the checker observes with an unskewed real clock by design
func checkerClock() time.Time {
	return time.Now()
}

func unjustified() time.Time {
	//lint:wallclock
	return time.Now() // want `lint:wallclock requires a justification`
}
