// Package lockdiscipline is the known-bad fixture for the
// lockdiscipline analyzer: a miniature of lease.Manager's shard with
// every forbidden under-lock call flagged and the sanctioned
// collect-then-release-after-Unlock shape left silent.
package lockdiscipline

import (
	"net/http"
	"os"
	"sync"
	"time"
)

// Namer stands in for renaming.Namer.
type Namer interface {
	Release(name int) error
}

// Observer has the four sanctioned hooks plus a fifth that must never
// run under the stripe lock.
type Observer interface {
	ObserveAcquire(name int)
	ObserveRenew(name int, token uint64)
	ObserveRelease(name int, token uint64)
	ObserveExpire(name int, token uint64)
	ObserveDebug(name int)
}

type manager struct {
	mu    sync.Mutex
	namer Namer
	obs   Observer
}

// expireLocked runs with the stripe lock held — the *Locked naming
// convention makes the whole body a locked context.
func (m *manager) expireLocked(name int) {
	m.obs.ObserveExpire(name, 1) // sanctioned hook
	m.obs.ObserveDebug(name)     // want `unsanctioned Observer method ObserveDebug`
	m.namer.Release(name)        // want `namer Release called while holding a stripe lock`
}

// reclaim is clean in isolation but reachable from sweep's locked
// region: the transitive closure flags it.
func (m *manager) reclaim(name int) {
	m.namer.Release(name) // want `namer Release called while holding a stripe lock`
}

func (m *manager) sweep() {
	var stale []int
	m.mu.Lock()
	m.reclaim(1)                 // pulls reclaim into the locked context
	_, _ = os.ReadFile("state")  // want `can block on I/O while holding a stripe lock`
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding a stripe lock`
	stale = append(stale, 2)
	m.mu.Unlock()
	// The sanctioned shape: collected under the lock, released after.
	for _, n := range stale {
		m.namer.Release(n)
	}
}

func (m *manager) deferred() {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, _ = http.Get("http://example") // want `can block on I/O while holding a stripe lock`
}

// release never holds the lock: nothing to flag.
func (m *manager) release(name int) {
	m.namer.Release(name)
}
