package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool and type-checks every
// matched (non-dependency) package, resolving imports from the build
// cache's export data — one `go list -export` invocation feeds the
// whole run, so loading stays fast and fully offline.
//
// Only non-test GoFiles are parsed: every analyzer in the suite scopes
// itself to production code, and test files routinely use wall clocks
// and ad-hoc errors on purpose.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Export,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var roots []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, r := range roots {
		if len(r.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range r.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(r.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(r.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", r.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Dir:        r.Dir,
			ImportPath: r.ImportPath,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
