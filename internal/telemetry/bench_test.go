package telemetry

import (
	"io"
	"testing"
	"time"
)

// The observation-path costs documented in EXPERIMENTS.md: a counter
// increment and a histogram observation must stay single-digit
// nanoseconds, or the telemetry would not be admissible on the
// ~200ns/renewal hot path it instruments.

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != int64(b.N) {
		b.Fatal("count mismatch")
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) & (1<<20 - 1))
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := goldenRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
