package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAddIncValue(t *testing.T) {
	c := NewCounter()
	if got := c.Value(); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("after Inc+Add(41) = %d, want 42", got)
	}
}

// TestCounterFoldsExactlyUnderConcurrency pins the core striping
// contract: however increments spread across stripes, Value is the
// exact sum once writers are done.
func TestCounterFoldsExactlyUnderConcurrency(t *testing.T) {
	c := NewCounter()
	const (
		goroutines = 8
		perG       = 10000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Value = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterVecWithReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "help.", "op", "code")
	a := v.With("renew", "expired")
	b := v.With("renew", "expired")
	if a != b {
		t.Fatal("With with equal label values returned distinct counters")
	}
	other := v.With("renew", "ok")
	if a == other {
		t.Fatal("With with different label values returned the same counter")
	}
	a.Add(3)
	if got := b.Value(); got != 3 {
		t.Fatalf("shared handle Value = %d, want 3", got)
	}
}

func TestRegistryRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"invalid name", func(r *Registry) { r.Counter("bad-name_total", "h.") }},
		{"counter without _total", func(r *Registry) { r.Counter("requests", "h.") }},
		{"empty help", func(r *Registry) { r.GaugeFunc("g", "", func() float64 { return 0 }) }},
		{"duplicate", func(r *Registry) {
			r.GaugeFunc("g", "h.", func() float64 { return 0 })
			r.GaugeFunc("g", "h.", func() float64 { return 0 })
		}},
		{"reserved le label", func(r *Registry) { r.HistogramVec("h_seconds", "h.", "le") }},
		{"bad label name", func(r *Registry) { r.CounterVec("c_total", "h.", "0op") }},
		{"vec without labels", func(r *Registry) { r.CounterVec("c_total", "h.") }},
		{"label value count mismatch", func(r *Registry) {
			r.CounterVec("c_total", "h.", "op").With("a", "b")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.f(NewRegistry())
		})
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(2 * time.Second)
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < time.Millisecond || p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1-2ms bucket bound", p50)
	}
	if p99 > 4*time.Millisecond {
		t.Fatalf("p99 = %v, want within the millisecond buckets", p99)
	}
	if p100 := h.Quantile(1); p100 < 2*time.Second {
		t.Fatalf("p100 = %v, want >= 2s", p100)
	}
	if h.Count() != 101 {
		t.Fatalf("Count = %d, want 101", h.Count())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(0)
	for q := 0.05; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at lower q %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != 10 {
		t.Fatalf("Summary.Count = %d, want 10", s.Count)
	}
	if s.Mean != 100*time.Microsecond {
		t.Fatalf("Summary.Mean = %v, want 100µs", s.Mean)
	}
	if s.P50 < 100*time.Microsecond || s.P99 < s.P50 || s.P95 < s.P50 || s.P90 < s.P50 {
		t.Fatalf("quantiles out of order: %+v", s)
	}
}

// TestHistogramNegativeClamps: a negative duration (clock skew) counts
// as zero rather than indexing a phantom bucket.
func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if got := h.Quantile(1); got != 0 {
		t.Fatalf("Quantile(1) after negative observe = %v, want 0", got)
	}
}

func TestGaugeAndCounterFuncSampledAtScrape(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	r.CounterFunc("pulls_total", "Pulls.", func() int64 { return n })
	r.GaugeFunc("depth", "Depth.", func() float64 { return float64(n) * 0.5 })
	n = 8
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "pulls_total 8\n") {
		t.Fatalf("exposition missing pulls_total 8:\n%s", out)
	}
	if !strings.Contains(out, "depth 4\n") {
		t.Fatalf("exposition missing depth 4:\n%s", out)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("odd_total", "Odd labels.", "who")
	v.With(`a"b\c` + "\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `odd_total{who="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
	if problems := Lint([]byte(b.String())); len(problems) != 0 {
		t.Fatalf("lint problems: %v", problems)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-3, "-3"},
		{0.5, "0.5"},
		{1.024e-06, "1.024e-06"},
		{math.Ldexp(1, 36) / 1e9, "68.719476736"},
	}
	for _, tc := range cases {
		if got := formatValue(tc.v); got != tc.want {
			t.Errorf("formatValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
