package telemetry

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRegistryHammeredDuringScrapes is the -race concurrency test the
// telemetry core is required to pass: GOMAXPROCS writer goroutines
// increment counters, labeled counters and histograms flat out while a
// scraper renders the full exposition in a loop. Beyond the absence of
// races, the folded totals must be exact once the writers are done.
func TestRegistryHammeredDuringScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_ops_total", "Ops.")
	vec := r.CounterVec("hammer_verdicts_total", "Verdicts.", "code")
	codes := []*Counter{vec.With("ok"), vec.With("expired"), vec.With("wrong_token")}
	h := r.Histogram("hammer_duration_seconds", "Latency.")
	hv := r.HistogramVec("hammer_rt_seconds", "RT.", "op")
	ops := []*Histogram{hv.With("acquire"), hv.With("renew")}
	r.GaugeFunc("hammer_live", "Live.", func() float64 { return float64(c.Value()) })

	writers := runtime.GOMAXPROCS(0)
	if writers < 4 {
		writers = 4
	}
	const perWriter = 20000
	var stop atomic.Bool
	var scrapes sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for !stop.Load() {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				codes[i%len(codes)].Inc()
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				ops[i%len(ops)].Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	scrapes.Wait()

	total := int64(writers) * perWriter
	if got := c.Value(); got != total {
		t.Fatalf("hammer_ops_total = %d, want %d", got, total)
	}
	var verdictSum int64
	for _, cc := range codes {
		verdictSum += cc.Value()
	}
	if verdictSum != total {
		t.Fatalf("verdict counters sum to %d, want %d", verdictSum, total)
	}
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
}
