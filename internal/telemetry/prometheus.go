package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// expositionWriter renders exposition lines onto a buffered writer,
// keeping the first error sticky so collectors don't need error paths.
type expositionWriter struct {
	w   *bufio.Writer
	err error
}

func (e *expositionWriter) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.WriteString(s)
}

// sample writes `name{labels} value`.
func (e *expositionWriter) sample(name, labels string, value float64) {
	e.writeString(name)
	if labels != "" {
		e.writeString("{")
		e.writeString(labels)
		e.writeString("}")
	}
	e.writeString(" ")
	e.writeString(formatValue(value))
	e.writeString("\n")
}

// bucket writes one cumulative histogram bucket with its le bound.
func (e *expositionWriter) bucket(name, labels string, le float64, cum int64) {
	e.bucketLabel(name, labels, formatValue(le), cum)
}

// bucketInf writes the mandatory trailing +Inf bucket.
func (e *expositionWriter) bucketInf(name, labels string, cum int64) {
	e.bucketLabel(name, labels, "+Inf", cum)
}

func (e *expositionWriter) bucketLabel(name, labels, le string, cum int64) {
	e.writeString(name)
	e.writeString("_bucket{")
	if labels != "" {
		e.writeString(labels)
		e.writeString(",")
	}
	e.writeString(`le="`)
	e.writeString(le)
	e.writeString(`"`)
	e.writeString("} ")
	e.writeString(strconv.FormatInt(cum, 10))
	e.writeString("\n")
}

// formatValue renders a sample value: integers without a fraction,
// everything else in Go's shortest round-trip float form (which
// Prometheus parses).
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the text
// exposition format: families sorted by name, each with its # HELP and
// # TYPE lines, children in registration order. Counter and gauge
// closures (CounterFunc, GaugeFunc) are sampled during the call.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	ew := &expositionWriter{w: bw}
	for _, f := range r.sortedFamilies() {
		ew.writeString("# HELP ")
		ew.writeString(f.name)
		ew.writeString(" ")
		ew.writeString(escapeHelp(f.help))
		ew.writeString("\n# TYPE ")
		ew.writeString(f.name)
		ew.writeString(" ")
		ew.writeString(f.kind.String())
		ew.writeString("\n")
		f.mu.Lock()
		children := make([]*series, len(f.children))
		copy(children, f.children)
		f.mu.Unlock()
		for _, s := range children {
			s.c.collect(ew, f.name, s.labels)
		}
	}
	if ew.err != nil {
		return ew.err
	}
	return bw.Flush()
}
