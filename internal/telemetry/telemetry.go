// Package telemetry is the metrics core shared by cmd/renamed, the
// leaseclient session layer and the bench tooling: counters, gauges and
// fixed-bucket latency histograms cheap enough for the sub-microsecond
// renew hot path, collected into a Registry that renders the Prometheus
// text exposition format.
//
// Design constraints, in order:
//
//   - Zero allocation on the observation path. Counter.Add,
//     Counter.Inc and Histogram.Observe allocate nothing and take a
//     handful of nanoseconds; handles into labeled families
//     (CounterVec.With, HistogramVec.With) are resolved once at wiring
//     time, never per operation.
//   - Write-side sharding. Counters split into cache-line-padded
//     stripes (one per core, picked by a thread-local random hint) so
//     GOMAXPROCS goroutines incrementing the same counter do not
//     serialize on one cache line; stripes are folded only at read
//     time. Histograms spread naturally across their buckets.
//   - Lint-clean exposition by construction. Registration panics on
//     malformed or duplicate metric names, counters must carry the
//     _total suffix, every family renders HELP and TYPE, and histogram
//     buckets are cumulative with a trailing +Inf — so a scrape passes
//     promlint without a vendored dependency checking it.
//
// Reads are loosely consistent: a scrape concurrent with writers can
// see a counter value between two increments of a batch, and a
// histogram's count can lead its buckets by the in-flight handful.
// That is the usual contract for monitoring metrics.
package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// metricKind discriminates the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// collector renders one series' sample lines. name is the family name,
// labels the rendered `k="v",...` pairs without braces (empty for an
// unlabeled series).
type collector interface {
	collect(w *expositionWriter, name, labels string)
}

// series is one labeled child of a family.
type series struct {
	key    string // label values joined, the dedupe key
	labels string // rendered label pairs, no braces
	c      collector
}

// family is one metric name: HELP, TYPE and its ordered children.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	mu         sync.Mutex
	children   []*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use, but metric
// registration is meant to happen once at wiring time — registration
// errors (bad names, duplicates, type mismatches) are programmer
// errors and panic.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates (or fetches, for vecs adding children) the family.
func (r *Registry) register(name, help string, kind metricKind, labelNames []string) *family {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if kind == kindCounter && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("telemetry: counter %q must end in _total", name))
	}
	if help == "" {
		panic(fmt.Sprintf("telemetry: metric %q registered without help text", name))
	}
	for _, ln := range labelNames {
		if !labelNameRE.MatchString(ln) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", name, ln))
		}
		if ln == "le" {
			panic(fmt.Sprintf("telemetry: metric %q: label name %q is reserved for histogram buckets", name, ln))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, kind: kind, labelNames: labelNames}
	r.families[name] = f
	return f
}

// addChild appends a series to f, deduping on the label-value key so a
// second With(...) with the same values returns the same handle.
func (f *family) addChild(labelValues []string, mk func() collector) collector {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.children {
		if s.key == key {
			return s.c
		}
	}
	var b strings.Builder
	for i, ln := range f.labelNames {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ln)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labelValues[i]))
		b.WriteByte('"')
	}
	s := &series{key: key, labels: b.String(), c: mk()}
	f.children = append(f.children, s)
	return s.c
}

// sortedFamilies snapshots the families in name order for a
// deterministic exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
