package telemetry

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Lint checks a text-exposition payload against the subset of promlint
// rules this repository commits to, returning one message per problem
// (empty means clean):
//
//   - every sample belongs to a family that declared # HELP and # TYPE
//     first;
//   - metric and label names are well-formed;
//   - counters end in _total and nothing else does;
//   - histograms expose cumulative non-decreasing _bucket series ending
//     in le="+Inf", plus _sum and _count, with _count equal to the +Inf
//     bucket;
//   - no series (name plus label set) appears twice.
//
// It exists so tests — here and in cmd/renamed — can assert "promlint-
// clean" against the real scrape output without vendoring promlint.
func Lint(exposition []byte) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	type famState struct {
		typ     string
		help    bool
		sampled bool
		// histogram bookkeeping, keyed by non-le label prefix
		lastCum map[string]float64
		infSeen map[string]float64
		counts  map[string]float64
		sums    map[string]bool
	}
	fams := map[string]*famState{}
	var cur string
	seen := map[string]bool{}

	sampleRE := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)

	for ln, line := range strings.Split(string(exposition), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				addf("line %d: HELP without text", lineNo)
				continue
			}
			f := fams[name]
			if f == nil {
				f = &famState{lastCum: map[string]float64{}, infSeen: map[string]float64{},
					counts: map[string]float64{}, sums: map[string]bool{}}
				fams[name] = f
			}
			f.help = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				addf("line %d: TYPE without type", lineNo)
				continue
			}
			f := fams[name]
			if f == nil {
				f = &famState{lastCum: map[string]float64{}, infSeen: map[string]float64{},
					counts: map[string]float64{}, sums: map[string]bool{}}
				fams[name] = f
			}
			if f.sampled {
				addf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			f.typ = typ
			cur = name
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				addf("line %d: counter %s does not end in _total", lineNo, name)
			}
			if typ != "counter" && strings.HasSuffix(name, "_total") {
				addf("line %d: non-counter %s ends in _total", lineNo, name)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			addf("line %d: unparseable sample %q", lineNo, line)
			continue
		}
		name, labels, valueStr := m[1], m[3], m[4]
		if seen[name+"{"+labels+"}"] {
			addf("line %d: duplicate series %s{%s}", lineNo, name, labels)
		}
		seen[name+"{"+labels+"}"] = true
		value, verr := strconv.ParseFloat(valueStr, 64)
		if verr != nil && valueStr != "+Inf" && valueStr != "-Inf" && valueStr != "NaN" {
			addf("line %d: unparseable value %q", lineNo, valueStr)
		}
		for _, pair := range splitLabels(labels) {
			lname, _, ok := strings.Cut(pair, "=")
			if !ok || !labelNameRE.MatchString(lname) {
				addf("line %d: bad label %q", lineNo, pair)
			}
		}

		// Which family does this sample belong to?
		famName := name
		suffix := ""
		if cur != "" && fams[cur] != nil && fams[cur].typ == "histogram" &&
			(name == cur+"_bucket" || name == cur+"_sum" || name == cur+"_count") {
			famName, suffix = cur, strings.TrimPrefix(name, cur)
		}
		f := fams[famName]
		if f == nil || f.typ == "" {
			addf("line %d: sample %s without a preceding TYPE", lineNo, name)
			continue
		}
		if !f.help {
			addf("line %d: sample %s without a preceding HELP", lineNo, name)
		}
		f.sampled = true
		if famName != cur {
			// Interleaved families: legal in the format, but this
			// registry never emits it — treat as a problem.
			addf("line %d: sample %s outside its family block", lineNo, name)
		}

		if f.typ == "histogram" {
			key := stripLE(labels)
			switch suffix {
			case "_bucket":
				le := leValue(labels)
				if le == "" {
					addf("line %d: histogram bucket without le", lineNo)
				}
				if value < f.lastCum[key] {
					addf("line %d: histogram %s buckets not cumulative", lineNo, famName)
				}
				f.lastCum[key] = value
				if le == "+Inf" {
					f.infSeen[key] = value
				}
			case "_sum":
				f.sums[key] = true
			case "_count":
				f.counts[key] = value
			default:
				addf("line %d: histogram %s has a bare sample", lineNo, famName)
			}
		}
	}

	for name, f := range fams {
		if f.typ == "histogram" {
			for key, count := range f.counts {
				inf, ok := f.infSeen[key]
				if !ok {
					addf("histogram %s{%s}: no le=\"+Inf\" bucket", name, key)
				} else if inf != count {
					addf("histogram %s{%s}: _count %v != +Inf bucket %v", name, key, count, inf)
				}
				if !f.sums[key] {
					addf("histogram %s{%s}: missing _sum", name, key)
				}
			}
		}
	}
	return problems
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// stripLE removes the le pair from a rendered label set, yielding the
// per-child key histogram bookkeeping groups by.
func stripLE(labels string) string {
	var kept []string
	for _, pair := range splitLabels(labels) {
		if !strings.HasPrefix(pair, "le=") {
			kept = append(kept, pair)
		}
	}
	return strings.Join(kept, ",")
}

// leValue extracts the unquoted le value from a label set.
func leValue(labels string) string {
	for _, pair := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(pair, "le="); ok {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}
