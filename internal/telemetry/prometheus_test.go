package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fully deterministic contents:
// every metric kind, labeled and unlabeled, with fixed values.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("example_requests_total", "Requests served.")
	c.Add(1234)
	v := r.CounterVec("example_verdicts_total", "Per-item verdict codes.", "op", "code")
	v.With("renew", "ok").Add(100)
	v.With("renew", "expired").Add(3)
	v.With("release", "ok").Add(40)
	r.GaugeFunc("example_live", "Live leases.", func() float64 { return 17 })
	r.CounterFunc("example_fsyncs_total", "Journal fsyncs.", func() int64 { return 55 })
	g := r.GaugeVec("example_capacity", "Capacity by namer.", "namer")
	g.WithFunc(func() float64 { return 4096 }, "levelarray")
	h := r.Histogram("example_op_duration_seconds", "Operation latency.")
	h.Observe(500 * time.Nanosecond) // below the first bound: folds into it
	h.Observe(3 * time.Microsecond)
	h.Observe(900 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(150 * time.Millisecond)
	h.Observe(90 * time.Second) // above the last bound: only in +Inf
	hv := r.HistogramVec("example_rt_seconds", "Round-trip latency.", "op")
	hv.With("renew_batch").Observe(1 * time.Millisecond)
	hv.With("renew_batch").Observe(4 * time.Millisecond)
	hv.With("acquire").Observe(10 * time.Millisecond)
	return r
}

// TestWritePrometheusGolden locks the exposition format byte-for-byte:
// family ordering, HELP/TYPE rendering, label rendering, cumulative
// bucket bounds and value formatting. Regenerate with -update after a
// deliberate format change.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestGoldenExpositionLintClean: the locked format must also be what
// Lint (and promlint) accepts.
func TestGoldenExpositionLintClean(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := Lint(buf.Bytes()); len(problems) != 0 {
		t.Fatalf("lint problems in golden exposition: %v", problems)
	}
}

// TestHistogramBucketsCumulative reads the rendered buckets back and
// checks Prometheus bucket semantics directly: non-decreasing,
// trailing +Inf equal to _count, _sum in seconds.
func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.")
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)
	h.Observe(time.Second)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `lat_seconds_bucket{le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket with full count:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds_count 3") {
		t.Fatalf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds_sum 1.001001") {
		t.Fatalf("missing _sum in seconds:\n%s", out)
	}
	if problems := Lint(buf.Bytes()); len(problems) != 0 {
		t.Fatalf("lint problems: %v", problems)
	}
}

// TestLintCatchesProblems feeds Lint hand-broken expositions; a linter
// that passes everything would let the golden test rot silently.
func TestLintCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of some problem
	}{
		{
			"sample without TYPE",
			"orphan 1\n",
			"without a preceding TYPE",
		},
		{
			"counter without _total",
			"# HELP c Requests.\n# TYPE c counter\nc 1\n",
			"does not end in _total",
		},
		{
			"gauge with _total",
			"# HELP g_total G.\n# TYPE g_total gauge\ng_total 1\n",
			"ends in _total",
		},
		{
			"missing HELP",
			"# TYPE c_total counter\nc_total 1\n",
			"without a preceding HELP",
		},
		{
			"non-cumulative buckets",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				`h_seconds_bucket{le="0.1"} 5` + "\n" +
				`h_seconds_bucket{le="1"} 3` + "\n" +
				`h_seconds_bucket{le="+Inf"} 5` + "\n" +
				"h_seconds_sum 1\nh_seconds_count 5\n",
			"not cumulative",
		},
		{
			"missing +Inf",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				`h_seconds_bucket{le="1"} 3` + "\n" +
				"h_seconds_sum 1\nh_seconds_count 3\n",
			`no le="+Inf"`,
		},
		{
			"count disagrees with +Inf",
			"# HELP h_seconds H.\n# TYPE h_seconds histogram\n" +
				`h_seconds_bucket{le="+Inf"} 3` + "\n" +
				"h_seconds_sum 1\nh_seconds_count 4\n",
			"+Inf bucket",
		},
		{
			"duplicate series",
			"# HELP g G.\n# TYPE g gauge\ng 1\ng 2\n",
			"duplicate series",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := Lint([]byte(tc.in))
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Fatalf("Lint missed %q; got %v", tc.want, problems)
		})
	}
}
