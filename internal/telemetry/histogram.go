package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log₂-bucketed latency histogram: bucket i
// counts durations in [2^(i-1), 2^i) nanoseconds, so 64 counters cover
// every possible Duration with ≤ 2× quantile error — plenty for the
// per-op service latencies this repo monitors. Observe is two atomic
// adds plus one atomic bucket increment, zero allocations.
//
// This is the one histogram implementation in the repository: the
// renamed server's per-op latencies, the load generator's client-side
// quantiles, the leaseclient session's heartbeat latency and the bench
// runner's live pass all use it, so their numbers are computed — and
// rounded — identically.
//
// In the Prometheus exposition a Histogram renders with cumulative
// buckets in seconds: le="2^i ns" for i in [minBucketExp, maxBucketExp]
// (≈1µs to ≈69s), then le="+Inf", plus _sum (seconds) and _count.
// Observations below the first bound fold into its bucket (cumulative
// semantics make that exact); observations above the last appear only
// in +Inf.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [65]atomic.Int64
}

// Exposition bucket range: 2^10 ns = 1.024µs up to 2^36 ns ≈ 68.7s.
// Below and above, per-bucket resolution has no monitoring value for a
// network service, and 27 bounds keeps scrape output compact.
const (
	minBucketExp = 10
	maxBucketExp = 36
)

// NewHistogram returns an unregistered histogram; use
// Registry.Histogram for one that shows up in the exposition.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration. Negative durations clamp to zero.
//
//renamed:noalloc
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of
// the observed durations: the top of the bucket the rank lands in.
// Counters are read without a global snapshot, so concurrent observers
// can skew a quantile by the in-flight handful — fine for monitoring.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	bound := func(i int) time.Duration {
		if i == 0 {
			return 0
		}
		if i >= 63 {
			return time.Duration(math.MaxInt64)
		}
		return time.Duration(int64(1) << i)
	}
	var seen int64
	last := 0 // highest populated bucket, the clamp when rank is unreachable
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n > 0 {
			last = i
		}
		seen += n
		if seen >= rank {
			return bound(i)
		}
	}
	// An in-flight Observe incremented count but not yet its bucket, so
	// the buckets sum short of rank; clamp to the highest seen latency
	// rather than reporting a 292-year phantom.
	return bound(last)
}

// Summary is a scalar snapshot of a histogram, in durations.
type Summary struct {
	Count              int64
	Mean               time.Duration
	P50, P90, P95, P99 time.Duration
}

// Summary snapshots the histogram's count, mean and standard quantiles.
func (h *Histogram) Summary() Summary {
	s := Summary{Count: h.count.Load()}
	if s.Count > 0 {
		s.Mean = time.Duration(h.sum.Load() / s.Count)
	}
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	return s
}

// collect renders the cumulative Prometheus bucket series. Buckets are
// loaded once into a local snapshot so the cumulative sums are
// internally consistent even while writers race the scrape (count can
// still lead the +Inf bucket by the in-flight handful; Prometheus
// tolerates that between scrapes).
func (h *Histogram) collect(w *expositionWriter, name, labels string) {
	var snap [65]int64
	for i := range h.buckets {
		snap[i] = h.buckets[i].Load()
	}
	var cum int64
	i := 0
	for exp := minBucketExp; exp <= maxBucketExp; exp++ {
		for ; i <= exp; i++ {
			cum += snap[i]
		}
		// le bound in seconds: 2^exp nanoseconds.
		w.bucket(name, labels, float64(int64(1)<<exp)/1e9, cum)
	}
	for ; i < len(snap); i++ {
		cum += snap[i]
	}
	w.bucketInf(name, labels, cum)
	w.sample(name+"_sum", labels, float64(h.sum.Load())/1e9)
	w.sample(name+"_count", labels, float64(cum))
}

// Histogram registers a latency histogram. By Prometheus convention the
// name should end in _seconds (the exposition is in seconds).
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.register(name, help, kindHistogram, nil)
	return f.addChild(nil, func() collector { return NewHistogram() }).(*Histogram)
}

// HistogramVec is a family of histograms distinguished by label values
// (one per operation, say). Handles are resolved once with With.
type HistogramVec struct {
	fam *family
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labelNames ...string) *HistogramVec {
	if len(labelNames) == 0 {
		panic("telemetry: HistogramVec " + name + " needs at least one label")
	}
	return &HistogramVec{fam: r.register(name, help, kindHistogram, labelNames)}
}

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.addChild(labelValues, func() collector { return NewHistogram() }).(*Histogram)
}
