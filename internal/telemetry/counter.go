package telemetry

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
)

// counterStripe is one cache-line-padded shard of a Counter. The
// padding keeps two stripes from sharing a line, so increments from
// different cores don't bounce ownership of each other's counters.
type counterStripe struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing counter sharded into
// per-core stripes. Add and Inc are zero-allocation and wait-free:
// each call picks a stripe with a thread-local random hint (uniform
// over stripes, so contention on any one line drops by the stripe
// factor in expectation) and does a single atomic add. Value folds
// the stripes at read time — scrape-time cost, not hot-path cost.
type Counter struct {
	stripes []counterStripe
	mask    uint64
}

// NewCounter returns an unregistered striped counter; use
// Registry.Counter for one that shows up in the exposition.
// The stripe count is nextPow2(GOMAXPROCS), capped at 64.
func NewCounter() *Counter {
	n := nextPow2(runtime.GOMAXPROCS(0))
	if n > 64 {
		n = 64
	}
	return &Counter{stripes: make([]counterStripe, n), mask: uint64(n - 1)}
}

// Add adds n to the counter. Negative deltas are a programmer error
// (counters are monotonic) but are not checked on the hot path.
//
//renamed:noalloc
func (c *Counter) Add(n int64) {
	// rand.Uint64 reads the per-thread generator — no lock, no alloc,
	// ~2ns — so concurrent writers spread across stripes without any
	// goroutine-identity machinery.
	c.stripes[rand.Uint64()&c.mask].n.Add(n)
}

// Inc adds 1.
//
//renamed:noalloc
func (c *Counter) Inc() { c.Add(1) }

// Value folds the stripes into the counter's current value.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].n.Load()
	}
	return sum
}

func (c *Counter) collect(w *expositionWriter, name, labels string) {
	w.sample(name, labels, float64(c.Value()))
}

// Counter registers a striped counter. By convention (and enforced at
// registration) the name ends in _total.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil)
	return f.addChild(nil, func() collector { return NewCounter() }).(*Counter)
}

// funcCollector renders a single sample from a closure at scrape time.
type funcCollector struct {
	f func() float64
}

func (fc funcCollector) collect(w *expositionWriter, name, labels string) {
	w.sample(name, labels, fc.f())
}

// CounterFunc registers a counter whose value is read from f at scrape
// time — for monotonic totals that already live elsewhere (the lease
// manager's atomic operation counters, the persist store's append and
// fsync counts). f must be safe for concurrent use and monotonic.
func (r *Registry) CounterFunc(name, help string, f func() int64) {
	fam := r.register(name, help, kindCounter, nil)
	fam.addChild(nil, func() collector {
		return funcCollector{f: func() float64 { return float64(f()) }}
	})
}

// GaugeFunc registers a gauge whose value is read from f at scrape
// time. f must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	fam := r.register(name, help, kindGauge, nil)
	fam.addChild(nil, func() collector { return funcCollector{f: f} })
}

// CounterVec is a family of counters distinguished by label values —
// the per-item verdict codes, per-operation request counts. Handles
// are resolved once with With at wiring time; the hot path holds the
// *Counter and never touches the vec again.
type CounterVec struct {
	fam *family
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("telemetry: CounterVec %q needs at least one label", name))
	}
	return &CounterVec{fam: r.register(name, help, kindCounter, labelNames)}
}

// With returns the counter for the given label values, creating it on
// first use. Panics if the value count does not match the label names.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.addChild(labelValues, func() collector { return NewCounter() }).(*Counter)
}

// GaugeVec is a family of gauges distinguished by label values, each
// backed by a closure — the labeled sibling of GaugeFunc for families
// whose children are known at wiring time.
type GaugeVec struct {
	fam *family
}

// GaugeVec registers a labeled gauge family whose children are
// closures added with WithFunc.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("telemetry: GaugeVec %q needs at least one label", name))
	}
	return &GaugeVec{fam: r.register(name, help, kindGauge, labelNames)}
}

// WithFunc registers the gauge child for the given label values,
// sampled from f at scrape time.
func (v *GaugeVec) WithFunc(f func() float64, labelValues ...string) {
	v.fam.addChild(labelValues, func() collector { return funcCollector{f: f} })
}
