// Package splitter implements Moir–Anderson wait-free renaming from
// read/write registers only — the classic *deterministic* comparator the
// paper cites as reference [31] ("Wait-free algorithms for fast, long-lived
// renaming", Sci. Comput. Program. 1995).
//
// The paper's algorithms assume hardware test-and-set; §2 discusses the
// read-write register model as the alternative. Moir–Anderson is the
// canonical point in that design space: no randomness, no TAS, O(k) steps
// per process — but a Θ(k²) namespace, which is exactly the trade-off the
// randomized TAS-based algorithms improve to O(k) names in O(log log k)
// steps. Experiment F6 measures the two against each other.
//
// The building block is the Moir–Anderson splitter: a pair of registers
// (X, Y) such that of the k >= 1 processes entering, at most one "stops",
// at most k-1 "go right" and at most k-1 "go down" — and a solo process
// always stops. Splitters are arranged in a triangular grid; a process
// enters at the corner, moves right/down per splitter outcome, and takes
// the grid position where it stops as its name. With contention k every
// process stops within diagonal k-1, so names fit in the first k(k+1)/2
// grid cells.
package splitter

import (
	"fmt"
	"sync/atomic"
)

// outcome is the result of passing through one splitter.
type outcome int

const (
	stop outcome = iota + 1
	right
	down
)

// splitter is the Moir–Anderson splitter over two shared registers.
// The atomic types provide (more than) the regular-register semantics the
// construction requires.
type splitter struct {
	x atomic.Int64 // last entrant's id + 1 (0 = nobody yet)
	y atomic.Bool  // doorway: set by the first wave through
}

// enter runs the splitter protocol for the caller identified by id.
//
//	X := id
//	if Y { return right }
//	Y := true
//	if X == id { return stop }
//	return down
//
// At most one process can stop: a stopper read X == id after setting Y, so
// every later entrant sees Y and goes right, and any concurrent entrant
// that overwrote X before the check goes down. A solo process trivially
// stops. Not all of the k entrants can go right (the first to read Y saw
// it false), and not all can go down (the last to write X reads X == id
// unless someone went right).
func (s *splitter) enter(id int64) outcome {
	s.x.Store(id)
	if s.y.Load() {
		return right
	}
	s.y.Store(true)
	if s.x.Load() == id {
		return stop
	}
	return down
}

// Grid is a one-shot Moir–Anderson renaming instance for up to N
// concurrent participants. It is safe for concurrent use. The grid
// occupies N(N+1)/2 splitters (the triangle of diagonals 0..N-1).
type Grid struct {
	n int
	// rows[r][c] is the splitter at grid position (row r, column c),
	// allocated only up to diagonal n-1: row r has n-r columns.
	rows [][]splitter
	// ids hands every GetName call a distinct non-zero identity, as the
	// splitter protocol requires.
	ids atomic.Int64
	// steps counts register operations (4 per splitter visit at most),
	// the read-write model's step-complexity measure.
	steps atomic.Int64
}

// maxGridN bounds the quadratic splitter allocation (2^12 rows means
// ~8.4M splitters, ~200 MB).
const maxGridN = 1 << 12

// NewGrid builds a grid for at most n concurrent participants.
func NewGrid(n int) (*Grid, error) {
	if n < 1 {
		return nil, fmt.Errorf("splitter: NewGrid(%d): need n >= 1", n)
	}
	if n > maxGridN {
		return nil, fmt.Errorf("splitter: NewGrid(%d): exceeds max %d (namespace is quadratic)", n, maxGridN)
	}
	rows := make([][]splitter, n)
	for r := range rows {
		rows[r] = make([]splitter, n-r)
	}
	return &Grid{n: n, rows: rows}, nil
}

// MustGrid is NewGrid for statically-valid arguments.
func MustGrid(n int) *Grid {
	g, err := NewGrid(n)
	if err != nil {
		panic(err)
	}
	return g
}

// GetName walks the splitter grid and returns a name unique among all
// unreleased... — Moir–Anderson one-shot renaming has no release; the name
// is unique among all GetName calls ever made on this grid, bounded by
// diag(k)(diag(k)+1)/2 + k for contention k. It returns -1 only if the
// walk leaves the allocated triangle, which cannot happen while the number
// of concurrent callers stays within N.
func (g *Grid) GetName() int {
	id := g.ids.Add(1)
	r, c := 0, 0
	for r+c < g.n {
		g.steps.Add(4)
		switch g.rows[r][c].enter(id) {
		case stop:
			return NameAt(r, c)
		case right:
			c++
		case down:
			r++
		}
	}
	return -1
}

// Namespace returns the exclusive upper bound on names: N(N+1)/2.
func (g *Grid) Namespace() int { return g.n * (g.n + 1) / 2 }

// Steps returns the total register operations performed so far.
func (g *Grid) Steps() int64 { return g.steps.Load() }

// NameAt maps grid position (r, c) to its diagonal name: cells are
// numbered along anti-diagonals, so diagonal d = r+c holds names
// d(d+1)/2 .. d(d+1)/2+d.
func NameAt(r, c int) int {
	d := r + c
	return d*(d+1)/2 + r
}
