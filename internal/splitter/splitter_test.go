package splitter

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSplitterSoloStops(t *testing.T) {
	var s splitter
	if got := s.enter(1); got != stop {
		t.Fatalf("solo enter = %v, want stop", got)
	}
}

func TestSplitterLaterEntrantsGoRight(t *testing.T) {
	var s splitter
	s.enter(1) // stops, Y set
	for id := int64(2); id < 6; id++ {
		if got := s.enter(id); got != right {
			t.Fatalf("entrant %d after stopper = %v, want right", id, got)
		}
	}
}

// TestSplitterAtMostOneStop hammers one splitter from many goroutines and
// checks the fundamental properties: <= 1 stop, <= k-1 right, <= k-1 down.
func TestSplitterAtMostOneStop(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		var s splitter
		const k = 8
		outcomes := make([]outcome, k)
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outcomes[i] = s.enter(int64(i + 1))
			}(i)
		}
		wg.Wait()
		var stops, rights, downs int
		for _, o := range outcomes {
			switch o {
			case stop:
				stops++
			case right:
				rights++
			case down:
				downs++
			}
		}
		if stops > 1 {
			t.Fatalf("trial %d: %d processes stopped", trial, stops)
		}
		if rights > k-1 || downs > k-1 {
			t.Fatalf("trial %d: rights=%d downs=%d (k=%d)", trial, rights, downs, k)
		}
		if stops+rights+downs != k {
			t.Fatalf("trial %d: outcomes lost", trial)
		}
	}
}

func TestNameAt(t *testing.T) {
	// Diagonal numbering: (0,0)=0; (0,1)=1,(1,0)=2; (0,2)=3,(1,1)=4,(2,0)=5.
	tests := []struct{ r, c, want int }{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 2}, {0, 2, 3}, {1, 1, 4}, {2, 0, 5}, {3, 3, 24},
	}
	for _, tt := range tests {
		if got := NameAt(tt.r, tt.c); got != tt.want {
			t.Errorf("NameAt(%d,%d) = %d, want %d", tt.r, tt.c, got, tt.want)
		}
	}
}

func TestNameAtBijectiveOnTriangle(t *testing.T) {
	seen := make(map[int]bool)
	const n = 20
	for r := 0; r < n; r++ {
		for c := 0; c < n-r; c++ {
			u := NameAt(r, c)
			if u < 0 || u >= n*(n+1)/2 {
				t.Fatalf("NameAt(%d,%d) = %d outside namespace", r, c, u)
			}
			if seen[u] {
				t.Fatalf("NameAt(%d,%d) = %d duplicated", r, c, u)
			}
			seen[u] = true
		}
	}
}

func TestGridSoloGetsNameZero(t *testing.T) {
	g := MustGrid(8)
	if got := g.GetName(); got != 0 {
		t.Fatalf("solo GetName = %d, want 0 (stops at the corner)", got)
	}
}

func TestGridSequentialNamesDistinctAndSmall(t *testing.T) {
	g := MustGrid(64)
	seen := make(map[int]bool)
	for k := 1; k <= 64; k++ {
		u := g.GetName()
		if u < 0 {
			t.Fatalf("call %d failed", k)
		}
		if seen[u] {
			t.Fatalf("duplicate name %d", u)
		}
		seen[u] = true
		// Sequential contention is 1 at a time... but the grid is one-shot,
		// so earlier stoppers block cells: the k-th sequential caller stops
		// within diagonal k-1.
		if bound := k * (k + 1) / 2; u >= bound {
			t.Fatalf("call %d: name %d >= adaptive bound %d", k, u, bound)
		}
	}
}

func TestGridConcurrentUnique(t *testing.T) {
	const k = 128
	g := MustGrid(k)
	names := make([]int, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			names[i] = g.GetName()
		}(i)
	}
	wg.Wait()
	seen := make(map[int]bool, k)
	for i, u := range names {
		if u < 0 || u >= g.Namespace() {
			t.Fatalf("goroutine %d: name %d outside [0,%d)", i, u, g.Namespace())
		}
		if seen[u] {
			t.Fatalf("duplicate name %d", u)
		}
		seen[u] = true
	}
	if g.Steps() <= 0 {
		t.Fatal("no register steps recorded")
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(0); err == nil {
		t.Error("NewGrid(0) accepted")
	}
	if _, err := NewGrid(maxGridN + 1); err == nil {
		t.Error("oversized grid accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGrid(0) did not panic")
		}
	}()
	MustGrid(0)
}

func TestGridNamespace(t *testing.T) {
	if got := MustGrid(10).Namespace(); got != 55 {
		t.Fatalf("Namespace = %d, want 55", got)
	}
}

// TestGridUniquePropertyQuick property-tests uniqueness across random
// contention levels under real concurrency.
func TestGridUniquePropertyQuick(t *testing.T) {
	property := func(rawK uint8) bool {
		k := int(rawK%50) + 1
		g := MustGrid(k)
		names := make([]int, k)
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				names[i] = g.GetName()
			}(i)
		}
		wg.Wait()
		seen := make(map[int]bool, k)
		for _, u := range names {
			if u < 0 || seen[u] {
				return false
			}
			seen[u] = true
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkGridFill measures filling a 256-participant grid from 8
// goroutines; the metric of interest is ns per acquired name. (A shared
// long-running grid would exhaust: Moir–Anderson is one-shot.)
func BenchmarkGridFill(b *testing.B) {
	const k = 256
	for i := 0; i < b.N; i++ {
		g := MustGrid(k)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < k/8; j++ {
					if g.GetName() < 0 {
						b.Error("grid exhausted")
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/name")
}
