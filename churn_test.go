package renaming_test

import (
	"sync"
	"sync/atomic"
	"testing"

	renaming "repro"
)

// TestChurnNeverDoubleAllocates hammers acquire/release cycles from many
// goroutines and asserts the fundamental safety property of long-lived
// renaming: at no instant do two goroutines hold the same name. Holder
// flags are tracked with an independent atomic array, so a double
// allocation is caught at the moment it happens.
func TestChurnNeverDoubleAllocates(t *testing.T) {
	namers := map[string]func() (renaming.Namer, error){
		"rebatching":   func() (renaming.Namer, error) { return renaming.NewReBatching(64) },
		"adaptive":     func() (renaming.Namer, error) { return renaming.NewAdaptive(64) },
		"fastadaptive": func() (renaming.Namer, error) { return renaming.NewFastAdaptive(64) },
		"uniform":      func() (renaming.Namer, error) { return renaming.NewUniform(64) },
		"levelarray":   func() (renaming.Namer, error) { return renaming.NewLevelArray(64) },
	}
	for name, mk := range namers {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			nm, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			const (
				workers = 16
				cycles  = 300
			)
			holders := make([]atomic.Int32, nm.Namespace())
			var violations atomic.Int32
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for c := 0; c < cycles; c++ {
						u, err := nm.GetName()
						if err != nil {
							violations.Add(1)
							return
						}
						if holders[u].Add(1) != 1 {
							violations.Add(1)
						}
						holders[u].Add(-1)
						if err := nm.Release(u); err != nil {
							violations.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			if v := violations.Load(); v != 0 {
				t.Fatalf("%d safety violations under churn", v)
			}
			// After all releases the namer must serve a full generation of
			// 64 (the configured contention) distinct names again.
			seen := make(map[int]bool)
			for i := 0; i < 64; i++ {
				u, err := nm.GetName()
				if err != nil {
					t.Fatalf("post-churn acquire %d: %v", i, err)
				}
				if seen[u] {
					t.Fatalf("post-churn duplicate %d", u)
				}
				seen[u] = true
			}
		})
	}
}

// TestConcurrentMixedAcquireRelease interleaves long-held and short-held
// names to stress the window where a released slot is immediately re-won.
func TestConcurrentMixedAcquireRelease(t *testing.T) {
	nm, err := renaming.NewReBatching(32, Tuned()...)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Half the capacity is pinned by long-lived holders.
	pinned := make([]int, 16)
	for i := range pinned {
		u, err := nm.GetName()
		if err != nil {
			t.Fatal(err)
		}
		pinned[i] = u
	}
	// Short-lived workers churn through the remaining half.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				u, err := nm.GetName()
				if err != nil {
					t.Error(err)
					return
				}
				for _, p := range pinned {
					if u == p {
						t.Errorf("pinned name %d handed out twice", u)
						return
					}
				}
				if err := nm.Release(u); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		// Let the churn run a bit.
	}
	close(stop)
	wg.Wait()
	for _, u := range pinned {
		if err := nm.Release(u); err != nil {
			t.Fatalf("releasing pinned %d: %v", u, err)
		}
	}
}

// Tuned returns the options used across stress tests: the practical t0.
func Tuned() []renaming.Option {
	return []renaming.Option{renaming.WithT0Override(6)}
}

// TestDoubleReleaseExactlyOneWins races many concurrent releases of the
// same held name: exactly one must succeed and the rest must report
// ErrNotHeld. Before Release was CAS-based, the IsSet+Reset window let
// several racing releases all "succeed". (A stale release arriving after
// a re-acquire is still unguarded here — that ABA needs the lease layer's
// fencing tokens.)
func TestDoubleReleaseExactlyOneWins(t *testing.T) {
	namers := map[string]func() (renaming.Namer, error){
		"rebatching": func() (renaming.Namer, error) { return renaming.NewReBatching(64) },
		"levelarray": func() (renaming.Namer, error) { return renaming.NewLevelArray(64) },
	}
	for name, mk := range namers {
		t.Run(name, func(t *testing.T) {
			nm, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 50; round++ {
				u, err := nm.GetName()
				if err != nil {
					t.Fatal(err)
				}
				const releasers = 8
				var wins atomic.Int32
				var wg sync.WaitGroup
				start := make(chan struct{})
				for r := 0; r < releasers; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						<-start
						switch err := nm.Release(u); err {
						case nil:
							wins.Add(1)
						case renaming.ErrNotHeld:
						default:
							t.Errorf("unexpected Release error: %v", err)
						}
					}()
				}
				close(start)
				wg.Wait()
				if got := wins.Load(); got != 1 {
					t.Fatalf("round %d: %d releases succeeded, want exactly 1", round, got)
				}
			}
		})
	}
}

// TestLevelArrayCapacityChurn holds the namer at full capacity and cycles
// every name: Capacity() concurrent holders is the documented limit and
// must never exhaust the namespace.
func TestLevelArrayCapacityChurn(t *testing.T) {
	nm, err := renaming.NewLevelArray(32)
	if err != nil {
		t.Fatal(err)
	}
	if nm.Capacity() != 32 {
		t.Fatalf("Capacity() = %d, want 32", nm.Capacity())
	}
	var wg sync.WaitGroup
	for w := 0; w < nm.Capacity(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < 200; c++ {
				u, err := nm.GetName()
				if err != nil {
					t.Error(err)
					return
				}
				if err := nm.Release(u); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
