package renaming

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// gatherConcurrent launches k goroutines against nm and collects their
// names, failing the test on any error.
func gatherConcurrent(t *testing.T, nm Namer, k int) []int {
	t.Helper()
	names := make([]int, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for g := 0; g < k; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names[g], errs[g] = nm.GetName()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	return names
}

func assertUnique(t *testing.T, names []int, bound int) {
	t.Helper()
	seen := make(map[int]bool, len(names))
	for _, u := range names {
		if u < 0 || u >= bound {
			t.Fatalf("name %d outside [0,%d)", u, bound)
		}
		if seen[u] {
			t.Fatalf("duplicate name %d", u)
		}
		seen[u] = true
	}
}

func TestReBatchingConcurrentUnique(t *testing.T) {
	const n = 512
	nm, err := NewReBatching(n)
	if err != nil {
		t.Fatal(err)
	}
	names := gatherConcurrent(t, nm, n)
	assertUnique(t, names, nm.Namespace())
}

func TestReBatchingFullCapacityTwice(t *testing.T) {
	// The namespace has (1+eps)n slots, so even 2n callers can be served
	// when eps = 1 (the extra callers just lean on the backup scan).
	const n = 128
	nm, err := NewReBatching(n)
	if err != nil {
		t.Fatal(err)
	}
	names := gatherConcurrent(t, nm, 2*n)
	assertUnique(t, names, nm.Namespace())
}

func TestReBatchingExhaustion(t *testing.T) {
	nm, err := NewReBatching(4, WithEpsilon(0.25))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		_, err := nm.GetName()
		if err != nil {
			if !errors.Is(err, ErrNamespaceExhausted) {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
		got++
		if got > nm.Namespace() {
			t.Fatal("handed out more names than the namespace holds")
		}
	}
	if got != nm.Namespace() {
		t.Fatalf("served %d names before exhaustion, want %d", got, nm.Namespace())
	}
}

func TestAdaptiveConcurrentUnique(t *testing.T) {
	nm, err := NewAdaptive(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	const k = 300
	names := gatherConcurrent(t, nm, k)
	assertUnique(t, names, nm.Namespace())
	maxName := 0
	for _, u := range names {
		if u > maxName {
			maxName = u
		}
	}
	if maxName > 16*k {
		t.Errorf("adaptive max name %d not O(k) for k=%d", maxName, k)
	}
}

func TestFastAdaptiveConcurrentUnique(t *testing.T) {
	nm, err := NewFastAdaptive(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	const k = 300
	names := gatherConcurrent(t, nm, k)
	assertUnique(t, names, nm.Namespace())
	maxName := 0
	for _, u := range names {
		if u > maxName {
			maxName = u
		}
	}
	if maxName > 32*k {
		t.Errorf("fast adaptive max name %d not O(k) for k=%d", maxName, k)
	}
}

func TestFastAdaptiveRejectsEpsilon(t *testing.T) {
	if _, err := NewFastAdaptive(64, WithEpsilon(0.5)); err == nil {
		t.Fatal("NewFastAdaptive accepted eps != 1")
	}
	if _, err := NewFastAdaptive(64, WithEpsilon(1)); err != nil {
		t.Fatalf("NewFastAdaptive rejected eps = 1: %v", err)
	}
}

func TestBaselinesConcurrentUnique(t *testing.T) {
	const n = 256
	uni, err := NewUniform(n)
	if err != nil {
		t.Fatal(err)
	}
	assertUnique(t, gatherConcurrent(t, uni, n), uni.Namespace())

	lin, err := NewLinearScan(n)
	if err != nil {
		t.Fatal(err)
	}
	names := gatherConcurrent(t, lin, n)
	assertUnique(t, names, n)
}

func TestReleaseAndReacquire(t *testing.T) {
	nm, err := NewReBatching(8, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	u, err := nm.GetName()
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.Release(u); err != nil {
		t.Fatalf("Release(%d): %v", u, err)
	}
	if err := nm.Release(u); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double release: got %v, want ErrNotHeld", err)
	}
	if err := nm.Release(-1); err == nil {
		t.Fatal("Release(-1) accepted")
	}
	if err := nm.Release(nm.Namespace()); err == nil {
		t.Fatal("Release(out of range) accepted")
	}
}

func TestReleaseKeepsUniqueness(t *testing.T) {
	// Churn: acquire all, release all, acquire all again. Uniqueness must
	// hold within each generation.
	const n = 64
	nm, err := NewReBatching(n)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		names := gatherConcurrent(t, nm, n)
		assertUnique(t, names, nm.Namespace())
		for _, u := range names {
			if err := nm.Release(u); err != nil {
				t.Fatalf("round %d: Release(%d): %v", round, u, err)
			}
		}
	}
}

func TestWithCountingProbes(t *testing.T) {
	nm, err := NewReBatching(64, WithCounting())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := nm.Probes(); !ok {
		t.Fatal("Probes() not available despite WithCounting")
	}
	gatherConcurrent(t, nm, 64)
	ops, wins, ok := nm.Probes()
	if !ok || ops < 64 || wins != 64 {
		t.Fatalf("Probes() = %d ops %d wins ok=%v; want >= 64 ops, exactly 64 wins", ops, wins, ok)
	}

	plain, err := NewReBatching(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := plain.Probes(); ok {
		t.Fatal("Probes() available without WithCounting")
	}
}

func TestWithPaddedTAS(t *testing.T) {
	nm, err := NewReBatching(128, WithPaddedTAS())
	if err != nil {
		t.Fatal(err)
	}
	assertUnique(t, gatherConcurrent(t, nm, 128), nm.Namespace())
}

func TestOptionValidation(t *testing.T) {
	bad := [][]Option{
		{WithEpsilon(0)},
		{WithEpsilon(-1)},
		{WithBeta(0)},
		{WithT0Override(0)},
	}
	for _, opts := range bad {
		if _, err := NewReBatching(8, opts...); err == nil {
			t.Errorf("options %v accepted", opts)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewReBatching(0); err == nil {
		t.Error("NewReBatching(0) accepted")
	}
	if _, err := NewAdaptive(0); err == nil {
		t.Error("NewAdaptive(0) accepted")
	}
	if _, err := NewFastAdaptive(0); err == nil {
		t.Error("NewFastAdaptive(0) accepted")
	}
	if _, err := NewUniform(0); err == nil {
		t.Error("NewUniform(0) accepted")
	}
	if _, err := NewLinearScan(0); err == nil {
		t.Error("NewLinearScan(0) accepted")
	}
}

func TestSeedReproducibility(t *testing.T) {
	// With a fixed seed and sequential (single-goroutine) calls, the name
	// sequence is reproducible.
	run := func() []int {
		nm, err := NewReBatching(64, WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 64)
		for i := range out {
			u, err := nm.GetName()
			if err != nil {
				t.Fatal(err)
			}
			out[i] = u
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at %d: %d != %d", i, a[i], b[i])
		}
	}
}

// TestAllNamersUniquePropertyQuick property-tests uniqueness across
// constructors, contention levels and seeds.
func TestAllNamersUniquePropertyQuick(t *testing.T) {
	property := func(seed uint64, rawK uint8) bool {
		k := int(rawK%100) + 1
		constructors := []func() (Namer, error){
			func() (Namer, error) { return NewReBatching(k, WithSeed(seed)) },
			func() (Namer, error) { return NewAdaptive(k, WithSeed(seed)) },
			func() (Namer, error) { return NewFastAdaptive(k, WithSeed(seed)) },
			func() (Namer, error) { return NewUniform(k, WithSeed(seed)) },
		}
		for _, mk := range constructors {
			nm, err := mk()
			if err != nil {
				return false
			}
			seen := make(map[int]bool, k)
			var wg sync.WaitGroup
			names := make([]int, k)
			for g := 0; g < k; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					names[g], _ = nm.GetName()
				}(g)
			}
			wg.Wait()
			for _, u := range names {
				if u < 0 || u >= nm.Namespace() || seen[u] {
					return false
				}
				seen[u] = true
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
