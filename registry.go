package renaming

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Driver constructs a Namer from parsed DSN parameters, in the style of
// database/sql drivers. Implementations read their parameters through the
// typed Params getters; Open rejects any parameter the driver did not read,
// so misspelled or misapplied keys fail loudly with ErrBadConfig.
type Driver func(p *Params) (Namer, error)

var (
	driversMu sync.RWMutex
	drivers   = map[string]Driver{}
)

// Register makes a namer driver available to Open under the given name.
// Like database/sql.Register it panics if the name is empty, the driver is
// nil, or the name is already taken — registration is an init-time,
// programmer-error surface.
func Register(name string, d Driver) {
	driversMu.Lock()
	defer driversMu.Unlock()
	if name == "" {
		panic("renaming: Register with empty driver name")
	}
	if d == nil {
		panic("renaming: Register with nil driver")
	}
	if _, dup := drivers[name]; dup {
		panic("renaming: Register called twice for driver " + name)
	}
	drivers[name] = d
}

// Drivers returns the names of all registered drivers, sorted.
func Drivers() []string {
	driversMu.RLock()
	defer driversMu.RUnlock()
	out := make([]string, 0, len(drivers))
	for name := range drivers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Open constructs a Namer from a DSN of the form
//
//	driver?key=value&key=value
//
// for example "rebatching?n=1024&eps=0.5" or "levelarray?n=4096&probes=3".
// The driver name selects the algorithm; the query parameters carry its
// tunables. Every shipped namer is registered:
//
//	rebatching    n (required), eps, beta, t0, seed, padded, counting
//	adaptive      n (required), eps, beta, t0, seed, padded, counting
//	fastadaptive  n (required), beta, t0, seed, padded, counting
//	levelarray    n (required), gamma, probes, resizable, seed, padded, counting
//	uniform       n (required), eps, seed, padded, counting
//	linearscan    n (required), seed, padded, counting
//
// n is the capacity / maximum contention handed to the constructor; the
// remaining keys map 1:1 onto the With* options. Unknown drivers, unknown
// keys and malformed values are rejected with errors matching ErrBadConfig.
func Open(dsn string) (Namer, error) {
	name, rawQuery, _ := strings.Cut(dsn, "?")
	if name == "" {
		return nil, badConfig("", "dsn", dsn, "empty driver name")
	}
	driversMu.RLock()
	d, ok := drivers[name]
	driversMu.RUnlock()
	if !ok {
		return nil, badConfig(name, "dsn", dsn,
			fmt.Sprintf("unknown driver (registered: %s)", strings.Join(Drivers(), ", ")))
	}
	values, err := url.ParseQuery(rawQuery)
	if err != nil {
		return nil, badConfig(name, "dsn", dsn, "malformed query: "+err.Error())
	}
	p := &Params{driver: name, values: values, used: map[string]bool{}}
	nm, err := d(p)
	if err != nil {
		return nil, err
	}
	if unused := p.unused(); len(unused) > 0 {
		return nil, badConfig(name, strings.Join(unused, ", "), "",
			"parameter does not apply to this namer")
	}
	return nm, nil
}

// Params is the typed view of a DSN's query parameters handed to a Driver.
// Getters record which keys were read so Open can reject leftovers.
type Params struct {
	driver string
	values url.Values
	used   map[string]bool
}

// Driver returns the driver name the DSN selected.
func (p *Params) Driver() string { return p.driver }

// Has reports whether key is present (and marks it read).
func (p *Params) Has(key string) bool {
	p.used[key] = true
	_, ok := p.values[key]
	return ok
}

// raw returns the key's value and presence, marking it read.
func (p *Params) raw(key string) (string, bool) {
	p.used[key] = true
	if vs, ok := p.values[key]; ok && len(vs) > 0 {
		return vs[0], true
	}
	return "", false
}

// Int returns key as an int, or def when absent.
func (p *Params) Int(key string, def int) (int, error) {
	s, ok := p.raw(key)
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, badConfig(p.driver, key, s, "not an integer")
	}
	return v, nil
}

// RequiredInt returns key as an int, failing when absent.
func (p *Params) RequiredInt(key string) (int, error) {
	if _, ok := p.raw(key); !ok {
		return 0, badConfig(p.driver, key, "", "required parameter missing")
	}
	return p.Int(key, 0)
}

// Float returns key as a float64, or def when absent.
func (p *Params) Float(key string, def float64) (float64, error) {
	s, ok := p.raw(key)
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, badConfig(p.driver, key, s, "not a number")
	}
	return v, nil
}

// Uint64 returns key as a uint64, or def when absent.
func (p *Params) Uint64(key string, def uint64) (uint64, error) {
	s, ok := p.raw(key)
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, badConfig(p.driver, key, s, "not an unsigned integer")
	}
	return v, nil
}

// Bool returns key as a bool, or def when absent. A present key with an
// empty value ("...&padded&...") reads as true.
func (p *Params) Bool(key string, def bool) (bool, error) {
	s, ok := p.raw(key)
	if !ok {
		return def, nil
	}
	if s == "" {
		return true, nil
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return false, badConfig(p.driver, key, s, "not a boolean")
	}
	return v, nil
}

// unused returns the present keys no getter read, sorted.
func (p *Params) unused() []string {
	var out []string
	for key := range p.values {
		if !p.used[key] {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// commonOptions collects the universal driver parameters (seed, padded,
// counting) shared by every registered namer.
func (p *Params) commonOptions() ([]Option, error) {
	var opts []Option
	if p.Has("seed") {
		seed, err := p.Uint64("seed", 0)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithSeed(seed))
	}
	if padded, err := p.Bool("padded", false); err != nil {
		return nil, err
	} else if padded {
		opts = append(opts, WithPaddedTAS())
	}
	if counting, err := p.Bool("counting", false); err != nil {
		return nil, err
	} else if counting {
		opts = append(opts, WithCounting())
	}
	return opts, nil
}

// oneShotParams parses the parameter set shared by the ReBatching family:
// eps (unless fixed by the algorithm), beta and t0.
func (p *Params) oneShotParams(withEps bool) ([]Option, error) {
	opts, err := p.commonOptions()
	if err != nil {
		return nil, err
	}
	if withEps && p.Has("eps") {
		eps, err := p.Float("eps", 1)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithEpsilon(eps))
	}
	if p.Has("beta") {
		beta, err := p.Int("beta", 0)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithBeta(beta))
	}
	if p.Has("t0") {
		t0, err := p.Int("t0", 0)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithT0Override(t0))
	}
	return opts, nil
}

func init() {
	Register("rebatching", func(p *Params) (Namer, error) {
		n, err := p.RequiredInt("n")
		if err != nil {
			return nil, err
		}
		opts, err := p.oneShotParams(true)
		if err != nil {
			return nil, err
		}
		return NewReBatching(n, opts...)
	})
	Register("adaptive", func(p *Params) (Namer, error) {
		n, err := p.RequiredInt("n")
		if err != nil {
			return nil, err
		}
		opts, err := p.oneShotParams(true)
		if err != nil {
			return nil, err
		}
		return NewAdaptive(n, opts...)
	})
	Register("fastadaptive", func(p *Params) (Namer, error) {
		n, err := p.RequiredInt("n")
		if err != nil {
			return nil, err
		}
		opts, err := p.oneShotParams(false)
		if err != nil {
			return nil, err
		}
		return NewFastAdaptive(n, opts...)
	})
	Register("levelarray", func(p *Params) (Namer, error) {
		n, err := p.RequiredInt("n")
		if err != nil {
			return nil, err
		}
		opts, err := p.commonOptions()
		if err != nil {
			return nil, err
		}
		if p.Has("gamma") {
			gamma, err := p.Float("gamma", 1)
			if err != nil {
				return nil, err
			}
			opts = append(opts, WithGamma(gamma))
		}
		if p.Has("probes") {
			probes, err := p.Int("probes", 0)
			if err != nil {
				return nil, err
			}
			opts = append(opts, WithLevelProbes(probes))
		}
		if resizable, err := p.Bool("resizable", false); err != nil {
			return nil, err
		} else if resizable {
			opts = append(opts, WithResizable())
		}
		return NewLevelArray(n, opts...)
	})
	Register("uniform", func(p *Params) (Namer, error) {
		n, err := p.RequiredInt("n")
		if err != nil {
			return nil, err
		}
		opts, err := p.commonOptions()
		if err != nil {
			return nil, err
		}
		if p.Has("eps") {
			eps, err := p.Float("eps", 1)
			if err != nil {
				return nil, err
			}
			opts = append(opts, WithEpsilon(eps))
		}
		return NewUniform(n, opts...)
	})
	Register("linearscan", func(p *Params) (Namer, error) {
		n, err := p.RequiredInt("n")
		if err != nil {
			return nil, err
		}
		opts, err := p.commonOptions()
		if err != nil {
			return nil, err
		}
		return NewLinearScan(n, opts...)
	})
}
