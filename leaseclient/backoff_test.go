package leaseclient

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestBackoffCeiling drives deterministic heartbeat failures against a
// dead target and pins the retry backoff schedule: 50ms doubling per
// failed round, clamped at maxBackoff (2s). The pre-fix guard checked
// the ceiling BEFORE doubling, so the sequence overshot to 3.2s and the
// effective ceiling was ~4s — during a server restart that is over a
// second of extra silence per heartbeat while the lease TTL burns.
func TestBackoffCeiling(t *testing.T) {
	// A target that is guaranteed dead: bind a port, then close it.
	srv := httptest.NewServer(http.NotFoundHandler())
	target := srv.URL
	srv.Close()

	s, err := NewSession(Config{
		Target:     target,
		Owner:      "backoff-test",
		TTL:        time.Second,
		HTTPClient: &http.Client{Timeout: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Hand the session a lease directly: the heartbeat loop is idle (no
	// wake was kicked), so the test owns every heartbeat() call.
	s.mu.Lock()
	s.leases[3] = Lease{Name: 3, Token: 7, ExpiresAt: time.Now().Add(time.Hour)}
	s.mu.Unlock()

	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // 3200ms pre-fix
		2 * time.Second, // stays pinned at the ceiling
		2 * time.Second,
	}
	for i, w := range want {
		s.heartbeat()
		s.mu.Lock()
		got := s.backoff
		s.mu.Unlock()
		if got != w {
			t.Fatalf("after %d failed rounds backoff = %v, want %v", i+1, got, w)
		}
		if got > maxBackoff {
			t.Fatalf("backoff %v exceeded the %v ceiling", got, maxBackoff)
		}
	}
	if got := s.Stats().Retries; got != int64(len(want)) {
		t.Fatalf("Retries = %d, want %d", got, len(want))
	}
	// The lease was never dropped: transport failures are not losses.
	if got := len(s.Leases()); got != 1 {
		t.Fatalf("session dropped %d leases on transport failure", 1-got)
	}
}
