package leaseclient

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/wire"
)

// Transport carries the lease protocol's operations to one server. The
// Session layer — heartbeats, backoff, OnLost, re-adoption — is written
// once against this interface; the HTTP/JSON and binary (binproto)
// implementations only move bytes.
//
// Error contract: an error that errors.As-matches *ServerError means
// the server RECEIVED the request and refused it; any other error is a
// transport failure where the request may never have arrived — the
// distinction drives the Session's release re-adoption and heartbeat
// backoff. Implementations must be safe for concurrent use.
type Transport interface {
	Acquire(ctx context.Context, req *wire.AcquireRequest) (wire.Lease, error)
	AcquireBatch(ctx context.Context, req *wire.AcquireBatchRequest) (wire.Leases, error)
	Renew(ctx context.Context, req *wire.RenewRequest) (wire.Lease, error)
	RenewBatch(ctx context.Context, req *wire.RenewBatchRequest) (wire.BatchResults, error)
	Release(ctx context.Context, req *wire.ReleaseRequest) error
	ReleaseBatch(ctx context.Context, req *wire.ReleaseBatchRequest) (wire.BatchResults, error)
	// Ping checks reachability: GET /healthz over HTTP, a stats round
	// trip over the binary protocol.
	Ping(ctx context.Context) error
	// Close releases the transport's connections. The Session closes the
	// transport it constructed; injected transports are the caller's.
	Close() error
}

// DefaultCallTimeout bounds a round trip whose context carries no
// deadline. It exists because "no deadline" against a wedged server —
// one that accepts and never replies — is an unbounded hang in the
// middle of a heartbeat loop.
const DefaultCallTimeout = 10 * time.Second

// NewTransport selects a transport by target scheme: "bin://host:port"
// speaks the binary protocol on a persistent connection, "http://" /
// "https://" the JSON surface. This is the one place the scheme is
// interpreted — everything above it is transport-neutral. Round trips
// are bounded by DefaultCallTimeout; NewTransportTimeout overrides it.
func NewTransport(target string) (Transport, error) {
	return NewTransportTimeout(target, DefaultCallTimeout)
}

// NewTransportTimeout is NewTransport with an explicit per-call bound
// applied when the caller's context has no deadline. timeout <= 0
// disables the bound (fault-injection harnesses only — a production
// client should always keep one).
func NewTransportTimeout(target string, timeout time.Duration) (Transport, error) {
	switch {
	case strings.HasPrefix(target, binScheme):
		return newBinTransport(strings.TrimPrefix(target, binScheme), timeout), nil
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"):
		return newHTTPTransport(target, &http.Client{Timeout: maxDuration(timeout, 0)}), nil
	default:
		return nil, fmt.Errorf("leaseclient: target %q: unsupported scheme (want http://, https:// or bin://)", target)
	}
}

// binScheme prefixes binary-protocol targets.
const binScheme = "bin://"

// ServerError is a request the server received and refused as a whole:
// a non-2xx HTTP response or a binary TError frame. Per-item batch
// verdicts are NOT ServerErrors — they arrive inside successful
// responses. Unwrap yields the typed sentinel (lease.ErrWrongToken,
// lease.ErrCapacity, ...) when the refusal carried a recognizable code,
// so errors.Is works identically over either transport.
type ServerError struct {
	// Op is the operation, in route-name form ("renew_batch").
	Op string
	// Status is the HTTP status code; 0 on the binary transport.
	Status int
	// Msg is the server-rendered error text.
	Msg string
	// RequestID joins this failure against the server's slow-op log and
	// response headers (16 hex digits on both transports).
	RequestID string
	// Err is the typed sentinel recovered from the response's error
	// code; may be nil when the server's error defied classification.
	Err error
}

func (e *ServerError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("leaseclient: %s [rid=%s]: HTTP %d: %s", e.Op, e.RequestID, e.Status, e.Msg)
	}
	return fmt.Sprintf("leaseclient: %s [rid=%s]: server: %s", e.Op, e.RequestID, e.Msg)
}

func (e *ServerError) Unwrap() error { return e.Err }
