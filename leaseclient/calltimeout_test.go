package leaseclient

import (
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// wedgedServer accepts connections and never replies — the failure mode
// CallTimeout exists for. It reads (and discards) whatever the client
// sends so writes succeed and the hang lands on the response read, the
// same shape a partitioned or deadlocked server presents. The returned
// func severs every accepted connection (and is also run at cleanup).
func wedgedServer(t *testing.T) (addr string, sever func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	conns := map[net.Conn]struct{}{}
	sever = func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for c := range conns {
			c.Close()
		}
	}
	t.Cleanup(sever)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns[conn] = struct{}{}
			mu.Unlock()
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), sever
}

// TestCallTimeoutBoundsWedgedServer: a heartbeat context has no
// deadline, so without CallTimeout a server that accepts and never
// replies hangs the call forever. The configured bound must surface a
// transport error instead.
func TestCallTimeoutBoundsWedgedServer(t *testing.T) {
	addr, _ := wedgedServer(t)
	tr := newBinTransport(addr, 150*time.Millisecond)
	defer tr.Close()

	start := time.Now()
	_, err := tr.RenewBatch(context.Background(), &wire.RenewBatchRequest{
		TTLms: 1000, Items: []wire.Item{{Name: 1, Token: 1}},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("RenewBatch against a wedged server returned nil error")
	}
	var se *ServerError
	if errors.As(err, &se) {
		t.Fatalf("timeout classified as ServerError (%v); must read as transport failure", err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("call took %v; CallTimeout 150ms did not bound it", elapsed)
	}
}

// TestCallTimeoutZeroDefaults: a zero timeout means DefaultCallTimeout,
// never unbounded — only an explicit negative disables the bound.
func TestCallTimeoutZeroDefaults(t *testing.T) {
	if tr := newBinTransport("127.0.0.1:1", 0); tr.timeout != DefaultCallTimeout {
		t.Fatalf("zero CallTimeout resolved to %v, want %v", tr.timeout, DefaultCallTimeout)
	}
	var cfg Config
	cfg.Target = "bin://127.0.0.1:1"
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.CallTimeout != DefaultCallTimeout {
		t.Fatalf("Config.CallTimeout defaulted to %v, want %v", cfg.CallTimeout, DefaultCallTimeout)
	}
}

// TestCallTimeoutUnboundedStillHonorsContext: negative CallTimeout
// removes the transport's own bound (the fault-injection configuration),
// but a context deadline must still cut the call loose.
func TestCallTimeoutUnboundedStillHonorsContext(t *testing.T) {
	addr, sever := wedgedServer(t)
	tr := newBinTransport(addr, -1)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.RenewBatch(ctx, &wire.RenewBatchRequest{
		TTLms: 1000, Items: []wire.Item{{Name: 1, Token: 1}},
	})
	if err == nil {
		t.Fatal("RenewBatch returned nil error under an expired context")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("context deadline did not bound the unbounded transport (took %v)", elapsed)
	}

	// And with neither bound, the call genuinely hangs — the regression
	// the chaos partition scenario exists to catch. Probe briefly, then
	// sever the connection so the call (and transport) can be released.
	done := make(chan struct{})
	go func() {
		tr.RenewBatch(context.Background(), &wire.RenewBatchRequest{
			TTLms: 1000, Items: []wire.Item{{Name: 1, Token: 1}},
		})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("unbounded call returned; expected it to hang until the conn drops")
	case <-time.After(400 * time.Millisecond):
	}
	sever()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("hung call did not return after its connection was severed")
	}
	tr.Close()
}
