package leaseclient

import (
	"math/rand/v2"
	"testing"
	"time"
)

// scheduleSession builds a Session shell (no goroutines, no transport)
// with an injected clock and seeded jitter source, holding one lease
// per given remaining TTL. nextWait is the whole heartbeat schedule —
// everything else in the loop is plumbing — so driving it directly
// pins the schedule without a live server.
func scheduleSession(t *testing.T, seed uint64, now time.Time, remaining ...time.Duration) *Session {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0))
	cfg := Config{
		Target: "http://unused",
		Now:    func() time.Time { return now },
		Rand:   rng.Float64,
	}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	s := &Session{cfg: cfg, leases: map[int]Lease{}}
	for i, r := range remaining {
		s.leases[i] = Lease{Name: i, Token: uint64(i + 1), ExpiresAt: now.Add(r)}
	}
	return s
}

// TestHeartbeatScheduleDeterministic: with an injected clock and seeded
// RNG, the renewal schedule is a pure function of the seed — the
// property every chaos scenario's reproducibility rests on.
func TestHeartbeatScheduleDeterministic(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	const steps = 32
	run := func(seed uint64) []time.Duration {
		s := scheduleSession(t, seed, now, 3*time.Second, 9*time.Second)
		waits := make([]time.Duration, steps)
		for i := range waits {
			w, idle := s.nextWait()
			if idle {
				t.Fatal("nextWait reported idle with leases held")
			}
			waits[i] = w
		}
		return waits
	}

	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == steps {
		t.Fatal("different seeds produced identical schedules; jitter is not drawing from the injected RNG")
	}

	// The base interval is HeartbeatFraction (1/3) of the soonest
	// remaining TTL (3s → 1s), jittered by ±10%: every wait must stay
	// inside [0.9s, 1.1s]. A wait outside the band means the schedule
	// stopped honoring the injected clock.
	for i, w := range a {
		if w < 900*time.Millisecond || w > 1100*time.Millisecond {
			t.Fatalf("step %d: wait %v outside the jitter band [900ms, 1100ms]", i, w)
		}
	}
}

// TestScheduleUsesInjectedClock: skewing only the clock must shift the
// perceived remaining TTL — the mechanism the chaos skew scenario
// injects through. A client whose clock runs 2s ahead sees a 3s lease
// as having 1s left and heartbeats three times as fast.
func TestScheduleUsesInjectedClock(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	honest := scheduleSession(t, 7, base, 3*time.Second)
	ahead := scheduleSession(t, 7, base.Add(2*time.Second))
	// Same server-stamped expiry as honest's lease; only the clock moved.
	ahead.leases[0] = Lease{Name: 0, Token: 1, ExpiresAt: base.Add(3 * time.Second)}
	// Same seed: the jitter draw is identical, so the ratio isolates the
	// clock's effect exactly.
	hw, _ := honest.nextWait()
	aw, _ := ahead.nextWait()
	if hw <= aw*2 {
		t.Fatalf("clock skew did not shrink the schedule: honest %v vs 2s-ahead %v", hw, aw)
	}
}
