package leaseclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	renaming "repro"
	"repro/internal/wire"
	"repro/lease"
)

// httpTransport speaks the /v1 JSON surface. Every request carries a
// fresh wire.HeaderRequestID, and transport and server errors embed it
// so a failure in a client log joins against the server's record of the
// same request.
type httpTransport struct {
	base   string
	client *http.Client
}

func newHTTPTransport(base string, client *http.Client) *httpTransport {
	return &httpTransport{base: base, client: client}
}

func (t *httpTransport) Acquire(ctx context.Context, req *wire.AcquireRequest) (wire.Lease, error) {
	var l wire.Lease
	err := t.post(ctx, "/v1/acquire", req, &l)
	return l, err
}

func (t *httpTransport) AcquireBatch(ctx context.Context, req *wire.AcquireBatchRequest) (wire.Leases, error) {
	var ls wire.Leases
	err := t.post(ctx, "/v1/acquire_batch", req, &ls)
	return ls, err
}

func (t *httpTransport) Renew(ctx context.Context, req *wire.RenewRequest) (wire.Lease, error) {
	var l wire.Lease
	err := t.post(ctx, "/v1/renew", req, &l)
	return l, err
}

func (t *httpTransport) RenewBatch(ctx context.Context, req *wire.RenewBatchRequest) (wire.BatchResults, error) {
	var rs wire.BatchResults
	err := t.post(ctx, "/v1/renew_batch", req, &rs)
	return rs, err
}

func (t *httpTransport) Release(ctx context.Context, req *wire.ReleaseRequest) error {
	return t.post(ctx, "/v1/release", req, nil)
}

func (t *httpTransport) ReleaseBatch(ctx context.Context, req *wire.ReleaseBatchRequest) (wire.BatchResults, error) {
	var rs wire.BatchResults
	err := t.post(ctx, "/v1/release_batch", req, &rs)
	return rs, err
}

func (t *httpTransport) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("leaseclient: healthz: %w", err)
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return fmt.Errorf("leaseclient: healthz: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("leaseclient: healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Close is a no-op: the http.Client's pooled connections outlive any
// one transport by design.
func (t *httpTransport) Close() error { return nil }

// sentinelForStatus inverts the server's writeError status mapping so a
// ServerError over HTTP Unwraps to the same typed sentinels the binary
// transport recovers from its code byte. Ambiguous statuses (503 covers
// both exhaustion and a closing server) pick the retryable reading.
func sentinelForStatus(status int) error {
	switch status {
	case http.StatusServiceUnavailable:
		return lease.ErrCapacity
	case http.StatusConflict:
		return lease.ErrWrongToken
	case http.StatusGone:
		return lease.ErrExpired
	case http.StatusNotFound:
		return lease.ErrUnknownName
	case http.StatusRequestTimeout:
		return renaming.ErrCancelled
	case http.StatusBadRequest:
		return renaming.ErrBadConfig
	default:
		return nil
	}
}

// post sends one JSON request and decodes a 2xx response into out (when
// non-nil). Non-2xx responses come back as *ServerError with the wire
// error body's message; the typed per-item errors inside batch results
// flow through wire.ErrFor instead.
func (t *httpTransport) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("leaseclient: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("leaseclient: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	reqID := wire.NewRequestID()
	req.Header.Set(wire.HeaderRequestID, reqID)
	resp, err := t.client.Do(req)
	if err != nil {
		return fmt.Errorf("leaseclient: %s [rid=%s]: %w", path, reqID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var we wire.Error
		msg := ""
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&we) == nil {
			msg = we.Error
		}
		io.Copy(io.Discard, resp.Body)
		return &ServerError{
			Op:        strings.TrimPrefix(path, "/v1/"),
			Status:    resp.StatusCode,
			Msg:       msg,
			RequestID: reqID,
			Err:       sentinelForStatus(resp.StatusCode),
		}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("leaseclient: decode %s: %w", path, err)
		}
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
