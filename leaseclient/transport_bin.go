package leaseclient

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
	"repro/internal/wire/binproto"
)

// binTransport speaks binproto over one persistent TCP connection,
// dialed lazily and redialed after any I/O failure (the Session's
// backoff loop turns a redial into at most one lost heartbeat round).
// Round trips are serialized under the mutex — the Session's heartbeat
// is itself serial, so a deeper pipeline here would only buy latency
// the caller never sees; the saturating pipelined path lives in the
// benchreport loadgen, speaking binproto directly.
type binTransport struct {
	addr    string
	timeout time.Duration // per-round-trip bound when ctx has no deadline; <= 0 unbounded

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader

	// Reused per-round-trip buffers; all access is under mu.
	buf     []byte
	payload []byte
	results []binproto.RenewResult
	leases  []binproto.Lease
	codes   []byte
	closed  bool
}

// newBinTransport dials addr lazily. timeout bounds each round trip
// when the context carries no deadline (Config.CallTimeout); zero means
// DefaultCallTimeout, negative means unbounded — the pre-CallTimeout
// behavior, kept reachable so the chaos harness can prove what a wedged
// server does to an unbounded client.
func newBinTransport(addr string, timeout time.Duration) *binTransport {
	if timeout == 0 {
		timeout = DefaultCallTimeout
	}
	return &binTransport{addr: addr, timeout: timeout}
}

func (t *binTransport) Acquire(ctx context.Context, req *wire.AcquireRequest) (wire.Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, err := t.roundTrip(ctx, binproto.TAcquire, func(b []byte) []byte {
		return binproto.AppendAcquireReq(b, req.Owner, req.TTLms, req.Meta)
	})
	if err != nil {
		return wire.Lease{}, err
	}
	l, err := binproto.DecodeLease(p)
	if err != nil {
		return wire.Lease{}, t.corrupt("acquire", err)
	}
	return wire.Lease{Name: int(l.Name), Token: l.Token, Owner: req.Owner, ExpiresAtMs: l.ExpiresMs}, nil
}

func (t *binTransport) AcquireBatch(ctx context.Context, req *wire.AcquireBatchRequest) (wire.Leases, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, err := t.roundTrip(ctx, binproto.TAcquireBatch, func(b []byte) []byte {
		return binproto.AppendAcquireBatchReq(b, req.Owner, req.Count, req.TTLms, req.Meta)
	})
	if err != nil {
		return wire.Leases{}, err
	}
	t.leases, err = binproto.DecodeLeasesResp(p, t.leases)
	if err != nil {
		return wire.Leases{}, t.corrupt("acquire_batch", err)
	}
	out := wire.Leases{Leases: make([]wire.Lease, len(t.leases))}
	for i, l := range t.leases {
		out.Leases[i] = wire.Lease{Name: int(l.Name), Token: l.Token, Owner: req.Owner, ExpiresAtMs: l.ExpiresMs}
	}
	return out, nil
}

func (t *binTransport) Renew(ctx context.Context, req *wire.RenewRequest) (wire.Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, err := t.roundTrip(ctx, binproto.TRenew, func(b []byte) []byte {
		return binproto.AppendRenewReq(b, int64(req.Name), req.Token, req.TTLms)
	})
	if err != nil {
		return wire.Lease{}, err
	}
	l, err := binproto.DecodeLease(p)
	if err != nil {
		return wire.Lease{}, t.corrupt("renew", err)
	}
	return wire.Lease{Name: int(l.Name), Token: l.Token, ExpiresAtMs: l.ExpiresMs}, nil
}

func (t *binTransport) RenewBatch(ctx context.Context, req *wire.RenewBatchRequest) (wire.BatchResults, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, err := t.roundTrip(ctx, binproto.TRenewBatch, func(b []byte) []byte {
		return binproto.AppendRenewBatchReq(b, req.TTLms, req.Items)
	})
	if err != nil {
		return wire.BatchResults{}, err
	}
	t.results, err = binproto.DecodeRenewBatchResp(p, t.results)
	if err != nil {
		return wire.BatchResults{}, t.corrupt("renew_batch", err)
	}
	out := wire.BatchResults{Results: make([]wire.BatchResult, len(t.results))}
	for i, r := range t.results {
		if r.Code == binproto.CodeOK {
			out.Results[i].Lease = &wire.Lease{Name: int(r.Name), Token: r.Token, ExpiresAtMs: r.ExpiresMs}
			continue
		}
		out.Results[i].Code = binproto.CodeString(r.Code)
	}
	return out, nil
}

func (t *binTransport) Release(ctx context.Context, req *wire.ReleaseRequest) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, err := t.roundTrip(ctx, binproto.TRelease, func(b []byte) []byte {
		return binproto.AppendReleaseReq(b, int64(req.Name), req.Token)
	})
	if err != nil {
		return err
	}
	if len(p) != 0 {
		return t.corrupt("release", binproto.ErrTrailingBytes)
	}
	return nil
}

func (t *binTransport) ReleaseBatch(ctx context.Context, req *wire.ReleaseBatchRequest) (wire.BatchResults, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, err := t.roundTrip(ctx, binproto.TReleaseBatch, func(b []byte) []byte {
		return binproto.AppendReleaseBatchReq(b, req.Items)
	})
	if err != nil {
		return wire.BatchResults{}, err
	}
	t.codes, err = binproto.DecodeReleaseBatchResp(p, t.codes)
	if err != nil {
		return wire.BatchResults{}, t.corrupt("release_batch", err)
	}
	out := wire.BatchResults{Results: make([]wire.BatchResult, len(t.codes))}
	for i, c := range t.codes {
		out.Results[i].Code = binproto.CodeString(c)
	}
	return out, nil
}

// Ping is a stats round trip — the cheapest full-stack request the
// binary surface offers.
func (t *binTransport) Ping(ctx context.Context) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, err := t.roundTrip(ctx, binproto.TStats, func(b []byte) []byte { return b })
	if err != nil {
		return err
	}
	if _, err := binproto.DecodeStatsResp(p); err != nil {
		return t.corrupt("stats", err)
	}
	return nil
}

func (t *binTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	return t.dropConn()
}

func (t *binTransport) dropConn() error {
	if t.conn == nil {
		return nil
	}
	err := t.conn.Close()
	t.conn, t.br = nil, nil
	return err
}

// corrupt handles a response that framed correctly but would not
// decode: the stream can no longer be trusted, so the connection drops
// (the next call redials) and the error reports as transport-level.
func (t *binTransport) corrupt(op string, err error) error {
	t.dropConn()
	return fmt.Errorf("leaseclient: %s: corrupt response: %w", op, err)
}

// roundTrip sends one frame and returns the response payload, valid
// until the next call. Any I/O failure drops the connection so the next
// round trip redials from scratch. Caller holds mu.
func (t *binTransport) roundTrip(ctx context.Context, typ binproto.Type, encode func([]byte) []byte) ([]byte, error) {
	if t.closed {
		return nil, fmt.Errorf("leaseclient: bin transport closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if t.conn == nil {
		d := net.Dialer{Timeout: dialTimeout(t.timeout)}
		conn, err := d.DialContext(ctx, "tcp", t.addr)
		if err != nil {
			return nil, fmt.Errorf("leaseclient: dial %s: %w", t.addr, err)
		}
		t.conn = conn
		t.br = bufio.NewReaderSize(conn, 64<<10)
	}
	// A context deadline always bounds the round trip; without one the
	// transport's own CallTimeout does. A negative timeout leaves the
	// call unbounded — only the fault-injection harness asks for that.
	var deadline time.Time
	if t.timeout > 0 {
		//lint:wallclock net.Conn deadlines are absolute wall-clock instants by contract; the injected session clock must not skew socket timeouts
		deadline = time.Now().Add(t.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	t.conn.SetDeadline(deadline)

	//lint:wallclock frame IDs need uniqueness across restarts, not reproducibility; a seeded stream would collide after a crash-restart
	id := rand.Uint64()
	var start int
	t.buf, start = binproto.BeginFrame(t.buf[:0], typ, id)
	t.buf = encode(t.buf)
	t.buf = binproto.EndFrame(t.buf, start)
	if _, err := t.conn.Write(t.buf); err != nil {
		t.dropConn()
		return nil, fmt.Errorf("leaseclient: write %s: %w", t.addr, err)
	}

	var hdr [binproto.HeaderLen]byte
	if _, err := io.ReadFull(t.br, hdr[:]); err != nil {
		t.dropConn()
		return nil, fmt.Errorf("leaseclient: read %s: %w", t.addr, err)
	}
	h, err := binproto.ParseHeader(hdr[:])
	if err != nil {
		return nil, t.corrupt(opName(typ), err)
	}
	if h.ID != id {
		// A stale response from a previous timed-out round trip: the
		// stream is out of phase, start over.
		return nil, t.corrupt(opName(typ), fmt.Errorf("response id %016x, want %016x", h.ID, id))
	}
	if cap(t.payload) < int(h.Len) {
		t.payload = make([]byte, h.Len)
	}
	t.payload = t.payload[:h.Len]
	if _, err := io.ReadFull(t.br, t.payload); err != nil {
		t.dropConn()
		return nil, fmt.Errorf("leaseclient: read %s: %w", t.addr, err)
	}
	if err := binproto.VerifyPayload(h, t.payload); err != nil {
		// Damaged response bytes: never decode them — drop the stream
		// and let the session retry on a fresh connection.
		return nil, t.corrupt(opName(typ), err)
	}
	if h.Type == binproto.TError {
		code, msg, derr := binproto.DecodeErrorResp(t.payload)
		if derr != nil {
			return nil, t.corrupt(opName(typ), derr)
		}
		return nil, &ServerError{
			Op:        opName(typ),
			Msg:       msg,
			RequestID: fmt.Sprintf("%016x", id),
			Err:       binproto.ErrFor(code, ""),
		}
	}
	if h.Type != typ|binproto.RespBit {
		return nil, t.corrupt(opName(typ), fmt.Errorf("response type %#02x for request %#02x", byte(h.Type), byte(typ)))
	}
	return t.payload, nil
}

// dialTimeout keeps connection ESTABLISHMENT bounded even when the
// round-trip bound is disabled: an unbounded dial hangs on a black-holed
// SYN, which no configuration should ask for.
func dialTimeout(t time.Duration) time.Duration {
	if t > 0 {
		return t
	}
	return DefaultCallTimeout
}

// opName renders a request type in route-name form for errors.
func opName(t binproto.Type) string {
	switch t {
	case binproto.TAcquire:
		return "acquire"
	case binproto.TAcquireBatch:
		return "acquire_batch"
	case binproto.TRenew:
		return "renew"
	case binproto.TRenewBatch:
		return "renew_batch"
	case binproto.TRelease:
		return "release"
	case binproto.TReleaseBatch:
		return "release_batch"
	case binproto.TStats:
		return "stats"
	default:
		return fmt.Sprintf("type_0x%02x", byte(t))
	}
}
