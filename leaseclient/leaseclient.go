// Package leaseclient is the client half of cmd/renamed's lease
// protocol: a Session acquires names from a renamed server and keeps
// them alive for you — the etcd-style session idiom.
//
// A Session owns a background heartbeat goroutine that renews every held
// lease at a configurable fraction of the TTL (default 1/3, with jitter
// so fleets of sessions don't thunder in phase), coalescing all due
// renewals into single /v1/renew_batch calls. Transient failures —
// connection errors, 5xx — are retried with exponential backoff inside
// the remaining TTL budget. A renewal the server refuses outright
// (unknown name, fencing token mismatch, expired) means the lease is
// LOST: it is dropped from the session and reported through the OnLost
// callback, typed so errors.Is against lease.ErrWrongToken /
// lease.ErrExpired / lease.ErrUnknownName tells you why. Close releases
// everything in one /v1/release_batch round trip.
//
//	s, err := leaseclient.NewSession(leaseclient.Config{
//		Target: "http://localhost:8077",
//		Owner:  "worker-7",
//		TTL:    5 * time.Second,
//		OnLost: func(name int, err error) { log.Printf("lost %d: %v", name, err) },
//	})
//	l, err := s.Acquire(ctx)    // one name, heartbeated from now on
//	...
//	defer s.Close()             // releases every held lease
package leaseclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
	"repro/lease"
)

// ErrSessionClosed is returned by operations on a closed Session.
var ErrSessionClosed = errors.New("leaseclient: session closed")

// maxBackoff caps the transient-failure retry delay: a session must keep
// probing at least every 2s through a server restart, or leases expire
// while the client politely waits.
const maxBackoff = 2 * time.Second

// Lease is one name the session holds. Copies are handed out; the
// session keeps renewing the lease regardless of what the caller does
// with the copy.
type Lease struct {
	// Name is the acquired integer name.
	Name int
	// Token is the fencing token minted at acquisition. The session
	// presents it on every renewal; callers passing it to other systems
	// get fencing for free.
	Token uint64
	// ExpiresAt is the deadline as of the last successful acquire/renew,
	// computed from the server's expires_at_ms.
	ExpiresAt time.Time
}

// Config tunes a Session. Target is required (unless Transport is
// injected); everything else defaults.
type Config struct {
	// Target selects the server and the wire: "http://host:8077" for the
	// JSON surface, "bin://host:9077" for the binary protocol on a
	// persistent connection. The Session itself is transport-neutral.
	Target string
	// Transport overrides Target with a caller-built transport (tests,
	// custom wiring). The caller keeps ownership: Close does not close an
	// injected transport.
	Transport Transport
	// Owner identifies this session to the server (shows up in
	// /v1/leases listings).
	Owner string
	// TTL is the lease duration requested on every acquire and renew.
	// 0 uses the server's default TTL; the heartbeat cadence then derives
	// from the expiry the server actually granted, so either way renewals
	// land well before the deadline.
	TTL time.Duration
	// HeartbeatFraction is the fraction of the remaining TTL to wait
	// between renewals. Default 1/3: a lease gets two more chances if a
	// heartbeat round fails transiently.
	HeartbeatFraction float64
	// Jitter spreads each heartbeat interval by ±Jitter (a fraction of
	// the interval, default 0.1) so many sessions started together don't
	// renew in phase forever.
	Jitter float64
	// MaxBatch caps the items per /v1/renew_batch (and release_batch)
	// request. Default 4096 — at the wire's ~25 bytes per item this
	// stays well inside the server's 1 MiB body limit.
	MaxBatch int
	// CallTimeout bounds every round trip whose context carries no
	// deadline (the heartbeat loop's context never does). Without it a
	// wedged server — one that accepts a connection and never replies —
	// would hang a heartbeat forever while the leases it was renewing
	// burn down. Default DefaultCallTimeout (10s); negative disables the
	// bound entirely (tests and fault injection only — never production).
	CallTimeout time.Duration
	// HTTPClient overrides the HTTP transport's client (http:// targets
	// only). Default: a client with CallTimeout as its overall timeout.
	HTTPClient *http.Client
	// Now is the session's clock; defaults to time.Now. The chaos
	// harness injects skewed clocks here, mirroring lease.Config.Now.
	Now func() time.Time
	// Rand is the heartbeat jitter source, returning values in [0,1);
	// defaults to the global math/rand/v2. Injecting a seeded source
	// (together with Now) makes the session's renewal schedule
	// deterministic end-to-end for chaos runs.
	Rand func() float64
	// OnLost is invoked (from the heartbeat goroutine, without internal
	// locks held) for every lease the server refuses to renew: the
	// session no longer holds the name, and err matches
	// lease.ErrUnknownName, lease.ErrWrongToken or lease.ErrExpired.
	OnLost func(name int, err error)
	// OnHeartbeat, if set, observes every renew_batch round trip: the
	// number of items sent, the wall-clock latency, and the transport
	// error if the round failed (nil on success, even if items were
	// lost). Load generators hang latency histograms off this.
	OnHeartbeat func(items int, d time.Duration, err error)
}

func (c *Config) applyDefaults() error {
	if c.Target == "" && c.Transport == nil {
		return errors.New("leaseclient: Config.Target required")
	}
	if c.HeartbeatFraction <= 0 || c.HeartbeatFraction >= 1 {
		if c.HeartbeatFraction != 0 {
			return fmt.Errorf("leaseclient: HeartbeatFraction %v outside (0,1)", c.HeartbeatFraction)
		}
		c.HeartbeatFraction = 1.0 / 3
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("leaseclient: Jitter %v outside [0,1)", c.Jitter)
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = DefaultCallTimeout
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: maxDuration(c.CallTimeout, 0)}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	return nil
}

// maxDuration clamps a negative (unbounded) CallTimeout to the
// http.Client spelling of "no timeout".
func maxDuration(d, floor time.Duration) time.Duration {
	if d < floor {
		return floor
	}
	return d
}

// Stats is a snapshot of a session's lifetime counters. Everything a
// monitoring scrape wants is here — no OnHeartbeat callback needed:
// the session maintains its own per-batch latency histogram and
// transport-failure counter internally.
type Stats struct {
	Renewed    int64 // successful single-lease renewals (across batches)
	Heartbeats int64 // renew_batch round trips attempted
	Retries    int64 // heartbeat rounds that failed transport and backed off
	Lost       int64 // leases dropped because the server refused renewal
	// TransportErrors counts individual renew_batch round trips that
	// failed at the transport layer (connect refused, timeout, 5xx).
	// Retries counts backoff decisions per heartbeat ROUND; this counts
	// failed REQUESTS, so with multiple chunks per round it can lead.
	TransportErrors int64
	// HeartbeatLatency summarizes the wall-clock latency of every
	// renew_batch round trip (success or failure) since the session
	// started: count, mean and p50/p90/p95/p99.
	HeartbeatLatency telemetry.Summary
}

// Session holds leases against one renamed server and renews them in the
// background. All methods are safe for concurrent use.
type Session struct {
	cfg Config
	// tr moves the bytes; every protocol decision above it (heartbeat
	// cadence, backoff, loss classification, re-adoption) is written once
	// here and works over HTTP and the binary wire identically.
	tr Transport
	// ownTransport marks a transport this session built from cfg.Target
	// (and must close); injected transports belong to the caller.
	ownTransport bool

	mu     sync.Mutex
	leases map[int]Lease
	closed bool

	// kick wakes the heartbeat loop early when the lease set changes
	// (first acquire after idle, or a Close).
	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	renewed       atomic.Int64
	heartbeats    atomic.Int64
	retries       atomic.Int64
	lost          atomic.Int64
	transportErrs atomic.Int64
	hbLat         *telemetry.Histogram

	// backoff is the current transient-failure retry delay; reset to 0
	// by any successful heartbeat round.
	backoff time.Duration
}

// NewSession validates cfg and starts the heartbeat loop. The session
// holds no leases until Acquire/AcquireN.
func NewSession(cfg Config) (*Session, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	s := &Session{
		cfg:    cfg,
		leases: make(map[int]Lease),
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		hbLat:  telemetry.NewHistogram(),
	}
	switch {
	case cfg.Transport != nil:
		s.tr = cfg.Transport
	case strings.HasPrefix(cfg.Target, binScheme):
		s.tr = newBinTransport(strings.TrimPrefix(cfg.Target, binScheme), cfg.CallTimeout)
		s.ownTransport = true
	default:
		// http:// and https:// — and bare host:port for compatibility
		// with URL-shaped targets that worked before transports existed.
		s.tr = newHTTPTransport(cfg.Target, cfg.HTTPClient)
		s.ownTransport = true
	}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Acquire leases one fresh name and adds it to the heartbeat set.
func (s *Session) Acquire(ctx context.Context) (Lease, error) {
	ls, err := s.AcquireN(ctx, 1)
	if err != nil {
		return Lease{}, err
	}
	return ls[0], nil
}

// AcquireN leases k fresh names in one /v1/acquire_batch round trip
// (all-or-nothing, like the server) and adds them to the heartbeat set.
func (s *Session) AcquireN(ctx context.Context, k int) ([]Lease, error) {
	if k < 1 {
		return nil, fmt.Errorf("leaseclient: AcquireN(%d): k must be >= 1", k)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	s.mu.Unlock()

	var granted wire.Leases
	if k == 1 {
		// The single-acquire endpoint responds with a bare lease.
		l, err := s.tr.Acquire(ctx, &wire.AcquireRequest{Owner: s.cfg.Owner, TTLms: s.cfg.TTL.Milliseconds()})
		if err != nil {
			return nil, err
		}
		granted.Leases = []wire.Lease{l}
	} else {
		var err error
		granted, err = s.tr.AcquireBatch(ctx, &wire.AcquireBatchRequest{Owner: s.cfg.Owner, Count: k, TTLms: s.cfg.TTL.Milliseconds()})
		if err != nil {
			return nil, err
		}
		if len(granted.Leases) != k {
			return nil, fmt.Errorf("leaseclient: acquire_batch returned %d leases, want %d", len(granted.Leases), k)
		}
	}

	out := make([]Lease, len(granted.Leases))
	s.mu.Lock()
	if s.closed {
		// Raced with Close: the session won't heartbeat these; hand them
		// back rather than leaking them until the TTL.
		s.mu.Unlock()
		items := make([]wire.Item, len(granted.Leases))
		for i, l := range granted.Leases {
			items[i] = wire.Item{Name: l.Name, Token: l.Token}
		}
		//lint:ctx the acquire's own ctx may already be cancelled; this cleanup must still run
		s.releaseItems(context.Background(), items)
		return nil, ErrSessionClosed
	}
	for i, wl := range granted.Leases {
		l := Lease{Name: wl.Name, Token: wl.Token, ExpiresAt: time.UnixMilli(wl.ExpiresAtMs)}
		s.leases[l.Name] = l
		out[i] = l
	}
	s.mu.Unlock()
	s.wake()
	return out, nil
}

// Release hands one held name back immediately and stops renewing it.
// The lease leaves the heartbeat set before the round trip (so an
// overlapping heartbeat can't misread the release as a loss); if the
// request never reaches the server, it is re-adopted and keeps being
// renewed, so a transport blip cannot orphan a live server-side lease
// until its TTL.
func (s *Session) Release(ctx context.Context, name int) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	l, ok := s.leases[name]
	if ok {
		delete(s.leases, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("leaseclient: name %d not held by this session", name)
	}
	err := s.tr.Release(ctx, &wire.ReleaseRequest{Name: l.Name, Token: l.Token})
	var se *ServerError
	if err != nil && !errors.As(err, &se) {
		// Transport-level failure: the server may never have seen the
		// release. Re-adopt the lease (unless the name was re-acquired
		// or the session closed meanwhile) and let the caller retry. If
		// the request did land and only the response was lost, the next
		// heartbeat learns unknown_name and reports it through OnLost.
		s.mu.Lock()
		if _, taken := s.leases[name]; !taken && !s.closed {
			s.leases[name] = l
		}
		s.mu.Unlock()
	}
	return err
}

// Leases snapshots the currently held leases.
func (s *Session) Leases() []Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Lease, 0, len(s.leases))
	for _, l := range s.leases {
		out = append(out, l)
	}
	return out
}

// Stats snapshots the session counters.
func (s *Session) Stats() Stats {
	return Stats{
		Renewed:          s.renewed.Load(),
		Heartbeats:       s.heartbeats.Load(),
		Retries:          s.retries.Load(),
		Lost:             s.lost.Load(),
		TransportErrors:  s.transportErrs.Load(),
		HeartbeatLatency: s.hbLat.Summary(),
	}
}

// Close stops the heartbeat loop and releases every held lease in one
// batched round trip. Idempotent; returns the first release error (a
// lease the server says is already gone is not an error — losing the
// race to the sweeper at shutdown is normal).
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	items := make([]wire.Item, 0, len(s.leases))
	for _, l := range s.leases {
		items = append(items, wire.Item{Name: l.Name, Token: l.Token})
	}
	s.leases = map[int]Lease{}
	s.mu.Unlock()

	close(s.done)
	s.wg.Wait()
	//lint:ctx Close releases on the session's own lifetime; no caller context survives it
	err := s.releaseItems(context.Background(), items)
	if s.ownTransport {
		if cerr := s.tr.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// releaseItems hands names back via /v1/release_batch in MaxBatch
// chunks, tolerating already-gone leases.
func (s *Session) releaseItems(ctx context.Context, items []wire.Item) error {
	var first error
	for len(items) > 0 {
		chunk := items
		if len(chunk) > s.cfg.MaxBatch {
			chunk = chunk[:s.cfg.MaxBatch]
		}
		items = items[len(chunk):]
		results, err := s.tr.ReleaseBatch(ctx, &wire.ReleaseBatchRequest{Items: chunk})
		if err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		for _, r := range results.Results {
			rerr := wire.ErrFor(r.Code, r.Error)
			if rerr != nil && first == nil && !isGone(rerr) {
				first = rerr
			}
		}
	}
	return first
}

// loop is the heartbeat goroutine: sleep a fraction of the remaining
// TTL (with jitter, or the current backoff after a transient failure),
// then renew everything in batched round trips.
func (s *Session) loop() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		wait, idle := s.nextWait()
		if idle {
			// Nothing held: sleep until the lease set changes.
			select {
			case <-s.done:
				return
			case <-s.kick:
				continue
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-s.done:
			return
		case <-s.kick:
			continue
		case <-timer.C:
		}
		s.heartbeat()
	}
}

// nextWait computes how long to sleep before the next heartbeat round:
// the configured fraction of the soonest remaining TTL, jittered, or the
// current retry backoff when the last round failed transport.
func (s *Session) nextWait() (wait time.Duration, idle bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.leases) == 0 {
		return 0, true
	}
	soonest := time.Duration(1<<63 - 1)
	now := s.cfg.Now()
	for _, l := range s.leases {
		if r := l.ExpiresAt.Sub(now); r < soonest {
			soonest = r
		}
	}
	if soonest < 0 {
		soonest = 0
	}
	wait = time.Duration(float64(soonest) * s.cfg.HeartbeatFraction)
	if s.backoff > 0 && s.backoff < wait {
		wait = s.backoff
	}
	// Jitter de-phases fleets of sessions; floor keeps a pathological
	// clock (or an already-expired lease) from spinning the loop hot.
	wait = time.Duration(float64(wait) * (1 + s.cfg.Jitter*(2*s.cfg.Rand()-1)))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait, false
}

// heartbeat renews every held lease in MaxBatch chunks.
func (s *Session) heartbeat() {
	s.mu.Lock()
	items := make([]wire.Item, 0, len(s.leases))
	for _, l := range s.leases {
		items = append(items, wire.Item{Name: l.Name, Token: l.Token})
	}
	s.mu.Unlock()

	type lostLease struct {
		name int
		err  error
	}
	var lost []lostLease
	failed := false
	for len(items) > 0 {
		chunk := items
		if len(chunk) > s.cfg.MaxBatch {
			chunk = chunk[:s.cfg.MaxBatch]
		}
		items = items[len(chunk):]

		s.heartbeats.Add(1)
		// The injected clock, not time.Now: a skewed session must see its
		// own heartbeat latency through the same clock that runs its
		// renew timers, or the chaos clock-skew scenarios would mix
		// timebases inside one session.
		start := s.cfg.Now()
		//lint:ctx the heartbeat loop is the session's own lifetime, bounded by CallTimeout inside the transport
		results, err := s.tr.RenewBatch(context.Background(),
			&wire.RenewBatchRequest{TTLms: s.cfg.TTL.Milliseconds(), Items: chunk})
		elapsed := s.cfg.Now().Sub(start)
		s.hbLat.Observe(elapsed)
		if err != nil {
			s.transportErrs.Add(1)
		}
		if s.cfg.OnHeartbeat != nil {
			s.cfg.OnHeartbeat(len(chunk), elapsed, err)
		}
		if err != nil {
			// Transport-level failure: every lease in the chunk is still
			// plausibly held; retry sooner with backoff.
			failed = true
			continue
		}
		if len(results.Results) != len(chunk) {
			failed = true
			continue
		}
		s.mu.Lock()
		for i, r := range results.Results {
			name := chunk[i].Name
			// Guard every map write with a token comparison against the
			// snapshot this round actually sent: the caller may have
			// released and re-acquired the same name while the request
			// was in flight, and a verdict about the OLD token must not
			// touch (least of all drop) the NEW lease.
			l, ok := s.leases[name]
			if !ok || l.Token != chunk[i].Token {
				continue
			}
			if r.Lease != nil {
				l.ExpiresAt = time.UnixMilli(r.Lease.ExpiresAtMs)
				s.leases[name] = l
				s.renewed.Add(1)
				continue
			}
			rerr := wire.ErrFor(r.Code, r.Error)
			if rerr == nil {
				rerr = errors.New("leaseclient: renew_batch result carried neither lease nor error")
			}
			// The server refused this lease outright: it is lost. Drop it
			// now so the next round doesn't re-present a dead token.
			delete(s.leases, name)
			s.lost.Add(1)
			lost = append(lost, lostLease{name: name, err: rerr})
		}
		s.mu.Unlock()
	}

	s.mu.Lock()
	if failed {
		s.retries.Add(1)
		if s.backoff == 0 {
			s.backoff = 50 * time.Millisecond
		} else {
			// Double, then clamp: the guard used to be checked BEFORE the
			// doubling, so 50ms·2^k marched 1.6s → 3.2s and the effective
			// ceiling was ~4s, not the intended 2s. During a server
			// restart every extra second of backoff is a heartbeat the
			// session doesn't attempt while its TTL burns down.
			s.backoff *= 2
			if s.backoff > maxBackoff {
				s.backoff = maxBackoff
			}
		}
	} else {
		s.backoff = 0
	}
	s.mu.Unlock()

	// Callbacks run without locks held so they may call back into the
	// session.
	if s.cfg.OnLost != nil {
		for _, ll := range lost {
			s.cfg.OnLost(ll.name, ll.err)
		}
	}
}

// wake nudges the heartbeat loop to re-plan its next wait.
func (s *Session) wake() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// isGone reports whether err means the lease no longer exists server-
// side — the benign outcome for a shutdown-time release, where losing
// the race to the sweeper (or to an earlier lost-lease drop) is normal.
func isGone(err error) bool {
	return errors.Is(err, lease.ErrUnknownName) ||
		errors.Is(err, lease.ErrExpired) ||
		errors.Is(err, lease.ErrWrongToken)
}
