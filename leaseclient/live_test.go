package leaseclient

import (
	"context"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// TestSessionLiveServer runs a real Session against a live renamed
// process — the CI smoke step starts one and points RENAMED_TARGET at
// it, so the client is exercised against the actual served binary, not
// just the in-process handler chain. Skipped when no target is set.
func TestSessionLiveServer(t *testing.T) {
	target := os.Getenv("RENAMED_TARGET")
	if target == "" {
		t.Skip("RENAMED_TARGET not set; the CI smoke step provides a live server")
	}
	var lost atomic.Int64
	s, err := NewSession(Config{
		Target: target,
		Owner:  "live-smoke",
		TTL:    time.Second,
		OnLost: func(name int, err error) {
			lost.Add(1)
			t.Errorf("lost lease %d against live server: %v", name, err)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	if _, err := s.AcquireN(context.Background(), k); err != nil {
		t.Fatalf("acquire against live server: %v", err)
	}
	// Survive several TTLs: only on-time batched renewals explain it.
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().Renewed < 3*k {
		if time.Now().After(deadline) {
			t.Fatalf("renewals stalled against live server: %+v", s.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := len(s.Leases()); got != k {
		t.Fatalf("held = %d leases, want %d", got, k)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close against live server: %v", err)
	}
	if lost.Load() != 0 {
		t.Fatalf("lost %d leases with on-time renewals", lost.Load())
	}
}
