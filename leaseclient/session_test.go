package leaseclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
	"repro/lease"
)

// fakeServer speaks just enough of the renamed /v1 wire protocol to
// drive a Session, with failure injection the real server can't provide
// on demand: scripted 503s on renew_batch (transient-outage shape) and
// token hijacks (fencing-loss shape). Protocol conformance against the
// real server is covered by cmd/renamed's session integration test and
// the CI live smoke; these tests cover the client's own behavior.
type fakeServer struct {
	t *testing.T

	mu        sync.Mutex
	leases    map[int]*fakeLease
	nextName  int
	nextToken uint64
	ttl       time.Duration // applied when a request carries no ttl_ms

	renewCalls   atomic.Int64 // renew_batch round trips
	renewItems   atomic.Int64 // items across those round trips
	releaseCalls atomic.Int64 // release_batch round trips
	failRenews   atomic.Int32 // 503 the next N renew_batch calls

	srv *httptest.Server
}

type fakeLease struct {
	token     uint64
	expiresAt time.Time
}

func newFakeServer(t *testing.T, ttl time.Duration) *fakeServer {
	t.Helper()
	f := &fakeServer{t: t, leases: make(map[int]*fakeLease), ttl: ttl}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/acquire", f.handleAcquire)
	mux.HandleFunc("POST /v1/acquire_batch", f.handleAcquireBatch)
	mux.HandleFunc("POST /v1/renew_batch", f.handleRenewBatch)
	mux.HandleFunc("POST /v1/release", f.handleRelease)
	mux.HandleFunc("POST /v1/release_batch", f.handleReleaseBatch)
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeServer) url() string { return f.srv.URL }

func (f *fakeServer) ttlFor(ms int64) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return f.ttl
}

// grant mints one lease. Callers hold f.mu.
func (f *fakeServer) grant(ttlMs int64) wire.Lease {
	f.nextName++
	f.nextToken++
	exp := time.Now().Add(f.ttlFor(ttlMs))
	f.leases[f.nextName] = &fakeLease{token: f.nextToken, expiresAt: exp}
	return wire.Lease{Name: f.nextName, Token: f.nextToken, ExpiresAtMs: exp.UnixMilli()}
}

// hijack invalidates a lease's token, as a competing holder would after
// the server reassigned the name.
func (f *fakeServer) hijack(name int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if l, ok := f.leases[name]; ok {
		l.token += 1000
	}
}

// liveCount reports how many unexpired leases the server still holds.
func (f *fakeServer) liveCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	now := time.Now()
	for _, l := range f.leases {
		if now.Before(l.expiresAt) {
			n++
		}
	}
	return n
}

func (f *fakeServer) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req wire.AcquireRequest
	json.NewDecoder(r.Body).Decode(&req)
	f.mu.Lock()
	l := f.grant(req.TTLms)
	f.mu.Unlock()
	json.NewEncoder(w).Encode(l)
}

func (f *fakeServer) handleAcquireBatch(w http.ResponseWriter, r *http.Request) {
	var req wire.AcquireBatchRequest
	json.NewDecoder(r.Body).Decode(&req)
	out := wire.Leases{Leases: make([]wire.Lease, req.Count)}
	f.mu.Lock()
	for i := range out.Leases {
		out.Leases[i] = f.grant(req.TTLms)
	}
	f.mu.Unlock()
	json.NewEncoder(w).Encode(out)
}

func (f *fakeServer) handleRenewBatch(w http.ResponseWriter, r *http.Request) {
	if f.failRenews.Load() > 0 {
		f.failRenews.Add(-1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(wire.Error{Error: "scripted outage"})
		return
	}
	var req wire.RenewBatchRequest
	json.NewDecoder(r.Body).Decode(&req)
	out := wire.BatchResults{Results: make([]wire.BatchResult, len(req.Items))}
	now := time.Now()
	f.mu.Lock()
	// Counted inside the critical section so a reader never observes the
	// call/item counters mid-update (renewItems must stay a multiple of
	// the batch size whenever renewCalls is read alongside it).
	f.renewCalls.Add(1)
	f.renewItems.Add(int64(len(req.Items)))
	for i, it := range req.Items {
		l, ok := f.leases[it.Name]
		switch {
		case !ok:
			out.Results[i] = wire.BatchResult{Error: "no lease", Code: wire.CodeUnknownName}
		case l.token != it.Token:
			out.Results[i] = wire.BatchResult{Error: "token mismatch", Code: wire.CodeWrongToken}
		case now.After(l.expiresAt):
			delete(f.leases, it.Name)
			out.Results[i] = wire.BatchResult{Error: "expired", Code: wire.CodeExpired}
		default:
			l.expiresAt = now.Add(f.ttlFor(req.TTLms))
			wl := wire.Lease{Name: it.Name, Token: it.Token, ExpiresAtMs: l.expiresAt.UnixMilli()}
			out.Results[i].Lease = &wl
		}
	}
	f.mu.Unlock()
	json.NewEncoder(w).Encode(out)
}

func (f *fakeServer) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req wire.ReleaseRequest
	json.NewDecoder(r.Body).Decode(&req)
	f.mu.Lock()
	l, ok := f.leases[req.Name]
	if ok && l.token == req.Token {
		delete(f.leases, req.Name)
	}
	f.mu.Unlock()
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(wire.Error{Error: "no lease"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (f *fakeServer) handleReleaseBatch(w http.ResponseWriter, r *http.Request) {
	var req wire.ReleaseBatchRequest
	json.NewDecoder(r.Body).Decode(&req)
	f.releaseCalls.Add(1)
	out := wire.BatchResults{Results: make([]wire.BatchResult, len(req.Items))}
	f.mu.Lock()
	for i, it := range req.Items {
		l, ok := f.leases[it.Name]
		switch {
		case !ok:
			out.Results[i] = wire.BatchResult{Error: "no lease", Code: wire.CodeUnknownName}
		case l.token != it.Token:
			out.Results[i] = wire.BatchResult{Error: "token mismatch", Code: wire.CodeWrongToken}
		default:
			delete(f.leases, it.Name)
		}
	}
	f.mu.Unlock()
	json.NewEncoder(w).Encode(out)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSessionHeartbeatKeepsLeasesAlive: a session holding many leases
// with a short TTL must keep every one alive through coalesced batch
// renewals — one round trip per heartbeat, not one per lease.
func TestSessionHeartbeatKeepsLeasesAlive(t *testing.T) {
	f := newFakeServer(t, 30*time.Second)
	var lost atomic.Int64
	s, err := NewSession(Config{
		Target: f.url(),
		Owner:  "hb",
		TTL:    400 * time.Millisecond,
		OnLost: func(int, error) { lost.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const k = 8
	if _, err := s.AcquireN(context.Background(), k); err != nil {
		t.Fatal(err)
	}
	// Live across 4+ TTLs: only repeated renewals can explain survival.
	// Wait on the CLIENT-side counter — the server counts a round trip on
	// entry, before the client has processed (or even received) the
	// response, so gating on f.renewCalls would race the last round.
	waitFor(t, 5*time.Second, "4 heartbeat rounds", func() bool { return s.Stats().Renewed >= 4*k })
	if got := f.liveCount(); got != k {
		t.Fatalf("server-side live leases = %d, want %d", got, k)
	}
	if lost.Load() != 0 {
		t.Fatalf("OnLost fired %d times with on-time renewals", lost.Load())
	}
	f.mu.Lock()
	calls, items := f.renewCalls.Load(), f.renewItems.Load()
	f.mu.Unlock()
	if items != k*calls {
		t.Fatalf("renewed %d items over %d calls, want %d per call (coalesced)", items, calls, k)
	}
	if st := s.Stats(); st.Lost != 0 {
		t.Fatalf("stats = %+v, want 0 lost", st)
	}
}

// TestSessionOnLostTyped: a fencing rejection drops exactly the hijacked
// lease, reports it through OnLost with an errors.Is-able cause, and
// leaves the session's other leases heartbeating.
func TestSessionOnLostTyped(t *testing.T) {
	f := newFakeServer(t, 30*time.Second)
	type lostEvent struct {
		name int
		err  error
	}
	lostCh := make(chan lostEvent, 4)
	s, err := NewSession(Config{
		Target: f.url(),
		Owner:  "victim",
		TTL:    300 * time.Millisecond,
		OnLost: func(name int, err error) { lostCh <- lostEvent{name, err} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ls, err := s.AcquireN(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	f.hijack(ls[0].Name)

	var ev lostEvent
	select {
	case ev = <-lostCh:
	case <-time.After(5 * time.Second):
		t.Fatal("OnLost never fired for the hijacked lease")
	}
	if ev.name != ls[0].Name {
		t.Fatalf("lost name = %d, want %d", ev.name, ls[0].Name)
	}
	if !errors.Is(ev.err, lease.ErrWrongToken) {
		t.Fatalf("lost err = %v, want errors.Is ErrWrongToken", ev.err)
	}
	// The survivor is still held and still renewed.
	waitFor(t, 5*time.Second, "survivor renewal", func() bool { return s.Stats().Renewed >= 3 })
	held := s.Leases()
	if len(held) != 1 || held[0].Name != ls[1].Name {
		t.Fatalf("held after loss = %+v, want only %d", held, ls[1].Name)
	}
	if got := s.Stats().Lost; got != 1 {
		t.Fatalf("Stats.Lost = %d, want 1", got)
	}
	select {
	case ev := <-lostCh:
		t.Fatalf("spurious second OnLost: %+v", ev)
	default:
	}
}

// TestSessionRetriesTransientFailures: scripted 503s on the heartbeat
// path must be retried with backoff inside the TTL budget — the lease
// survives the outage and OnLost never fires.
func TestSessionRetriesTransientFailures(t *testing.T) {
	f := newFakeServer(t, 30*time.Second)
	var lost atomic.Int64
	s, err := NewSession(Config{
		Target: f.url(),
		Owner:  "flaky",
		TTL:    time.Second,
		OnLost: func(int, error) { lost.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.failRenews.Store(2) // the next two heartbeat rounds hit an outage

	waitFor(t, 10*time.Second, "recovery renewals", func() bool { return f.renewCalls.Load() >= 3 })
	if got := f.liveCount(); got != 1 {
		t.Fatalf("server-side live leases = %d after outage, want 1", got)
	}
	if lost.Load() != 0 {
		t.Fatalf("OnLost fired %d times across a transient outage", lost.Load())
	}
	if st := s.Stats(); st.Retries < 1 {
		t.Fatalf("stats = %+v, want >= 1 retry recorded", st)
	}
}

// TestSessionCloseReleasesEverything: Close must hand back every held
// lease in one release_batch round trip and make further operations
// fail with ErrSessionClosed.
func TestSessionCloseReleasesEverything(t *testing.T) {
	f := newFakeServer(t, 30*time.Second)
	s, err := NewSession(Config{Target: f.url(), Owner: "closer", TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	const k = 16
	if _, err := s.AcquireN(context.Background(), k); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := f.liveCount(); got != 0 {
		t.Fatalf("server still holds %d leases after Close", got)
	}
	if calls := f.releaseCalls.Load(); calls != 1 {
		t.Fatalf("release_batch calls = %d, want 1 (batched shutdown)", calls)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Acquire(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrSessionClosed", err)
	}
	if err := s.Release(context.Background(), 1); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Release after Close = %v, want ErrSessionClosed", err)
	}
}

// TestSessionReleaseStopsHeartbeating: an explicitly released lease
// leaves the heartbeat set immediately.
func TestSessionReleaseStopsHeartbeating(t *testing.T) {
	f := newFakeServer(t, 30*time.Second)
	s, err := NewSession(Config{Target: f.url(), Owner: "rel", TTL: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ls, err := s.AcquireN(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(context.Background(), ls[0].Name); err != nil {
		t.Fatal(err)
	}
	if held := s.Leases(); len(held) != 1 {
		t.Fatalf("held = %+v, want 1 lease", held)
	}
	if err := s.Release(context.Background(), ls[0].Name); err == nil {
		t.Fatal("releasing a non-held name succeeded")
	}
	// Subsequent heartbeats carry only the survivor.
	before := f.renewCalls.Load()
	waitFor(t, 5*time.Second, "post-release heartbeat", func() bool { return f.renewCalls.Load() > before })
	if items, calls := f.renewItems.Load(), f.renewCalls.Load(); items >= 2*calls {
		t.Fatalf("%d items over %d calls: released lease still heartbeated", items, calls)
	}
}

// TestSessionConfigValidation: bad fractions and a missing target fail
// construction loudly.
func TestSessionConfigValidation(t *testing.T) {
	if _, err := NewSession(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewSession(Config{Target: "http://x", HeartbeatFraction: 1.5}); err == nil {
		t.Fatal("HeartbeatFraction 1.5 accepted")
	}
	if _, err := NewSession(Config{Target: "http://x", Jitter: 1}); err == nil {
		t.Fatal("Jitter 1 accepted")
	}
	s, err := NewSession(Config{Target: "http://x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AcquireN(context.Background(), 0); err == nil {
		t.Fatal("AcquireN(0) accepted")
	}
	s.Close()
}

// TestHeartbeatStaleVerdictDoesNotDropReacquiredLease pins the ABA fix:
// a renewal verdict about an OLD fencing token, landing after the caller
// released and re-acquired the same name, must not touch the NEW lease.
// The server here always grants name 5 (with a fresh token each time)
// and blocks the first renew_batch until the test has swapped the lease
// underneath it.
func TestHeartbeatStaleVerdictDoesNotDropReacquiredLease(t *testing.T) {
	var (
		mu       sync.Mutex
		curToken uint64
		held     bool
		entered  = make(chan struct{})
		unblock  = make(chan struct{})
		blockOne atomic.Bool
	)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/acquire", func(w http.ResponseWriter, r *http.Request) {
		var req wire.AcquireRequest
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		curToken++
		held = true
		tok := curToken
		mu.Unlock()
		json.NewEncoder(w).Encode(wire.Lease{
			Name: 5, Token: tok,
			ExpiresAtMs: time.Now().Add(300 * time.Millisecond).UnixMilli(),
		})
	})
	mux.HandleFunc("POST /v1/release", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		held = false
		mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/renew_batch", func(w http.ResponseWriter, r *http.Request) {
		var req wire.RenewBatchRequest
		json.NewDecoder(r.Body).Decode(&req)
		if blockOne.CompareAndSwap(true, false) {
			entered <- struct{}{}
			<-unblock
		}
		out := wire.BatchResults{Results: make([]wire.BatchResult, len(req.Items))}
		mu.Lock()
		for i, it := range req.Items {
			if held && it.Token == curToken {
				wl := wire.Lease{
					Name: it.Name, Token: it.Token,
					ExpiresAtMs: time.Now().Add(300 * time.Millisecond).UnixMilli(),
				}
				out.Results[i].Lease = &wl
			} else {
				out.Results[i] = wire.BatchResult{Error: "token mismatch", Code: wire.CodeWrongToken}
			}
		}
		mu.Unlock()
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("POST /v1/release_batch", func(w http.ResponseWriter, r *http.Request) {
		var req wire.ReleaseBatchRequest
		json.NewDecoder(r.Body).Decode(&req)
		json.NewEncoder(w).Encode(wire.BatchResults{Results: make([]wire.BatchResult, len(req.Items))})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	var lost atomic.Int64
	s, err := NewSession(Config{
		Target: srv.URL,
		Owner:  "aba",
		TTL:    300 * time.Millisecond,
		OnLost: func(int, error) { lost.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Acquire(context.Background()); err != nil { // {5, tok1}
		t.Fatal(err)
	}
	blockOne.Store(true)

	// A heartbeat carrying tok1 is now parked inside the server...
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("heartbeat never reached the server")
	}
	// ...while the caller swaps the lease underneath it.
	if err := s.Release(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Acquire(context.Background()) // {5, tok2}
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Name != 5 || fresh.Token == 1 {
		t.Fatalf("re-acquire = %+v, want name 5 with a fresh token", fresh)
	}
	close(unblock) // stale verdict (wrong_token for tok1) lands now

	// The new lease must survive the stale verdict and keep renewing.
	waitFor(t, 5*time.Second, "fresh-lease renewal", func() bool { return s.Stats().Renewed >= 2 })
	heldNow := s.Leases()
	if len(heldNow) != 1 || heldNow[0].Token != fresh.Token {
		t.Fatalf("held = %+v, want the re-acquired lease (token %d)", heldNow, fresh.Token)
	}
	if lost.Load() != 0 {
		t.Fatalf("OnLost fired %d times for a stale verdict about a released token", lost.Load())
	}
}

// TestReleaseTransportFailureReAdopts: a Release whose request never
// reached the server must put the lease back in the heartbeat set —
// otherwise the server-side lease is orphaned until TTL with the session
// blind to it.
func TestReleaseTransportFailureReAdopts(t *testing.T) {
	f := newFakeServer(t, 30*time.Second)
	s, err := NewSession(Config{
		Target:     f.url(),
		Owner:      "readopt",
		TTL:        time.Minute,
		HTTPClient: &http.Client{Timeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Kill the server: the release's transport fails outright.
	f.srv.Close()
	if err := s.Release(context.Background(), l.Name); err == nil {
		t.Fatal("release against a dead server succeeded")
	}
	held := s.Leases()
	if len(held) != 1 || held[0].Token != l.Token {
		t.Fatalf("held = %+v after failed release, want the lease re-adopted", held)
	}
	s.Close() // best effort against the dead server; must still shut down
	if _, err := s.Acquire(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrSessionClosed", err)
	}
}

// TestSessionStatsScrapeableWithoutCallbacks: a monitoring scrape must
// be able to read heartbeat health — latency distribution and transport
// failures — straight off Stats(), with NO OnHeartbeat or OnLost
// callbacks wired. The callbacks are for reacting; Stats is for
// observing, and observing must not require instrumenting construction.
func TestSessionStatsScrapeableWithoutCallbacks(t *testing.T) {
	f := newFakeServer(t, 30*time.Second)
	s, err := NewSession(Config{
		Target: f.url(),
		Owner:  "scrape",
		TTL:    300 * time.Millisecond,
		// Deliberately no OnHeartbeat, no OnLost.
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 5*time.Second, "3 heartbeat rounds", func() bool {
		return s.Stats().HeartbeatLatency.Count >= 3
	})
	st := s.Stats()
	hb := st.HeartbeatLatency
	if hb.Mean <= 0 || hb.P50 <= 0 {
		t.Fatalf("heartbeat latency summary empty with traffic: %+v", hb)
	}
	if hb.P50 > hb.P99 {
		t.Fatalf("non-monotonic latency summary: %+v", hb)
	}
	if st.TransportErrors != 0 {
		t.Fatalf("TransportErrors = %d against a healthy server, want 0", st.TransportErrors)
	}

	// A scripted outage must surface as TransportErrors — the scrape sees
	// the 503s even though nothing registered a callback.
	f.failRenews.Store(2)
	waitFor(t, 10*time.Second, "transport errors recorded", func() bool {
		return s.Stats().TransportErrors >= 2
	})
	if got := s.Stats().TransportErrors; got != 2 {
		t.Fatalf("TransportErrors = %d, want exactly the 2 scripted failures", got)
	}
}
