package renaming_test

import (
	"testing"

	renaming "repro"
	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tas"
)

// TestCrossDriverSafety runs the same algorithm objects under both
// execution drivers — the adversarial simulator and real goroutines — and
// checks the renaming safety properties in each. This is the integration
// seam the whole design rests on: one algorithm body, two drivers.
func TestCrossDriverSafety(t *testing.T) {
	const n = 256
	builders := []struct {
		name string
		mk   func() core.Algorithm
	}{
		{"rebatching", func() core.Algorithm {
			return core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
		}},
		{"adaptive", func() core.Algorithm {
			return core.MustAdaptive(core.AdaptiveConfig{Epsilon: 1, MaxLevel: core.MaxLevelFor(n)})
		}},
		{"fastadaptive", func() core.Algorithm {
			return core.MustFastAdaptive(core.FastAdaptiveConfig{MaxLevel: core.MaxLevelFor(n)})
		}},
		{"uniform", func() core.Algorithm {
			return baseline.MustUniform(n, 1, 0)
		}},
	}
	advNames := []string{"random", "layered", "collision"}
	for _, bl := range builders {
		for _, advName := range advNames {
			t.Run(bl.name+"/"+advName, func(t *testing.T) {
				t.Parallel()
				alg := bl.mk()
				adv, err := adversary.ByName(advName)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(sim.Config{
					N:         n,
					Algorithm: alg,
					Adversary: adv,
					Seed:      99,
					Space:     tas.NewDense(alg.Namespace()),
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := res.UniqueNames(); err != nil {
					t.Fatal(err)
				}
				for p, u := range res.Names {
					if u == core.NoName {
						t.Fatalf("process %d unnamed", p)
					}
					if u >= alg.Namespace() {
						t.Fatalf("name %d outside namespace %d", u, alg.Namespace())
					}
				}
			})
		}
	}
}

// TestSimMatchesConcurrentNamespaceUse verifies that the same configuration
// consumes comparable namespace regions under the simulator and under real
// goroutine scheduling (the distribution differs; the support must not).
func TestSimMatchesConcurrentNamespaceUse(t *testing.T) {
	const k = 200
	// Simulated adaptive run.
	simAlg := core.MustAdaptive(core.AdaptiveConfig{Epsilon: 1})
	simRes, err := sim.Run(sim.Config{N: k, Algorithm: simAlg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent adaptive run.
	nm, err := renaming.NewAdaptive(1<<14, renaming.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	maxConc := 0
	done := make(chan int, k)
	for g := 0; g < k; g++ {
		go func() {
			u, err := nm.GetName()
			if err != nil {
				u = -1
			}
			done <- u
		}()
	}
	for g := 0; g < k; g++ {
		u := <-done
		if u < 0 {
			t.Fatal("concurrent GetName failed")
		}
		if u > maxConc {
			maxConc = u
		}
	}
	// Both drivers must keep names O(k); allow a generous shared constant.
	bound := 16*k + 64
	if simRes.MaxName() > bound {
		t.Errorf("simulated max name %d exceeds %d", simRes.MaxName(), bound)
	}
	if maxConc > bound {
		t.Errorf("concurrent max name %d exceeds %d", maxConc, bound)
	}
}

// TestExhaustiveInterleavingsTwoProcs enumerates every schedule of two
// LinearScan processes (the only algorithm with deterministic probe
// sequences), checking that uniqueness holds under each interleaving.
// This complements the randomized adversaries with exhaustive coverage at
// tiny scale.
func TestExhaustiveInterleavingsTwoProcs(t *testing.T) {
	// Schedules are bitstrings: bit i says which process takes step i+1
	// (when both are ready). With n=2 and LinearScan, executions are at
	// most 3 steps long, so 8 bitstrings cover everything.
	for mask := 0; mask < 8; mask++ {
		adv := &maskAdversary{mask: mask}
		alg := baseline.MustLinearScan(2)
		res, err := sim.Run(sim.Config{N: 2, Algorithm: alg, Adversary: adv, Seed: 0})
		if err != nil {
			t.Fatalf("mask %03b: %v", mask, err)
		}
		if err := res.UniqueNames(); err != nil {
			t.Fatalf("mask %03b: %v", mask, err)
		}
		if res.Names[0] == core.NoName || res.Names[1] == core.NoName {
			t.Fatalf("mask %03b: a process failed: %v", mask, res.Names)
		}
	}
}

// maskAdversary schedules according to a fixed bitstring.
type maskAdversary struct {
	mask int
	turn int
}

func (a *maskAdversary) Next(v *sim.View) sim.Action {
	ready := v.Ready()
	want := (a.mask >> a.turn) & 1
	a.turn++
	for _, pid := range ready {
		if pid == want {
			return sim.Action{Step: pid}
		}
	}
	return sim.Action{Step: ready[0]}
}
