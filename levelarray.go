package renaming

import (
	"fmt"

	"repro/internal/levelarray"
	"repro/internal/tas"
)

// LevelArray is the long-lived namer of Alistarh, Kopinsky, Matveev and
// Shavit, "The LevelArray: A Fast, Practical Long-Lived Renaming Algorithm"
// (ICDCS 2014). Unlike the one-shot ReBatching family, its constant expected
// probe bound holds in steady state under arbitrary Release/Acquire churn,
// as long as at most Capacity() names are held at any instant. Create one
// with NewLevelArray.
//
// Built with WithResizable, the capacity is live: Resize grows the level
// structure online (appending segments over a growable TAS space) or
// shrinks it by marking the namespace tail drain-only; see ResizableNamer
// for the contract.
type LevelArray struct {
	*namer
	alg       *levelarray.LevelArray
	resizable bool
}

// NewLevelArray builds a long-lived namer with capacity n: at most n names
// held concurrently, out of a namespace of size just under 2(1+γ)n. The
// per-level slack γ is set with WithGamma (default 1) and the per-level
// probe count with WithLevelProbes (default 2). The one-shot family's
// WithEpsilon does not apply here and is rejected with ErrBadConfig.
func NewLevelArray(n int, opts ...Option) (*LevelArray, error) {
	o, err := collectOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := o.checkApplicable("levelarray", optGamma, optLevelProbes, optResizable); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, badConfig("levelarray", "n", fmt.Sprint(n), "need capacity >= 1")
	}
	if !o.resizable {
		alg, err := levelarray.New(levelarray.Config{
			N:      n,
			Gamma:  o.gamma,
			Probes: o.levelProbes,
		})
		if err != nil {
			return nil, wrapConfig("levelarray", err)
		}
		return &LevelArray{namer: newNamer(alg, o), alg: alg}, nil
	}
	if o.padded {
		return nil, badConfig("levelarray", optResizable, "",
			"incompatible with WithPaddedTAS: the growable space is unpadded")
	}
	// Resizable path: the elastic space must exist before the algorithm,
	// because Resize extends the space (EnsureSpace) BEFORE publishing the
	// grown geometry — no probe may ever address a missing location.
	mem := tas.NewElastic(0)
	alg, err := levelarray.New(levelarray.Config{
		N:      n,
		Gamma:  o.gamma,
		Probes: o.levelProbes,
		EnsureSpace: func(namespace int) error {
			mem.Grow(namespace)
			return nil
		},
	})
	if err != nil {
		return nil, wrapConfig("levelarray", err)
	}
	mem.Grow(alg.Namespace())
	l := &LevelArray{namer: newNamerOn(alg, o, mem), alg: alg, resizable: true}
	l.namer.allowed = alg.Allowed
	return l, nil
}

// Capacity implements LongLivedNamer: the maximum number of concurrently
// held names for which the constant-probe analysis holds. For a resizable
// namer this is the capacity of the current resize epoch.
func (l *LevelArray) Capacity() int { return l.alg.MaxConcurrency() }

// Resizable reports whether the namer was built with WithResizable.
func (l *LevelArray) Resizable() bool { return l.resizable }

// Resize implements ResizableNamer: it sets the capacity to n online.
// Growing extends the TAS space and appends level segments before the
// new geometry becomes visible; shrinking takes effect immediately for
// new acquisitions and leaves names above the bound drain-only (see
// Draining). It fails with ErrBadConfig on a namer built without
// WithResizable, or when n is invalid for the namer's γ.
func (l *LevelArray) Resize(n int) error {
	if !l.resizable {
		return badConfig("levelarray", "Resize", fmt.Sprint(n),
			"namer built without WithResizable")
	}
	if err := l.alg.Resize(n); err != nil {
		return wrapConfig("levelarray", err)
	}
	return nil
}

// Draining implements ResizableNamer: true while any name above the
// current capacity's allowed bound is still held. Always false for a
// namer built without WithResizable.
func (l *LevelArray) Draining() bool {
	return l.alg.Draining(l.namer.mem.IsSet)
}

// ResizeEpoch implements ResizableNamer: the number of capacity changes
// applied so far.
func (l *LevelArray) ResizeEpoch() uint64 { return l.alg.Epoch() }

var (
	_ LongLivedNamer = (*LevelArray)(nil)
	_ ResizableNamer = (*LevelArray)(nil)
)
