package renaming

import (
	"fmt"

	"repro/internal/levelarray"
)

// LevelArray is the long-lived namer of Alistarh, Kopinsky, Matveev and
// Shavit, "The LevelArray: A Fast, Practical Long-Lived Renaming Algorithm"
// (ICDCS 2014). Unlike the one-shot ReBatching family, its constant expected
// probe bound holds in steady state under arbitrary Release/Acquire churn,
// as long as at most Capacity() names are held at any instant. Create one
// with NewLevelArray.
type LevelArray struct {
	*namer
	alg *levelarray.LevelArray
}

// NewLevelArray builds a long-lived namer with capacity n: at most n names
// held concurrently, out of a namespace of size just under 2(1+γ)n. The
// per-level slack γ is set with WithGamma (default 1) and the per-level
// probe count with WithLevelProbes (default 2). The one-shot family's
// WithEpsilon does not apply here and is rejected with ErrBadConfig.
func NewLevelArray(n int, opts ...Option) (*LevelArray, error) {
	o, err := collectOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := o.checkApplicable("levelarray", optGamma, optLevelProbes); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, badConfig("levelarray", "n", fmt.Sprint(n), "need capacity >= 1")
	}
	alg, err := levelarray.New(levelarray.Config{
		N:      n,
		Gamma:  o.gamma,
		Probes: o.levelProbes,
	})
	if err != nil {
		return nil, wrapConfig("levelarray", err)
	}
	return &LevelArray{namer: newNamer(alg, o), alg: alg}, nil
}

// Capacity implements LongLivedNamer: the maximum number of concurrently
// held names for which the constant-probe analysis holds.
func (l *LevelArray) Capacity() int { return l.alg.MaxConcurrency() }

var _ LongLivedNamer = (*LevelArray)(nil)
