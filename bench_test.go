// Package renaming_test holds the benchmark harness: one testing.B
// benchmark per experiment in DESIGN.md's index (T1-T7, F1-F6), each
// regenerating the corresponding measurement at benchmark scale. Custom
// metrics carry the paper's quantities (max steps, steps/proc, layers, ...)
// alongside ns/op. Full-scale tables come from cmd/renamebench.
package renaming_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	renaming "repro"
	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/sim"
)

// simulate runs one adversarial execution and fails the benchmark on any
// error or safety violation.
func simulate(b *testing.B, cfg sim.Config) *sim.Result {
	b.Helper()
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := res.UniqueNames(); err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkT1StepComplexity measures ReBatching's maximum individual step
// complexity per execution (Theorem 4.1).
func BenchmarkT1StepComplexity(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
			var maxSteps int64
			for i := 0; i < b.N; i++ {
				res := simulate(b, sim.Config{N: n, Algorithm: alg, Seed: uint64(i)})
				maxSteps += int64(res.MaxSteps())
			}
			b.ReportMetric(float64(maxSteps)/float64(b.N), "maxsteps/run")
		})
	}
}

// BenchmarkT2TotalWork measures ReBatching's total steps per process
// (Theorem 4.1's O(n) total complexity).
func BenchmarkT2TotalWork(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
			var total int64
			for i := 0; i < b.N; i++ {
				res := simulate(b, sim.Config{N: n, Algorithm: alg, Seed: uint64(i)})
				total += res.TotalSteps
			}
			b.ReportMetric(float64(total)/float64(b.N)/float64(n), "steps/proc")
		})
	}
}

// BenchmarkT3BatchSurvivors measures the Lemma 4.2 survivor count entering
// batch 1 (processes that failed every batch-0 probe).
func BenchmarkT3BatchSurvivors(b *testing.B) {
	const n = 1024
	alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
	lo, hi := alg.BatchBounds(1)
	var survivors int64
	for i := 0; i < b.N; i++ {
		seen := make(map[int]bool)
		simulate(b, sim.Config{
			N: n, Algorithm: alg, Seed: uint64(i),
			Trace: func(ev sim.Event) {
				if ev.Loc >= lo && ev.Loc < hi {
					seen[ev.PID] = true
				}
			},
		})
		survivors += int64(len(seen))
	}
	b.ReportMetric(float64(survivors)/float64(b.N), "n1/run")
}

// BenchmarkT4BackupFrequency measures how often any process overruns its
// batch-probe budget into the backup phase.
func BenchmarkT4BackupFrequency(b *testing.B) {
	const n = 256
	alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
	budget := 0
	for i := 0; i <= alg.MaxBatch(); i++ {
		budget += alg.BatchProbes(i)
	}
	backups := 0
	for i := 0; i < b.N; i++ {
		res := simulate(b, sim.Config{N: n, Algorithm: alg, Seed: uint64(i)})
		for _, s := range res.Steps {
			if s > budget {
				backups++
				break
			}
		}
	}
	b.ReportMetric(float64(backups)/float64(b.N), "backupruns/run")
}

// BenchmarkT5AdaptiveSteps measures AdaptiveReBatching's max steps and
// largest name at unknown contention k (Theorem 5.1).
func BenchmarkT5AdaptiveSteps(b *testing.B) {
	for _, k := range []int{64, 512} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var maxSteps, maxName int64
			for i := 0; i < b.N; i++ {
				alg := core.MustAdaptive(core.AdaptiveConfig{Epsilon: 1})
				res := simulate(b, sim.Config{N: k, Algorithm: alg, Seed: uint64(i)})
				maxSteps += int64(res.MaxSteps())
				maxName += int64(res.MaxName())
			}
			b.ReportMetric(float64(maxSteps)/float64(b.N), "maxsteps/run")
			b.ReportMetric(float64(maxName)/float64(b.N)/float64(k), "maxname/k")
		})
	}
}

// BenchmarkT6FastAdaptiveWork measures FastAdaptiveReBatching's total work
// per participant (Theorem 5.2's O(k log log k)).
func BenchmarkT6FastAdaptiveWork(b *testing.B) {
	for _, k := range []int{64, 512} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				alg := core.MustFastAdaptive(core.FastAdaptiveConfig{})
				res := simulate(b, sim.Config{N: k, Algorithm: alg, Seed: uint64(i)})
				total += res.TotalSteps
			}
			b.ReportMetric(float64(total)/float64(b.N)/float64(k), "steps/proc")
		})
	}
}

// BenchmarkT7MarkingGadget runs the §6 Poisson marking simulation
// (Theorem 6.1 / Lemma 6.6).
func BenchmarkT7MarkingGadget(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var layers int64
			for i := 0; i < b.N; i++ {
				res, err := lowerbound.RunMarking(lowerbound.MarkingConfig{N: n, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				layers += int64(res.SurvivedLayers())
			}
			b.ReportMetric(float64(layers)/float64(b.N), "layers/run")
		})
	}
}

// BenchmarkF1Comparison measures max steps for each algorithm family at
// fixed contention (the headline comparison figure).
func BenchmarkF1Comparison(b *testing.B) {
	const n = 1024
	algs := []struct {
		name string
		alg  core.Algorithm
	}{
		{"rebatch-paper", core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})},
		{"rebatch-tuned", core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1, T0Override: 6})},
		{"uniform", baseline.MustUniform(n, 1, 0)},
		{"segscan", baseline.MustSegScan(n, 1, 0)},
		{"linscan", baseline.MustLinearScan(n)},
	}
	for _, a := range algs {
		b.Run(a.name, func(b *testing.B) {
			var maxSteps int64
			for i := 0; i < b.N; i++ {
				res := simulate(b, sim.Config{N: n, Algorithm: a.alg, Seed: uint64(i)})
				maxSteps += int64(res.MaxSteps())
			}
			b.ReportMetric(float64(maxSteps)/float64(b.N), "maxsteps/run")
		})
	}
}

// BenchmarkF2Epsilon sweeps the namespace slack (Eq. 2's time/space
// trade-off).
func BenchmarkF2Epsilon(b *testing.B) {
	const n = 1024
	for _, eps := range []float64{0.5, 1, 2} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: eps})
			var maxSteps int64
			for i := 0; i < b.N; i++ {
				res := simulate(b, sim.Config{N: n, Algorithm: alg, Seed: uint64(i)})
				maxSteps += int64(res.MaxSteps())
			}
			b.ReportMetric(float64(maxSteps)/float64(b.N), "maxsteps/run")
		})
	}
}

// BenchmarkF3Adversaries measures ReBatching under each scheduler policy.
func BenchmarkF3Adversaries(b *testing.B) {
	const n = 1024
	alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
	for _, name := range adversary.Names() {
		b.Run(name, func(b *testing.B) {
			var maxSteps int64
			for i := 0; i < b.N; i++ {
				adv, err := adversary.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				res := simulate(b, sim.Config{N: n, Algorithm: alg, Adversary: adv, Seed: uint64(i)})
				maxSteps += int64(res.MaxSteps())
			}
			b.ReportMetric(float64(maxSteps)/float64(b.N), "maxsteps/run")
		})
	}
}

// BenchmarkF4ConcurrentGetName measures the real concurrent driver:
// acquire+release cycles from parallel goroutines, packed vs padded TAS.
func BenchmarkF4ConcurrentGetName(b *testing.B) {
	layouts := []struct {
		name string
		opts []renaming.Option
	}{
		{"packed", nil},
		{"padded", []renaming.Option{renaming.WithPaddedTAS()}},
	}
	for _, layout := range layouts {
		b.Run(layout.name, func(b *testing.B) {
			nm, err := renaming.NewReBatching(1<<14, layout.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					u, err := nm.GetName()
					if err != nil {
						b.Error(err)
						return
					}
					if err := nm.Release(u); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkF4AdaptiveConcurrent measures the adaptive namers under real
// goroutine contention.
func BenchmarkF4AdaptiveConcurrent(b *testing.B) {
	builders := []struct {
		name string
		mk   func() (renaming.Namer, error)
	}{
		{"adaptive", func() (renaming.Namer, error) { return renaming.NewAdaptive(1 << 14) }},
		{"fastadaptive", func() (renaming.Namer, error) { return renaming.NewFastAdaptive(1 << 14) }},
		{"levelarray", func() (renaming.Namer, error) { return renaming.NewLevelArray(1 << 14) }},
	}
	for _, bl := range builders {
		b.Run(bl.name, func(b *testing.B) {
			nm, err := bl.mk()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					u, err := nm.GetName()
					if err != nil {
						b.Error(err)
						return
					}
					if err := nm.Release(u); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkF5Crashes measures executions with crash injection.
func BenchmarkF5Crashes(b *testing.B) {
	const n = 1024
	alg := core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1})
	for _, f := range []int{0, n / 4} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			var maxSteps int64
			for i := 0; i < b.N; i++ {
				adv := &adversary.Crashing{Inner: adversary.Random{}, F: f, Every: 2}
				res := simulate(b, sim.Config{N: n, Algorithm: alg, Adversary: adv, Seed: uint64(i)})
				maxSteps += int64(res.MaxSteps())
			}
			b.ReportMetric(float64(maxSteps)/float64(b.N), "maxsteps/run")
		})
	}
}

// BenchmarkF6MoirAnderson measures the deterministic splitter-grid
// comparator: filling a k-participant grid from 8 goroutines, reporting
// ns per acquired name (one-shot, so a fresh grid per iteration).
func BenchmarkF6MoirAnderson(b *testing.B) {
	for _, k := range []int{64, 512} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var maxName int64
			for i := 0; i < b.N; i++ {
				nm, err := renaming.NewMoirAnderson(k)
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				var worst atomic.Int64
				for w := 0; w < 8; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for j := 0; j < k/8; j++ {
							u, err := nm.GetName()
							if err != nil {
								b.Error(err)
								return
							}
							for {
								cur := worst.Load()
								if int64(u) <= cur || worst.CompareAndSwap(cur, int64(u)) {
									break
								}
							}
						}
					}()
				}
				wg.Wait()
				maxName += worst.Load()
			}
			b.ReportMetric(float64(maxName)/float64(b.N)/float64(k), "maxname/k")
		})
	}
}

// BenchmarkF12ResizeChurn measures the acquire+release cost on a
// resizable LevelArray while a background driver retargets its capacity
// (grow and shrink, including shrink-to-a-quarter) every 200µs, against
// the identical namer left at steady capacity. The delta is the price
// acquirers pay for geometry snapshots plus the resizes' own CPU; the
// steady row also bounds what WithResizable costs when nobody resizes.
func BenchmarkF12ResizeChurn(b *testing.B) {
	const n = 1 << 12
	for _, mode := range []struct {
		name  string
		churn bool
	}{
		{"steady", false},
		{"resizing", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			nm, err := renaming.NewLevelArray(n, renaming.WithResizable())
			if err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			var resizes atomic.Int64
			if mode.churn {
				go func() {
					targets := []int{3 * n, n / 2, 2 * n, n / 4, n}
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if err := nm.Resize(targets[i%len(targets)]); err != nil {
							b.Error(err)
							return
						}
						resizes.Add(1)
						time.Sleep(200 * time.Microsecond)
					}
				}()
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					u, err := nm.GetName()
					if err != nil {
						b.Error(err)
						return
					}
					if err := nm.Release(u); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			close(stop)
			if mode.churn {
				b.ReportMetric(float64(resizes.Load()), "resizes")
			}
		})
	}
}

// BenchmarkGetNameSequential is the micro view: a single caller's rename
// cost on an empty namer (the common fast path: first probe wins).
func BenchmarkGetNameSequential(b *testing.B) {
	nm, err := renaming.NewReBatching(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := nm.GetName()
		if err != nil {
			b.Fatal(err)
		}
		if err := nm.Release(u); err != nil {
			b.Fatal(err)
		}
	}
}
