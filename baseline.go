package renaming

import (
	"fmt"

	"repro/internal/baseline"
)

// Uniform is the classical uniform-random-probing namer: repeated uniform
// probes into the whole namespace until one wins. Θ(log n) probes for the
// unluckiest caller; the baseline the paper's §4 improves upon.
type Uniform struct {
	*namer
}

// NewUniform builds a uniform-probing namer for at most n participants
// with namespace ceil((1+ε)n).
func NewUniform(n int, opts ...Option) (*Uniform, error) {
	o, err := collectOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := o.checkApplicable("uniform", optEpsilon); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, badConfig("uniform", "n", fmt.Sprint(n), "need n >= 1")
	}
	alg, err := baseline.NewUniform(n, o.epsilon, 0)
	if err != nil {
		return nil, wrapConfig("uniform", err)
	}
	return &Uniform{namer: newNamer(alg, o)}, nil
}

// LinearScan is the trivial deterministic namer: scan names 0, 1, 2, ...
// until a TAS wins. Tight namespace (exactly n names) but Θ(n) worst-case
// probes per caller.
type LinearScan struct {
	*namer
}

// NewLinearScan builds a scanning namer for at most n participants.
func NewLinearScan(n int, opts ...Option) (*LinearScan, error) {
	o, err := collectOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := o.checkApplicable("linearscan"); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, badConfig("linearscan", "n", fmt.Sprint(n), "need n >= 1")
	}
	alg, err := baseline.NewLinearScan(n)
	if err != nil {
		return nil, wrapConfig("linearscan", err)
	}
	return &LinearScan{namer: newNamer(alg, o)}, nil
}

var (
	_ Namer = (*Uniform)(nil)
	_ Namer = (*LinearScan)(nil)
)
