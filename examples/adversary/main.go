// Adversary: watch the §6 lower-bound schedule fight the §4 algorithm.
//
// The paper's lower bound constructs a layered oblivious schedule — every
// layer steps each unfinished process once, in a fresh random order — and
// proves that under it, SOME process in ANY O(n)-space TAS renaming
// algorithm survives Ω(log log n) layers. This example runs that exact
// schedule against ReBatching and against the uniform-probing strawman,
// printing the per-layer survivor counts, and then runs the Poisson
// marking gadget the proof uses to certify survival.
//
// Run with: go run ./examples/adversary
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lowerbound"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("adversary:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n    = 4096
		seed = 2013 // PODC'13
	)

	fmt.Printf("layered oblivious schedule, n=%d\n\n", n)

	algs := []struct {
		name string
		alg  core.Algorithm
	}{
		{"ReBatching (tuned t0=6)", core.MustReBatching(core.ReBatchingConfig{N: n, Epsilon: 1, T0Override: 6})},
		{"uniform probing", baseline.MustUniform(n, 1, 0)},
	}
	for _, a := range algs {
		res, err := lowerbound.RoundsToCompletion(n, a.alg, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", a.name)
		for i, active := range res.Active {
			bar := active * 50 / n
			fmt.Printf("  layer %2d: %5d active  %s\n", i+1, active, bars(bar))
		}
		fmt.Printf("  -> finished in %d layers (max individual steps %d)\n\n", res.Layers, res.MaxSteps)
	}

	fmt.Println("marking gadget (the proof's certified survivors):")
	res, err := lowerbound.RunMarking(lowerbound.MarkingConfig{N: n, Seed: seed})
	if err != nil {
		return err
	}
	for _, st := range res.Layers {
		fmt.Printf("  layer %d: marked=%-6d rate=%-10.4g Lemma-6.6 bound=%.4g\n",
			st.Layer, st.Marked, st.Rate, st.RecurrenceLB)
		if st.Marked == 0 {
			break
		}
	}
	fmt.Printf("  -> marked processes survived %d layers; Theorem 6.1 predicts >= %d w.c.p.\n",
		res.SurvivedLayers(), lowerbound.PredictedLayers(n, 2*n))
	fmt.Println("\nno algorithm can finish a layered execution in o(log log n) layers — and")
	fmt.Println("ReBatching matches that bound up to its additive constant.")
	return nil
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
