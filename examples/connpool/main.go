// Connpool: renaming as lock-free slot allocation.
//
// The paper's introduction motivates renaming with concurrent memory
// management: a fixed pool of resources (here, connection slots) must be
// claimed by concurrent workers without locks. Renaming assigns each
// worker a distinct slot index in O(log log n) CAS probes; the Release
// extension returns slots to the pool when workers finish, so the pool can
// serve many short-lived workers through a small namespace.
//
// Run with: go run ./examples/connpool
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"

	renaming "repro"
)

// conn is a pretend pooled resource.
type conn struct {
	slot   int
	inUse  atomic.Bool
	usedBy atomic.Int64 // how many workers ever used this slot
}

type pool struct {
	namer renaming.Namer
	conns []*conn
}

func newPool(size int) (*pool, error) {
	namer, err := renaming.NewReBatching(size, renaming.WithT0Override(6))
	if err != nil {
		return nil, err
	}
	conns := make([]*conn, namer.Namespace())
	for i := range conns {
		conns[i] = &conn{slot: i}
	}
	return &pool{namer: namer, conns: conns}, nil
}

// acquire claims a free slot via renaming.
func (p *pool) acquire() (*conn, error) {
	slot, err := p.namer.GetName()
	if err != nil {
		return nil, err
	}
	c := p.conns[slot]
	if !c.inUse.CompareAndSwap(false, true) {
		// Renaming hands out each unreleased name exactly once, so this
		// indicates a bug in the pool, not in the namer.
		return nil, fmt.Errorf("slot %d double-allocated", slot)
	}
	c.usedBy.Add(1)
	return c, nil
}

// release returns the slot to the pool.
func (p *pool) release(c *conn) error {
	if !c.inUse.CompareAndSwap(true, false) {
		return fmt.Errorf("slot %d released while free", c.slot)
	}
	return p.namer.Release(c.slot)
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("connpool:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		poolSize = 32  // concurrent capacity
		workers  = 8   // concurrent workers
		jobs     = 500 // total acquire/use/release cycles
	)
	p, err := newPool(poolSize)
	if err != nil {
		return err
	}

	var (
		wg       sync.WaitGroup
		jobQueue = make(chan int)
		firstErr error
		errOnce  sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobQueue {
				c, err := p.acquire()
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				// "Use" the connection: the slot index doubles as a direct
				// index into per-connection state — the whole point of a
				// small namespace.
				if err := p.release(c); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}()
	}
	for j := 0; j < jobs; j++ {
		jobQueue <- j
	}
	close(jobQueue)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	total := int64(0)
	hot := 0
	for _, c := range p.conns {
		if n := c.usedBy.Load(); n > 0 {
			hot++
			total += n
		}
		if c.inUse.Load() {
			return fmt.Errorf("slot %d leaked", c.slot)
		}
	}
	fmt.Printf("%d jobs served by %d workers through %d distinct slots (namespace %d)\n",
		total, workers, hot, p.namer.Namespace())
	fmt.Println("no leaks, no double allocations ✓")
	return nil
}
