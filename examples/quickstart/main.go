// Quickstart: 64 goroutines concurrently acquire distinct small names.
//
// Each goroutine starts with nothing but the shared Namer (think of the
// goroutines as processes arriving with huge, unwieldy unique IDs — here,
// their goroutine index stands in for that). After renaming, every
// goroutine owns a distinct integer below Namespace() = (1+ε)·64, obtained
// in O(log log n) test-and-set probes.
//
// The example uses the v2 acquisition surface end to end: the namer is
// constructed from a DSN through the driver registry (renaming.Open), the
// goroutines acquire through the context-aware Acquire, and a final batch
// acquisition (AcquireN) grabs a block of names in one call. The legacy
// GetName() wrapper still works — see examples/connpool for it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"

	renaming "repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const participants = 64

	// The DSN selects the algorithm and its tunables as a string — the
	// same surface cmd/renamed exposes as -namer. t0=6 is the practical
	// batch-0 constant; see EXPERIMENTS.md F2.
	namer, err := renaming.Open(fmt.Sprintf("rebatching?n=%d&t0=6", participants))
	if err != nil {
		return err
	}
	fmt.Printf("renaming %d goroutines into [0, %d)\n\n", participants, namer.Namespace())

	ctx := context.Background()
	names := make([]int, participants)
	var wg sync.WaitGroup
	for g := 0; g < participants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u, err := namer.Acquire(ctx)
			if err != nil {
				// Impossible here: capacity covers all participants.
				panic(err)
			}
			names[g] = u
		}(g)
	}
	wg.Wait()

	sorted := append([]int(nil), names...)
	sort.Ints(sorted)
	fmt.Println("assigned names (sorted):")
	fmt.Println(sorted)

	seen := make(map[int]bool, participants)
	for _, u := range sorted {
		if seen[u] {
			return fmt.Errorf("duplicate name %d — renaming safety violated", u)
		}
		seen[u] = true
	}
	fmt.Printf("\nall %d names distinct, all below %d ✓\n", participants, namer.Namespace())

	// Batch acquisition: hand every name back, then take a block of 16 in
	// one AcquireN call — one PRNG stream for the whole batch, and either
	// 16 names or an error with nothing held.
	for _, u := range names {
		if err := namer.Release(u); err != nil {
			return err
		}
	}
	block, err := namer.AcquireN(ctx, 16)
	if err != nil {
		return err
	}
	sort.Ints(block)
	fmt.Printf("\nbatch of %d via AcquireN: %v\n", len(block), block)
	return nil
}
