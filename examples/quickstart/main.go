// Quickstart: 64 goroutines concurrently acquire distinct small names.
//
// Each goroutine starts with nothing but the shared Namer (think of the
// goroutines as processes arriving with huge, unwieldy unique IDs — here,
// their goroutine index stands in for that). After renaming, every
// goroutine owns a distinct integer below Namespace() = (1+ε)·64, obtained
// in O(log log n) test-and-set probes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"sync"

	renaming "repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const participants = 64

	namer, err := renaming.NewReBatching(participants,
		renaming.WithT0Override(6), // practical constant; see EXPERIMENTS.md F2
	)
	if err != nil {
		return err
	}
	fmt.Printf("renaming %d goroutines into [0, %d)\n\n", participants, namer.Namespace())

	names := make([]int, participants)
	var wg sync.WaitGroup
	for g := 0; g < participants; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u, err := namer.GetName()
			if err != nil {
				// Impossible here: capacity covers all participants.
				panic(err)
			}
			names[g] = u
		}(g)
	}
	wg.Wait()

	sorted := append([]int(nil), names...)
	sort.Ints(sorted)
	fmt.Println("assigned names (sorted):")
	fmt.Println(sorted)

	seen := make(map[int]bool, participants)
	for _, u := range sorted {
		if seen[u] {
			return fmt.Errorf("duplicate name %d — renaming safety violated", u)
		}
		seen[u] = true
	}
	fmt.Printf("\nall %d names distinct, all below %d ✓\n", participants, namer.Namespace())
	return nil
}
