// Counting: adaptive renaming as the gateway to compact concurrent data
// structures.
//
// The paper (and reference [4] within it) connects renaming to counting:
// once k concurrent participants hold distinct names of size O(k), any
// per-participant state can live in a dense array of size O(k) — no hash
// maps, no locks, no pre-registration. This example lets an *unknown*
// number of goroutines check in, each acquiring an adaptive name and
// depositing its contribution at that index; a final scan of the O(k)
// prefix aggregates everything.
//
// Run with: go run ./examples/counting
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"

	renaming "repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("counting:", err)
		os.Exit(1)
	}
}

func run() error {
	// The system supports up to maxContention participants, but today only
	// k of them show up — the point of ADAPTIVE renaming is that cost and
	// namespace scale with k, not with the bound.
	const (
		maxContention = 1 << 16
		k             = 100
	)
	namer, err := renaming.NewAdaptive(maxContention, renaming.WithT0Override(6))
	if err != nil {
		return err
	}

	// contributions is indexed directly by acquired names. We allocate the
	// full (lazy, zeroed) namespace; only the O(k) prefix will be touched.
	contributions := make([]atomic.Int64, namer.Namespace())

	var wg sync.WaitGroup
	maxName := atomic.Int64{}
	for g := 0; g < k; g++ {
		wg.Add(1)
		go func(weight int64) {
			defer wg.Done()
			name, err := namer.GetName()
			if err != nil {
				panic(err) // unreachable: k <= maxContention
			}
			contributions[name].Store(weight)
			for {
				cur := maxName.Load()
				if int64(name) <= cur || maxName.CompareAndSwap(cur, int64(name)) {
					break
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()

	// Aggregate by scanning only the used prefix — O(k), not O(maxContention).
	prefix := int(maxName.Load()) + 1
	var sum int64
	used := 0
	for i := 0; i < prefix; i++ {
		if v := contributions[i].Load(); v != 0 {
			sum += v
			used++
		}
	}

	wantSum := int64(k * (k + 1) / 2)
	fmt.Printf("participants: %d (system bound %d)\n", k, maxContention)
	fmt.Printf("names used:   %d distinct, all below %d (namespace bound %d)\n", used, prefix, namer.Namespace())
	fmt.Printf("sum of contributions: %d (want %d)\n", sum, wantSum)
	if sum != wantSum || used != k {
		return fmt.Errorf("aggregation mismatch: sum %d want %d, used %d want %d", sum, wantSum, used, k)
	}
	fmt.Printf("scan cost: %d slots instead of %d — adaptive names are O(k) ✓\n", prefix, maxContention)
	return nil
}
