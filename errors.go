package renaming

import (
	"context"
	"errors"
	"fmt"
)

// The package's error taxonomy. Every error returned by a constructor,
// Open, Acquire, AcquireN, GetName or Release matches exactly one of these
// sentinels under errors.Is:
//
//   - ErrNamespaceExhausted — the namer has no free name to hand out.
//   - ErrCancelled — the caller's context ended mid-acquisition; wraps the
//     context's error, so errors.Is(err, context.Canceled) (or
//     DeadlineExceeded) also reports the cause.
//   - ErrNotHeld — Release of a name that is not currently assigned.
//   - ErrNameHeld — Adopt of a name that already has a holder.
//   - ErrOneShot — Release on an inherently one-shot namer (moiranderson.go).
//   - ErrBadConfig — a constructor option, argument or DSN parameter was
//     rejected; the concrete error is a *ConfigError carrying the namer,
//     the offending option and the reason.
var (
	// ErrNamespaceExhausted is returned by acquisitions when the namer
	// cannot assign a name because contention exceeded the configured
	// capacity.
	ErrNamespaceExhausted = errors.New("renaming: namespace exhausted (contention exceeded configured capacity)")

	// ErrNotHeld is returned by Release when the released name is not
	// currently assigned.
	ErrNotHeld = errors.New("renaming: name not currently held")

	// ErrNameHeld is returned by Adopt when the adopted name is already
	// assigned — the recovery-time dual of ErrNotHeld.
	ErrNameHeld = errors.New("renaming: name already held")

	// ErrCancelled is returned by Acquire and AcquireN when the context
	// ends before a name is secured. The returned error wraps both
	// ErrCancelled and ctx.Err(), and no TAS slot stays set on its behalf:
	// a probe sequence abandons before its next batch, and a slot won in
	// the race window after cancellation is handed straight back.
	ErrCancelled = errors.New("renaming: acquisition cancelled")

	// ErrBadConfig is the sentinel under every construction-time rejection:
	// invalid option values, options that do not apply to the constructed
	// namer, and malformed Open DSNs. The concrete error is a *ConfigError.
	ErrBadConfig = errors.New("renaming: bad configuration")
)

// ConfigError is the structured construction-time error: which namer
// rejected which option, the offending value, and why. It matches
// ErrBadConfig under errors.Is.
type ConfigError struct {
	// Namer is the constructor or registry driver, e.g. "rebatching".
	// Empty when the rejection is not tied to one namer (a malformed DSN).
	Namer string
	// Option is the rejected option or DSN parameter, e.g. "WithLevelProbes"
	// or "eps".
	Option string
	// Value is the rejected value, rendered as a string ("" if absent).
	Value string
	// Reason says why the value was rejected.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	var b []byte
	b = append(b, "renaming: bad configuration"...)
	if e.Namer != "" {
		b = append(b, " for "...)
		b = append(b, e.Namer...)
	}
	if e.Option != "" {
		b = append(b, ": "...)
		b = append(b, e.Option...)
		if e.Value != "" {
			b = append(b, '(')
			b = append(b, e.Value...)
			b = append(b, ')')
		}
	}
	if e.Reason != "" {
		b = append(b, ": "...)
		b = append(b, e.Reason...)
	}
	return string(b)
}

// Unwrap makes errors.Is(err, ErrBadConfig) hold for every ConfigError.
func (e *ConfigError) Unwrap() error { return ErrBadConfig }

// badConfig is the constructor-side shorthand for a ConfigError.
func badConfig(namer, option, value, reason string) error {
	return &ConfigError{Namer: namer, Option: option, Value: value, Reason: reason}
}

// cancelled builds the ErrCancelled error for ctx, wrapping both the
// sentinel and the context's own error so callers can errors.Is either.
func cancelled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx))
}
