package renaming

import "fmt"

// options collects the tunables shared by all namers.
type options struct {
	epsilon     float64
	epsilonSet  bool
	beta        int
	t0Override  int
	seed        uint64
	padded      bool
	counting    bool
	levelProbes int
}

func defaultOptions() options {
	return options{
		epsilon: 1,
		seed:    0x6c6f6f73652d7265, // "loose-re", an arbitrary fixed default
	}
}

// Option configures a namer constructor.
type Option interface {
	apply(*options) error
}

type optionFunc func(*options) error

func (f optionFunc) apply(o *options) error { return f(o) }

// WithEpsilon sets the namespace slack ε > 0: ReBatching and Adaptive use
// namespaces of size ceil((1+ε)n). Smaller ε means tighter namespaces and
// more probes (Eq. 2's t₀ grows like ln(1/ε)/ε). Default 1.
func WithEpsilon(eps float64) Option {
	return optionFunc(func(o *options) error {
		if !(eps > 0) {
			return fmt.Errorf("renaming: WithEpsilon(%v): need eps > 0", eps)
		}
		o.epsilon = eps
		o.epsilonSet = true
		return nil
	})
}

// WithBeta sets the probe count β >= 1 on the last batch; larger β raises
// the "with high probability" exponent of the step-complexity guarantee
// (Theorem 4.1: β >= 2 bounds the expected step complexity, β >= 3 the
// expected total work). Default 3.
func WithBeta(beta int) Option {
	return optionFunc(func(o *options) error {
		if beta < 1 {
			return fmt.Errorf("renaming: WithBeta(%d): need beta >= 1", beta)
		}
		o.beta = beta
		return nil
	})
}

// WithT0Override replaces the paper's batch-0 probe count
// t₀ = ceil(17·ln(8e/ε)/ε) — 53 probes at ε = 1 — with a custom value.
// The paper's constant is calibrated for worst-case adversarial schedules;
// under realistic scheduling a t₀ of 4-8 preserves the log log n shape and
// dramatically lowers the additive constant (see EXPERIMENTS.md F2).
func WithT0Override(t0 int) Option {
	return optionFunc(func(o *options) error {
		if t0 < 1 {
			return fmt.Errorf("renaming: WithT0Override(%d): need t0 >= 1", t0)
		}
		o.t0Override = t0
		return nil
	})
}

// WithSeed fixes the seed behind every caller's probe randomness, making
// name assignment reproducible for a fixed schedule (useful in tests).
func WithSeed(seed uint64) Option {
	return optionFunc(func(o *options) error {
		o.seed = seed
		return nil
	})
}

// WithLevelProbes sets the number of random probes LevelArray performs per
// level before descending (default 2). More probes per level keep callers
// in the large top levels longer, trading a slightly higher expected probe
// count for a smaller chance of reaching the backup scan. Only NewLevelArray
// reads this option; the one-shot constructors ignore it.
func WithLevelProbes(t int) Option {
	return optionFunc(func(o *options) error {
		if t < 1 {
			return fmt.Errorf("renaming: WithLevelProbes(%d): need t >= 1", t)
		}
		o.levelProbes = t
		return nil
	})
}

// WithPaddedTAS places each TAS object on its own cache line (64 bytes
// instead of 4 per name), eliminating false sharing between adjacent names
// under heavy multicore contention. See the F4 ablation for measurements.
func WithPaddedTAS() Option {
	return optionFunc(func(o *options) error {
		o.padded = true
		return nil
	})
}

// WithCounting instruments the namer with probe/win counters, readable via
// the Probes method. Adds two atomic increments per probe.
func WithCounting() Option {
	return optionFunc(func(o *options) error {
		o.counting = true
		return nil
	})
}

func collectOptions(opts []Option) (options, error) {
	o := defaultOptions()
	for _, opt := range opts {
		if err := opt.apply(&o); err != nil {
			return options{}, err
		}
	}
	return o, nil
}
